//! Quickstart: simulate one GPU workload under no security, the PSSM
//! baseline, and Plutus, and compare throughput and DRAM traffic.
//!
//! ```text
//! cargo run --release -p plutus-bench --example quickstart
//! ```

use gpu_sim::{GpuConfig, NoSecurityEngine, Simulator, TrafficClass};
use plutus_core::{PlutusConfig, PlutusEngine};
use secure_mem::{PssmEngine, SecureMemConfig};
use workloads::{by_name, Scale};

fn main() {
    let cfg = GpuConfig::default();
    let workload = by_name("bfs").expect("bfs is part of the suite");
    println!(
        "workload: bfs (synthetic graph traversal), {:?} scale",
        Scale::Small
    );

    // 1. No security: the normalization baseline.
    let trace = workload.trace(Scale::Small);
    let baseline = Simulator::new(cfg.clone(), trace.clone(), &NoSecurityEngine::factory()).run();

    // 2. The PSSM secure-memory baseline (counters + MACs + BMT, CME).
    let pssm_factory = PssmEngine::factory(SecureMemConfig::pssm());
    let pssm = Simulator::new(cfg.clone(), trace.clone(), &pssm_factory).run();

    // 3. Full Plutus: value verification + compact counters + 32 B metadata.
    let plutus_factory = PlutusEngine::factory(PlutusConfig::full());
    let plutus = Simulator::new(cfg, trace, &plutus_factory).run();

    println!(
        "\n{:<14}{:>12}{:>14}{:>16}{:>16}",
        "scheme", "IPC", "norm. IPC", "DRAM bytes", "metadata bytes"
    );
    for run in [&baseline, &pssm, &plutus] {
        println!(
            "{:<14}{:>12.2}{:>14.3}{:>16}{:>16}",
            run.engine,
            run.ipc(),
            run.ipc() / baseline.ipc(),
            run.stats.total_bytes(),
            run.stats.metadata_bytes(),
        );
    }

    for (name, run) in [("PSSM", &pssm), ("Plutus", &plutus)] {
        println!("\n{name} traffic breakdown:");
        for class in TrafficClass::ALL {
            let bytes = run.stats.class_bytes(class);
            if bytes > 0 {
                println!("  {:<12}{:>14} bytes", class.label(), bytes);
            }
        }
    }

    let speedup = (plutus.ipc() / pssm.ipc() - 1.0) * 100.0;
    let saved =
        (1.0 - plutus.stats.metadata_bytes() as f64 / pssm.stats.metadata_bytes() as f64) * 100.0;
    println!("\nPlutus vs PSSM: {speedup:+.1}% IPC, {saved:.1}% less metadata traffic");
    if let Some(avoided) = plutus.stats.engine_counter("mac_fetches_avoided") {
        let fills = plutus.stats.engine_counter("fills").unwrap_or(1).max(1);
        println!(
            "value verification authenticated {:.1}% of fills without a MAC fetch",
            avoided as f64 / fills as f64 * 100.0
        );
    }
}
