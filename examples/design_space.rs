//! Design-space exploration: sweep the knobs the paper fixes and see why
//! it fixed them there.
//!
//! Covers three ablations called out in DESIGN.md:
//! 1. value-cache size vs the 3-of-4 rule (Eq. 1: bigger caches need a
//!    stricter rule, so 256 entries is the sweet spot);
//! 2. metadata granularity (Fig. 14's three designs);
//! 3. compact-counter kind (2-bit / 3-bit / adaptive).
//!
//! ```text
//! cargo run --release -p plutus-bench --example design_space
//! ```

use gpu_sim::GpuConfig;
use plutus_bench::{run_one, Scheme};
use plutus_core::binomial::{
    binomial_tail, plutus_min_hits, tamper_hit_probability, FORGERY_BUDGET,
};
use workloads::{by_name, Scale};

fn main() {
    // --- 1. The Eq. 1 security analysis across value-cache sizes. -------
    println!("value-cache size vs required hits per 128-bit unit (Eq. 1):");
    println!(
        "{:>10}{:>10}{:>24}",
        "entries", "min hits", "forgery tail at 3-of-4"
    );
    for entries in [64usize, 128, 256, 512, 1024] {
        let p = tamper_hit_probability(entries, 28);
        println!(
            "{entries:>10}{:>10}{:>24.3e}",
            plutus_min_hits(entries, 28),
            binomial_tail(4, 3, p)
        );
    }
    println!("(budget: {FORGERY_BUDGET:.3e} — a 56-bit MAC's collision rate)");
    println!("256 entries is the largest cache that still admits the 3-of-4 rule.\n");

    // --- 2 & 3. Timing ablations on a mixed pair of workloads. ----------
    let cfg = GpuConfig::default();
    for name in ["sssp", "hotspot"] {
        let w = by_name(name).expect("workload");
        let baseline = run_one(&w, Scheme::None, Scale::Small, &cfg);
        println!("=== {name} ===");
        println!(
            "{:<22}{:>12}{:>16}",
            "design", "norm. IPC", "metadata bytes"
        );
        for scheme in [
            Scheme::Pssm,
            Scheme::FineLeafCoarseTree,
            Scheme::All32,
            Scheme::Compact2Bit,
            Scheme::Compact3Bit,
            Scheme::CompactAdaptive,
            Scheme::Plutus,
        ] {
            let r = run_one(&w, scheme, Scale::Small, &cfg);
            println!(
                "{:<22}{:>12.3}{:>16}",
                scheme.label(),
                r.ipc() / baseline.ipc(),
                r.stats.metadata_bytes()
            );
        }
        println!();
    }
}
