//! Domain scenario: secure graph analytics on an untrusted cloud GPU.
//!
//! Graph workloads are the paper's motivating case: irregular gathers make
//! security metadata miss constantly, so the PSSM baseline can more than
//! double DRAM traffic. This example runs the three Pannotia-style graph
//! benchmarks under every scheme and reports where each technique's wins
//! come from.
//!
//! ```text
//! cargo run --release -p plutus-bench --example graph_analytics
//! ```

use gpu_sim::GpuConfig;
use plutus_bench::{run_one, Scheme};
use workloads::{by_name, Scale};

fn main() {
    let cfg = GpuConfig::default();
    let schemes = [
        Scheme::Pssm,
        Scheme::CommonCounters,
        Scheme::ValueVerifyOnly,
        Scheme::CompactAdaptive,
        Scheme::Plutus,
    ];

    for name in ["pagerank", "color", "mis"] {
        let w = by_name(name).expect("pannotia workload");
        let baseline = run_one(&w, Scheme::None, Scale::Small, &cfg);
        println!("\n=== {name} (write fraction {:.1}%) ===", {
            let t = w.trace(Scale::Small);
            t.write_fraction() * 100.0
        });
        println!(
            "{:<18}{:>12}{:>14}{:>18}",
            "scheme", "norm. IPC", "DRAM bytes", "metadata bytes"
        );
        println!(
            "{:<18}{:>12.3}{:>14}{:>18}",
            "no-security",
            1.0,
            baseline.stats.total_bytes(),
            baseline.stats.metadata_bytes()
        );
        for scheme in schemes {
            let r = run_one(&w, scheme, Scale::Small, &cfg);
            assert_eq!(r.stats.violations, 0, "honest runs must stay clean");
            println!(
                "{:<18}{:>12.3}{:>14}{:>18}",
                scheme.label(),
                r.ipc() / baseline.ipc(),
                r.stats.total_bytes(),
                r.stats.metadata_bytes()
            );
        }
    }
    println!(
        "\nreading the table: value verification removes the MAC column, compact \
         counters shrink the counter+BMT columns, and full Plutus composes both \
         on 32 B metadata blocks."
    );
}
