//! Physical-attack demonstration: tamper with and replay simulated DRAM
//! contents and watch the Plutus engine detect every manipulation — while
//! honest traffic sails through on value verification without MAC fetches.
//!
//! ```text
//! cargo run --release -p plutus-bench --example tamper_detection
//! ```

use gpu_sim::{BackingMemory, SectorAddr, SecurityEngine};
use plutus_core::{PlutusConfig, PlutusEngine};

fn main() {
    let mut engine = PlutusEngine::new(PlutusConfig::test_small());
    let mut mem = BackingMemory::new();

    // The victim writes sensitive data.
    let secret = *b"model weights: proprietary data!";
    let addr = SectorAddr::new(0x4000);
    engine.on_writeback(addr, &secret, &mut mem);
    println!("victim wrote a sector at {addr}");

    // 1. Confidentiality: DRAM holds only ciphertext.
    let raw = mem.read(addr).expect("sector resident");
    assert_ne!(raw, secret);
    println!("DRAM contents (encrypted): {:02x?}...", &raw[..8]);

    // 2. Honest read: decrypts and verifies.
    let fill = engine.on_fill(addr, &mut mem);
    assert_eq!(fill.plaintext, secret);
    assert!(fill.violation.is_none());
    println!("honest read: verified, plaintext recovered");

    // 3. Tampering: flip one ciphertext bit.
    let mut mask = [0u8; 32];
    mask[5] = 0x10;
    mem.corrupt(addr, &mask);
    let fill = engine.on_fill(addr, &mut mem);
    println!(
        "bit-flip attack:  {}",
        fill.violation
            .map(|v| v.to_string())
            .unwrap_or_else(|| "UNDETECTED!".into())
    );
    assert!(fill.violation.is_some(), "tampering must be detected");
    // Undo the flip.
    mem.corrupt(addr, &mask);

    // 4. Replay: capture the current ciphertext, let the victim overwrite,
    //    then restore the stale bytes.
    let stale = mem.snapshot(addr).unwrap();
    engine.on_writeback(addr, b"model weights: revision 2 data!!", &mut mem);
    assert!(mem.replay(addr, stale));
    let fill = engine.on_fill(addr, &mut mem);
    println!(
        "replay attack:    {}",
        fill.violation
            .map(|v| v.to_string())
            .unwrap_or_else(|| "UNDETECTED!".into())
    );
    assert!(fill.violation.is_some(), "replay must be detected");

    // 5. Counter rollback: tamper with the stored write counter. The
    //    target must be written past compact-counter saturation first —
    //    until then the split counter is dead state (the compact layer
    //    serves the live counter) and rolling it back changes nothing.
    let target = SectorAddr::new(0x8000);
    for i in 1..=9u8 {
        engine.on_writeback(target, &[i; 32], &mut mem);
    }
    // Evict the counter so the next access re-verifies it against the BMT.
    for i in 1..64 {
        engine.on_fill(SectorAddr::new(0x8000 + i * 128 * 32), &mut mem);
    }
    engine.counters_mut().tamper_minor(target, 1);
    let fill = engine.on_fill(target, &mut mem);
    println!(
        "counter rollback: {}",
        fill.violation
            .map(|v| v.to_string())
            .unwrap_or_else(|| "UNDETECTED!".into())
    );
    assert!(
        fill.violation.is_some(),
        "counter rollback must be detected"
    );

    println!("\nall three attack classes detected; honest traffic unaffected");
}
