//! Property-style tests for the Plutus core structures, driven by
//! seeded random sampling (the build resolves no external crates, so
//! these loops stand in for proptest).

use gpu_sim::{BackingMemory, SectorAddr, SecurityEngine};
use plutus_core::binomial::{binomial_tail, min_hits_required, tamper_hit_probability};
use plutus_core::{
    CompactConfig, CompactCounters, CompactKind, PlutusConfig, PlutusEngine, ValueCache,
    ValueCacheConfig, ValueVerifier, Verdict, WriteScreen,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEEDS: u64 = 24;

fn sector_of(values: [u32; 8]) -> [u8; 32] {
    let mut out = [0u8; 32];
    for (i, v) in values.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&v.to_le_bytes());
    }
    out
}

/// The value cache never exceeds its capacity and pinned entries
/// survive arbitrary churn.
#[test]
fn value_cache_capacity_and_pinning() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = ValueCacheConfig::default();
        let mut c = ValueCache::new(cfg);
        // Pin one value by hammering it.
        let hot = 0xdead_bee0u32;
        c.insert(hot);
        for _ in 0..16 {
            c.probe(hot);
        }
        assert!(c.is_pinned(hot));
        for _ in 0..rng.gen_range(1usize..2000) {
            c.insert(rng.gen());
            let (p, t) = c.occupancy();
            assert!(p + t <= cfg.entries);
            assert!(p <= cfg.pinned_capacity());
        }
        assert!(c.is_pinned(hot), "pinned entry evicted by churn");
    }
}

/// Eq. 1 sanity: the binomial tail decreases in x and increases in p;
/// the minimum-hits solution actually satisfies the budget.
#[test]
fn binomial_solution_meets_budget() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let entries = rng.gen_range(1usize..4096);
        let bits = rng.gen_range(20u32..32);
        let p = tamper_hit_probability(entries, bits);
        for x in 1..4 {
            assert!(binomial_tail(4, x + 1, p) <= binomial_tail(4, x, p));
        }
        let budget = 1e-12;
        if let Some(x) = min_hits_required(4, p, budget) {
            assert!(binomial_tail(4, x, p) < budget);
            if x > 1 {
                assert!(binomial_tail(4, x - 1, p) >= budget);
            }
        }
    }
}

/// The write-screen guarantee: once `SkipMac`, the next read of the
/// same bytes passes value verification, no matter what runs between.
#[test]
fn skip_mac_guarantee_is_unconditional() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v = ValueVerifier::new(ValueCacheConfig::default());
        let hot = sector_of([0x70; 8]);
        let mut screened = WriteScreen::UpdateMac;
        for _ in 0..20 {
            screened = v.screen_write(&hot);
            if screened == WriteScreen::SkipMac {
                break;
            }
        }
        assert_eq!(screened, WriteScreen::SkipMac);
        for _ in 0..rng.gen_range(0usize..400) {
            v.verify_read(&sector_of(rng.gen()));
        }
        assert_eq!(v.verify_read(&hot), Verdict::Verified);
    }
}

/// Compact counters produce strictly increasing live counter values
/// across the compact → original handoff.
#[test]
fn compact_counter_values_monotonic() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let kind = match rng.gen_range(0u8..3) {
            0 => CompactKind::TwoBit,
            1 => CompactKind::ThreeBit,
            _ => CompactKind::Adaptive3,
        };
        let mut c = CompactCounters::new(
            CompactConfig {
                kind,
                ..Default::default()
            },
            1 << 20,
            1,
            [3; 16],
        );
        let s = SectorAddr::new(0);
        let mut last = 0u64;
        let mut saturated = false;
        for _ in 0..rng.gen_range(1usize..20) {
            let a = c.increment(s);
            match a.counter {
                Some(v) => {
                    assert!(!saturated, "compact counter revived after saturation");
                    assert!(v > last, "compact counter did not advance: {last} -> {v}");
                    last = v;
                }
                None => {
                    if let Some(p) = a.propagate {
                        assert_eq!(
                            u64::from(p),
                            last + 1,
                            "propagated value must continue the sequence"
                        );
                        last = u64::from(p);
                    }
                    saturated = true;
                }
            }
        }
    }
}

/// Full Plutus engine round-trips random write/read interleavings with
/// zero false violations.
#[test]
fn plutus_engine_roundtrips() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut engine = PlutusEngine::new(PlutusConfig::test_small());
        let mut mem = BackingMemory::new();
        let mut reference: std::collections::HashMap<u64, [u8; 32]> = Default::default();
        for _ in 0..rng.gen_range(1usize..150) {
            let addr = SectorAddr::new(rng.gen_range(0u64..64) * 32);
            let v = rng.gen::<u8>();
            if rng.gen::<bool>() {
                engine.on_writeback(addr, &[v; 32], &mut mem);
                reference.insert(addr.raw(), [v; 32]);
            } else {
                let fill = engine.on_fill(addr, &mut mem);
                let expected = reference.get(&addr.raw()).copied().unwrap_or([0; 32]);
                assert_eq!(fill.plaintext, expected);
                assert!(fill.violation.is_none());
            }
        }
    }
}
