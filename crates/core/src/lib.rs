//! **Plutus: bandwidth-efficient memory security for GPUs** — a
//! reproduction of the HPCA 2023 paper by Abdullah, Zhou and Awad.
//!
//! Secure GPU memory (encryption counters, per-sector MACs, an integrity
//! tree) can add >200% DRAM traffic for irregular workloads. Plutus cuts
//! that overhead with three composable techniques:
//!
//! 1. **Value-based integrity verification** ([`verify::ValueVerifier`]) —
//!    a small per-partition cache of recently seen 32-bit values
//!    authenticates most reads *without fetching their MAC*: under AES-XTS,
//!    tampered ciphertext decrypts to uniform noise, and the binomial
//!    analysis in [`binomial`] shows that demanding 3-of-4 value-cache hits
//!    per 128-bit block bounds forgery below a 56-bit MAC's collision rate.
//!    Writes whose values are *pinned* in the cache skip the MAC update
//!    altogether.
//! 2. **Compact mirrored counters** ([`compact::CompactCounters`]) — 2-/3-
//!    bit front-line write counters (plus a small BMT) serve the
//!    rarely-written majority of GPU data; the original split counters and
//!    big BMT are touched only on saturation. The adaptive variant disables
//!    itself per-block for write-hot data.
//! 3. **Fine-grain metadata blocks** (via
//!    [`secure_mem::SecureMemConfig::all_32`]) — 32 B counter/MAC/BMT
//!    blocks eliminate over-fetch at the cost of a taller tree; the paper's
//!    Fig. 14 trade-off is swept by the benches.
//!
//! The [`engine::PlutusEngine`] composes all three behind the
//! [`gpu_sim::SecurityEngine`] interface, with per-technique toggles in
//! [`config::PlutusConfig`] matching each of the paper's figures.
//!
//! # Quick start
//!
//! ```
//! use gpu_sim::{BackingMemory, SectorAddr, SecurityEngine};
//! use plutus_core::{PlutusConfig, PlutusEngine};
//!
//! let mut engine = PlutusEngine::new(PlutusConfig::test_small());
//! let mut mem = BackingMemory::new();
//! let addr = SectorAddr::new(0x2000);
//! engine.on_writeback(addr, &[7; 32], &mut mem);
//! let fill = engine.on_fill(addr, &mut mem);
//! assert_eq!(fill.plaintext, [7; 32]);
//! assert!(fill.violation.is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binomial;
pub mod compact;
pub mod config;
pub mod engine;
pub mod overheads;
pub mod value_analysis;
pub mod value_cache;
pub mod verify;

pub use compact::{CompactConfig, CompactCounters, CompactKind};
pub use config::PlutusConfig;
pub use engine::{PlutusEngine, PlutusFactory};
pub use value_analysis::{analyze_trace, ValueReuse};
pub use value_cache::{ValueCache, ValueCacheConfig};
pub use verify::{ValueVerifier, Verdict, WriteScreen};
