//! Hardware and storage overhead accounting (paper Section IV-F).
//!
//! Plutus adds on-chip structures (the value cache, two compact-metadata
//! caches) and changes off-chip metadata storage (fine-grain BMT nodes
//! grow the tree; compact counters add a mirrored array plus a small
//! tree). This module computes both sides for any configuration so the
//! trade-offs of Fig. 14 and Section IV-F can be tabulated.

use crate::compact::CompactKind;
use crate::config::PlutusConfig;
use secure_mem::{Layout, SecureMemConfig};

/// On-chip SRAM added per memory partition (bytes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OnChipOverheads {
    /// Counter, MAC and BMT metadata caches (present in the baseline too).
    pub metadata_caches: u64,
    /// The Plutus value cache (28-bit keys + 4-bit use counters).
    pub value_cache: u64,
    /// Compact-counter cache + compact-tree cache.
    pub compact_caches: u64,
}

impl OnChipOverheads {
    /// Total per-partition on-chip bytes.
    pub fn total(&self) -> u64 {
        self.metadata_caches + self.value_cache + self.compact_caches
    }
}

/// Off-chip (device-memory) metadata storage (bytes, whole GPU).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OffChipOverheads {
    /// Split-counter array.
    pub counters: u64,
    /// Per-sector MACs.
    pub macs: u64,
    /// Original BMT nodes (all partitions).
    pub bmt: u64,
    /// Compact mirrored-counter array.
    pub compact_counters: u64,
    /// Compact small-tree nodes.
    pub compact_bmt: u64,
}

impl OffChipOverheads {
    /// Total off-chip metadata bytes.
    pub fn total(&self) -> u64 {
        self.counters + self.macs + self.bmt + self.compact_counters + self.compact_bmt
    }

    /// Metadata storage as a fraction of the protected region.
    pub fn fraction_of(&self, protected_bytes: u64) -> f64 {
        self.total() as f64 / protected_bytes as f64
    }
}

/// Computes the on-chip overheads of a configuration (per partition).
pub fn on_chip(cfg: &PlutusConfig) -> OnChipOverheads {
    OnChipOverheads {
        metadata_caches: 3 * cfg.mem.meta_cache_bytes,
        value_cache: if cfg.value_verify {
            // 28-bit key + 4-bit counter = 4 B per entry.
            cfg.value_cache.entries as u64 * 4
        } else {
            0
        },
        compact_caches: cfg.compact.map_or(0, |c| 2 * c.cache_bytes),
    }
}

fn tree_bytes(leaves: u64, arity: u64, node_bytes: u64) -> u64 {
    let mut total = 0;
    let mut count = leaves.div_ceil(arity);
    loop {
        total += count * node_bytes;
        if count <= 1 {
            return total;
        }
        count = count.div_ceil(arity);
    }
}

/// Computes the off-chip metadata storage of a configuration (whole GPU;
/// per-partition trees are summed).
pub fn off_chip(cfg: &PlutusConfig) -> OffChipOverheads {
    let mem = &cfg.mem;
    let layout = Layout::new(mem);
    let protected = mem.protected_bytes;
    let sectors = protected / 32;
    let parts = mem.partitions as u64;

    let counters = protected / 32; // one 32B counter sector per 1 KiB
    let macs = sectors * u64::from(mem.mac_bytes);
    let bmt = layout.bmt_storage_bytes() * parts;

    let (compact_counters, compact_bmt) = match cfg.compact {
        None => (0, 0),
        Some(cc) => {
            let blocks = sectors.div_ceil(cc.kind.sectors_per_block());
            let region = blocks * 32;
            let local = blocks.div_ceil(parts);
            (region, tree_bytes(local, 4, 32) * parts)
        }
    };
    OffChipOverheads {
        counters,
        macs,
        bmt,
        compact_counters,
        compact_bmt,
    }
}

/// A labeled overheads row for reports.
#[derive(Debug, Clone)]
pub struct OverheadReport {
    /// Configuration label.
    pub label: String,
    /// Per-partition on-chip bytes.
    pub on_chip: OnChipOverheads,
    /// Whole-GPU off-chip bytes.
    pub off_chip: OffChipOverheads,
}

/// Builds the Section IV-F comparison: baseline PSSM vs each Fig. 14
/// granularity vs full Plutus.
pub fn section_4f_report() -> Vec<OverheadReport> {
    let rows: Vec<(&str, PlutusConfig)> = vec![
        (
            "pssm-128B",
            PlutusConfig {
                mem: SecureMemConfig::pssm(),
                value_verify: false,
                value_cache: Default::default(),
                compact: None,
            },
        ),
        (
            "all-32B",
            PlutusConfig {
                mem: SecureMemConfig::all_32(),
                value_verify: false,
                value_cache: Default::default(),
                compact: None,
            },
        ),
        ("plutus-full", PlutusConfig::full()),
        (
            "plutus-2bit",
            PlutusConfig {
                compact: Some(crate::compact::CompactConfig {
                    kind: CompactKind::TwoBit,
                    ..Default::default()
                }),
                ..PlutusConfig::full()
            },
        ),
    ];
    rows.into_iter()
        .map(|(label, cfg)| OverheadReport {
            label: label.into(),
            on_chip: on_chip(&cfg),
            off_chip: off_chip(&cfg),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_cache_is_1kb_as_in_the_paper() {
        // 256 entries × 4 B = 1 kB (paper Section IV-F).
        let oh = on_chip(&PlutusConfig::full());
        assert_eq!(oh.value_cache, 1024);
    }

    #[test]
    fn compact_caches_are_4kb_as_in_the_paper() {
        let oh = on_chip(&PlutusConfig::full());
        assert_eq!(oh.compact_caches, 4096);
    }

    #[test]
    fn fine_grain_tree_grows_storage() {
        let report = section_4f_report();
        let coarse = report.iter().find(|r| r.label == "pssm-128B").unwrap();
        let fine = report.iter().find(|r| r.label == "all-32B").unwrap();
        // Paper: 145.125 kB → 1.33 MB (≈ 9×) for the partition tree; the
        // exact constant depends on protected size, but the growth factor
        // must land in that neighborhood.
        let ratio = fine.off_chip.bmt as f64 / coarse.off_chip.bmt as f64;
        assert!((4.0..16.0).contains(&ratio), "BMT growth ratio {ratio}");
    }

    #[test]
    fn compact_layer_adds_about_3_percent() {
        // 3-bit compact counters mirror 1/64 of the data (≈1.6%), plus a
        // small tree — tiny next to the 25% MAC array.
        let full = off_chip(&PlutusConfig::full());
        let protected = PlutusConfig::full().mem.protected_bytes;
        let extra = (full.compact_counters + full.compact_bmt) as f64 / protected as f64;
        assert!(extra < 0.03, "compact storage fraction {extra}");
    }

    #[test]
    fn two_bit_compacts_harder_than_three_bit() {
        let report = section_4f_report();
        let full = report.iter().find(|r| r.label == "plutus-full").unwrap();
        let two = report.iter().find(|r| r.label == "plutus-2bit").unwrap();
        assert!(two.off_chip.compact_counters < full.off_chip.compact_counters);
    }

    #[test]
    fn macs_dominate_off_chip_storage() {
        // 8 B MAC per 32 B sector = 25% of protected memory — the paper's
        // motivation for attacking MAC traffic first.
        let oh = off_chip(&PlutusConfig::full());
        let protected = PlutusConfig::full().mem.protected_bytes;
        assert_eq!(oh.macs, protected / 4);
        assert!(oh.macs > oh.counters + oh.bmt + oh.compact_counters + oh.compact_bmt);
    }

    #[test]
    fn totals_are_sums() {
        let r = &section_4f_report()[0];
        assert_eq!(
            r.off_chip.total(),
            r.off_chip.counters + r.off_chip.macs + r.off_chip.bmt
        );
        assert!(r.on_chip.total() >= r.on_chip.metadata_caches);
        assert!(r.off_chip.fraction_of(1 << 32) > 0.0);
    }
}
