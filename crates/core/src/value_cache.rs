//! The Plutus value cache: recently seen 32-bit values used to verify
//! integrity without MAC fetches (paper Section IV-C).
//!
//! A small, fully associative structure per memory partition. Values match
//! on their upper 28 bits (the 4 least-significant bits are masked to
//! capture nearby values). Entries carry a 4-bit use counter; entries whose
//! counter reaches the promotion threshold move to a *pinned* region
//! (default: a quarter of the capacity) and are never evicted afterwards —
//! pinned hits are what let a *write* guarantee it will pass value
//! verification on its next read, so its MAC update can be skipped
//! entirely.

use plutus_telemetry::{Counter, Event, Telemetry};

/// Value-cache configuration (paper Table II: 1 kB, fully associative,
/// 25% pinned, 256 entries of 28-bit value + 4-bit counter).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueCacheConfig {
    /// Total entries (pinned + transient).
    pub entries: usize,
    /// Fraction of entries reserved for pinned values.
    pub pinned_fraction: f64,
    /// Use-counter value at which a transient entry is promoted.
    pub promote_threshold: u8,
    /// Low bits of each 32-bit value masked before matching.
    pub masked_bits: u32,
}

impl Default for ValueCacheConfig {
    fn default() -> Self {
        Self {
            entries: 256,
            pinned_fraction: 0.25,
            promote_threshold: 8,
            masked_bits: 4,
        }
    }
}

impl ValueCacheConfig {
    /// Effective matched bits per 32-bit value.
    pub fn effective_bits(&self) -> u32 {
        32 - self.masked_bits
    }

    /// Pinned-region capacity in entries: `entries × pinned_fraction`
    /// rounded half-up, clamped to `[0, entries]`. Truncation instead
    /// of rounding would under-provision the pinned region — down to
    /// zero on small caches, where a fraction like 0.25 of 2 entries
    /// must still pin one — silently disabling the skip-MAC write path.
    pub fn pinned_capacity(&self) -> usize {
        let exact = self.entries as f64 * self.pinned_fraction;
        (((exact + 0.5).floor()) as usize).min(self.entries)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.entries == 0 {
            return Err("value cache must have entries".into());
        }
        if !(0.0..1.0).contains(&self.pinned_fraction) {
            return Err("pinned_fraction must be in [0, 1)".into());
        }
        if self.masked_bits >= 32 {
            return Err("masked_bits must be < 32".into());
        }
        if self.promote_threshold == 0 || self.promote_threshold > 15 {
            return Err("promote_threshold must fit the 4-bit use counter (1..=15)".into());
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    key: u32,
    uses: u8,
    last_used: u64,
}

/// How a probe resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeResult {
    /// Matched a pinned entry.
    HitPinned,
    /// Matched a transient entry.
    HitTransient,
    /// No match.
    Miss,
}

impl ProbeResult {
    /// Any kind of hit.
    pub fn is_hit(self) -> bool {
        !matches!(self, ProbeResult::Miss)
    }
}

/// The fully associative value cache.
#[derive(Debug, Clone)]
pub struct ValueCache {
    cfg: ValueCacheConfig,
    pinned: Vec<Entry>,
    transient: Vec<Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    promotions: u64,
    tel: Telemetry,
    tel_hits: Counter,
    tel_misses: Counter,
    tel_promotions: Counter,
}

impl ValueCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid.
    pub fn new(cfg: ValueCacheConfig) -> Self {
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid ValueCacheConfig: {e}"));
        Self {
            cfg,
            pinned: Vec::with_capacity(cfg.pinned_capacity()),
            transient: Vec::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            promotions: 0,
            tel: Telemetry::disabled(),
            tel_hits: Counter::disabled(),
            tel_misses: Counter::disabled(),
            tel_promotions: Counter::disabled(),
        }
    }

    /// Mirrors probe outcomes into `tel` (`value_cache.hits`/`.misses`/
    /// `.promotions`) and emits typed probe events.
    pub fn attach_telemetry(&mut self, tel: &Telemetry) {
        self.tel_hits = tel.counter("value_cache.hits");
        self.tel_misses = tel.counter("value_cache.misses");
        self.tel_promotions = tel.counter("value_cache.promotions");
        self.tel = tel.clone();
    }

    /// The configuration in use.
    pub fn config(&self) -> &ValueCacheConfig {
        &self.cfg
    }

    fn key_of(&self, value: u32) -> u32 {
        value >> self.cfg.masked_bits
    }

    /// Probes for `value` without inserting, updating recency and use
    /// counters on a hit.
    pub fn probe(&mut self, value: u32) -> ProbeResult {
        let result = self.probe_inner(value);
        match result {
            ProbeResult::Miss => self.tel_misses.inc(),
            ProbeResult::HitPinned | ProbeResult::HitTransient => self.tel_hits.inc(),
        }
        if self.tel.enabled() {
            self.tel.event(match result {
                ProbeResult::Miss => Event::ValueCacheMiss,
                hit => Event::ValueCacheHit {
                    pinned: hit == ProbeResult::HitPinned,
                },
            });
        }
        result
    }

    fn probe_inner(&mut self, value: u32) -> ProbeResult {
        self.tick += 1;
        let key = self.key_of(value);
        if let Some(e) = self.pinned.iter_mut().find(|e| e.key == key) {
            e.last_used = self.tick;
            self.hits += 1;
            return ProbeResult::HitPinned;
        }
        if let Some(pos) = self.transient.iter().position(|e| e.key == key) {
            self.transient[pos].last_used = self.tick;
            self.transient[pos].uses = (self.transient[pos].uses + 1).min(15);
            self.hits += 1;
            if self.transient[pos].uses >= self.cfg.promote_threshold
                && self.pinned.len() < self.cfg.pinned_capacity()
            {
                let e = self.transient.swap_remove(pos);
                self.pinned.push(e);
                self.promotions += 1;
                self.tel_promotions.inc();
                if self.tel.enabled() {
                    self.tel.event(Event::ValueCachePromotion);
                }
                return ProbeResult::HitPinned;
            }
            return ProbeResult::HitTransient;
        }
        self.misses += 1;
        ProbeResult::Miss
    }

    /// Inserts `value` if absent (recently seen). Present values only have
    /// their recency refreshed: the use counter that drives promotion is
    /// advanced by *probe hits* alone, so that the counted uses, the hits
    /// reported by [`ValueCache::stats`], and the pinning decision all
    /// measure the same thing. (The usual probe-miss-then-insert sequence
    /// also advances the recency clock exactly once, in the probe.)
    pub fn insert(&mut self, value: u32) {
        let key = self.key_of(value);
        if let Some(e) = self.pinned.iter_mut().find(|e| e.key == key) {
            e.last_used = self.tick;
            return;
        }
        if let Some(e) = self.transient.iter_mut().find(|e| e.key == key) {
            e.last_used = self.tick;
            return;
        }
        self.tick += 1;
        let capacity = self.cfg.entries - self.pinned.len();
        if self.transient.len() >= capacity {
            // Evict the least recently used transient entry.
            if let Some(pos) = self
                .transient
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
            {
                self.transient.swap_remove(pos);
            }
        }
        self.transient.push(Entry {
            key,
            uses: 1,
            last_used: self.tick,
        });
    }

    /// True if `value` currently matches a pinned entry (no state change).
    pub fn is_pinned(&self, value: u32) -> bool {
        let key = self.key_of(value);
        self.pinned.iter().any(|e| e.key == key)
    }

    /// Raw keys (already shifted by `masked_bits`) of every pinned entry.
    /// The pinned set is the only value-cache state that must survive a
    /// crash: skip-MAC writes rely on it, so it is modeled as flushed to
    /// persistent storage on each promotion (tens of bytes, append-only).
    pub fn pinned_keys(&self) -> Vec<u32> {
        self.pinned.iter().map(|e| e.key).collect()
    }

    /// Crash-recovery hook: re-pins raw `keys` previously captured with
    /// [`ValueCache::pinned_keys`], up to the pinned capacity; keys already
    /// pinned are skipped.
    pub fn graft_pinned(&mut self, keys: &[u32]) {
        for &key in keys {
            if self.pinned.iter().any(|e| e.key == key) {
                continue;
            }
            if self.pinned.len() >= self.cfg.pinned_capacity() {
                break;
            }
            self.tick += 1;
            self.pinned.push(Entry {
                key,
                uses: self.cfg.promote_threshold,
                last_used: self.tick,
            });
        }
    }

    /// Occupancy `(pinned, transient)`.
    pub fn occupancy(&self) -> (usize, usize) {
        (self.pinned.len(), self.transient.len())
    }

    /// Lifetime statistics `(hits, misses, promotions)`.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.promotions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> ValueCache {
        ValueCache::new(ValueCacheConfig::default())
    }

    #[test]
    fn pinned_capacity_rounds_half_up() {
        let cap = |entries, pinned_fraction| {
            ValueCacheConfig {
                entries,
                pinned_fraction,
                ..Default::default()
            }
            .pinned_capacity()
        };
        // The paper configuration is exact and must not drift.
        assert_eq!(cap(256, 0.25), 64);
        // Regression: truncation pinned 2 of 15 at fraction 0.2.
        assert_eq!(cap(15, 0.2), 3);
        // Fractions that land just below an integer round up…
        assert_eq!(cap(29, 0.1), 3, "2.9 rounds to 3, not truncates to 2");
        assert_eq!(cap(7, 0.5), 4, "3.5 rounds half-up");
        // …and small caches never round their pinned region to zero
        // for a meaningful fraction.
        assert_eq!(cap(2, 0.25), 1);
        assert_eq!(cap(3, 0.25), 1);
        // Boundary fractions stay within [0, entries].
        assert_eq!(cap(16, 0.0), 0);
        assert_eq!(cap(2, 0.99), 2, "clamped to the cache size");
        assert_eq!(cap(1, 0.4), 0, "0.4 still rounds down");
    }

    #[test]
    fn miss_then_insert_then_hit() {
        let mut c = cache();
        assert_eq!(c.probe(0x1234_5670), ProbeResult::Miss);
        c.insert(0x1234_5670);
        assert!(c.probe(0x1234_5670).is_hit());
    }

    #[test]
    fn masked_bits_capture_nearby_values() {
        let mut c = cache();
        c.insert(0x1234_5670);
        // Same upper 28 bits, different low nibble → hit.
        assert!(c.probe(0x1234_567f).is_hit());
        // Different upper bits → miss.
        assert_eq!(c.probe(0x1234_5680), ProbeResult::Miss);
    }

    #[test]
    fn promotion_after_threshold_hits() {
        let mut c = cache();
        c.insert(42 << 4);
        for _ in 0..ValueCacheConfig::default().promote_threshold {
            c.probe(42 << 4);
        }
        assert!(c.is_pinned(42 << 4));
        let (_, _, promotions) = c.stats();
        assert_eq!(promotions, 1);
    }

    #[test]
    fn pinned_entries_survive_capacity_churn() {
        let mut c = cache();
        c.insert(7 << 4);
        for _ in 0..15 {
            c.probe(7 << 4); // promote
        }
        assert!(c.is_pinned(7 << 4));
        // Flood with 10× capacity of distinct values.
        for i in 0..2560u32 {
            c.insert((1000 + i) << 4);
        }
        assert!(c.is_pinned(7 << 4), "pinned values must never be evicted");
        assert!(c.probe(7 << 4).is_hit());
    }

    #[test]
    fn transient_lru_eviction() {
        let cfg = ValueCacheConfig {
            entries: 4,
            pinned_fraction: 0.25,
            ..Default::default()
        };
        let mut c = ValueCache::new(cfg);
        // Transient capacity = 4 (pinned region empty so far).
        for i in 0..4u32 {
            c.insert(i << 4);
        }
        c.probe(0); // refresh value 0
        c.insert(100 << 4); // evicts LRU = value 1
        assert!(c.probe(0).is_hit());
        assert_eq!(c.probe(1 << 4), ProbeResult::Miss);
    }

    #[test]
    fn pinned_region_bounded() {
        let cfg = ValueCacheConfig {
            entries: 8,
            pinned_fraction: 0.25,
            promote_threshold: 1,
            ..Default::default()
        };
        let mut c = ValueCache::new(cfg);
        // Try to promote many values; only 2 slots exist.
        for i in 0..8u32 {
            c.insert(i << 4);
            c.probe(i << 4);
            c.probe(i << 4);
        }
        let (pinned, _) = c.occupancy();
        assert!(pinned <= 2, "pinned occupancy {pinned} exceeds capacity");
    }

    #[test]
    fn total_occupancy_never_exceeds_entries() {
        let mut c = cache();
        for i in 0..10_000u32 {
            c.insert(i);
            if i % 3 == 0 {
                c.probe(i);
            }
            let (p, t) = c.occupancy();
            assert!(p + t <= 256);
        }
    }

    #[test]
    fn insert_is_idempotent_for_present_values() {
        let mut c = cache();
        c.insert(5 << 4);
        c.insert(5 << 4);
        let (_, t) = c.occupancy();
        assert_eq!(t, 1);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut c = cache();
        c.probe(1 << 4);
        c.insert(1 << 4);
        c.probe(1 << 4);
        let (h, m, _) = c.stats();
        assert_eq!((h, m), (1, 1));
    }

    #[test]
    #[should_panic(expected = "invalid ValueCacheConfig")]
    fn invalid_config_rejected() {
        ValueCache::new(ValueCacheConfig {
            entries: 0,
            ..Default::default()
        });
    }

    #[test]
    fn pinned_keys_roundtrip_through_graft() {
        let mut c = cache();
        c.insert(7 << 4);
        for _ in 0..15 {
            c.probe(7 << 4); // promote
        }
        let keys = c.pinned_keys();
        assert_eq!(keys, vec![7]);
        // Graft into a fresh cache: the value is pinned without any probes.
        let mut fresh = cache();
        fresh.graft_pinned(&keys);
        assert!(fresh.is_pinned(7 << 4));
        // Grafting again does not duplicate.
        fresh.graft_pinned(&keys);
        assert_eq!(fresh.pinned_keys(), vec![7]);
    }

    /// Regression: re-inserting a present value used to bump its use
    /// counter, so repeated *writes* of a value could pin it without a
    /// single probe hit — promotion must be earned by probe hits alone.
    #[test]
    fn insert_refreshes_do_not_count_toward_promotion() {
        let cfg = ValueCacheConfig {
            promote_threshold: 3,
            ..Default::default()
        };
        let mut c = ValueCache::new(cfg);
        for _ in 0..20 {
            c.insert(9 << 4);
        }
        assert!(!c.is_pinned(9 << 4), "inserts alone must never pin");
        // One probe hit is still below the threshold of 3.
        assert!(c.probe(9 << 4).is_hit());
        assert!(!c.is_pinned(9 << 4));
        let (h, _, _) = c.stats();
        assert_eq!(h, 1, "only the probe counts as a hit");
    }

    /// An insert refresh must still update recency, or hot written values
    /// would be evicted as stale.
    #[test]
    fn insert_refresh_updates_recency() {
        let cfg = ValueCacheConfig {
            entries: 4,
            pinned_fraction: 0.25,
            ..Default::default()
        };
        let mut c = ValueCache::new(cfg);
        for i in 0..4u32 {
            c.insert(i << 4);
        }
        c.insert(0); // refresh value 0 (oldest) via insert, not probe
        c.insert(100 << 4); // evicts LRU, which must now be value 1
        assert!(c.probe(0).is_hit(), "refreshed entry was evicted");
        assert_eq!(c.probe(1 << 4), ProbeResult::Miss);
    }
}
