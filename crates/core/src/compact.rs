//! Compact mirrored counters (paper Section IV-D, Fig. 13).
//!
//! A second, much denser layer of per-sector write counters sits in front
//! of the original split counters: 2-bit (4× compaction) or 3-bit (2×
//! compaction) counters, protected by their own small BMT. While a sector's
//! compact counter is below its saturation value, *it is* the encryption
//! counter — the original counter (and the big BMT) are never touched. On
//! the saturating write the compact value is propagated to the original
//! split counter and the sector permanently falls back to the original
//! path.
//!
//! The **adaptive** variant additionally tracks, per compact-counter block,
//! how many of its 64 counters have saturated; at a threshold (8 — half of
//! the ≈25% of counters prior work observed are ever written) an on-chip
//! enable bit disables the whole block: every unsaturated compact value is
//! copied to the original counters (no re-encryption needed — the values
//! are preserved) and subsequent accesses skip the compact layer entirely,
//! avoiding the double-lookup penalty of write-heavy data.

use gpu_sim::cache::SectoredCache;
use gpu_sim::{DramReq, SectorAddr, TrafficClass, Violation, SECTOR_SIZE};
use plutus_crypto::Cmac;
use plutus_telemetry::{Counter, Event, Telemetry};
use std::collections::{HashMap, HashSet};

/// Which compact-counter design is active (the paper's three options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactKind {
    /// 2-bit counters: 4× compaction, saturates on the third write.
    TwoBit,
    /// 3-bit counters: 2× compaction, saturates on the seventh write.
    ThreeBit,
    /// 3-bit counters with per-block adaptive disable (Plutus's choice).
    Adaptive3,
}

impl CompactKind {
    /// Saturation marker value (all-ones for the width).
    pub fn saturation(self) -> u8 {
        match self {
            CompactKind::TwoBit => 3,
            CompactKind::ThreeBit | CompactKind::Adaptive3 => 7,
        }
    }

    /// Data sectors covered by one 32 B compact-counter sector.
    pub fn sectors_per_block(self) -> u64 {
        match self {
            CompactKind::TwoBit => 128,
            CompactKind::ThreeBit | CompactKind::Adaptive3 => 64,
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            CompactKind::TwoBit => "2bit",
            CompactKind::ThreeBit => "3bit",
            CompactKind::Adaptive3 => "adaptive3",
        }
    }
}

/// Configuration of the compact layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactConfig {
    /// Counter design.
    pub kind: CompactKind,
    /// Saturated counters per block before the adaptive variant disables
    /// the block (paper: 8).
    pub disable_threshold: u8,
    /// Compact metadata cache capacity (paper: 2 KiB per partition).
    pub cache_bytes: u64,
    /// Compact metadata cache associativity.
    pub cache_ways: usize,
}

impl Default for CompactConfig {
    fn default() -> Self {
        Self {
            kind: CompactKind::Adaptive3,
            disable_threshold: 8,
            cache_bytes: 2048,
            cache_ways: 4,
        }
    }
}

/// What the compact layer resolved for one access.
#[derive(Debug, Clone, Default)]
pub struct CompactAccess {
    /// `Some(v)` — the compact layer holds the live counter `v`.
    /// `None` — saturated or disabled: the caller must use the original
    /// split-counter path.
    pub counter: Option<u64>,
    /// On the *saturating* write: the value that must be propagated into
    /// the original counter before encrypting with it.
    pub propagate: Option<u8>,
    /// On an adaptive block-disable: `(sector, value)` pairs to copy into
    /// the original counters.
    pub block_disable: Option<Vec<(SectorAddr, u8)>>,
    /// Critical-path reads (compact counter fetch + compact BMT walk).
    pub chain: Vec<DramReq>,
    /// Dirty compact metadata written back on eviction.
    pub writes: Vec<DramReq>,
    /// Compact-tree verification failure.
    pub violation: Option<Violation>,
    /// Whether the compact sector was already cached (or the block was
    /// disabled, costing nothing).
    pub hit: bool,
}

/// Region base for compact metadata (clear of data + original metadata).
const COMPACT_BASE: u64 = 1 << 45;

/// The compact mirrored-counter subsystem (one per partition).
#[derive(Debug, Clone)]
pub struct CompactCounters {
    cfg: CompactConfig,
    values: HashMap<u64, u8>,
    saturated_in_block: HashMap<u64, u8>,
    disabled_blocks: HashSet<u64>,
    cache: SectoredCache,
    tree_cache: SectoredCache,
    leaf_hashes: HashMap<u64, u64>,
    cmac: Cmac,
    /// `(base, count)` per tree level, level 1 first; 4-ary 32 B nodes.
    levels: Vec<(u64, u64)>,
    partitions: u64,
    /// Fig. 20 mode: no tree traffic (functional checks remain).
    tree_disabled: bool,
    hits: u64,
    misses: u64,
    saturations: u64,
    disables: u64,
    tree_fetches: u64,
    tel: Telemetry,
    tel_saturations: Counter,
    tel_disables: Counter,
}

const TREE_ARITY: u64 = 4;
const NODE_BYTES: u64 = 32;

impl CompactCounters {
    /// Builds the compact layer for a `protected_bytes` region shared by
    /// `partitions` memory partitions, keyed for its small BMT. As with
    /// the main BMT, each partition keeps its own small tree over its
    /// local share of the compact-counter blocks.
    pub fn new(
        cfg: CompactConfig,
        protected_bytes: u64,
        partitions: usize,
        tree_key: [u8; 16],
    ) -> Self {
        Self::with_tree_disabled(cfg, protected_bytes, partitions, tree_key, false)
    }

    /// Like [`CompactCounters::new`], optionally eliminating all
    /// compact-tree traffic (the paper's Fig. 20 mode; functional
    /// verification still runs).
    pub fn with_tree_disabled(
        cfg: CompactConfig,
        protected_bytes: u64,
        partitions: usize,
        tree_key: [u8; 16],
        tree_disabled: bool,
    ) -> Self {
        let data_sectors = protected_bytes / SECTOR_SIZE;
        let blocks = data_sectors.div_ceil(cfg.kind.sectors_per_block());
        let region_bytes = blocks * SECTOR_SIZE;
        let local_blocks = blocks.div_ceil(partitions.max(1) as u64);

        let mut levels = Vec::new();
        let mut base = COMPACT_BASE + region_bytes;
        let mut count = local_blocks.div_ceil(TREE_ARITY);
        loop {
            levels.push((base, count));
            if count <= 1 {
                break;
            }
            base += count * NODE_BYTES;
            count = count.div_ceil(TREE_ARITY);
        }

        Self {
            values: HashMap::new(),
            saturated_in_block: HashMap::new(),
            disabled_blocks: HashSet::new(),
            cache: SectoredCache::new(cfg.cache_bytes, cfg.cache_ways, 32, false),
            tree_cache: SectoredCache::new(cfg.cache_bytes, cfg.cache_ways, 32, false),
            leaf_hashes: HashMap::new(),
            cmac: Cmac::new(tree_key),
            levels,
            partitions: partitions.max(1) as u64,
            tree_disabled,
            cfg,
            hits: 0,
            misses: 0,
            saturations: 0,
            disables: 0,
            tree_fetches: 0,
            tel: Telemetry::disabled(),
            tel_saturations: Counter::disabled(),
            tel_disables: Counter::disabled(),
        }
    }

    /// Mirrors the compact caches into `tel` (`compact_cache.*`,
    /// `compact_tree_cache.*`), registers saturation/disable counters and
    /// emits [`Event::CompactOverflow`]/[`Event::CompactDisable`].
    pub fn attach_telemetry(&mut self, tel: &Telemetry) {
        self.cache.attach_telemetry(tel, "compact_cache");
        self.tree_cache.attach_telemetry(tel, "compact_tree_cache");
        self.tel_saturations = tel.counter("compact.saturations");
        self.tel_disables = tel.counter("compact.block_disables");
        self.tel = tel.clone();
    }

    fn block_of(&self, sector: SectorAddr) -> u64 {
        sector.index() / self.cfg.kind.sectors_per_block()
    }

    fn block_addr(&self, block: u64) -> u64 {
        COMPACT_BASE + block * SECTOR_SIZE
    }

    fn value_of(&self, sector: SectorAddr) -> u8 {
        *self.values.get(&sector.index()).unwrap_or(&0)
    }

    fn leaf_hash(&self, block: u64) -> u64 {
        let per = self.cfg.kind.sectors_per_block();
        let first = block * per;
        let mut buf = Vec::with_capacity(8 + per as usize);
        buf.extend_from_slice(&block.to_le_bytes());
        for i in 0..per {
            buf.push(*self.values.get(&(first + i)).unwrap_or(&0));
        }
        u64::from_le_bytes(self.cmac.mac(&buf)[..8].try_into().unwrap())
    }

    fn zero_leaf_hash(&self, block: u64) -> u64 {
        let per = self.cfg.kind.sectors_per_block();
        let mut buf = Vec::with_capacity(8 + per as usize);
        buf.extend_from_slice(&block.to_le_bytes());
        buf.resize(8 + per as usize, 0);
        u64::from_le_bytes(self.cmac.mac(&buf)[..8].try_into().unwrap())
    }

    fn is_root_level(&self, level: u32) -> bool {
        level as usize >= self.levels.len() || self.levels[level as usize - 1].1 <= 1
    }

    fn node_addr(&self, level: u32, idx: u64) -> u64 {
        let (base, count) = self.levels[level as usize - 1];
        debug_assert!(idx < count);
        base + idx * NODE_BYTES
    }

    /// Ensures the compact sector for `sector` is cached and verified.
    fn ensure_present(&mut self, sector: SectorAddr, out: &mut CompactAccess) {
        let block = self.block_of(sector);
        let addr = self.block_addr(block);
        if self.cache.probe(addr) {
            self.cache.access(addr, false, None);
            self.hits += 1;
            out.hit = true;
            return;
        }
        self.misses += 1;
        out.chain.push(DramReq::new(
            addr,
            SECTOR_SIZE as u32,
            TrafficClass::CompactCounter,
        ));
        let outcome = self.cache.access(addr, false, None);
        for ev in outcome.evicted {
            out.writes.push(DramReq::new(
                ev.addr,
                SECTOR_SIZE as u32,
                TrafficClass::CompactCounter,
            ));
            let ev_block = (ev.addr - COMPACT_BASE) / SECTOR_SIZE;
            self.touch_tree_dirty(1, ev_block / self.partitions / TREE_ARITY, out);
        }
        // Verify against the authoritative small tree.
        let recomputed = self.leaf_hash(block);
        let expected = match self.leaf_hashes.get(&block) {
            Some(h) => *h,
            None => self.zero_leaf_hash(block),
        };
        if recomputed != expected && out.violation.is_none() {
            out.violation = Some(Violation::CompactTreeMismatch {
                addr: sector,
                level: 0,
            });
        }
        if self.tree_disabled {
            return;
        }
        // Walk the small tree until a cached node or the root, using the
        // partition-local block numbering for geometry.
        let mut level = 1u32;
        let mut idx = block / self.partitions / TREE_ARITY;
        loop {
            if self.is_root_level(level) {
                break;
            }
            let naddr = self.node_addr(level, idx);
            if self.tree_cache.probe(naddr) {
                self.tree_cache.access(naddr, false, None);
                break;
            }
            self.tree_fetches += 1;
            out.chain.push(
                DramReq::new(naddr, NODE_BYTES as u32, TrafficClass::CompactBmt).at_level(level),
            );
            let outcome = self.tree_cache.access(naddr, false, None);
            for ev in outcome.evicted {
                out.writes.push(DramReq::new(
                    ev.addr,
                    SECTOR_SIZE as u32,
                    TrafficClass::CompactBmt,
                ));
            }
            level += 1;
            idx /= TREE_ARITY;
        }
    }

    fn touch_tree_dirty(&mut self, level: u32, idx: u64, out: &mut CompactAccess) {
        if self.tree_disabled || self.is_root_level(level) {
            return;
        }
        let addr = self.node_addr(level, idx);
        let outcome = self.tree_cache.access(addr, true, None);
        for ev in outcome.evicted {
            out.writes.push(DramReq::new(
                ev.addr,
                SECTOR_SIZE as u32,
                TrafficClass::CompactBmt,
            ));
        }
    }

    /// Resolves the counter for a **read** of `sector` (paper Fig. 13 flow:
    /// enable bit → compact value → original on saturation).
    pub fn read(&mut self, sector: SectorAddr) -> CompactAccess {
        let mut out = CompactAccess::default();
        let block = self.block_of(sector);
        // Disabled blocks (adaptive disable or a reliability freeze) are
        // redirected for every kind; only Adaptive3 *creates* disables on
        // its own.
        if self.disabled_blocks.contains(&block) {
            out.hit = true; // enable bits are on-chip: free redirect
            return out; // counter = None → original path
        }
        self.ensure_present(sector, &mut out);
        let v = self.value_of(sector);
        if v < self.cfg.kind.saturation() {
            out.counter = Some(u64::from(v));
        }
        out
    }

    /// Resolves the counter for a **write** of `sector`, advancing the
    /// compact counter and handling saturation/propagation.
    pub fn increment(&mut self, sector: SectorAddr) -> CompactAccess {
        let mut out = CompactAccess::default();
        let block = self.block_of(sector);
        let sat = self.cfg.kind.saturation();
        if self.disabled_blocks.contains(&block) {
            out.hit = true;
            return out; // original path handles the increment
        }
        self.ensure_present(sector, &mut out);
        let v = self.value_of(sector);
        if v >= sat {
            return out; // already saturated: original path
        }
        // Mark dirty in the compact cache (lazy writeback).
        self.cache.access(self.block_addr(block), true, None);
        let new = v + 1;
        self.values.insert(sector.index(), new);
        if new < sat {
            out.counter = Some(u64::from(new));
        } else {
            // Saturating write: propagate to the original counters.
            self.saturations += 1;
            self.tel_saturations.inc();
            if self.tel.enabled() {
                self.tel
                    .event(Event::CompactOverflow { addr: sector.raw() });
            }
            out.propagate = Some(sat);
            let count = self.saturated_in_block.entry(block).or_insert(0);
            *count += 1;
            if self.cfg.kind == CompactKind::Adaptive3 && *count >= self.cfg.disable_threshold {
                self.disables += 1;
                self.tel_disables.inc();
                if self.tel.enabled() {
                    self.tel.event(Event::CompactDisable {
                        addr: self.block_addr(block),
                    });
                }
                self.disabled_blocks.insert(block);
                let per = self.cfg.kind.sectors_per_block();
                let first = block * per;
                let copies = (0..per)
                    .filter_map(|i| {
                        let idx = first + i;
                        let v = *self.values.get(&idx).unwrap_or(&0);
                        (v < sat && idx != sector.index())
                            .then(|| (SectorAddr::new(idx * SECTOR_SIZE), v))
                    })
                    .collect();
                out.block_disable = Some(copies);
            }
        }
        let h = self.leaf_hash(block);
        self.leaf_hashes.insert(block, h);
        out
    }

    /// True if `sector`'s *live* encryption counter comes from the
    /// original split counters (compact saturated, or block disabled) —
    /// i.e. split-counter maintenance such as group-overflow re-encryption
    /// applies to it. Unsaturated sectors are encrypted under their
    /// compact value and must be left alone.
    pub fn uses_original(&self, sector: SectorAddr) -> bool {
        let block = self.block_of(sector);
        self.disabled_blocks.contains(&block) || self.value_of(sector) >= self.cfg.kind.saturation()
    }

    /// The counter design in use.
    pub fn kind(&self) -> CompactKind {
        self.cfg.kind
    }

    /// Block index covering `sector` (degradation bookkeeping).
    pub fn block_index(&self, sector: SectorAddr) -> u64 {
        self.block_of(sector)
    }

    /// True if `sector`'s block is disabled (adaptively or frozen).
    pub fn is_disabled(&self, sector: SectorAddr) -> bool {
        self.disabled_blocks.contains(&self.block_of(sector))
    }

    /// Live compact counter without traffic or cache effects: `Some(v)`
    /// while the compact layer serves `sector`, `None` when saturated or
    /// the block is disabled.
    pub fn peek_live(&self, sector: SectorAddr) -> Option<u64> {
        if self.is_disabled(sector) {
            return None;
        }
        let v = self.value_of(sector);
        (v < self.cfg.kind.saturation()).then_some(u64::from(v))
    }

    /// Reliability freeze: permanently disables `sector`'s block so every
    /// sector in it moves to the original split-counter path, returning the
    /// `(sector, value)` copies the caller must propagate into the original
    /// counters (unwritten and saturated sectors need no copy). Works for
    /// every kind, unlike the adaptive disable which only Adaptive3
    /// triggers on its own.
    pub fn freeze_block(&mut self, sector: SectorAddr) -> Vec<(SectorAddr, u8)> {
        let block = self.block_of(sector);
        if self.disabled_blocks.contains(&block) {
            return Vec::new();
        }
        self.disables += 1;
        self.tel_disables.inc();
        if self.tel.enabled() {
            self.tel.event(Event::CompactDisable {
                addr: self.block_addr(block),
            });
        }
        self.disabled_blocks.insert(block);
        let sat = self.cfg.kind.saturation();
        let per = self.cfg.kind.sectors_per_block();
        let first = block * per;
        (0..per)
            .filter_map(|i| {
                let idx = first + i;
                let v = *self.values.get(&idx).unwrap_or(&0);
                (v > 0 && v < sat).then(|| (SectorAddr::new(idx * SECTOR_SIZE), v))
            })
            .collect()
    }

    /// Crash-recovery hook: overwrite `sector`'s compact counter with a
    /// value proven against a persistent MAC, rebuilding the small-tree
    /// leaf so subsequent verifications pass.
    pub fn restore_value(&mut self, sector: SectorAddr, value: u8) {
        let block = self.block_of(sector);
        let sat = self.cfg.kind.saturation();
        let old = self.value_of(sector);
        self.values.insert(sector.index(), value);
        if old < sat && value >= sat {
            *self.saturated_in_block.entry(block).or_insert(0) += 1;
        }
        let h = self.leaf_hash(block);
        self.leaf_hashes.insert(block, h);
    }

    /// Attack hook: tamper with a stored compact counter. Returns `false`
    /// when `value` equals the current counter (rolling back to the
    /// present value changes nothing).
    pub fn tamper(&mut self, sector: SectorAddr, value: u8) -> bool {
        if self.value_of(sector) == value {
            return false;
        }
        self.values.insert(sector.index(), value);
        true
    }

    /// `(cache hits, cache misses, saturations, adaptive disables, tree
    /// node fetches)`.
    pub fn stats(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.hits,
            self.misses,
            self.saturations,
            self.disables,
            self.tree_fetches,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(kind: CompactKind) -> CompactCounters {
        CompactCounters::new(
            CompactConfig {
                kind,
                ..Default::default()
            },
            1 << 20,
            1,
            [9; 16],
        )
    }

    fn sector(i: u64) -> SectorAddr {
        SectorAddr::new(i * 32)
    }

    #[test]
    fn fresh_sector_reads_counter_zero() {
        let mut c = sys(CompactKind::ThreeBit);
        let a = c.read(sector(0));
        assert_eq!(a.counter, Some(0));
        assert!(!a.hit);
        assert_eq!(a.chain[0].class, TrafficClass::CompactCounter);
        assert!(a.violation.is_none());
    }

    #[test]
    fn second_read_hits_cache() {
        let mut c = sys(CompactKind::ThreeBit);
        c.read(sector(0));
        let a = c.read(sector(0));
        assert!(a.hit);
        assert!(a.chain.is_empty());
    }

    #[test]
    fn increments_stay_compact_until_saturation() {
        let mut c = sys(CompactKind::ThreeBit);
        for expect in 1..7u64 {
            let a = c.increment(sector(0));
            assert_eq!(a.counter, Some(expect));
            assert!(a.propagate.is_none());
        }
        // Seventh write saturates.
        let a = c.increment(sector(0));
        assert_eq!(a.counter, None);
        assert_eq!(a.propagate, Some(7));
        // Reads now defer to the original path.
        let r = c.read(sector(0));
        assert_eq!(r.counter, None);
    }

    #[test]
    fn two_bit_saturates_on_third_write() {
        let mut c = sys(CompactKind::TwoBit);
        assert_eq!(c.increment(sector(0)).counter, Some(1));
        assert_eq!(c.increment(sector(0)).counter, Some(2));
        let third = c.increment(sector(0));
        assert_eq!(third.counter, None);
        assert_eq!(third.propagate, Some(3));
    }

    #[test]
    fn two_bit_packs_128_sectors_per_block() {
        let mut c = sys(CompactKind::TwoBit);
        c.read(sector(0));
        assert!(c.read(sector(127)).hit);
        assert!(!c.read(sector(128)).hit);
    }

    #[test]
    fn three_bit_packs_64_sectors_per_block() {
        let mut c = sys(CompactKind::ThreeBit);
        c.read(sector(0));
        assert!(c.read(sector(63)).hit);
        assert!(!c.read(sector(64)).hit);
    }

    #[test]
    fn adaptive_disables_block_after_threshold_saturations() {
        let mut c = sys(CompactKind::Adaptive3);
        // Saturate 8 distinct sectors in block 0 (7 writes each).
        for s in 0..8u64 {
            for _ in 0..7 {
                c.increment(sector(s));
            }
        }
        let (.., disables, _) = c.stats();
        assert_eq!(disables, 1);
        // The last saturating increment carries the copy list.
        // Block now disabled: reads bypass with zero traffic.
        let r = c.read(sector(20));
        assert!(r.hit);
        assert_eq!(r.counter, None);
        assert!(r.chain.is_empty());
    }

    #[test]
    fn adaptive_disable_reports_unsaturated_copies() {
        let mut c = sys(CompactKind::Adaptive3);
        // Give sector 60 two writes (unsaturated).
        c.increment(sector(60));
        c.increment(sector(60));
        let mut disable_copies = None;
        for s in 0..8u64 {
            for _ in 0..7 {
                let a = c.increment(sector(s));
                if a.block_disable.is_some() {
                    disable_copies = a.block_disable;
                }
            }
        }
        let copies = disable_copies.expect("8th saturation disables the block");
        let entry = copies.iter().find(|(a, _)| *a == sector(60)).unwrap();
        assert_eq!(entry.1, 2, "unsaturated value must be copied verbatim");
    }

    #[test]
    fn plain_three_bit_never_disables() {
        let mut c = sys(CompactKind::ThreeBit);
        for s in 0..16u64 {
            for _ in 0..7 {
                c.increment(sector(s));
            }
        }
        let (.., disables, _) = c.stats();
        assert_eq!(disables, 0);
        // Saturated sectors still pay the compact lookup before deferring —
        // the double-access cost the adaptive scheme avoids.
        let r = c.read(sector(0));
        assert_eq!(r.counter, None);
        assert!(r.hit || !r.chain.is_empty());
    }

    #[test]
    fn tamper_detected_on_reload() {
        let mut c = sys(CompactKind::ThreeBit);
        c.increment(sector(0));
        // Evict block 0 by touching many other blocks (2 KiB cache, 32 B
        // lines → 64 lines).
        for b in 1..200u64 {
            c.read(sector(b * 64));
        }
        assert!(c.tamper(sector(0), 0)); // roll back 1 → 0
        let a = c.read(sector(0));
        assert!(matches!(
            a.violation,
            Some(Violation::CompactTreeMismatch { .. })
        ));
    }

    #[test]
    fn freeze_block_redirects_all_kinds_and_reports_copies() {
        let mut c = sys(CompactKind::ThreeBit);
        c.increment(sector(3));
        c.increment(sector(3));
        let copies = c.freeze_block(sector(0));
        assert_eq!(copies, vec![(sector(3), 2)]);
        assert!(c.uses_original(sector(3)));
        // Reads now bypass the compact layer with zero traffic even for the
        // non-adaptive kind.
        let r = c.read(sector(3));
        assert!(r.hit);
        assert_eq!(r.counter, None);
        assert!(r.chain.is_empty());
        // Freezing again is a no-op.
        assert!(c.freeze_block(sector(0)).is_empty());
    }

    #[test]
    fn restore_value_rebuilds_leaf_so_reload_verifies() {
        let mut c = sys(CompactKind::ThreeBit);
        c.increment(sector(0));
        c.restore_value(sector(0), 4);
        assert_eq!(c.peek_live(sector(0)), Some(4));
        // Evict block 0, then reload: the rebuilt leaf must verify.
        for b in 1..200u64 {
            c.read(sector(b * 64));
        }
        let a = c.read(sector(0));
        assert_eq!(a.counter, Some(4));
        assert!(a.violation.is_none());
    }

    #[test]
    fn peek_live_reports_saturation_and_disable() {
        let mut c = sys(CompactKind::ThreeBit);
        assert_eq!(c.peek_live(sector(0)), Some(0));
        for _ in 0..7 {
            c.increment(sector(0));
        }
        assert_eq!(c.peek_live(sector(0)), None, "saturated");
        assert_eq!(c.peek_live(sector(1)), Some(0));
        c.freeze_block(sector(1));
        assert_eq!(c.peek_live(sector(1)), None, "frozen block");
    }

    #[test]
    fn compact_chain_includes_small_tree_on_cold_miss() {
        let mut c = sys(CompactKind::ThreeBit);
        let a = c.read(sector(0));
        let classes: Vec<_> = a.chain.iter().map(|r| r.class).collect();
        assert!(classes.contains(&TrafficClass::CompactCounter));
        assert!(classes.contains(&TrafficClass::CompactBmt));
    }
}
