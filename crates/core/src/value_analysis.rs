//! Offline data-value-locality analysis (paper Section III-B, Figs. 8–9).
//!
//! Replays a workload trace functionally (no timing) against per-partition
//! value caches and reports, for every read, whether it would count as
//! "reused" under the paper's three matching scenarios:
//!
//! 1. **All eight** 32-bit values of the sector hit the value cache.
//! 2. **Two halves, 3-of-4**: each 128-bit half needs 3 of its 4 values to
//!    hit (the Plutus verification rule, exact 32-bit matching).
//! 3. **Two halves, 3-of-4, masked**: as above with the 4 least-significant
//!    bits masked (captures nearby values; the rule Plutus ships).

use crate::value_cache::{ValueCache, ValueCacheConfig};
use gpu_sim::{partition_of, AccessKind, Trace};
use std::collections::HashMap;

/// Reuse fractions (0..=1) over all reads in the trace.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ValueReuse {
    /// Scenario 1: whole sector (8/8 values) reused.
    pub all_eight: f64,
    /// Scenario 2: both halves score ≥ 3-of-4, exact matching.
    pub halves: f64,
    /// Scenario 3: both halves score ≥ 3-of-4, low 4 bits masked.
    pub halves_masked: f64,
    /// Reads analyzed.
    pub reads: u64,
}

fn values_of(sector: &[u8; 32]) -> [u32; 8] {
    let mut out = [0u32; 8];
    for (i, chunk) in sector.chunks_exact(4).enumerate() {
        out[i] = u32::from_le_bytes(chunk.try_into().unwrap());
    }
    out
}

struct ScenarioCaches {
    exact: ValueCache,
    masked: ValueCache,
}

impl ScenarioCaches {
    fn new(entries: usize) -> Self {
        let exact = ValueCacheConfig {
            entries,
            pinned_fraction: 0.0,
            masked_bits: 0,
            ..ValueCacheConfig::default()
        };
        let masked = ValueCacheConfig {
            entries,
            pinned_fraction: 0.0,
            masked_bits: 4,
            ..ValueCacheConfig::default()
        };
        Self {
            exact: ValueCache::new(exact),
            masked: ValueCache::new(masked),
        }
    }
}

/// Replays `trace` and measures value reuse with `entries`-entry caches per
/// partition (paper: 512 entries = 2 kB per partition, `partitions` = 32).
pub fn analyze_trace(trace: &Trace, partitions: usize, entries: usize) -> ValueReuse {
    let mut caches: Vec<ScenarioCaches> = (0..partitions)
        .map(|_| ScenarioCaches::new(entries))
        .collect();
    let mut memory: HashMap<u64, [u8; 32]> = HashMap::new();
    for (addr, data) in &trace.initial_image {
        memory.insert(addr.raw(), *data);
    }

    let mut reuse = ValueReuse::default();
    for access in &trace.accesses {
        let p = partition_of(access.addr.block(), partitions);
        let caches = &mut caches[p];
        match access.kind {
            AccessKind::Write => {
                let data = trace.data_of(access);
                memory.insert(access.addr.raw(), *data);
                for v in values_of(data) {
                    caches.exact.insert(v);
                    caches.masked.insert(v);
                }
            }
            AccessKind::Read => {
                let data = memory.get(&access.addr.raw()).copied().unwrap_or([0; 32]);
                let values = values_of(&data);
                reuse.reads += 1;

                let exact_hits: Vec<bool> = values
                    .iter()
                    .map(|v| caches.exact.probe(*v).is_hit())
                    .collect();
                let masked_hits: Vec<bool> = values
                    .iter()
                    .map(|v| caches.masked.probe(*v).is_hit())
                    .collect();

                if exact_hits.iter().all(|&h| h) {
                    reuse.all_eight += 1.0;
                }
                let rule = |hits: &[bool]| {
                    hits[..4].iter().filter(|&&h| h).count() >= 3
                        && hits[4..].iter().filter(|&&h| h).count() >= 3
                };
                if rule(&exact_hits) {
                    reuse.halves += 1.0;
                }
                if rule(&masked_hits) {
                    reuse.halves_masked += 1.0;
                }

                for v in values {
                    caches.exact.insert(v);
                    caches.masked.insert(v);
                }
            }
        }
    }
    if reuse.reads > 0 {
        let n = reuse.reads as f64;
        reuse.all_eight /= n;
        reuse.halves /= n;
        reuse.halves_masked /= n;
    }
    reuse
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::SectorAddr;

    fn sector_bytes(values: [u32; 8]) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, v) in values.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&v.to_le_bytes());
        }
        out
    }

    #[test]
    fn fully_repeated_reads_score_high_everywhere() {
        let mut t = Trace::new("hot");
        let data = sector_bytes([7, 8, 9, 10, 11, 12, 13, 14]);
        for i in 0..8u64 {
            t.set_initial(SectorAddr::new(i * 32), data);
        }
        for _ in 0..4 {
            for i in 0..8u64 {
                t.push_read(SectorAddr::new(i * 32), 0, 1);
            }
        }
        let r = analyze_trace(&t, 1, 512);
        assert_eq!(r.reads, 32);
        assert!(r.all_eight > 0.7, "all_eight = {}", r.all_eight);
        assert!(r.halves >= r.all_eight);
        assert!(r.halves_masked >= r.halves - 1e-12);
    }

    #[test]
    fn unique_values_score_zero() {
        let mut t = Trace::new("cold");
        for i in 0..64u64 {
            let base = (i as u32) * 1000 + 1;
            t.set_initial(
                SectorAddr::new(i * 32),
                sector_bytes([
                    base * 37,
                    base * 59 + 7,
                    base * 83 + 13,
                    base * 101 + 29,
                    base * 131 + 31,
                    base * 151 + 41,
                    base * 181 + 47,
                    base * 191 + 53,
                ]),
            );
            t.push_read(SectorAddr::new(i * 32), 0, 1);
        }
        let r = analyze_trace(&t, 1, 512);
        assert_eq!(r.all_eight, 0.0);
        assert_eq!(r.halves, 0.0);
    }

    #[test]
    fn masking_captures_nearby_values() {
        let mut t = Trace::new("near");
        // First sector inserts values; second has values differing only in
        // the low 4 bits.
        t.set_initial(
            SectorAddr::new(0),
            sector_bytes([0x100, 0x200, 0x300, 0x400, 0x500, 0x600, 0x700, 0x800]),
        );
        t.set_initial(
            SectorAddr::new(32),
            sector_bytes([0x10f, 0x20e, 0x30d, 0x40c, 0x50b, 0x60a, 0x709, 0x808]),
        );
        t.push_read(SectorAddr::new(0), 0, 1);
        t.push_read(SectorAddr::new(32), 0, 1);
        let r = analyze_trace(&t, 1, 512);
        // Exact matching misses the second read; masked matching catches it.
        assert_eq!(r.halves, 0.0);
        assert!((r.halves_masked - 0.5).abs() < 1e-12);
    }

    #[test]
    fn writes_seed_the_cache_for_later_reads() {
        let mut t = Trace::new("write-seed");
        let data = sector_bytes([21, 22, 23, 24, 25, 26, 27, 28]);
        t.push_write(SectorAddr::new(0), data, 0, 1);
        t.push_read(SectorAddr::new(0), 0, 1);
        let r = analyze_trace(&t, 1, 512);
        assert_eq!(r.reads, 1);
        assert_eq!(r.all_eight, 1.0);
    }

    #[test]
    fn empty_trace_is_well_defined() {
        let t = Trace::new("empty");
        let r = analyze_trace(&t, 4, 512);
        assert_eq!(r.reads, 0);
        assert_eq!(r.all_eight, 0.0);
    }
}
