//! The Plutus security engine: the paper's three techniques composed
//! behind the simulator's [`SecurityEngine`] interface.
//!
//! Per L2 read miss (paper Fig. 11, left):
//!
//! 1. **Counter** — the compact layer resolves the write counter on-chip
//!    cheaply when enabled; saturated/disabled sectors fall back to the
//!    original split counters + BMT (charged as a *second*, sequential
//!    access, exactly the double-lookup cost the adaptive variant avoids).
//! 2. **Decrypt** — AES-XTS after the data arrives (GPU warps hide the
//!    serialization).
//! 3. **Verify** — the decrypted values probe the value cache; a sector
//!    scoring ≥ 3 hits per 128-bit half is *verified without its MAC*.
//!    Otherwise the MAC is fetched **after** decryption (`post_chain`) and
//!    checked — the deferred-MAC serialization the paper accepts in
//!    exchange for eliminating most MAC traffic.
//!
//! Per writeback (paper Fig. 11, right): the compact counter advances (or
//! propagates into the original on saturation); the sector's values are
//! screened against the *pinned* region — hits there guarantee the next
//! read passes value verification, so the MAC update itself is skipped.

use crate::compact::CompactCounters;
use crate::config::PlutusConfig;
use crate::verify::{ValueVerifier, Verdict, WriteScreen};
use gpu_sim::{
    BackingMemory, DramReq, EngineFactory, FillPlan, MetaFault, RecoveryError, RecoveryReport,
    SectorAddr, SecurityEngine, TrafficClass, Violation, WritePlan,
};
use plutus_telemetry::{Counter, Event, Telemetry, TraceId, Tracer};
use secure_mem::{
    CounterAccess, CounterSystem, DataCipher, MacSystem, SecureMemError, TenantCrypto,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Fill failures (retries or escalations) before the value-cache fast path
/// is frozen and every read pays full MAC verification.
const VERIFIER_FREEZE_FAILURES: u64 = 4;

/// Fill failures attributed to one compact-counter block before the block
/// is frozen onto the split-counter path.
const BLOCK_FREEZE_FAILURES: u32 = 8;

/// Upper bound on split-counter candidates probed per sector during
/// Phoenix-style crash recovery.
const RECOVERY_PROBE_BOUND: u64 = 1 << 14;

/// How one sector's counter was settled during crash recovery.
enum RecoverKind {
    /// The reverted state already verifies.
    Consistent,
    /// A probed candidate was proven by the persistent MAC.
    Mac,
    /// The pinned-value screen vouched for a sector whose MAC update was
    /// legitimately skipped; the MAC was repaired in place.
    Value,
}

/// A counter candidate that checked out during crash recovery.
#[derive(Clone, Copy)]
struct Candidate {
    /// Proven by the persistent MAC (vs vouched by the pinned screen).
    by_mac: bool,
    /// Verified under the pending new-generation cipher of a mid-flight
    /// key-rotation walk (the crash reverted the walk frontier).
    new_gen: bool,
}

/// The Plutus engine (one per memory partition).
#[derive(Debug, Clone)]
pub struct PlutusEngine {
    cfg: PlutusConfig,
    cipher: DataCipher,
    counters: CounterSystem,
    macs: MacSystem,
    verifier: Option<ValueVerifier>,
    compact: Option<CompactCounters>,
    /// Per-tenant key table, rotation walk, and storm gate (multi-tenant
    /// operation only).
    tenancy: Option<TenantCrypto>,
    fills: u64,
    writebacks: u64,
    mac_fetches_avoided: u64,
    mac_updates_skipped: u64,
    compact_fallbacks: u64,
    fill_failures: u64,
    verifier_frozen: bool,
    /// Per-tenant ladder state (tenancy only): an attacked tenant's
    /// value-cache freeze never widens to other tenants.
    tenant_fill_failures: BTreeMap<u32, u64>,
    frozen_tenants: BTreeSet<u32>,
    block_failures: HashMap<u64, u32>,
    blocks_frozen: u64,
    tel: Telemetry,
    tel_mac_avoided: Counter,
    tel_mac_skipped: Counter,
    tel_compact_fallbacks: Counter,
    tracer: Tracer,
    /// Trace root of the demand access currently being served (set by
    /// the simulator via `begin_access_trace`), so engine-internal
    /// causal marks attribute to the right access.
    cur_trace: TraceId,
}

impl PlutusEngine {
    /// Builds an engine from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn new(cfg: PlutusConfig) -> Self {
        Self::try_new(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds an engine from `cfg`, returning a typed error instead of
    /// panicking when the configuration is invalid (the CLI path).
    pub fn try_new(cfg: PlutusConfig) -> Result<Self, SecureMemError> {
        cfg.validate()
            .map_err(|reason| SecureMemError::InvalidConfig { reason })?;
        Ok(Self {
            cipher: DataCipher::new(&cfg.mem),
            counters: CounterSystem::new(&cfg.mem),
            macs: MacSystem::new(&cfg.mem),
            verifier: cfg
                .value_verify
                .then(|| ValueVerifier::new(cfg.value_cache)),
            compact: cfg.compact.map(|cc| {
                CompactCounters::with_tree_disabled(
                    cc,
                    cfg.mem.protected_bytes,
                    cfg.mem.partitions,
                    cfg.mem.bmt_key,
                    cfg.mem.disable_tree,
                )
            }),
            tenancy: cfg
                .mem
                .tenancy
                .clone()
                .map(|t| TenantCrypto::new(cfg.mem.cipher, t)),
            cfg,
            fills: 0,
            writebacks: 0,
            mac_fetches_avoided: 0,
            mac_updates_skipped: 0,
            compact_fallbacks: 0,
            fill_failures: 0,
            verifier_frozen: false,
            tenant_fill_failures: BTreeMap::new(),
            frozen_tenants: BTreeSet::new(),
            block_failures: HashMap::new(),
            blocks_frozen: 0,
            tel: Telemetry::disabled(),
            tel_mac_avoided: Counter::disabled(),
            tel_mac_skipped: Counter::disabled(),
            tel_compact_fallbacks: Counter::disabled(),
            tracer: Tracer::disabled(),
            cur_trace: TraceId::NONE,
        })
    }

    /// An [`EngineFactory`] producing one engine per partition.
    pub fn factory(cfg: PlutusConfig) -> PlutusFactory {
        PlutusFactory { cfg }
    }

    /// The counter subsystem (attack hooks and stats).
    pub fn counters_mut(&mut self) -> &mut CounterSystem {
        &mut self.counters
    }

    /// The MAC subsystem (attack hooks and stats).
    pub fn macs_mut(&mut self) -> &mut MacSystem {
        &mut self.macs
    }

    /// The compact layer, if enabled.
    pub fn compact_mut(&mut self) -> Option<&mut CompactCounters> {
        self.compact.as_mut()
    }

    /// The value verifier, if enabled.
    pub fn verifier(&self) -> Option<&ValueVerifier> {
        self.verifier.as_ref()
    }

    /// The effective cipher for `sector`: the single shared cipher, or —
    /// under tenancy — the owning tenant's current generation (old
    /// generation past a live rotation-walk frontier).
    fn cipher_for(&self, sector: SectorAddr) -> &DataCipher {
        match &self.tenancy {
            Some(tc) => tc.cipher_for(sector),
            None => &self.cipher,
        }
    }

    fn read_plaintext(&self, sector: SectorAddr, ctr: u64, mem: &BackingMemory) -> [u8; 32] {
        self.read_plaintext_with(self.cipher_for(sector), sector, ctr, mem)
    }

    fn read_plaintext_with(
        &self,
        cipher: &DataCipher,
        sector: SectorAddr,
        ctr: u64,
        mem: &BackingMemory,
    ) -> [u8; 32] {
        match mem.read(sector) {
            Some(mut ct) => {
                cipher.decrypt(&mut ct, sector, ctr);
                ct
            }
            None => [0; 32],
        }
    }

    /// Advances a live key-rotation walk by a bounded number of sectors
    /// (see the PSSM engine for the walk invariant; mechanics are
    /// identical, except the live counter may come from the compact
    /// layer).
    fn rotation_step(
        &mut self,
        mem: &mut BackingMemory,
        reads: &mut Vec<DramReq>,
        writes: &mut Vec<DramReq>,
    ) {
        let Some(tc) = &self.tenancy else {
            return;
        };
        let Some((frontier, end, step)) = tc.walk_window() else {
            return;
        };
        let step = step as usize;
        // The work list is the ownership registry, not the MAC tag
        // table: MAC-skip sectors carry ciphertext but no stored tag.
        let addrs = tc.owned_in_range(frontier, end, step);
        let done = addrs.len() < step;
        // One batched decrypt + encrypt + MAC pass over the whole step
        // instead of sector-at-a-time (the counter may come from the
        // compact layer, hence the live_counter pre-pass).
        let items: Vec<(SectorAddr, u64)> = addrs
            .iter()
            .map(|&addr| (addr, self.live_counter(addr)))
            .collect();
        let last = items.last().map_or(frontier, |&(addr, _)| addr.raw());
        let Some(tc) = &mut self.tenancy else {
            return;
        };
        for (&(addr, _), changed) in items.iter().zip(tc.rotate_sectors(&items, mem)) {
            if changed {
                reads.push(DramReq::new(addr.raw(), 32, TrafficClass::Data));
                writes.push(DramReq::new(addr.raw(), 32, TrafficClass::Data));
            }
        }
        if done {
            tc.finish_walk();
        } else {
            tc.advance_frontier(last + 32);
        }
    }

    /// Drains a little of `addr`'s tenant's deferred storm traffic into
    /// the current plan.
    fn drain_storm(
        &mut self,
        addr: SectorAddr,
        reads: &mut Vec<DramReq>,
        writes: &mut Vec<DramReq>,
    ) {
        if let Some(tc) = &mut self.tenancy {
            let t = tc.tenant_of(addr);
            tc.storm_drain_into(t, reads, writes);
        }
    }

    /// Books an overflow re-encryption's traffic: inline within the
    /// tenant's storm burst budget, deferred to the offender's own later
    /// accesses past it.
    fn book_overflow(
        &mut self,
        addr: SectorAddr,
        old_values: &[u64],
        new_value: u64,
        mem: &mut BackingMemory,
        plan: &mut WritePlan,
    ) {
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        self.reencrypt_group(addr, old_values, new_value, mem, &mut reads, &mut writes);
        let admit = match &mut self.tenancy {
            Some(tc) => {
                let t = tc.tenant_of(addr);
                tc.storm_admit(t)
            }
            None => true,
        };
        if admit {
            plan.async_reads.extend(reads);
            plan.writes.extend(writes);
        } else if let Some(tc) = &mut self.tenancy {
            let t = tc.tenant_of(addr);
            tc.storm_defer(t, reads, writes);
        }
    }

    /// Resolves the read counter: compact layer first, original on
    /// fallback. Returns `(value, chain, hit)` with auxiliary traffic
    /// merged into the plan buffers.
    fn resolve_read_counter(
        &mut self,
        addr: SectorAddr,
        chain: &mut Vec<gpu_sim::DramReq>,
        async_reads: &mut Vec<gpu_sim::DramReq>,
        writes: &mut Vec<gpu_sim::DramReq>,
        violation: &mut Option<Violation>,
    ) -> (u64, bool) {
        if let Some(compact) = self.compact.as_mut() {
            let ca = compact.read(addr);
            chain.extend(ca.chain);
            writes.extend(ca.writes);
            if violation.is_none() {
                *violation = ca.violation;
            }
            if let Some(v) = ca.counter {
                return (v, ca.hit);
            }
            // Saturated or disabled: the original counter path follows,
            // sequentially (the paper's two-access cost).
            self.compact_fallbacks += 1;
            self.tel_compact_fallbacks.inc();
            if self.tel.enabled() {
                self.tel.event(Event::CompactFallback);
            }
            self.tracer
                .mark(self.cur_trace, "compact_fallback", addr.raw(), 0);
        }
        let oa = self.counters.read(addr);
        let hit = oa.hit;
        Self::merge_counter(oa, chain, async_reads, writes, violation);
        (self.counters.peek_value(addr), hit)
    }

    fn merge_counter(
        oa: CounterAccess,
        chain: &mut Vec<gpu_sim::DramReq>,
        async_reads: &mut Vec<gpu_sim::DramReq>,
        writes: &mut Vec<gpu_sim::DramReq>,
        violation: &mut Option<Violation>,
    ) {
        chain.extend(oa.chain);
        async_reads.extend(oa.async_reads);
        writes.extend(oa.writes);
        if violation.is_none() {
            *violation = oa.violation;
        }
    }

    /// Re-encrypts an overflowed counter group (same mechanics as the PSSM
    /// baseline). Traffic is emitted into `reads`/`writes` so the caller
    /// can book it inline or route it through the storm gate.
    fn reencrypt_group(
        &mut self,
        written: SectorAddr,
        old_values: &[u64],
        new_value: u64,
        mem: &mut BackingMemory,
        reads: &mut Vec<DramReq>,
        writes: &mut Vec<DramReq>,
    ) {
        self.tracer.mark(
            self.cur_trace,
            "counter_overflow_spill",
            written.raw(),
            old_values.len() as u64,
        );
        let group = self.counters.layout().group_of(written);
        let first = self.counters.layout().group_first_sector(group);
        // Gather the group's affected resident sectors, then run the
        // old-counter decrypts, new-counter encrypts, and MAC refreshes
        // as three batches instead of sector-at-a-time.
        let mut data: Vec<[u8; 32]> = Vec::with_capacity(old_values.len());
        let mut old_at: Vec<(SectorAddr, u64)> = Vec::with_capacity(old_values.len());
        for (i, old) in old_values.iter().enumerate() {
            let sector = SectorAddr::new(first.raw() + (i as u64) * 32);
            if sector == written {
                continue;
            }
            // Sectors still in the compact regime are encrypted under
            // their compact counter; the original-counter reset does not
            // affect them.
            if let Some(compact) = &self.compact {
                if !compact.uses_original(sector) {
                    continue;
                }
            }
            let Some(ct) = mem.read(sector) else {
                continue;
            };
            data.push(ct);
            old_at.push((sector, *old));
        }
        self.decrypt_many_effective(&mut data, &old_at);
        let plaintexts = data.clone();
        let new_at: Vec<(SectorAddr, u64)> = old_at.iter().map(|&(s, _)| (s, new_value)).collect();
        self.encrypt_many_effective(&mut data, &new_at);
        for (ct, &(sector, _)) in data.iter().zip(new_at.iter()) {
            mem.write(sector, *ct);
            reads.push(DramReq::new(sector.raw(), 32, TrafficClass::Data));
            writes.push(DramReq::new(sector.raw(), 32, TrafficClass::Data));
        }
        self.macs.update_silently_many(&plaintexts, &new_at);
    }

    /// Batched decrypt under each sector's *effective* cipher: consecutive
    /// sectors sharing a cipher (the overwhelmingly common case — tenant
    /// boundaries are slab-aligned) form one batch each.
    fn decrypt_many_effective(&self, data: &mut [[u8; 32]], at: &[(SectorAddr, u64)]) {
        let mut start = 0;
        while start < at.len() {
            let cipher = self.cipher_for(at[start].0);
            let mut end = start + 1;
            while end < at.len() && std::ptr::eq(cipher, self.cipher_for(at[end].0)) {
                end += 1;
            }
            cipher.decrypt_many(&mut data[start..end], &at[start..end]);
            start = end;
        }
    }

    /// Batched encrypt under each sector's effective cipher (see
    /// [`Self::decrypt_many_effective`]).
    fn encrypt_many_effective(&self, data: &mut [[u8; 32]], at: &[(SectorAddr, u64)]) {
        let mut start = 0;
        while start < at.len() {
            let cipher = self.cipher_for(at[start].0);
            let mut end = start + 1;
            while end < at.len() && std::ptr::eq(cipher, self.cipher_for(at[end].0)) {
                end += 1;
            }
            cipher.encrypt_many(&mut data[start..end], &at[start..end]);
            start = end;
        }
    }

    /// True while the value-verification fast path is in use (configured
    /// and not frozen by the degradation ladder). Under tenancy this is
    /// the any-tenant view; per-address scoping is
    /// [`Self::verifier_frozen_for`].
    pub fn verifier_active(&self) -> bool {
        self.verifier.is_some() && !self.verifier_frozen
    }

    /// True when `tenant`'s value-verification fast path is still live
    /// (tenancy only; single-tenant callers use
    /// [`Self::verifier_active`]).
    pub fn verifier_active_for(&self, tenant: u32) -> bool {
        self.verifier.is_some() && !self.verifier_frozen && !self.frozen_tenants.contains(&tenant)
    }

    /// Whether the degradation ladder has frozen the fast path for reads
    /// of `addr`: per-tenant under tenancy, global otherwise.
    fn verifier_frozen_for(&self, addr: SectorAddr) -> bool {
        if self.verifier_frozen {
            return true;
        }
        match &self.tenancy {
            Some(tc) => self.frozen_tenants.contains(&tc.tenant_of(addr)),
            None => false,
        }
    }

    /// The counter a read of `addr` would decrypt with right now, without
    /// generating traffic: the compact value while that layer serves the
    /// sector, the original split value otherwise.
    fn live_counter(&self, addr: SectorAddr) -> u64 {
        if let Some(c) = &self.compact {
            if let Some(v) = c.peek_live(addr) {
                return v;
            }
        }
        self.counters.peek_value(addr)
    }

    /// Checks one counter candidate during crash recovery: the persistent
    /// MAC first (under the effective cipher, then — mid-rotation — the
    /// pending new generation), then the pinned-value screen the same
    /// way.
    fn candidate_ok(&self, addr: SectorAddr, v: u64, mem: &BackingMemory) -> Option<Candidate> {
        let pending = self
            .tenancy
            .as_ref()
            .and_then(|tc| tc.pending_new_gen(addr));
        let pt = self.read_plaintext(addr, v, mem);
        if self.macs.verify(addr, &pt, v) {
            return Some(Candidate {
                by_mac: true,
                new_gen: false,
            });
        }
        if let Some(cipher) = pending {
            let npt = self.read_plaintext_with(cipher, addr, v, mem);
            if self.macs.verify(addr, &npt, v) {
                return Some(Candidate {
                    by_mac: true,
                    new_gen: true,
                });
            }
        }
        if self
            .verifier
            .as_ref()
            .is_some_and(|ver| ver.screen_pinned(&pt))
        {
            return Some(Candidate {
                by_mac: false,
                new_gen: false,
            });
        }
        if let Some(cipher) = pending {
            let npt = self.read_plaintext_with(cipher, addr, v, mem);
            if self
                .verifier
                .as_ref()
                .is_some_and(|ver| ver.screen_pinned(&npt))
            {
                return Some(Candidate {
                    by_mac: false,
                    new_gen: true,
                });
            }
        }
        None
    }

    /// Scans candidate counters in order, returning the first that
    /// verifies. Semantically identical to calling
    /// [`Self::candidate_ok`] per candidate, but the decrypts and MAC
    /// probes run as batched cipher calls over chunks of the scan: the
    /// per-candidate check order (effective-generation MAC, pending MAC,
    /// effective value screen, pending value screen) is preserved by
    /// walking each chunk's verdicts in candidate order.
    fn scan_candidates(
        &self,
        addr: SectorAddr,
        vs: &[u64],
        mem: &BackingMemory,
    ) -> Option<(u64, Candidate)> {
        let pending = self
            .tenancy
            .as_ref()
            .and_then(|tc| tc.pending_new_gen(addr));
        let effective = self.cipher_for(addr);
        let ct = mem.read(addr);
        const SCAN_CHUNK: usize = 16;
        for chunk in vs.chunks(SCAN_CHUNK) {
            let at: Vec<(SectorAddr, u64)> = chunk.iter().map(|&v| (addr, v)).collect();
            let eff_pts = Self::decrypt_candidates(effective, ct, &at);
            let eff_mac = self.macs.verify_many(&eff_pts, &at);
            let (pend_pts, pend_mac) = match pending {
                Some(cipher) => {
                    let pts = Self::decrypt_candidates(cipher, ct, &at);
                    let ok = self.macs.verify_many(&pts, &at);
                    (Some(pts), Some(ok))
                }
                None => (None, None),
            };
            for (i, &v) in chunk.iter().enumerate() {
                if eff_mac[i] {
                    return Some((
                        v,
                        Candidate {
                            by_mac: true,
                            new_gen: false,
                        },
                    ));
                }
                if pend_mac.as_ref().is_some_and(|m| m[i]) {
                    return Some((
                        v,
                        Candidate {
                            by_mac: true,
                            new_gen: true,
                        },
                    ));
                }
                if self
                    .verifier
                    .as_ref()
                    .is_some_and(|ver| ver.screen_pinned(&eff_pts[i]))
                {
                    return Some((
                        v,
                        Candidate {
                            by_mac: false,
                            new_gen: false,
                        },
                    ));
                }
                if let Some(pts) = &pend_pts {
                    if self
                        .verifier
                        .as_ref()
                        .is_some_and(|ver| ver.screen_pinned(&pts[i]))
                    {
                        return Some((
                            v,
                            Candidate {
                                by_mac: false,
                                new_gen: true,
                            },
                        ));
                    }
                }
            }
        }
        None
    }

    /// Decrypts the (single) resident ciphertext under every candidate
    /// counter in one batched call; a non-resident sector reads as zeros
    /// under any counter, matching [`Self::read_plaintext_with`].
    fn decrypt_candidates(
        cipher: &DataCipher,
        ct: Option<[u8; 32]>,
        at: &[(SectorAddr, u64)],
    ) -> Vec<[u8; 32]> {
        let mut pts = vec![ct.unwrap_or([0; 32]); at.len()];
        if ct.is_some() {
            cipher.decrypt_many(&mut pts, at);
        }
        pts
    }

    /// Repairs the MAC of a value-vouched sector in place, decrypting
    /// under the generation the candidate verified with.
    fn repair_mac(&mut self, addr: SectorAddr, v: u64, new_gen: bool, mem: &BackingMemory) {
        let pt = if new_gen {
            match self
                .tenancy
                .as_ref()
                .and_then(|tc| tc.pending_new_gen(addr))
            {
                Some(cipher) => self.read_plaintext_with(cipher, addr, v, mem),
                None => return,
            }
        } else {
            self.read_plaintext(addr, v, mem)
        };
        self.macs.update_silently(addr, &pt, v);
    }

    /// Accepts candidate `v` for `addr`: places the value in the layer that
    /// serves the sector and repairs the MAC if it was vouched by value.
    fn accept_candidate(&mut self, addr: SectorAddr, v: u64, cand: Candidate, mem: &BackingMemory) {
        let compact_live = match &self.compact {
            Some(c) if !c.is_disabled(addr) => v < u64::from(c.kind().saturation()),
            _ => false,
        };
        if compact_live {
            self.compact
                .as_mut()
                .expect("checked above")
                .restore_value(addr, v as u8);
        } else {
            self.counters.restore_value(addr, v);
            // A sector recovered past the compact range must read as
            // saturated so the original path serves it.
            if let Some(c) = self.compact.as_mut() {
                if !c.is_disabled(addr) {
                    let sat = c.kind().saturation();
                    c.restore_value(addr, sat);
                }
            }
        }
        if !cand.by_mac {
            self.repair_mac(addr, v, cand.new_gen, mem);
        }
    }

    /// Phoenix-style recovery of one sector: current value first, then the
    /// compact range, then the split range from the recovery floor.
    /// Returns the kind and whether the sector verified under the pending
    /// new generation.
    fn recover_sector(
        &mut self,
        addr: SectorAddr,
        mem: &BackingMemory,
    ) -> Option<(RecoverKind, bool)> {
        let live = self.live_counter(addr);
        if let Some(cand) = self.candidate_ok(addr, live, mem) {
            if !cand.by_mac {
                self.repair_mac(addr, live, cand.new_gen, mem);
                return Some((RecoverKind::Value, cand.new_gen));
            }
            return Some((RecoverKind::Consistent, cand.new_gen));
        }
        if let Some(c) = &self.compact {
            if !c.is_disabled(addr) {
                let vs: Vec<u64> = (0..u64::from(c.kind().saturation()))
                    .filter(|&v| v != live)
                    .collect();
                if let Some((v, cand)) = self.scan_candidates(addr, &vs, mem) {
                    self.accept_candidate(addr, v, cand, mem);
                    return Some((
                        if cand.by_mac {
                            RecoverKind::Mac
                        } else {
                            RecoverKind::Value
                        },
                        cand.new_gen,
                    ));
                }
            }
        }
        let base = self.counters.recovery_floor(addr);
        let vs: Vec<u64> = (base..base.saturating_add(RECOVERY_PROBE_BOUND))
            .filter(|&v| v != live)
            .collect();
        if let Some((v, cand)) = self.scan_candidates(addr, &vs, mem) {
            self.accept_candidate(addr, v, cand, mem);
            return Some((
                if cand.by_mac {
                    RecoverKind::Mac
                } else {
                    RecoverKind::Value
                },
                cand.new_gen,
            ));
        }
        None
    }
}

impl SecurityEngine for PlutusEngine {
    fn name(&self) -> &'static str {
        "plutus"
    }

    fn install(&mut self, addr: SectorAddr, plaintext: &[u8; 32], mem: &mut BackingMemory) {
        // Counter 0 in both the compact and original layers.
        let mut ct = *plaintext;
        self.cipher_for(addr).encrypt(&mut ct, addr, 0);
        mem.write(addr, ct);
        if let Some(tc) = &mut self.tenancy {
            tc.note_owned(addr);
        }
        self.macs.update_silently(addr, plaintext, 0);
    }

    fn on_fill(&mut self, addr: SectorAddr, mem: &mut BackingMemory) -> FillPlan {
        self.fills += 1;
        let _span = self.tel.span("engine.fill");
        let mut plan = FillPlan::default();
        let mut chain = Vec::new();
        let (ctr, ctr_hit) = self.resolve_read_counter(
            addr,
            &mut chain,
            &mut plan.async_reads,
            &mut plan.writes,
            &mut plan.violation,
        );
        if !chain.is_empty() {
            plan.pre_chains.push(chain);
        }

        let plaintext = self.read_plaintext(addr, ctr, mem);
        plan.plaintext = plaintext;

        let lat = self.cfg.mem.latencies;
        // Decrypt: XTS serializes after data; CME (compact-only ablations)
        // overlaps unless the counter had to be fetched.
        plan.crypto_latency = if self.cipher.overlaps_fetch() {
            if ctr_hit {
                0
            } else {
                lat.aes_latency
            }
        } else {
            lat.aes_latency
        };

        let frozen = self.verifier_frozen_for(addr);
        let verdict = if frozen {
            // Degraded mode (global, or this address's tenant): the fast
            // path is frozen; every read takes the conventional
            // parallel-MAC branch below.
            None
        } else {
            self.verifier.as_mut().map(|v| v.verify_read(&plaintext))
        };
        match verdict {
            Some(Verdict::Verified) => {
                // Integrity assured by value locality: no MAC at all.
                plan.verified_by_value = true;
                self.mac_fetches_avoided += 1;
                self.tel_mac_avoided.inc();
                if self.tel.enabled() {
                    self.tel.event(Event::ValueVerified);
                    self.tel.event(Event::MacFetchAvoided);
                }
                self.tracer
                    .mark(self.cur_trace, "value_vouch", addr.raw(), 0);
            }
            Some(Verdict::NeedMac) => {
                // Deferred MAC: fetched only now, after decryption. A
                // mismatch here means the value screen rejected the sector
                // and the deferred MAC confirmed it (Fig. 11 read flow) —
                // attributed to the value-verification layer.
                let ma = self.macs.read(addr);
                plan.post_chain = ma.chain;
                plan.writes.extend(ma.writes);
                plan.post_latency = lat.mac_latency;
                if !self.macs.verify(addr, &plaintext, ctr) && plan.violation.is_none() {
                    plan.violation = Some(Violation::ValueMismatch { addr });
                }
            }
            None => {
                // Value verification disabled or frozen: conventional
                // parallel MAC.
                let ma = self.macs.read(addr);
                if !ma.chain.is_empty() {
                    plan.pre_chains.push(ma.chain);
                }
                plan.writes.extend(ma.writes);
                plan.crypto_latency += lat.mac_latency;
                if !self.macs.verify(addr, &plaintext, ctr) && plan.violation.is_none() {
                    // A sector whose MAC update was legitimately skipped
                    // before the freeze has no fresh MAC; the pinned-value
                    // screen (the guarantee skip-MAC relied on) still
                    // vouches for it. Repair the MAC so the fallback is
                    // one-time.
                    let vouched = frozen
                        && self
                            .verifier
                            .as_ref()
                            .is_some_and(|v| v.screen_pinned(&plaintext));
                    if vouched {
                        self.macs.update_silently(addr, &plaintext, ctr);
                    } else {
                        plan.violation = Some(Violation::MacMismatch { addr });
                    }
                }
            }
        }
        // Background tenancy work rides on the fill's plan.
        self.rotation_step(mem, &mut plan.async_reads, &mut plan.writes);
        self.drain_storm(addr, &mut plan.async_reads, &mut plan.writes);
        plan
    }

    fn on_writeback(
        &mut self,
        addr: SectorAddr,
        plaintext: &[u8; 32],
        mem: &mut BackingMemory,
    ) -> WritePlan {
        self.writebacks += 1;
        let _span = self.tel.span("engine.writeback");
        let mut plan = WritePlan::default();
        let mut chain = Vec::new();
        if let Some(tc) = &mut self.tenancy {
            let t = tc.tenant_of(addr);
            tc.storm_tick(t);
        }

        // Advance the counter through the compact layer when present.
        let ctr = if let Some(compact) = self.compact.as_mut() {
            let ca = compact.increment(addr);
            chain.extend(ca.chain);
            plan.writes.extend(ca.writes);
            if plan.violation.is_none() {
                plan.violation = ca.violation;
            }
            let propagate = ca.propagate;
            let block_disable = ca.block_disable.clone();
            let value = match ca.counter {
                Some(v) => v,
                None => {
                    let oa = if let Some(sat) = propagate {
                        // Saturating write: copy the compact value into the
                        // original split counter.
                        self.counters.raise_to(addr, sat)
                    } else {
                        self.compact_fallbacks += 1;
                        self.tel_compact_fallbacks.inc();
                        if self.tel.enabled() {
                            self.tel.event(Event::CompactFallback);
                        }
                        self.tracer
                            .mark(self.cur_trace, "compact_fallback", addr.raw(), 0);
                        self.counters.increment(addr)
                    };
                    let value = oa.value;
                    if let Some(old) = oa.overflow_old_values.clone() {
                        Self::merge_counter(
                            oa,
                            &mut chain,
                            &mut plan.async_reads,
                            &mut plan.writes,
                            &mut plan.violation,
                        );
                        self.book_overflow(addr, &old, value, mem, &mut plan);
                    } else {
                        Self::merge_counter(
                            oa,
                            &mut chain,
                            &mut plan.async_reads,
                            &mut plan.writes,
                            &mut plan.violation,
                        );
                    }
                    value
                }
            };
            // Adaptive block disable: copy every unsaturated compact value
            // into the original counters (no re-encryption needed).
            if let Some(copies) = block_disable {
                for (s, v) in copies {
                    let oa = self.counters.raise_to(s, v);
                    Self::merge_counter(
                        oa,
                        &mut chain,
                        &mut plan.async_reads,
                        &mut plan.writes,
                        &mut plan.violation,
                    );
                }
            }
            value
        } else {
            let oa = self.counters.increment(addr);
            let value = oa.value;
            if let Some(old) = oa.overflow_old_values.clone() {
                Self::merge_counter(
                    oa,
                    &mut chain,
                    &mut plan.async_reads,
                    &mut plan.writes,
                    &mut plan.violation,
                );
                self.book_overflow(addr, &old, value, mem, &mut plan);
            } else {
                Self::merge_counter(
                    oa,
                    &mut chain,
                    &mut plan.async_reads,
                    &mut plan.writes,
                    &mut plan.violation,
                );
            }
            value
        };
        if !chain.is_empty() {
            plan.pre_chains.push(chain);
        }

        // Encrypt and store.
        let mut ct = *plaintext;
        self.cipher_for(addr).encrypt(&mut ct, addr, ctr);
        mem.write(addr, ct);
        if let Some(tc) = &mut self.tenancy {
            tc.note_owned(addr);
        }

        // MAC update, unless the pinned value screen guarantees the next
        // read verifies by value.
        let lat = self.cfg.mem.latencies;
        let screen = if self.verifier_frozen_for(addr) {
            None // degraded mode: never skip MAC updates
        } else {
            self.verifier.as_mut().map(|v| v.screen_write(plaintext))
        };
        let skip = match screen {
            Some(WriteScreen::SkipMac) => {
                self.mac_updates_skipped += 1;
                self.tel_mac_skipped.inc();
                if self.tel.enabled() {
                    self.tel.event(Event::MacUpdateSkipped);
                }
                self.tracer.mark(self.cur_trace, "mac_skip", addr.raw(), 0);
                true
            }
            _ => false,
        };
        if skip {
            plan.crypto_latency = lat.aes_latency;
        } else {
            let ma = self.macs.write(addr, plaintext, ctr);
            plan.writes.extend(ma.writes);
            plan.crypto_latency = lat.aes_latency + lat.mac_latency;
        }
        self.rotation_step(mem, &mut plan.async_reads, &mut plan.writes);
        self.drain_storm(addr, &mut plan.async_reads, &mut plan.writes);
        plan
    }

    fn attach_telemetry(&mut self, tel: &Telemetry) {
        self.counters.attach_telemetry(tel);
        self.macs.attach_telemetry(tel);
        if let Some(v) = self.verifier.as_mut() {
            v.attach_telemetry(tel);
        }
        if let Some(c) = self.compact.as_mut() {
            c.attach_telemetry(tel);
        }
        self.tel_mac_avoided = tel.counter("engine.mac_fetches_avoided");
        self.tel_mac_skipped = tel.counter("engine.mac_updates_skipped");
        self.tel_compact_fallbacks = tel.counter("engine.compact_fallbacks");
        self.tracer = tel.tracer();
        self.tel = tel.clone();
    }

    fn begin_access_trace(&mut self, id: TraceId) {
        self.cur_trace = id;
    }

    fn extra_stats(&self) -> Vec<(String, u64)> {
        let (ch, cm, bf, bh) = self.counters.stats();
        let (mh, mm) = self.macs.stats();
        let mut out = vec![
            ("fills".into(), self.fills),
            ("writebacks".into(), self.writebacks),
            ("ctr_cache_hits".into(), ch),
            ("ctr_cache_misses".into(), cm),
            ("bmt_node_fetches".into(), bf),
            ("bmt_node_hits".into(), bh),
            ("mac_cache_hits".into(), mh),
            ("mac_cache_misses".into(), mm),
            ("mac_fetches_avoided".into(), self.mac_fetches_avoided),
            ("mac_updates_skipped".into(), self.mac_updates_skipped),
            ("compact_fallbacks".into(), self.compact_fallbacks),
        ];
        if let Some(v) = &self.verifier {
            let (ok, need, wskip, wmac) = v.stats();
            let (vh, vm, promo) = v.cache().stats();
            out.push(("vv_reads_verified".into(), ok));
            out.push(("vv_reads_need_mac".into(), need));
            out.push(("vv_writes_skipped".into(), wskip));
            out.push(("vv_writes_with_mac".into(), wmac));
            out.push(("value_cache_hits".into(), vh));
            out.push(("value_cache_misses".into(), vm));
            out.push(("value_cache_promotions".into(), promo));
        }
        if let Some(c) = &self.compact {
            let (h, m, sat, dis, tf) = c.stats();
            out.push(("compact_cache_hits".into(), h));
            out.push(("compact_cache_misses".into(), m));
            out.push(("compact_saturations".into(), sat));
            out.push(("compact_block_disables".into(), dis));
            out.push(("compact_tree_fetches".into(), tf));
        }
        out.push(("fill_failures".into(), self.fill_failures));
        out.push((
            "degraded_verifier_frozen".into(),
            u64::from(self.verifier_frozen),
        ));
        out.push(("degraded_blocks_frozen".into(), self.blocks_frozen));
        if let Some(tc) = &self.tenancy {
            out.extend(tc.extra_stats());
            for (&t, &n) in &self.tenant_fill_failures {
                out.push((format!("ladder_fill_failures_t{t}"), n));
            }
            for &t in &self.frozen_tenants {
                out.push((format!("ladder_frozen_t{t}"), 1));
            }
        }
        out
    }

    fn start_key_rotation(&mut self, tenant: u32) -> bool {
        match &mut self.tenancy {
            Some(tc) => tc.start_rotation(tenant),
            None => false,
        }
    }

    fn rotation_active(&self) -> bool {
        self.tenancy.as_ref().is_some_and(|tc| tc.rotation_active())
    }

    fn inject_fault(&mut self, addr: SectorAddr, fault: MetaFault) -> bool {
        // While a sector's live counter is served by the compact layer, the
        // original split counter (and the main BMT protecting it) are never
        // consulted on its read path — faults against them are not applied,
        // so campaigns don't count honest-data reads as escapes.
        let original_live = self.compact.as_ref().is_none_or(|c| c.uses_original(addr));
        match fault {
            MetaFault::RollbackCounter { value } => {
                original_live && self.counters.tamper_minor(addr, value)
            }
            MetaFault::TamperMac => {
                self.macs.tamper(addr);
                true
            }
            MetaFault::TamperBmtNode => {
                if original_live {
                    self.counters.tamper_bmt(addr);
                }
                original_live
            }
            MetaFault::RollbackCompact { value } => match self.compact.as_mut() {
                Some(c) if !c.uses_original(addr) => c.tamper(addr, value),
                _ => false,
            },
        }
    }

    fn note_fill_failure(&mut self, addr: SectorAddr, _recovered: bool) {
        self.fill_failures += 1;
        if let Some(tc) = &self.tenancy {
            // Tenancy: the ladder is scoped to the failing address's
            // tenant — an attacked tenant's freeze never widens.
            let tenant = tc.tenant_of(addr);
            let n = self.tenant_fill_failures.entry(tenant).or_insert(0);
            *n += 1;
            if *n >= VERIFIER_FREEZE_FAILURES
                && self.verifier.is_some()
                && self.frozen_tenants.insert(tenant)
            {
                if self.tel.enabled() {
                    self.tel.event(Event::Degraded {
                        mode: format!("value_cache_disabled_t{tenant}"),
                        addr: addr.raw(),
                    });
                }
                self.tracer.mark(self.cur_trace, "degrade", addr.raw(), 1);
            }
        } else if !self.verifier_frozen
            && self.verifier.is_some()
            && self.fill_failures >= VERIFIER_FREEZE_FAILURES
        {
            self.verifier_frozen = true;
            if self.tel.enabled() {
                self.tel.event(Event::Degraded {
                    mode: "value_cache_disabled".into(),
                    addr: addr.raw(),
                });
            }
            self.tracer.mark(self.cur_trace, "degrade", addr.raw(), 1);
        }
        if let Some(compact) = self.compact.as_mut() {
            let block = compact.block_index(addr);
            let n = self.block_failures.entry(block).or_insert(0);
            *n += 1;
            if *n >= BLOCK_FREEZE_FAILURES && !compact.is_disabled(addr) {
                // Freeze the failing block onto the split-counter path.
                // The transition is out-of-band (no DRAM traffic charged):
                // it is rare and its copies move counter state only.
                let copies = compact.freeze_block(addr);
                for (s, v) in copies {
                    let _ = self.counters.raise_to(s, v);
                }
                self.blocks_frozen += 1;
                if self.tel.enabled() {
                    self.tel.event(Event::Degraded {
                        mode: "compact_block_frozen".into(),
                        addr: addr.raw(),
                    });
                }
                self.tracer.mark(self.cur_trace, "degrade", addr.raw(), 2);
            }
        }
    }

    fn checkpoint(&self) -> Option<Box<dyn SecurityEngine>> {
        Some(Box::new(self.clone()))
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn crash_revert(&mut self, checkpoint: &dyn SecurityEngine) -> bool {
        let Some(ck) = checkpoint
            .as_any()
            .and_then(|a| a.downcast_ref::<PlutusEngine>())
        else {
            return false;
        };
        // MACs are write-through persistent; the pinned value set is tiny,
        // monotone, and flushed on promotion — both survive the crash.
        let persistent_macs = self.macs.clone();
        let persistent_pinned = self.verifier.as_ref().map(|v| v.pinned_keys());
        *self = ck.clone();
        self.macs = persistent_macs;
        if let (Some(v), Some(keys)) = (self.verifier.as_mut(), persistent_pinned) {
            v.graft_pinned(&keys);
        }
        true
    }

    fn recover(
        &mut self,
        mem: &BackingMemory,
        sectors: &[SectorAddr],
    ) -> Result<RecoveryReport, RecoveryError> {
        let mut report = RecoveryReport::default();
        // Highest sector proven to already carry a mid-rotation new
        // generation (the walk is address-ordered, so everything up to it
        // is done; see the PSSM engine).
        let mut max_new_gen: Option<u64> = None;
        for &addr in sectors {
            match self.recover_sector(addr, mem) {
                Some((kind, new_gen)) => {
                    if new_gen {
                        max_new_gen = Some(max_new_gen.map_or(addr.raw(), |m| m.max(addr.raw())));
                    }
                    match kind {
                        RecoverKind::Consistent => report.already_consistent += 1,
                        RecoverKind::Mac => report.recovered_by_mac += 1,
                        RecoverKind::Value => report.recovered_by_value += 1,
                    }
                    // Re-note ownership: the revert may have rolled the
                    // registry back past sectors that verifiably hold
                    // our ciphertext; a rotation walk must not skip them.
                    if let Some(tc) = &mut self.tenancy {
                        tc.note_owned(addr);
                    }
                }
                None => report.failed.push(addr.raw()),
            }
        }
        if let Some(tc) = &mut self.tenancy {
            tc.reconcile_frontier(max_new_gen);
        }
        Ok(report)
    }

    fn peek_plaintext(&self, addr: SectorAddr, mem: &BackingMemory) -> Option<[u8; 32]> {
        Some(self.read_plaintext(addr, self.live_counter(addr), mem))
    }
}

/// Factory building [`PlutusEngine`] instances per partition.
#[derive(Debug, Clone)]
pub struct PlutusFactory {
    cfg: PlutusConfig,
}

impl EngineFactory for PlutusFactory {
    fn build(&self, _partition: usize) -> Box<dyn SecurityEngine> {
        Box::new(PlutusEngine::new(self.cfg.clone()))
    }

    fn scheme_name(&self) -> &'static str {
        "plutus"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compact::CompactKind;
    use gpu_sim::TrafficClass;

    fn engine() -> (PlutusEngine, BackingMemory) {
        (
            PlutusEngine::new(PlutusConfig::test_small()),
            BackingMemory::new(),
        )
    }

    fn sector(i: u64) -> SectorAddr {
        SectorAddr::new(i * 32)
    }

    #[test]
    fn write_then_read_roundtrips() {
        let (mut e, mut mem) = engine();
        e.on_writeback(sector(0), &[0x42; 32], &mut mem);
        let fill = e.on_fill(sector(0), &mut mem);
        assert_eq!(fill.plaintext, [0x42; 32]);
        assert!(fill.violation.is_none());
    }

    #[test]
    fn install_then_read_roundtrips() {
        let (mut e, mut mem) = engine();
        e.install(sector(5), &[9; 32], &mut mem);
        let fill = e.on_fill(sector(5), &mut mem);
        assert_eq!(fill.plaintext, [9; 32]);
        assert!(fill.violation.is_none());
    }

    #[test]
    fn first_fill_uses_compact_not_original_counters() {
        let (mut e, mut mem) = engine();
        let fill = e.on_fill(sector(0), &mut mem);
        let classes: Vec<_> = fill
            .pre_chains
            .iter()
            .flat_map(|c| c.iter().map(|r| r.class))
            .collect();
        assert!(classes.contains(&TrafficClass::CompactCounter));
        assert!(
            !classes.contains(&TrafficClass::Counter),
            "unsaturated sectors must not touch original counters"
        );
        assert!(!classes.contains(&TrafficClass::BmtNode));
    }

    #[test]
    fn repeated_value_reads_avoid_mac_entirely() {
        let (mut e, mut mem) = engine();
        // Two sectors with the same hot values in the same MAC unit region.
        e.install(sector(0), &[0x11; 32], &mut mem);
        e.install(sector(100), &[0x11; 32], &mut mem);
        let first = e.on_fill(sector(0), &mut mem);
        // Cold value cache: MAC deferred-fetched.
        assert!(!first.post_chain.is_empty() || first.post_latency > 0);
        let second = e.on_fill(sector(100), &mut mem);
        // Values now cached: no MAC fetch, no MAC latency.
        assert!(second.post_chain.is_empty());
        assert_eq!(second.post_latency, 0);
        assert!(second.violation.is_none());
        assert!(e.mac_fetches_avoided >= 1);
    }

    #[test]
    fn hot_writes_skip_mac_updates() {
        let (mut e, mut mem) = engine();
        for i in 0..30u64 {
            e.on_writeback(sector(i), &[0x77; 32], &mut mem);
        }
        assert!(
            e.mac_updates_skipped > 0,
            "hot constant writes must skip MAC updates"
        );
        // And the skipped sectors still read back clean (value-verified).
        for i in 0..30u64 {
            let fill = e.on_fill(sector(i), &mut mem);
            assert_eq!(fill.plaintext, [0x77; 32]);
            assert!(
                fill.violation.is_none(),
                "skip-MAC sector must verify by value"
            );
        }
    }

    #[test]
    fn data_tamper_detected() {
        let (mut e, mut mem) = engine();
        e.on_writeback(sector(0), &[0x42; 32], &mut mem);
        let mut mask = [0u8; 32];
        mask[7] = 0x20;
        mem.corrupt(sector(0), &mask);
        let fill = e.on_fill(sector(0), &mut mem);
        assert!(
            fill.violation.is_some(),
            "tampered data must fail value verification and then the MAC"
        );
    }

    #[test]
    fn replay_detected() {
        let (mut e, mut mem) = engine();
        e.on_writeback(sector(0), &[1; 32], &mut mem);
        let old = mem.snapshot(sector(0)).unwrap();
        e.on_writeback(sector(0), &[2; 32], &mut mem);
        assert!(mem.replay(sector(0), old));
        let fill = e.on_fill(sector(0), &mut mem);
        assert!(
            fill.violation.is_some(),
            "replayed ciphertext must be detected"
        );
    }

    #[test]
    fn compact_saturation_falls_back_to_original() {
        let (mut e, mut mem) = engine();
        // 3-bit compact saturates on the 7th write.
        for _ in 0..7 {
            e.on_writeback(sector(0), &[5; 32], &mut mem);
        }
        // Counter continuity across the handoff.
        let fill = e.on_fill(sector(0), &mut mem);
        assert_eq!(fill.plaintext, [5; 32]);
        assert!(fill.violation.is_none());
        // Further writes use the original path.
        e.on_writeback(sector(0), &[6; 32], &mut mem);
        let fill = e.on_fill(sector(0), &mut mem);
        assert_eq!(fill.plaintext, [6; 32]);
        assert!(fill.violation.is_none());
    }

    #[test]
    fn adaptive_disable_keeps_all_sectors_readable() {
        let (mut e, mut mem) = engine();
        // Partially write one sector, then saturate 8 others to trigger the
        // block disable with a pending unsaturated copy.
        e.on_writeback(sector(60), &[0xee; 32], &mut mem);
        for s in 0..8u64 {
            for _ in 0..7 {
                e.on_writeback(sector(s), &[s as u8; 32], &mut mem);
            }
        }
        let (.., disables, _) = e.compact_mut().unwrap().stats();
        assert!(
            disables >= 1,
            "threshold saturations must disable the block"
        );
        // Every sector still decrypts and verifies.
        let fill = e.on_fill(sector(60), &mut mem);
        assert_eq!(fill.plaintext, [0xee; 32]);
        assert!(fill.violation.is_none());
        for s in 0..8u64 {
            let fill = e.on_fill(sector(s), &mut mem);
            assert_eq!(fill.plaintext, [s as u8; 32]);
            assert!(fill.violation.is_none());
        }
    }

    #[test]
    fn value_only_config_uses_original_counters() {
        let mut cfg = PlutusConfig::value_verify_only();
        cfg.mem.protected_bytes = 1 << 20;
        let mut e = PlutusEngine::new(cfg);
        let mut mem = BackingMemory::new();
        let fill = e.on_fill(sector(0), &mut mem);
        let classes: Vec<_> = fill
            .pre_chains
            .iter()
            .flat_map(|c| c.iter().map(|r| r.class))
            .collect();
        assert!(classes.contains(&TrafficClass::Counter));
        assert!(!classes.contains(&TrafficClass::CompactCounter));
    }

    #[test]
    fn compact_only_config_fetches_mac_in_parallel() {
        let mut cfg = PlutusConfig::compact_only(CompactKind::Adaptive3);
        cfg.mem.protected_bytes = 1 << 20;
        let mut e = PlutusEngine::new(cfg);
        let mut mem = BackingMemory::new();
        let fill = e.on_fill(sector(0), &mut mem);
        assert!(
            fill.post_chain.is_empty(),
            "no deferred MAC without value verification"
        );
        let classes: Vec<_> = fill
            .pre_chains
            .iter()
            .flat_map(|c| c.iter().map(|r| r.class))
            .collect();
        assert!(classes.contains(&TrafficClass::Mac));
    }

    #[test]
    fn no_tree_mode_removes_tree_traffic() {
        let mut cfg = PlutusConfig::full_no_tree();
        cfg.mem.protected_bytes = 1 << 20;
        let mut e = PlutusEngine::new(cfg);
        let mut mem = BackingMemory::new();
        // Saturate a sector so the original counter path is exercised too.
        for _ in 0..8 {
            e.on_writeback(sector(0), &[1; 32], &mut mem);
        }
        let fill = e.on_fill(sector(0), &mut mem);
        let classes: Vec<_> = fill
            .pre_chains
            .iter()
            .flat_map(|c| c.iter().map(|r| r.class))
            .collect();
        assert!(!classes.contains(&TrafficClass::BmtNode));
        assert!(fill.violation.is_none());
    }

    #[test]
    fn frozen_verifier_keeps_skip_mac_sectors_readable() {
        let (mut e, mut mem) = engine();
        for i in 0..30u64 {
            e.on_writeback(sector(i), &[0x77; 32], &mut mem);
        }
        assert!(e.mac_updates_skipped > 0, "test needs skip-MAC sectors");
        for _ in 0..VERIFIER_FREEZE_FAILURES {
            e.note_fill_failure(sector(0), true);
        }
        assert!(!e.verifier_active(), "ladder must freeze the fast path");
        // Sectors with no fresh MAC are vouched by the pinned screen.
        for i in 0..30u64 {
            let fill = e.on_fill(sector(i), &mut mem);
            assert_eq!(fill.plaintext, [0x77; 32]);
            assert!(fill.violation.is_none(), "sector {i} spuriously flagged");
        }
        // Degraded mode still detects real tampering.
        let mut mask = [0u8; 32];
        mask[3] = 9;
        mem.corrupt(sector(0), &mask);
        assert!(e.on_fill(sector(0), &mut mem).violation.is_some());
    }

    #[test]
    fn degraded_engine_still_detects_replay() {
        let (mut e, mut mem) = engine();
        e.on_writeback(sector(0), &[1; 32], &mut mem);
        for _ in 0..VERIFIER_FREEZE_FAILURES {
            e.note_fill_failure(sector(9), true);
        }
        let old = mem.snapshot(sector(0)).unwrap();
        e.on_writeback(sector(0), &[2; 32], &mut mem);
        assert!(mem.replay(sector(0), old));
        assert!(e.on_fill(sector(0), &mut mem).violation.is_some());
    }

    #[test]
    fn repeated_block_failures_freeze_compact_block() {
        let (mut e, mut mem) = engine();
        e.on_writeback(sector(0), &[1; 32], &mut mem); // compact value 1
        for _ in 0..BLOCK_FREEZE_FAILURES {
            e.note_fill_failure(sector(0), true);
        }
        assert!(e.compact_mut().unwrap().uses_original(sector(0)));
        // The copied counter keeps the sector decryptable on the new path.
        let fill = e.on_fill(sector(0), &mut mem);
        assert_eq!(fill.plaintext, [1; 32]);
        assert!(fill.violation.is_none());
        let stats = e.extra_stats();
        let frozen = stats
            .iter()
            .find(|(n, _)| n == "degraded_blocks_frozen")
            .unwrap()
            .1;
        assert_eq!(frozen, 1);
    }

    #[test]
    fn crash_recovery_restores_compact_and_split_state() {
        let (mut e, mut mem) = engine();
        e.on_writeback(sector(0), &[1; 32], &mut mem); // compact regime
        for _ in 0..9 {
            e.on_writeback(sector(1), &[2; 32], &mut mem); // saturates → split
        }
        let ck = e.checkpoint().expect("plutus supports checkpointing");
        e.on_writeback(sector(0), &[3; 32], &mut mem);
        e.on_writeback(sector(1), &[4; 32], &mut mem);
        e.on_writeback(sector(5), &[5; 32], &mut mem); // first write post-ck
        assert!(e.crash_revert(ck.as_ref()));
        let report = e.recover(&mem, &mem.resident_addrs()).unwrap();
        assert!(report.failed.is_empty(), "failed: {:?}", report.failed);
        for (s, want) in [(0u64, [3u8; 32]), (1, [4; 32]), (5, [5; 32])] {
            let f = e.on_fill(sector(s), &mut mem);
            assert_eq!(f.plaintext, want, "sector {s} diverged after recovery");
            assert!(f.violation.is_none(), "sector {s} spuriously flagged");
        }
    }

    #[test]
    fn crash_recovery_vouches_skip_mac_sectors_by_pinned_values() {
        let (mut e, mut mem) = engine();
        // Pin a hot pattern; later writes of it skip their MAC updates.
        for i in 0..30u64 {
            e.on_writeback(sector(i), &[0x77; 32], &mut mem);
        }
        assert!(e.mac_updates_skipped > 0);
        let ck = e.checkpoint().unwrap();
        e.on_writeback(sector(40), &[0x77; 32], &mut mem); // skip-MAC, post-ck
        assert!(e.crash_revert(ck.as_ref()));
        let report = e.recover(&mem, &mem.resident_addrs()).unwrap();
        assert!(report.failed.is_empty(), "failed: {:?}", report.failed);
        assert!(
            report.recovered_by_value >= 1,
            "pinned screen must vouch for MAC-skipped sectors"
        );
        let f = e.on_fill(sector(40), &mut mem);
        assert_eq!(f.plaintext, [0x77; 32]);
        assert!(f.violation.is_none());
    }

    #[test]
    fn peek_plaintext_tracks_live_counter_across_layers() {
        let (mut e, mut mem) = engine();
        e.on_writeback(sector(0), &[8; 32], &mut mem); // compact regime
        assert_eq!(e.peek_plaintext(sector(0), &mem), Some([8; 32]));
        for _ in 0..9 {
            e.on_writeback(sector(1), &[6; 32], &mut mem); // split regime
        }
        assert_eq!(e.peek_plaintext(sector(1), &mem), Some([6; 32]));
    }

    #[test]
    fn stats_expose_technique_counters() {
        let (mut e, mut mem) = engine();
        e.on_fill(sector(0), &mut mem);
        let stats = e.extra_stats();
        for key in [
            "mac_fetches_avoided",
            "compact_cache_misses",
            "vv_reads_need_mac",
        ] {
            assert!(stats.iter().any(|(n, _)| n == key), "missing stat {key}");
        }
    }

    fn tenant_engine() -> (PlutusEngine, BackingMemory) {
        use gpu_sim::TenantMap;
        use secure_mem::TenancyConfig;
        let mut map = TenantMap::new();
        map.add_range(0, 0x10000, 1);
        map.add_range(0x10000, 0x20000, 2);
        let mut cfg = PlutusConfig::test_small();
        cfg.mem.tenancy = Some(TenancyConfig::new(map, 11));
        (PlutusEngine::new(cfg), BackingMemory::new())
    }

    #[test]
    fn ladder_freeze_is_scoped_to_the_failing_tenant() {
        let (mut e, mut mem) = tenant_engine();
        let victim = SectorAddr::new(0x10040); // tenant 2
        e.on_writeback(victim, &[7; 32], &mut mem);
        // Attack tenant 1 past the freeze threshold.
        for _ in 0..VERIFIER_FREEZE_FAILURES {
            e.note_fill_failure(sector(0), true);
        }
        assert!(!e.verifier_active_for(1), "attacked tenant must freeze");
        assert!(e.verifier_active_for(2), "victim tenant must stay live");
        // Victim reads still use the value-verification fast path.
        let f = e.on_fill(victim, &mut mem);
        assert_eq!(f.plaintext, [7; 32]);
        assert!(f.violation.is_none());
        let stats = e.extra_stats();
        assert!(stats
            .iter()
            .any(|(n, v)| n == "ladder_frozen_t1" && *v == 1));
        assert!(!stats.iter().any(|(n, _)| n == "ladder_frozen_t2"));
    }

    #[test]
    fn tenant_rotation_preserves_plaintext_and_macs() {
        let (mut e, mut mem) = tenant_engine();
        for i in 0..20u64 {
            e.on_writeback(sector(i), &[i as u8; 32], &mut mem);
        }
        let before = mem.read(sector(0)).unwrap();
        assert!(e.start_key_rotation(1));
        let other = SectorAddr::new(0x10000);
        let mut guard = 0;
        while e.rotation_active() {
            e.on_fill(other, &mut mem);
            guard += 1;
            assert!(guard < 100, "rotation walk must terminate");
        }
        assert_ne!(mem.read(sector(0)).unwrap(), before, "ciphertext rotated");
        for i in 0..20u64 {
            let f = e.on_fill(sector(i), &mut mem);
            assert_eq!(f.plaintext, [i as u8; 32]);
            assert!(
                f.violation.is_none(),
                "sector {i} must verify post-rotation"
            );
        }
    }
}
