//! The Plutus security engine: the paper's three techniques composed
//! behind the simulator's [`SecurityEngine`] interface.
//!
//! Per L2 read miss (paper Fig. 11, left):
//!
//! 1. **Counter** — the compact layer resolves the write counter on-chip
//!    cheaply when enabled; saturated/disabled sectors fall back to the
//!    original split counters + BMT (charged as a *second*, sequential
//!    access, exactly the double-lookup cost the adaptive variant avoids).
//! 2. **Decrypt** — AES-XTS after the data arrives (GPU warps hide the
//!    serialization).
//! 3. **Verify** — the decrypted values probe the value cache; a sector
//!    scoring ≥ 3 hits per 128-bit half is *verified without its MAC*.
//!    Otherwise the MAC is fetched **after** decryption (`post_chain`) and
//!    checked — the deferred-MAC serialization the paper accepts in
//!    exchange for eliminating most MAC traffic.
//!
//! Per writeback (paper Fig. 11, right): the compact counter advances (or
//! propagates into the original on saturation); the sector's values are
//! screened against the *pinned* region — hits there guarantee the next
//! read passes value verification, so the MAC update itself is skipped.

use crate::compact::CompactCounters;
use crate::config::PlutusConfig;
use crate::verify::{ValueVerifier, Verdict, WriteScreen};
use gpu_sim::{
    BackingMemory, EngineFactory, FillPlan, MetaFault, SectorAddr, SecurityEngine, Violation,
    WritePlan,
};
use plutus_telemetry::{Counter, Event, Telemetry};
use secure_mem::{CounterAccess, CounterSystem, DataCipher, MacSystem};

/// The Plutus engine (one per memory partition).
#[derive(Debug, Clone)]
pub struct PlutusEngine {
    cfg: PlutusConfig,
    cipher: DataCipher,
    counters: CounterSystem,
    macs: MacSystem,
    verifier: Option<ValueVerifier>,
    compact: Option<CompactCounters>,
    fills: u64,
    writebacks: u64,
    mac_fetches_avoided: u64,
    mac_updates_skipped: u64,
    compact_fallbacks: u64,
    tel: Telemetry,
    tel_mac_avoided: Counter,
    tel_mac_skipped: Counter,
    tel_compact_fallbacks: Counter,
}

impl PlutusEngine {
    /// Builds an engine from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn new(cfg: PlutusConfig) -> Self {
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid PlutusConfig: {e}"));
        Self {
            cipher: DataCipher::new(&cfg.mem),
            counters: CounterSystem::new(&cfg.mem),
            macs: MacSystem::new(&cfg.mem),
            verifier: cfg
                .value_verify
                .then(|| ValueVerifier::new(cfg.value_cache)),
            compact: cfg.compact.map(|cc| {
                CompactCounters::with_tree_disabled(
                    cc,
                    cfg.mem.protected_bytes,
                    cfg.mem.partitions,
                    cfg.mem.bmt_key,
                    cfg.mem.disable_tree,
                )
            }),
            cfg,
            fills: 0,
            writebacks: 0,
            mac_fetches_avoided: 0,
            mac_updates_skipped: 0,
            compact_fallbacks: 0,
            tel: Telemetry::disabled(),
            tel_mac_avoided: Counter::disabled(),
            tel_mac_skipped: Counter::disabled(),
            tel_compact_fallbacks: Counter::disabled(),
        }
    }

    /// An [`EngineFactory`] producing one engine per partition.
    pub fn factory(cfg: PlutusConfig) -> PlutusFactory {
        PlutusFactory { cfg }
    }

    /// The counter subsystem (attack hooks and stats).
    pub fn counters_mut(&mut self) -> &mut CounterSystem {
        &mut self.counters
    }

    /// The MAC subsystem (attack hooks and stats).
    pub fn macs_mut(&mut self) -> &mut MacSystem {
        &mut self.macs
    }

    /// The compact layer, if enabled.
    pub fn compact_mut(&mut self) -> Option<&mut CompactCounters> {
        self.compact.as_mut()
    }

    /// The value verifier, if enabled.
    pub fn verifier(&self) -> Option<&ValueVerifier> {
        self.verifier.as_ref()
    }

    fn read_plaintext(&self, sector: SectorAddr, ctr: u64, mem: &BackingMemory) -> [u8; 32] {
        match mem.read(sector) {
            Some(mut ct) => {
                self.cipher.decrypt(&mut ct, sector, ctr);
                ct
            }
            None => [0; 32],
        }
    }

    /// Resolves the read counter: compact layer first, original on
    /// fallback. Returns `(value, chain, hit)` with auxiliary traffic
    /// merged into the plan buffers.
    fn resolve_read_counter(
        &mut self,
        addr: SectorAddr,
        chain: &mut Vec<gpu_sim::DramReq>,
        async_reads: &mut Vec<gpu_sim::DramReq>,
        writes: &mut Vec<gpu_sim::DramReq>,
        violation: &mut Option<Violation>,
    ) -> (u64, bool) {
        if let Some(compact) = self.compact.as_mut() {
            let ca = compact.read(addr);
            chain.extend(ca.chain);
            writes.extend(ca.writes);
            if violation.is_none() {
                *violation = ca.violation;
            }
            if let Some(v) = ca.counter {
                return (v, ca.hit);
            }
            // Saturated or disabled: the original counter path follows,
            // sequentially (the paper's two-access cost).
            self.compact_fallbacks += 1;
            self.tel_compact_fallbacks.inc();
            if self.tel.enabled() {
                self.tel.event(Event::CompactFallback);
            }
        }
        let oa = self.counters.read(addr);
        let hit = oa.hit;
        Self::merge_counter(oa, chain, async_reads, writes, violation);
        (self.counters.peek_value(addr), hit)
    }

    fn merge_counter(
        oa: CounterAccess,
        chain: &mut Vec<gpu_sim::DramReq>,
        async_reads: &mut Vec<gpu_sim::DramReq>,
        writes: &mut Vec<gpu_sim::DramReq>,
        violation: &mut Option<Violation>,
    ) {
        chain.extend(oa.chain);
        async_reads.extend(oa.async_reads);
        writes.extend(oa.writes);
        if violation.is_none() {
            *violation = oa.violation;
        }
    }

    /// Re-encrypts an overflowed counter group (same mechanics as the PSSM
    /// baseline).
    fn reencrypt_group(
        &mut self,
        written: SectorAddr,
        old_values: &[u64],
        new_value: u64,
        mem: &mut BackingMemory,
        plan: &mut WritePlan,
    ) {
        let group = self.counters.layout().group_of(written);
        let first = self.counters.layout().group_first_sector(group);
        for (i, old) in old_values.iter().enumerate() {
            let sector = SectorAddr::new(first.raw() + (i as u64) * 32);
            if sector == written {
                continue;
            }
            // Sectors still in the compact regime are encrypted under
            // their compact counter; the original-counter reset does not
            // affect them.
            if let Some(compact) = &self.compact {
                if !compact.uses_original(sector) {
                    continue;
                }
            }
            let Some(mut data) = mem.read(sector) else {
                continue;
            };
            self.cipher.decrypt(&mut data, sector, *old);
            let plaintext = data;
            let mut ct = plaintext;
            self.cipher.encrypt(&mut ct, sector, new_value);
            mem.write(sector, ct);
            self.macs.update_silently(sector, &plaintext, new_value);
            plan.async_reads.push(gpu_sim::DramReq::new(
                sector.raw(),
                32,
                gpu_sim::TrafficClass::Data,
            ));
            plan.writes.push(gpu_sim::DramReq::new(
                sector.raw(),
                32,
                gpu_sim::TrafficClass::Data,
            ));
        }
    }
}

impl SecurityEngine for PlutusEngine {
    fn name(&self) -> &'static str {
        "plutus"
    }

    fn install(&mut self, addr: SectorAddr, plaintext: &[u8; 32], mem: &mut BackingMemory) {
        // Counter 0 in both the compact and original layers.
        let mut ct = *plaintext;
        self.cipher.encrypt(&mut ct, addr, 0);
        mem.write(addr, ct);
        self.macs.update_silently(addr, plaintext, 0);
    }

    fn on_fill(&mut self, addr: SectorAddr, mem: &mut BackingMemory) -> FillPlan {
        self.fills += 1;
        let _span = self.tel.span("engine.fill");
        let mut plan = FillPlan::default();
        let mut chain = Vec::new();
        let (ctr, ctr_hit) = self.resolve_read_counter(
            addr,
            &mut chain,
            &mut plan.async_reads,
            &mut plan.writes,
            &mut plan.violation,
        );
        if !chain.is_empty() {
            plan.pre_chains.push(chain);
        }

        let plaintext = self.read_plaintext(addr, ctr, mem);
        plan.plaintext = plaintext;

        let lat = self.cfg.mem.latencies;
        // Decrypt: XTS serializes after data; CME (compact-only ablations)
        // overlaps unless the counter had to be fetched.
        plan.crypto_latency = if self.cipher.overlaps_fetch() {
            if ctr_hit {
                0
            } else {
                lat.aes_latency
            }
        } else {
            lat.aes_latency
        };

        match self.verifier.as_mut().map(|v| v.verify_read(&plaintext)) {
            Some(Verdict::Verified) => {
                // Integrity assured by value locality: no MAC at all.
                plan.verified_by_value = true;
                self.mac_fetches_avoided += 1;
                self.tel_mac_avoided.inc();
                if self.tel.enabled() {
                    self.tel.event(Event::ValueVerified);
                    self.tel.event(Event::MacFetchAvoided);
                }
            }
            Some(Verdict::NeedMac) => {
                // Deferred MAC: fetched only now, after decryption. A
                // mismatch here means the value screen rejected the sector
                // and the deferred MAC confirmed it (Fig. 11 read flow) —
                // attributed to the value-verification layer.
                let ma = self.macs.read(addr);
                plan.post_chain = ma.chain;
                plan.writes.extend(ma.writes);
                plan.post_latency = lat.mac_latency;
                if !self.macs.verify(addr, &plaintext, ctr) && plan.violation.is_none() {
                    plan.violation = Some(Violation::ValueMismatch { addr });
                }
            }
            None => {
                // Value verification disabled: conventional parallel MAC.
                let ma = self.macs.read(addr);
                if !ma.chain.is_empty() {
                    plan.pre_chains.push(ma.chain);
                }
                plan.writes.extend(ma.writes);
                plan.crypto_latency += lat.mac_latency;
                if !self.macs.verify(addr, &plaintext, ctr) && plan.violation.is_none() {
                    plan.violation = Some(Violation::MacMismatch { addr });
                }
            }
        }
        plan
    }

    fn on_writeback(
        &mut self,
        addr: SectorAddr,
        plaintext: &[u8; 32],
        mem: &mut BackingMemory,
    ) -> WritePlan {
        self.writebacks += 1;
        let _span = self.tel.span("engine.writeback");
        let mut plan = WritePlan::default();
        let mut chain = Vec::new();

        // Advance the counter through the compact layer when present.
        let ctr = if let Some(compact) = self.compact.as_mut() {
            let ca = compact.increment(addr);
            chain.extend(ca.chain);
            plan.writes.extend(ca.writes);
            if plan.violation.is_none() {
                plan.violation = ca.violation;
            }
            let propagate = ca.propagate;
            let block_disable = ca.block_disable.clone();
            let value = match ca.counter {
                Some(v) => v,
                None => {
                    let oa = if let Some(sat) = propagate {
                        // Saturating write: copy the compact value into the
                        // original split counter.
                        self.counters.raise_to(addr, sat)
                    } else {
                        self.compact_fallbacks += 1;
                        self.tel_compact_fallbacks.inc();
                        if self.tel.enabled() {
                            self.tel.event(Event::CompactFallback);
                        }
                        self.counters.increment(addr)
                    };
                    let value = oa.value;
                    if let Some(old) = oa.overflow_old_values.clone() {
                        Self::merge_counter(
                            oa,
                            &mut chain,
                            &mut plan.async_reads,
                            &mut plan.writes,
                            &mut plan.violation,
                        );
                        self.reencrypt_group(addr, &old, value, mem, &mut plan);
                    } else {
                        Self::merge_counter(
                            oa,
                            &mut chain,
                            &mut plan.async_reads,
                            &mut plan.writes,
                            &mut plan.violation,
                        );
                    }
                    value
                }
            };
            // Adaptive block disable: copy every unsaturated compact value
            // into the original counters (no re-encryption needed).
            if let Some(copies) = block_disable {
                for (s, v) in copies {
                    let oa = self.counters.raise_to(s, v);
                    Self::merge_counter(
                        oa,
                        &mut chain,
                        &mut plan.async_reads,
                        &mut plan.writes,
                        &mut plan.violation,
                    );
                }
            }
            value
        } else {
            let oa = self.counters.increment(addr);
            let value = oa.value;
            if let Some(old) = oa.overflow_old_values.clone() {
                Self::merge_counter(
                    oa,
                    &mut chain,
                    &mut plan.async_reads,
                    &mut plan.writes,
                    &mut plan.violation,
                );
                self.reencrypt_group(addr, &old, value, mem, &mut plan);
            } else {
                Self::merge_counter(
                    oa,
                    &mut chain,
                    &mut plan.async_reads,
                    &mut plan.writes,
                    &mut plan.violation,
                );
            }
            value
        };
        if !chain.is_empty() {
            plan.pre_chains.push(chain);
        }

        // Encrypt and store.
        let mut ct = *plaintext;
        self.cipher.encrypt(&mut ct, addr, ctr);
        mem.write(addr, ct);

        // MAC update, unless the pinned value screen guarantees the next
        // read verifies by value.
        let lat = self.cfg.mem.latencies;
        let skip = match self.verifier.as_mut().map(|v| v.screen_write(plaintext)) {
            Some(WriteScreen::SkipMac) => {
                self.mac_updates_skipped += 1;
                self.tel_mac_skipped.inc();
                if self.tel.enabled() {
                    self.tel.event(Event::MacUpdateSkipped);
                }
                true
            }
            _ => false,
        };
        if skip {
            plan.crypto_latency = lat.aes_latency;
        } else {
            let ma = self.macs.write(addr, plaintext, ctr);
            plan.writes.extend(ma.writes);
            plan.crypto_latency = lat.aes_latency + lat.mac_latency;
        }
        plan
    }

    fn attach_telemetry(&mut self, tel: &Telemetry) {
        self.counters.attach_telemetry(tel);
        self.macs.attach_telemetry(tel);
        if let Some(v) = self.verifier.as_mut() {
            v.attach_telemetry(tel);
        }
        if let Some(c) = self.compact.as_mut() {
            c.attach_telemetry(tel);
        }
        self.tel_mac_avoided = tel.counter("engine.mac_fetches_avoided");
        self.tel_mac_skipped = tel.counter("engine.mac_updates_skipped");
        self.tel_compact_fallbacks = tel.counter("engine.compact_fallbacks");
        self.tel = tel.clone();
    }

    fn extra_stats(&self) -> Vec<(String, u64)> {
        let (ch, cm, bf, bh) = self.counters.stats();
        let (mh, mm) = self.macs.stats();
        let mut out = vec![
            ("fills".into(), self.fills),
            ("writebacks".into(), self.writebacks),
            ("ctr_cache_hits".into(), ch),
            ("ctr_cache_misses".into(), cm),
            ("bmt_node_fetches".into(), bf),
            ("bmt_node_hits".into(), bh),
            ("mac_cache_hits".into(), mh),
            ("mac_cache_misses".into(), mm),
            ("mac_fetches_avoided".into(), self.mac_fetches_avoided),
            ("mac_updates_skipped".into(), self.mac_updates_skipped),
            ("compact_fallbacks".into(), self.compact_fallbacks),
        ];
        if let Some(v) = &self.verifier {
            let (ok, need, wskip, wmac) = v.stats();
            let (vh, vm, promo) = v.cache().stats();
            out.push(("vv_reads_verified".into(), ok));
            out.push(("vv_reads_need_mac".into(), need));
            out.push(("vv_writes_skipped".into(), wskip));
            out.push(("vv_writes_with_mac".into(), wmac));
            out.push(("value_cache_hits".into(), vh));
            out.push(("value_cache_misses".into(), vm));
            out.push(("value_cache_promotions".into(), promo));
        }
        if let Some(c) = &self.compact {
            let (h, m, sat, dis, tf) = c.stats();
            out.push(("compact_cache_hits".into(), h));
            out.push(("compact_cache_misses".into(), m));
            out.push(("compact_saturations".into(), sat));
            out.push(("compact_block_disables".into(), dis));
            out.push(("compact_tree_fetches".into(), tf));
        }
        out
    }

    fn inject_fault(&mut self, addr: SectorAddr, fault: MetaFault) -> bool {
        // While a sector's live counter is served by the compact layer, the
        // original split counter (and the main BMT protecting it) are never
        // consulted on its read path — faults against them are not applied,
        // so campaigns don't count honest-data reads as escapes.
        let original_live = self.compact.as_ref().is_none_or(|c| c.uses_original(addr));
        match fault {
            MetaFault::RollbackCounter { value } => {
                original_live && self.counters.tamper_minor(addr, value)
            }
            MetaFault::TamperMac => {
                self.macs.tamper(addr);
                true
            }
            MetaFault::TamperBmtNode => {
                if original_live {
                    self.counters.tamper_bmt(addr);
                }
                original_live
            }
            MetaFault::RollbackCompact { value } => match self.compact.as_mut() {
                Some(c) if !c.uses_original(addr) => c.tamper(addr, value),
                _ => false,
            },
        }
    }
}

/// Factory building [`PlutusEngine`] instances per partition.
#[derive(Debug, Clone)]
pub struct PlutusFactory {
    cfg: PlutusConfig,
}

impl EngineFactory for PlutusFactory {
    fn build(&self, _partition: usize) -> Box<dyn SecurityEngine> {
        Box::new(PlutusEngine::new(self.cfg.clone()))
    }

    fn scheme_name(&self) -> &'static str {
        "plutus"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compact::CompactKind;
    use gpu_sim::TrafficClass;

    fn engine() -> (PlutusEngine, BackingMemory) {
        (
            PlutusEngine::new(PlutusConfig::test_small()),
            BackingMemory::new(),
        )
    }

    fn sector(i: u64) -> SectorAddr {
        SectorAddr::new(i * 32)
    }

    #[test]
    fn write_then_read_roundtrips() {
        let (mut e, mut mem) = engine();
        e.on_writeback(sector(0), &[0x42; 32], &mut mem);
        let fill = e.on_fill(sector(0), &mut mem);
        assert_eq!(fill.plaintext, [0x42; 32]);
        assert!(fill.violation.is_none());
    }

    #[test]
    fn install_then_read_roundtrips() {
        let (mut e, mut mem) = engine();
        e.install(sector(5), &[9; 32], &mut mem);
        let fill = e.on_fill(sector(5), &mut mem);
        assert_eq!(fill.plaintext, [9; 32]);
        assert!(fill.violation.is_none());
    }

    #[test]
    fn first_fill_uses_compact_not_original_counters() {
        let (mut e, mut mem) = engine();
        let fill = e.on_fill(sector(0), &mut mem);
        let classes: Vec<_> = fill
            .pre_chains
            .iter()
            .flat_map(|c| c.iter().map(|r| r.class))
            .collect();
        assert!(classes.contains(&TrafficClass::CompactCounter));
        assert!(
            !classes.contains(&TrafficClass::Counter),
            "unsaturated sectors must not touch original counters"
        );
        assert!(!classes.contains(&TrafficClass::BmtNode));
    }

    #[test]
    fn repeated_value_reads_avoid_mac_entirely() {
        let (mut e, mut mem) = engine();
        // Two sectors with the same hot values in the same MAC unit region.
        e.install(sector(0), &[0x11; 32], &mut mem);
        e.install(sector(100), &[0x11; 32], &mut mem);
        let first = e.on_fill(sector(0), &mut mem);
        // Cold value cache: MAC deferred-fetched.
        assert!(!first.post_chain.is_empty() || first.post_latency > 0);
        let second = e.on_fill(sector(100), &mut mem);
        // Values now cached: no MAC fetch, no MAC latency.
        assert!(second.post_chain.is_empty());
        assert_eq!(second.post_latency, 0);
        assert!(second.violation.is_none());
        assert!(e.mac_fetches_avoided >= 1);
    }

    #[test]
    fn hot_writes_skip_mac_updates() {
        let (mut e, mut mem) = engine();
        for i in 0..30u64 {
            e.on_writeback(sector(i), &[0x77; 32], &mut mem);
        }
        assert!(
            e.mac_updates_skipped > 0,
            "hot constant writes must skip MAC updates"
        );
        // And the skipped sectors still read back clean (value-verified).
        for i in 0..30u64 {
            let fill = e.on_fill(sector(i), &mut mem);
            assert_eq!(fill.plaintext, [0x77; 32]);
            assert!(
                fill.violation.is_none(),
                "skip-MAC sector must verify by value"
            );
        }
    }

    #[test]
    fn data_tamper_detected() {
        let (mut e, mut mem) = engine();
        e.on_writeback(sector(0), &[0x42; 32], &mut mem);
        let mut mask = [0u8; 32];
        mask[7] = 0x20;
        mem.corrupt(sector(0), &mask);
        let fill = e.on_fill(sector(0), &mut mem);
        assert!(
            fill.violation.is_some(),
            "tampered data must fail value verification and then the MAC"
        );
    }

    #[test]
    fn replay_detected() {
        let (mut e, mut mem) = engine();
        e.on_writeback(sector(0), &[1; 32], &mut mem);
        let old = mem.snapshot(sector(0)).unwrap();
        e.on_writeback(sector(0), &[2; 32], &mut mem);
        assert!(mem.replay(sector(0), old));
        let fill = e.on_fill(sector(0), &mut mem);
        assert!(
            fill.violation.is_some(),
            "replayed ciphertext must be detected"
        );
    }

    #[test]
    fn compact_saturation_falls_back_to_original() {
        let (mut e, mut mem) = engine();
        // 3-bit compact saturates on the 7th write.
        for _ in 0..7 {
            e.on_writeback(sector(0), &[5; 32], &mut mem);
        }
        // Counter continuity across the handoff.
        let fill = e.on_fill(sector(0), &mut mem);
        assert_eq!(fill.plaintext, [5; 32]);
        assert!(fill.violation.is_none());
        // Further writes use the original path.
        e.on_writeback(sector(0), &[6; 32], &mut mem);
        let fill = e.on_fill(sector(0), &mut mem);
        assert_eq!(fill.plaintext, [6; 32]);
        assert!(fill.violation.is_none());
    }

    #[test]
    fn adaptive_disable_keeps_all_sectors_readable() {
        let (mut e, mut mem) = engine();
        // Partially write one sector, then saturate 8 others to trigger the
        // block disable with a pending unsaturated copy.
        e.on_writeback(sector(60), &[0xee; 32], &mut mem);
        for s in 0..8u64 {
            for _ in 0..7 {
                e.on_writeback(sector(s), &[s as u8; 32], &mut mem);
            }
        }
        let (.., disables, _) = e.compact_mut().unwrap().stats();
        assert!(
            disables >= 1,
            "threshold saturations must disable the block"
        );
        // Every sector still decrypts and verifies.
        let fill = e.on_fill(sector(60), &mut mem);
        assert_eq!(fill.plaintext, [0xee; 32]);
        assert!(fill.violation.is_none());
        for s in 0..8u64 {
            let fill = e.on_fill(sector(s), &mut mem);
            assert_eq!(fill.plaintext, [s as u8; 32]);
            assert!(fill.violation.is_none());
        }
    }

    #[test]
    fn value_only_config_uses_original_counters() {
        let mut cfg = PlutusConfig::value_verify_only();
        cfg.mem.protected_bytes = 1 << 20;
        let mut e = PlutusEngine::new(cfg);
        let mut mem = BackingMemory::new();
        let fill = e.on_fill(sector(0), &mut mem);
        let classes: Vec<_> = fill
            .pre_chains
            .iter()
            .flat_map(|c| c.iter().map(|r| r.class))
            .collect();
        assert!(classes.contains(&TrafficClass::Counter));
        assert!(!classes.contains(&TrafficClass::CompactCounter));
    }

    #[test]
    fn compact_only_config_fetches_mac_in_parallel() {
        let mut cfg = PlutusConfig::compact_only(CompactKind::Adaptive3);
        cfg.mem.protected_bytes = 1 << 20;
        let mut e = PlutusEngine::new(cfg);
        let mut mem = BackingMemory::new();
        let fill = e.on_fill(sector(0), &mut mem);
        assert!(
            fill.post_chain.is_empty(),
            "no deferred MAC without value verification"
        );
        let classes: Vec<_> = fill
            .pre_chains
            .iter()
            .flat_map(|c| c.iter().map(|r| r.class))
            .collect();
        assert!(classes.contains(&TrafficClass::Mac));
    }

    #[test]
    fn no_tree_mode_removes_tree_traffic() {
        let mut cfg = PlutusConfig::full_no_tree();
        cfg.mem.protected_bytes = 1 << 20;
        let mut e = PlutusEngine::new(cfg);
        let mut mem = BackingMemory::new();
        // Saturate a sector so the original counter path is exercised too.
        for _ in 0..8 {
            e.on_writeback(sector(0), &[1; 32], &mut mem);
        }
        let fill = e.on_fill(sector(0), &mut mem);
        let classes: Vec<_> = fill
            .pre_chains
            .iter()
            .flat_map(|c| c.iter().map(|r| r.class))
            .collect();
        assert!(!classes.contains(&TrafficClass::BmtNode));
        assert!(fill.violation.is_none());
    }

    #[test]
    fn stats_expose_technique_counters() {
        let (mut e, mut mem) = engine();
        e.on_fill(sector(0), &mut mem);
        let stats = e.extra_stats();
        for key in [
            "mac_fetches_avoided",
            "compact_cache_misses",
            "vv_reads_need_mac",
        ] {
            assert!(stats.iter().any(|(n, _)| n == key), "missing stat {key}");
        }
    }
}
