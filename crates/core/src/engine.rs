//! The Plutus security engine: the paper's three techniques composed
//! behind the simulator's [`SecurityEngine`] interface.
//!
//! Per L2 read miss (paper Fig. 11, left):
//!
//! 1. **Counter** — the compact layer resolves the write counter on-chip
//!    cheaply when enabled; saturated/disabled sectors fall back to the
//!    original split counters + BMT (charged as a *second*, sequential
//!    access, exactly the double-lookup cost the adaptive variant avoids).
//! 2. **Decrypt** — AES-XTS after the data arrives (GPU warps hide the
//!    serialization).
//! 3. **Verify** — the decrypted values probe the value cache; a sector
//!    scoring ≥ 3 hits per 128-bit half is *verified without its MAC*.
//!    Otherwise the MAC is fetched **after** decryption (`post_chain`) and
//!    checked — the deferred-MAC serialization the paper accepts in
//!    exchange for eliminating most MAC traffic.
//!
//! Per writeback (paper Fig. 11, right): the compact counter advances (or
//! propagates into the original on saturation); the sector's values are
//! screened against the *pinned* region — hits there guarantee the next
//! read passes value verification, so the MAC update itself is skipped.

use crate::compact::CompactCounters;
use crate::config::PlutusConfig;
use crate::verify::{ValueVerifier, Verdict, WriteScreen};
use gpu_sim::{
    BackingMemory, EngineFactory, FillPlan, MetaFault, RecoveryError, RecoveryReport, SectorAddr,
    SecurityEngine, Violation, WritePlan,
};
use plutus_telemetry::{Counter, Event, Telemetry, TraceId, Tracer};
use secure_mem::{CounterAccess, CounterSystem, DataCipher, MacSystem, SecureMemError};
use std::collections::HashMap;

/// Fill failures (retries or escalations) before the value-cache fast path
/// is frozen and every read pays full MAC verification.
const VERIFIER_FREEZE_FAILURES: u64 = 4;

/// Fill failures attributed to one compact-counter block before the block
/// is frozen onto the split-counter path.
const BLOCK_FREEZE_FAILURES: u32 = 8;

/// Upper bound on split-counter candidates probed per sector during
/// Phoenix-style crash recovery.
const RECOVERY_PROBE_BOUND: u64 = 1 << 14;

/// How one sector's counter was settled during crash recovery.
enum RecoverKind {
    /// The reverted state already verifies.
    Consistent,
    /// A probed candidate was proven by the persistent MAC.
    Mac,
    /// The pinned-value screen vouched for a sector whose MAC update was
    /// legitimately skipped; the MAC was repaired in place.
    Value,
}

/// The Plutus engine (one per memory partition).
#[derive(Debug, Clone)]
pub struct PlutusEngine {
    cfg: PlutusConfig,
    cipher: DataCipher,
    counters: CounterSystem,
    macs: MacSystem,
    verifier: Option<ValueVerifier>,
    compact: Option<CompactCounters>,
    fills: u64,
    writebacks: u64,
    mac_fetches_avoided: u64,
    mac_updates_skipped: u64,
    compact_fallbacks: u64,
    fill_failures: u64,
    verifier_frozen: bool,
    block_failures: HashMap<u64, u32>,
    blocks_frozen: u64,
    tel: Telemetry,
    tel_mac_avoided: Counter,
    tel_mac_skipped: Counter,
    tel_compact_fallbacks: Counter,
    tracer: Tracer,
    /// Trace root of the demand access currently being served (set by
    /// the simulator via `begin_access_trace`), so engine-internal
    /// causal marks attribute to the right access.
    cur_trace: TraceId,
}

impl PlutusEngine {
    /// Builds an engine from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn new(cfg: PlutusConfig) -> Self {
        Self::try_new(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds an engine from `cfg`, returning a typed error instead of
    /// panicking when the configuration is invalid (the CLI path).
    pub fn try_new(cfg: PlutusConfig) -> Result<Self, SecureMemError> {
        cfg.validate()
            .map_err(|reason| SecureMemError::InvalidConfig { reason })?;
        Ok(Self {
            cipher: DataCipher::new(&cfg.mem),
            counters: CounterSystem::new(&cfg.mem),
            macs: MacSystem::new(&cfg.mem),
            verifier: cfg
                .value_verify
                .then(|| ValueVerifier::new(cfg.value_cache)),
            compact: cfg.compact.map(|cc| {
                CompactCounters::with_tree_disabled(
                    cc,
                    cfg.mem.protected_bytes,
                    cfg.mem.partitions,
                    cfg.mem.bmt_key,
                    cfg.mem.disable_tree,
                )
            }),
            cfg,
            fills: 0,
            writebacks: 0,
            mac_fetches_avoided: 0,
            mac_updates_skipped: 0,
            compact_fallbacks: 0,
            fill_failures: 0,
            verifier_frozen: false,
            block_failures: HashMap::new(),
            blocks_frozen: 0,
            tel: Telemetry::disabled(),
            tel_mac_avoided: Counter::disabled(),
            tel_mac_skipped: Counter::disabled(),
            tel_compact_fallbacks: Counter::disabled(),
            tracer: Tracer::disabled(),
            cur_trace: TraceId::NONE,
        })
    }

    /// An [`EngineFactory`] producing one engine per partition.
    pub fn factory(cfg: PlutusConfig) -> PlutusFactory {
        PlutusFactory { cfg }
    }

    /// The counter subsystem (attack hooks and stats).
    pub fn counters_mut(&mut self) -> &mut CounterSystem {
        &mut self.counters
    }

    /// The MAC subsystem (attack hooks and stats).
    pub fn macs_mut(&mut self) -> &mut MacSystem {
        &mut self.macs
    }

    /// The compact layer, if enabled.
    pub fn compact_mut(&mut self) -> Option<&mut CompactCounters> {
        self.compact.as_mut()
    }

    /// The value verifier, if enabled.
    pub fn verifier(&self) -> Option<&ValueVerifier> {
        self.verifier.as_ref()
    }

    fn read_plaintext(&self, sector: SectorAddr, ctr: u64, mem: &BackingMemory) -> [u8; 32] {
        match mem.read(sector) {
            Some(mut ct) => {
                self.cipher.decrypt(&mut ct, sector, ctr);
                ct
            }
            None => [0; 32],
        }
    }

    /// Resolves the read counter: compact layer first, original on
    /// fallback. Returns `(value, chain, hit)` with auxiliary traffic
    /// merged into the plan buffers.
    fn resolve_read_counter(
        &mut self,
        addr: SectorAddr,
        chain: &mut Vec<gpu_sim::DramReq>,
        async_reads: &mut Vec<gpu_sim::DramReq>,
        writes: &mut Vec<gpu_sim::DramReq>,
        violation: &mut Option<Violation>,
    ) -> (u64, bool) {
        if let Some(compact) = self.compact.as_mut() {
            let ca = compact.read(addr);
            chain.extend(ca.chain);
            writes.extend(ca.writes);
            if violation.is_none() {
                *violation = ca.violation;
            }
            if let Some(v) = ca.counter {
                return (v, ca.hit);
            }
            // Saturated or disabled: the original counter path follows,
            // sequentially (the paper's two-access cost).
            self.compact_fallbacks += 1;
            self.tel_compact_fallbacks.inc();
            if self.tel.enabled() {
                self.tel.event(Event::CompactFallback);
            }
            self.tracer
                .mark(self.cur_trace, "compact_fallback", addr.raw(), 0);
        }
        let oa = self.counters.read(addr);
        let hit = oa.hit;
        Self::merge_counter(oa, chain, async_reads, writes, violation);
        (self.counters.peek_value(addr), hit)
    }

    fn merge_counter(
        oa: CounterAccess,
        chain: &mut Vec<gpu_sim::DramReq>,
        async_reads: &mut Vec<gpu_sim::DramReq>,
        writes: &mut Vec<gpu_sim::DramReq>,
        violation: &mut Option<Violation>,
    ) {
        chain.extend(oa.chain);
        async_reads.extend(oa.async_reads);
        writes.extend(oa.writes);
        if violation.is_none() {
            *violation = oa.violation;
        }
    }

    /// Re-encrypts an overflowed counter group (same mechanics as the PSSM
    /// baseline).
    fn reencrypt_group(
        &mut self,
        written: SectorAddr,
        old_values: &[u64],
        new_value: u64,
        mem: &mut BackingMemory,
        plan: &mut WritePlan,
    ) {
        self.tracer.mark(
            self.cur_trace,
            "counter_overflow_spill",
            written.raw(),
            old_values.len() as u64,
        );
        let group = self.counters.layout().group_of(written);
        let first = self.counters.layout().group_first_sector(group);
        for (i, old) in old_values.iter().enumerate() {
            let sector = SectorAddr::new(first.raw() + (i as u64) * 32);
            if sector == written {
                continue;
            }
            // Sectors still in the compact regime are encrypted under
            // their compact counter; the original-counter reset does not
            // affect them.
            if let Some(compact) = &self.compact {
                if !compact.uses_original(sector) {
                    continue;
                }
            }
            let Some(mut data) = mem.read(sector) else {
                continue;
            };
            self.cipher.decrypt(&mut data, sector, *old);
            let plaintext = data;
            let mut ct = plaintext;
            self.cipher.encrypt(&mut ct, sector, new_value);
            mem.write(sector, ct);
            self.macs.update_silently(sector, &plaintext, new_value);
            plan.async_reads.push(gpu_sim::DramReq::new(
                sector.raw(),
                32,
                gpu_sim::TrafficClass::Data,
            ));
            plan.writes.push(gpu_sim::DramReq::new(
                sector.raw(),
                32,
                gpu_sim::TrafficClass::Data,
            ));
        }
    }

    /// True while the value-verification fast path is in use (configured
    /// and not frozen by the degradation ladder).
    pub fn verifier_active(&self) -> bool {
        self.verifier.is_some() && !self.verifier_frozen
    }

    /// The counter a read of `addr` would decrypt with right now, without
    /// generating traffic: the compact value while that layer serves the
    /// sector, the original split value otherwise.
    fn live_counter(&self, addr: SectorAddr) -> u64 {
        if let Some(c) = &self.compact {
            if let Some(v) = c.peek_live(addr) {
                return v;
            }
        }
        self.counters.peek_value(addr)
    }

    /// Checks one counter candidate during crash recovery. `Some(true)` —
    /// proven by the persistent MAC; `Some(false)` — vouched by the
    /// pinned-value screen (the MAC update was legitimately skipped);
    /// `None` — neither.
    fn candidate_ok(&self, addr: SectorAddr, v: u64, mem: &BackingMemory) -> Option<bool> {
        let pt = self.read_plaintext(addr, v, mem);
        if self.macs.verify(addr, &pt, v) {
            return Some(true);
        }
        if self
            .verifier
            .as_ref()
            .is_some_and(|ver| ver.screen_pinned(&pt))
        {
            return Some(false);
        }
        None
    }

    /// Accepts candidate `v` for `addr`: places the value in the layer that
    /// serves the sector and repairs the MAC if it was vouched by value.
    fn accept_candidate(&mut self, addr: SectorAddr, v: u64, by_mac: bool, mem: &BackingMemory) {
        let compact_live = match &self.compact {
            Some(c) if !c.is_disabled(addr) => v < u64::from(c.kind().saturation()),
            _ => false,
        };
        if compact_live {
            self.compact
                .as_mut()
                .expect("checked above")
                .restore_value(addr, v as u8);
        } else {
            self.counters.restore_value(addr, v);
            // A sector recovered past the compact range must read as
            // saturated so the original path serves it.
            if let Some(c) = self.compact.as_mut() {
                if !c.is_disabled(addr) {
                    let sat = c.kind().saturation();
                    c.restore_value(addr, sat);
                }
            }
        }
        if !by_mac {
            let pt = self.read_plaintext(addr, v, mem);
            self.macs.update_silently(addr, &pt, v);
        }
    }

    /// Phoenix-style recovery of one sector: current value first, then the
    /// compact range, then the split range from the recovery floor.
    fn recover_sector(&mut self, addr: SectorAddr, mem: &BackingMemory) -> Option<RecoverKind> {
        let live = self.live_counter(addr);
        if let Some(by_mac) = self.candidate_ok(addr, live, mem) {
            if !by_mac {
                let pt = self.read_plaintext(addr, live, mem);
                self.macs.update_silently(addr, &pt, live);
                return Some(RecoverKind::Value);
            }
            return Some(RecoverKind::Consistent);
        }
        if let Some(c) = &self.compact {
            if !c.is_disabled(addr) {
                for v in 0..u64::from(c.kind().saturation()) {
                    if v == live {
                        continue;
                    }
                    if let Some(by_mac) = self.candidate_ok(addr, v, mem) {
                        self.accept_candidate(addr, v, by_mac, mem);
                        return Some(if by_mac {
                            RecoverKind::Mac
                        } else {
                            RecoverKind::Value
                        });
                    }
                }
            }
        }
        let base = self.counters.recovery_floor(addr);
        for v in base..base.saturating_add(RECOVERY_PROBE_BOUND) {
            if v == live {
                continue;
            }
            if let Some(by_mac) = self.candidate_ok(addr, v, mem) {
                self.accept_candidate(addr, v, by_mac, mem);
                return Some(if by_mac {
                    RecoverKind::Mac
                } else {
                    RecoverKind::Value
                });
            }
        }
        None
    }
}

impl SecurityEngine for PlutusEngine {
    fn name(&self) -> &'static str {
        "plutus"
    }

    fn install(&mut self, addr: SectorAddr, plaintext: &[u8; 32], mem: &mut BackingMemory) {
        // Counter 0 in both the compact and original layers.
        let mut ct = *plaintext;
        self.cipher.encrypt(&mut ct, addr, 0);
        mem.write(addr, ct);
        self.macs.update_silently(addr, plaintext, 0);
    }

    fn on_fill(&mut self, addr: SectorAddr, mem: &mut BackingMemory) -> FillPlan {
        self.fills += 1;
        let _span = self.tel.span("engine.fill");
        let mut plan = FillPlan::default();
        let mut chain = Vec::new();
        let (ctr, ctr_hit) = self.resolve_read_counter(
            addr,
            &mut chain,
            &mut plan.async_reads,
            &mut plan.writes,
            &mut plan.violation,
        );
        if !chain.is_empty() {
            plan.pre_chains.push(chain);
        }

        let plaintext = self.read_plaintext(addr, ctr, mem);
        plan.plaintext = plaintext;

        let lat = self.cfg.mem.latencies;
        // Decrypt: XTS serializes after data; CME (compact-only ablations)
        // overlaps unless the counter had to be fetched.
        plan.crypto_latency = if self.cipher.overlaps_fetch() {
            if ctr_hit {
                0
            } else {
                lat.aes_latency
            }
        } else {
            lat.aes_latency
        };

        let verdict = if self.verifier_frozen {
            // Degraded mode: the fast path is frozen; every read takes the
            // conventional parallel-MAC branch below.
            None
        } else {
            self.verifier.as_mut().map(|v| v.verify_read(&plaintext))
        };
        match verdict {
            Some(Verdict::Verified) => {
                // Integrity assured by value locality: no MAC at all.
                plan.verified_by_value = true;
                self.mac_fetches_avoided += 1;
                self.tel_mac_avoided.inc();
                if self.tel.enabled() {
                    self.tel.event(Event::ValueVerified);
                    self.tel.event(Event::MacFetchAvoided);
                }
                self.tracer
                    .mark(self.cur_trace, "value_vouch", addr.raw(), 0);
            }
            Some(Verdict::NeedMac) => {
                // Deferred MAC: fetched only now, after decryption. A
                // mismatch here means the value screen rejected the sector
                // and the deferred MAC confirmed it (Fig. 11 read flow) —
                // attributed to the value-verification layer.
                let ma = self.macs.read(addr);
                plan.post_chain = ma.chain;
                plan.writes.extend(ma.writes);
                plan.post_latency = lat.mac_latency;
                if !self.macs.verify(addr, &plaintext, ctr) && plan.violation.is_none() {
                    plan.violation = Some(Violation::ValueMismatch { addr });
                }
            }
            None => {
                // Value verification disabled or frozen: conventional
                // parallel MAC.
                let ma = self.macs.read(addr);
                if !ma.chain.is_empty() {
                    plan.pre_chains.push(ma.chain);
                }
                plan.writes.extend(ma.writes);
                plan.crypto_latency += lat.mac_latency;
                if !self.macs.verify(addr, &plaintext, ctr) && plan.violation.is_none() {
                    // A sector whose MAC update was legitimately skipped
                    // before the freeze has no fresh MAC; the pinned-value
                    // screen (the guarantee skip-MAC relied on) still
                    // vouches for it. Repair the MAC so the fallback is
                    // one-time.
                    let vouched = self.verifier_frozen
                        && self
                            .verifier
                            .as_ref()
                            .is_some_and(|v| v.screen_pinned(&plaintext));
                    if vouched {
                        self.macs.update_silently(addr, &plaintext, ctr);
                    } else {
                        plan.violation = Some(Violation::MacMismatch { addr });
                    }
                }
            }
        }
        plan
    }

    fn on_writeback(
        &mut self,
        addr: SectorAddr,
        plaintext: &[u8; 32],
        mem: &mut BackingMemory,
    ) -> WritePlan {
        self.writebacks += 1;
        let _span = self.tel.span("engine.writeback");
        let mut plan = WritePlan::default();
        let mut chain = Vec::new();

        // Advance the counter through the compact layer when present.
        let ctr = if let Some(compact) = self.compact.as_mut() {
            let ca = compact.increment(addr);
            chain.extend(ca.chain);
            plan.writes.extend(ca.writes);
            if plan.violation.is_none() {
                plan.violation = ca.violation;
            }
            let propagate = ca.propagate;
            let block_disable = ca.block_disable.clone();
            let value = match ca.counter {
                Some(v) => v,
                None => {
                    let oa = if let Some(sat) = propagate {
                        // Saturating write: copy the compact value into the
                        // original split counter.
                        self.counters.raise_to(addr, sat)
                    } else {
                        self.compact_fallbacks += 1;
                        self.tel_compact_fallbacks.inc();
                        if self.tel.enabled() {
                            self.tel.event(Event::CompactFallback);
                        }
                        self.tracer
                            .mark(self.cur_trace, "compact_fallback", addr.raw(), 0);
                        self.counters.increment(addr)
                    };
                    let value = oa.value;
                    if let Some(old) = oa.overflow_old_values.clone() {
                        Self::merge_counter(
                            oa,
                            &mut chain,
                            &mut plan.async_reads,
                            &mut plan.writes,
                            &mut plan.violation,
                        );
                        self.reencrypt_group(addr, &old, value, mem, &mut plan);
                    } else {
                        Self::merge_counter(
                            oa,
                            &mut chain,
                            &mut plan.async_reads,
                            &mut plan.writes,
                            &mut plan.violation,
                        );
                    }
                    value
                }
            };
            // Adaptive block disable: copy every unsaturated compact value
            // into the original counters (no re-encryption needed).
            if let Some(copies) = block_disable {
                for (s, v) in copies {
                    let oa = self.counters.raise_to(s, v);
                    Self::merge_counter(
                        oa,
                        &mut chain,
                        &mut plan.async_reads,
                        &mut plan.writes,
                        &mut plan.violation,
                    );
                }
            }
            value
        } else {
            let oa = self.counters.increment(addr);
            let value = oa.value;
            if let Some(old) = oa.overflow_old_values.clone() {
                Self::merge_counter(
                    oa,
                    &mut chain,
                    &mut plan.async_reads,
                    &mut plan.writes,
                    &mut plan.violation,
                );
                self.reencrypt_group(addr, &old, value, mem, &mut plan);
            } else {
                Self::merge_counter(
                    oa,
                    &mut chain,
                    &mut plan.async_reads,
                    &mut plan.writes,
                    &mut plan.violation,
                );
            }
            value
        };
        if !chain.is_empty() {
            plan.pre_chains.push(chain);
        }

        // Encrypt and store.
        let mut ct = *plaintext;
        self.cipher.encrypt(&mut ct, addr, ctr);
        mem.write(addr, ct);

        // MAC update, unless the pinned value screen guarantees the next
        // read verifies by value.
        let lat = self.cfg.mem.latencies;
        let screen = if self.verifier_frozen {
            None // degraded mode: never skip MAC updates
        } else {
            self.verifier.as_mut().map(|v| v.screen_write(plaintext))
        };
        let skip = match screen {
            Some(WriteScreen::SkipMac) => {
                self.mac_updates_skipped += 1;
                self.tel_mac_skipped.inc();
                if self.tel.enabled() {
                    self.tel.event(Event::MacUpdateSkipped);
                }
                self.tracer.mark(self.cur_trace, "mac_skip", addr.raw(), 0);
                true
            }
            _ => false,
        };
        if skip {
            plan.crypto_latency = lat.aes_latency;
        } else {
            let ma = self.macs.write(addr, plaintext, ctr);
            plan.writes.extend(ma.writes);
            plan.crypto_latency = lat.aes_latency + lat.mac_latency;
        }
        plan
    }

    fn attach_telemetry(&mut self, tel: &Telemetry) {
        self.counters.attach_telemetry(tel);
        self.macs.attach_telemetry(tel);
        if let Some(v) = self.verifier.as_mut() {
            v.attach_telemetry(tel);
        }
        if let Some(c) = self.compact.as_mut() {
            c.attach_telemetry(tel);
        }
        self.tel_mac_avoided = tel.counter("engine.mac_fetches_avoided");
        self.tel_mac_skipped = tel.counter("engine.mac_updates_skipped");
        self.tel_compact_fallbacks = tel.counter("engine.compact_fallbacks");
        self.tracer = tel.tracer();
        self.tel = tel.clone();
    }

    fn begin_access_trace(&mut self, id: TraceId) {
        self.cur_trace = id;
    }

    fn extra_stats(&self) -> Vec<(String, u64)> {
        let (ch, cm, bf, bh) = self.counters.stats();
        let (mh, mm) = self.macs.stats();
        let mut out = vec![
            ("fills".into(), self.fills),
            ("writebacks".into(), self.writebacks),
            ("ctr_cache_hits".into(), ch),
            ("ctr_cache_misses".into(), cm),
            ("bmt_node_fetches".into(), bf),
            ("bmt_node_hits".into(), bh),
            ("mac_cache_hits".into(), mh),
            ("mac_cache_misses".into(), mm),
            ("mac_fetches_avoided".into(), self.mac_fetches_avoided),
            ("mac_updates_skipped".into(), self.mac_updates_skipped),
            ("compact_fallbacks".into(), self.compact_fallbacks),
        ];
        if let Some(v) = &self.verifier {
            let (ok, need, wskip, wmac) = v.stats();
            let (vh, vm, promo) = v.cache().stats();
            out.push(("vv_reads_verified".into(), ok));
            out.push(("vv_reads_need_mac".into(), need));
            out.push(("vv_writes_skipped".into(), wskip));
            out.push(("vv_writes_with_mac".into(), wmac));
            out.push(("value_cache_hits".into(), vh));
            out.push(("value_cache_misses".into(), vm));
            out.push(("value_cache_promotions".into(), promo));
        }
        if let Some(c) = &self.compact {
            let (h, m, sat, dis, tf) = c.stats();
            out.push(("compact_cache_hits".into(), h));
            out.push(("compact_cache_misses".into(), m));
            out.push(("compact_saturations".into(), sat));
            out.push(("compact_block_disables".into(), dis));
            out.push(("compact_tree_fetches".into(), tf));
        }
        out.push(("fill_failures".into(), self.fill_failures));
        out.push((
            "degraded_verifier_frozen".into(),
            u64::from(self.verifier_frozen),
        ));
        out.push(("degraded_blocks_frozen".into(), self.blocks_frozen));
        out
    }

    fn inject_fault(&mut self, addr: SectorAddr, fault: MetaFault) -> bool {
        // While a sector's live counter is served by the compact layer, the
        // original split counter (and the main BMT protecting it) are never
        // consulted on its read path — faults against them are not applied,
        // so campaigns don't count honest-data reads as escapes.
        let original_live = self.compact.as_ref().is_none_or(|c| c.uses_original(addr));
        match fault {
            MetaFault::RollbackCounter { value } => {
                original_live && self.counters.tamper_minor(addr, value)
            }
            MetaFault::TamperMac => {
                self.macs.tamper(addr);
                true
            }
            MetaFault::TamperBmtNode => {
                if original_live {
                    self.counters.tamper_bmt(addr);
                }
                original_live
            }
            MetaFault::RollbackCompact { value } => match self.compact.as_mut() {
                Some(c) if !c.uses_original(addr) => c.tamper(addr, value),
                _ => false,
            },
        }
    }

    fn note_fill_failure(&mut self, addr: SectorAddr, _recovered: bool) {
        self.fill_failures += 1;
        if !self.verifier_frozen
            && self.verifier.is_some()
            && self.fill_failures >= VERIFIER_FREEZE_FAILURES
        {
            self.verifier_frozen = true;
            if self.tel.enabled() {
                self.tel.event(Event::Degraded {
                    mode: "value_cache_disabled".into(),
                    addr: addr.raw(),
                });
            }
            self.tracer.mark(self.cur_trace, "degrade", addr.raw(), 1);
        }
        if let Some(compact) = self.compact.as_mut() {
            let block = compact.block_index(addr);
            let n = self.block_failures.entry(block).or_insert(0);
            *n += 1;
            if *n >= BLOCK_FREEZE_FAILURES && !compact.is_disabled(addr) {
                // Freeze the failing block onto the split-counter path.
                // The transition is out-of-band (no DRAM traffic charged):
                // it is rare and its copies move counter state only.
                let copies = compact.freeze_block(addr);
                for (s, v) in copies {
                    let _ = self.counters.raise_to(s, v);
                }
                self.blocks_frozen += 1;
                if self.tel.enabled() {
                    self.tel.event(Event::Degraded {
                        mode: "compact_block_frozen".into(),
                        addr: addr.raw(),
                    });
                }
                self.tracer.mark(self.cur_trace, "degrade", addr.raw(), 2);
            }
        }
    }

    fn checkpoint(&self) -> Option<Box<dyn SecurityEngine>> {
        Some(Box::new(self.clone()))
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn crash_revert(&mut self, checkpoint: &dyn SecurityEngine) -> bool {
        let Some(ck) = checkpoint
            .as_any()
            .and_then(|a| a.downcast_ref::<PlutusEngine>())
        else {
            return false;
        };
        // MACs are write-through persistent; the pinned value set is tiny,
        // monotone, and flushed on promotion — both survive the crash.
        let persistent_macs = self.macs.clone();
        let persistent_pinned = self.verifier.as_ref().map(|v| v.pinned_keys());
        *self = ck.clone();
        self.macs = persistent_macs;
        if let (Some(v), Some(keys)) = (self.verifier.as_mut(), persistent_pinned) {
            v.graft_pinned(&keys);
        }
        true
    }

    fn recover(
        &mut self,
        mem: &BackingMemory,
        sectors: &[SectorAddr],
    ) -> Result<RecoveryReport, RecoveryError> {
        let mut report = RecoveryReport::default();
        for &addr in sectors {
            match self.recover_sector(addr, mem) {
                Some(RecoverKind::Consistent) => report.already_consistent += 1,
                Some(RecoverKind::Mac) => report.recovered_by_mac += 1,
                Some(RecoverKind::Value) => report.recovered_by_value += 1,
                None => report.failed.push(addr.raw()),
            }
        }
        Ok(report)
    }

    fn peek_plaintext(&self, addr: SectorAddr, mem: &BackingMemory) -> Option<[u8; 32]> {
        Some(self.read_plaintext(addr, self.live_counter(addr), mem))
    }
}

/// Factory building [`PlutusEngine`] instances per partition.
#[derive(Debug, Clone)]
pub struct PlutusFactory {
    cfg: PlutusConfig,
}

impl EngineFactory for PlutusFactory {
    fn build(&self, _partition: usize) -> Box<dyn SecurityEngine> {
        Box::new(PlutusEngine::new(self.cfg.clone()))
    }

    fn scheme_name(&self) -> &'static str {
        "plutus"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compact::CompactKind;
    use gpu_sim::TrafficClass;

    fn engine() -> (PlutusEngine, BackingMemory) {
        (
            PlutusEngine::new(PlutusConfig::test_small()),
            BackingMemory::new(),
        )
    }

    fn sector(i: u64) -> SectorAddr {
        SectorAddr::new(i * 32)
    }

    #[test]
    fn write_then_read_roundtrips() {
        let (mut e, mut mem) = engine();
        e.on_writeback(sector(0), &[0x42; 32], &mut mem);
        let fill = e.on_fill(sector(0), &mut mem);
        assert_eq!(fill.plaintext, [0x42; 32]);
        assert!(fill.violation.is_none());
    }

    #[test]
    fn install_then_read_roundtrips() {
        let (mut e, mut mem) = engine();
        e.install(sector(5), &[9; 32], &mut mem);
        let fill = e.on_fill(sector(5), &mut mem);
        assert_eq!(fill.plaintext, [9; 32]);
        assert!(fill.violation.is_none());
    }

    #[test]
    fn first_fill_uses_compact_not_original_counters() {
        let (mut e, mut mem) = engine();
        let fill = e.on_fill(sector(0), &mut mem);
        let classes: Vec<_> = fill
            .pre_chains
            .iter()
            .flat_map(|c| c.iter().map(|r| r.class))
            .collect();
        assert!(classes.contains(&TrafficClass::CompactCounter));
        assert!(
            !classes.contains(&TrafficClass::Counter),
            "unsaturated sectors must not touch original counters"
        );
        assert!(!classes.contains(&TrafficClass::BmtNode));
    }

    #[test]
    fn repeated_value_reads_avoid_mac_entirely() {
        let (mut e, mut mem) = engine();
        // Two sectors with the same hot values in the same MAC unit region.
        e.install(sector(0), &[0x11; 32], &mut mem);
        e.install(sector(100), &[0x11; 32], &mut mem);
        let first = e.on_fill(sector(0), &mut mem);
        // Cold value cache: MAC deferred-fetched.
        assert!(!first.post_chain.is_empty() || first.post_latency > 0);
        let second = e.on_fill(sector(100), &mut mem);
        // Values now cached: no MAC fetch, no MAC latency.
        assert!(second.post_chain.is_empty());
        assert_eq!(second.post_latency, 0);
        assert!(second.violation.is_none());
        assert!(e.mac_fetches_avoided >= 1);
    }

    #[test]
    fn hot_writes_skip_mac_updates() {
        let (mut e, mut mem) = engine();
        for i in 0..30u64 {
            e.on_writeback(sector(i), &[0x77; 32], &mut mem);
        }
        assert!(
            e.mac_updates_skipped > 0,
            "hot constant writes must skip MAC updates"
        );
        // And the skipped sectors still read back clean (value-verified).
        for i in 0..30u64 {
            let fill = e.on_fill(sector(i), &mut mem);
            assert_eq!(fill.plaintext, [0x77; 32]);
            assert!(
                fill.violation.is_none(),
                "skip-MAC sector must verify by value"
            );
        }
    }

    #[test]
    fn data_tamper_detected() {
        let (mut e, mut mem) = engine();
        e.on_writeback(sector(0), &[0x42; 32], &mut mem);
        let mut mask = [0u8; 32];
        mask[7] = 0x20;
        mem.corrupt(sector(0), &mask);
        let fill = e.on_fill(sector(0), &mut mem);
        assert!(
            fill.violation.is_some(),
            "tampered data must fail value verification and then the MAC"
        );
    }

    #[test]
    fn replay_detected() {
        let (mut e, mut mem) = engine();
        e.on_writeback(sector(0), &[1; 32], &mut mem);
        let old = mem.snapshot(sector(0)).unwrap();
        e.on_writeback(sector(0), &[2; 32], &mut mem);
        assert!(mem.replay(sector(0), old));
        let fill = e.on_fill(sector(0), &mut mem);
        assert!(
            fill.violation.is_some(),
            "replayed ciphertext must be detected"
        );
    }

    #[test]
    fn compact_saturation_falls_back_to_original() {
        let (mut e, mut mem) = engine();
        // 3-bit compact saturates on the 7th write.
        for _ in 0..7 {
            e.on_writeback(sector(0), &[5; 32], &mut mem);
        }
        // Counter continuity across the handoff.
        let fill = e.on_fill(sector(0), &mut mem);
        assert_eq!(fill.plaintext, [5; 32]);
        assert!(fill.violation.is_none());
        // Further writes use the original path.
        e.on_writeback(sector(0), &[6; 32], &mut mem);
        let fill = e.on_fill(sector(0), &mut mem);
        assert_eq!(fill.plaintext, [6; 32]);
        assert!(fill.violation.is_none());
    }

    #[test]
    fn adaptive_disable_keeps_all_sectors_readable() {
        let (mut e, mut mem) = engine();
        // Partially write one sector, then saturate 8 others to trigger the
        // block disable with a pending unsaturated copy.
        e.on_writeback(sector(60), &[0xee; 32], &mut mem);
        for s in 0..8u64 {
            for _ in 0..7 {
                e.on_writeback(sector(s), &[s as u8; 32], &mut mem);
            }
        }
        let (.., disables, _) = e.compact_mut().unwrap().stats();
        assert!(
            disables >= 1,
            "threshold saturations must disable the block"
        );
        // Every sector still decrypts and verifies.
        let fill = e.on_fill(sector(60), &mut mem);
        assert_eq!(fill.plaintext, [0xee; 32]);
        assert!(fill.violation.is_none());
        for s in 0..8u64 {
            let fill = e.on_fill(sector(s), &mut mem);
            assert_eq!(fill.plaintext, [s as u8; 32]);
            assert!(fill.violation.is_none());
        }
    }

    #[test]
    fn value_only_config_uses_original_counters() {
        let mut cfg = PlutusConfig::value_verify_only();
        cfg.mem.protected_bytes = 1 << 20;
        let mut e = PlutusEngine::new(cfg);
        let mut mem = BackingMemory::new();
        let fill = e.on_fill(sector(0), &mut mem);
        let classes: Vec<_> = fill
            .pre_chains
            .iter()
            .flat_map(|c| c.iter().map(|r| r.class))
            .collect();
        assert!(classes.contains(&TrafficClass::Counter));
        assert!(!classes.contains(&TrafficClass::CompactCounter));
    }

    #[test]
    fn compact_only_config_fetches_mac_in_parallel() {
        let mut cfg = PlutusConfig::compact_only(CompactKind::Adaptive3);
        cfg.mem.protected_bytes = 1 << 20;
        let mut e = PlutusEngine::new(cfg);
        let mut mem = BackingMemory::new();
        let fill = e.on_fill(sector(0), &mut mem);
        assert!(
            fill.post_chain.is_empty(),
            "no deferred MAC without value verification"
        );
        let classes: Vec<_> = fill
            .pre_chains
            .iter()
            .flat_map(|c| c.iter().map(|r| r.class))
            .collect();
        assert!(classes.contains(&TrafficClass::Mac));
    }

    #[test]
    fn no_tree_mode_removes_tree_traffic() {
        let mut cfg = PlutusConfig::full_no_tree();
        cfg.mem.protected_bytes = 1 << 20;
        let mut e = PlutusEngine::new(cfg);
        let mut mem = BackingMemory::new();
        // Saturate a sector so the original counter path is exercised too.
        for _ in 0..8 {
            e.on_writeback(sector(0), &[1; 32], &mut mem);
        }
        let fill = e.on_fill(sector(0), &mut mem);
        let classes: Vec<_> = fill
            .pre_chains
            .iter()
            .flat_map(|c| c.iter().map(|r| r.class))
            .collect();
        assert!(!classes.contains(&TrafficClass::BmtNode));
        assert!(fill.violation.is_none());
    }

    #[test]
    fn frozen_verifier_keeps_skip_mac_sectors_readable() {
        let (mut e, mut mem) = engine();
        for i in 0..30u64 {
            e.on_writeback(sector(i), &[0x77; 32], &mut mem);
        }
        assert!(e.mac_updates_skipped > 0, "test needs skip-MAC sectors");
        for _ in 0..VERIFIER_FREEZE_FAILURES {
            e.note_fill_failure(sector(0), true);
        }
        assert!(!e.verifier_active(), "ladder must freeze the fast path");
        // Sectors with no fresh MAC are vouched by the pinned screen.
        for i in 0..30u64 {
            let fill = e.on_fill(sector(i), &mut mem);
            assert_eq!(fill.plaintext, [0x77; 32]);
            assert!(fill.violation.is_none(), "sector {i} spuriously flagged");
        }
        // Degraded mode still detects real tampering.
        let mut mask = [0u8; 32];
        mask[3] = 9;
        mem.corrupt(sector(0), &mask);
        assert!(e.on_fill(sector(0), &mut mem).violation.is_some());
    }

    #[test]
    fn degraded_engine_still_detects_replay() {
        let (mut e, mut mem) = engine();
        e.on_writeback(sector(0), &[1; 32], &mut mem);
        for _ in 0..VERIFIER_FREEZE_FAILURES {
            e.note_fill_failure(sector(9), true);
        }
        let old = mem.snapshot(sector(0)).unwrap();
        e.on_writeback(sector(0), &[2; 32], &mut mem);
        assert!(mem.replay(sector(0), old));
        assert!(e.on_fill(sector(0), &mut mem).violation.is_some());
    }

    #[test]
    fn repeated_block_failures_freeze_compact_block() {
        let (mut e, mut mem) = engine();
        e.on_writeback(sector(0), &[1; 32], &mut mem); // compact value 1
        for _ in 0..BLOCK_FREEZE_FAILURES {
            e.note_fill_failure(sector(0), true);
        }
        assert!(e.compact_mut().unwrap().uses_original(sector(0)));
        // The copied counter keeps the sector decryptable on the new path.
        let fill = e.on_fill(sector(0), &mut mem);
        assert_eq!(fill.plaintext, [1; 32]);
        assert!(fill.violation.is_none());
        let stats = e.extra_stats();
        let frozen = stats
            .iter()
            .find(|(n, _)| n == "degraded_blocks_frozen")
            .unwrap()
            .1;
        assert_eq!(frozen, 1);
    }

    #[test]
    fn crash_recovery_restores_compact_and_split_state() {
        let (mut e, mut mem) = engine();
        e.on_writeback(sector(0), &[1; 32], &mut mem); // compact regime
        for _ in 0..9 {
            e.on_writeback(sector(1), &[2; 32], &mut mem); // saturates → split
        }
        let ck = e.checkpoint().expect("plutus supports checkpointing");
        e.on_writeback(sector(0), &[3; 32], &mut mem);
        e.on_writeback(sector(1), &[4; 32], &mut mem);
        e.on_writeback(sector(5), &[5; 32], &mut mem); // first write post-ck
        assert!(e.crash_revert(ck.as_ref()));
        let report = e.recover(&mem, &mem.resident_addrs()).unwrap();
        assert!(report.failed.is_empty(), "failed: {:?}", report.failed);
        for (s, want) in [(0u64, [3u8; 32]), (1, [4; 32]), (5, [5; 32])] {
            let f = e.on_fill(sector(s), &mut mem);
            assert_eq!(f.plaintext, want, "sector {s} diverged after recovery");
            assert!(f.violation.is_none(), "sector {s} spuriously flagged");
        }
    }

    #[test]
    fn crash_recovery_vouches_skip_mac_sectors_by_pinned_values() {
        let (mut e, mut mem) = engine();
        // Pin a hot pattern; later writes of it skip their MAC updates.
        for i in 0..30u64 {
            e.on_writeback(sector(i), &[0x77; 32], &mut mem);
        }
        assert!(e.mac_updates_skipped > 0);
        let ck = e.checkpoint().unwrap();
        e.on_writeback(sector(40), &[0x77; 32], &mut mem); // skip-MAC, post-ck
        assert!(e.crash_revert(ck.as_ref()));
        let report = e.recover(&mem, &mem.resident_addrs()).unwrap();
        assert!(report.failed.is_empty(), "failed: {:?}", report.failed);
        assert!(
            report.recovered_by_value >= 1,
            "pinned screen must vouch for MAC-skipped sectors"
        );
        let f = e.on_fill(sector(40), &mut mem);
        assert_eq!(f.plaintext, [0x77; 32]);
        assert!(f.violation.is_none());
    }

    #[test]
    fn peek_plaintext_tracks_live_counter_across_layers() {
        let (mut e, mut mem) = engine();
        e.on_writeback(sector(0), &[8; 32], &mut mem); // compact regime
        assert_eq!(e.peek_plaintext(sector(0), &mem), Some([8; 32]));
        for _ in 0..9 {
            e.on_writeback(sector(1), &[6; 32], &mut mem); // split regime
        }
        assert_eq!(e.peek_plaintext(sector(1), &mem), Some([6; 32]));
    }

    #[test]
    fn stats_expose_technique_counters() {
        let (mut e, mut mem) = engine();
        e.on_fill(sector(0), &mut mem);
        let stats = e.extra_stats();
        for key in [
            "mac_fetches_avoided",
            "compact_cache_misses",
            "vv_reads_need_mac",
        ] {
            assert!(stats.iter().any(|(n, _)| n == key), "missing stat {key}");
        }
    }
}
