//! The binomial security analysis behind value-based integrity
//! verification (paper Section IV-C, Eq. 1).
//!
//! A tampered AES-XTS cipher block decrypts to an (effectively) uniform
//! 128-bit value, so each of its four 32-bit words hits a `K`-entry value
//! cache matching on `m` effective bits with probability `p = K / 2^m`.
//! Requiring at least `x` of the `n = 4` words to hit bounds the forgery
//! acceptance probability by the binomial tail
//! `P(X ≥ x) = Σ_{i≥x} C(n,i) p^i (1-p)^{n-i}`, which must stay below the
//! forgery bound Gueron established as sufficient for SGX-class MACs
//! (2⁻⁵⁶).

/// The forgery-probability budget: 2⁻⁵⁶, the collision bound of the 56-bit
/// MACs used by Intel SGX which the paper adopts as "sufficient".
pub const FORGERY_BUDGET: f64 = 1.0 / (1u64 << 56) as f64;

/// Number of 32-bit values per 128-bit AES-XTS cipher block.
pub const VALUES_PER_UNIT: u32 = 4;

/// Binomial coefficient C(n, k) as f64.
fn choose(n: u32, k: u32) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut num = 1.0;
    let mut den = 1.0;
    for i in 0..k {
        num *= (n - i) as f64;
        den *= (i + 1) as f64;
    }
    num / den
}

/// Probability that exactly `x` of `n` independent trials succeed when each
/// succeeds with probability `p` (the paper's Eq. 1 left-hand side).
pub fn binomial_pmf(n: u32, x: u32, p: f64) -> f64 {
    choose(n, x) * p.powi(x as i32) * (1.0 - p).powi((n - x) as i32)
}

/// Tail probability `P(X ≥ x)` — the chance a *tampered* unit passes a
/// "≥ x hits out of n" check.
pub fn binomial_tail(n: u32, x: u32, p: f64) -> f64 {
    (x..=n).map(|i| binomial_pmf(n, i, p)).sum()
}

/// Per-value hit probability for a tampered value: `K / 2^m` for a
/// `K`-entry cache matching on `m` effective bits, clamped to 1.0 —
/// a cache holding more (distinct-tag) entries than the tag space has
/// values degenerates to "every tampered value hits". Without the clamp,
/// `p > 1` makes [`binomial_pmf`]'s `(1 - p)` factor negative, and the
/// whole Eq. 1 analysis (and [`plutus_min_hits`]) returns nonsense.
///
/// # Panics
///
/// Panics if `effective_bits` is 0 or > 63, or `entries` is 0.
pub fn tamper_hit_probability(entries: usize, effective_bits: u32) -> f64 {
    assert!(entries > 0, "value cache must have entries");
    assert!(
        (1..=63).contains(&effective_bits),
        "effective_bits must be 1..=63"
    );
    (entries as f64 / (1u64 << effective_bits) as f64).min(1.0)
}

/// Minimum hits `x` (out of `n`) a 128-bit unit must score for the forgery
/// tail to drop below `budget`, or `None` if even `x = n` is insufficient.
pub fn min_hits_required(n: u32, p: f64, budget: f64) -> Option<u32> {
    (1..=n).find(|&x| binomial_tail(n, x, p) < budget)
}

/// The Plutus design point: 256 entries × 28 effective bits → `x = 3` of
/// the 4 words per 128-bit unit must hit (paper Section IV-C, "Design
/// Implementation").
pub fn plutus_min_hits(entries: usize, effective_bits: u32) -> u32 {
    min_hits_required(
        VALUES_PER_UNIT,
        tamper_hit_probability(entries, effective_bits),
        FORGERY_BUDGET,
    )
    .unwrap_or(VALUES_PER_UNIT)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choose_small_values() {
        assert_eq!(choose(4, 0), 1.0);
        assert_eq!(choose(4, 1), 4.0);
        assert_eq!(choose(4, 2), 6.0);
        assert_eq!(choose(4, 3), 4.0);
        assert_eq!(choose(4, 4), 1.0);
        assert_eq!(choose(3, 5), 0.0);
    }

    #[test]
    fn pmf_sums_to_one() {
        let p = 0.3;
        let total: f64 = (0..=4).map(|x| binomial_pmf(4, x, p)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tail_is_monotonically_decreasing_in_x() {
        let p = 0.1;
        for x in 1..=4 {
            assert!(binomial_tail(4, x, p) <= binomial_tail(4, x - 1, p));
        }
    }

    /// The paper's headline design point: a 256-entry cache matching 28
    /// bits needs 3-of-4 hits per 128-bit unit.
    #[test]
    fn paper_design_point_needs_three_hits() {
        assert_eq!(plutus_min_hits(256, 28), 3);
    }

    #[test]
    fn three_hits_meets_budget_two_does_not() {
        let p = tamper_hit_probability(256, 28); // 2^-20
        assert!(binomial_tail(4, 3, p) < FORGERY_BUDGET);
        assert!(binomial_tail(4, 2, p) >= FORGERY_BUDGET);
    }

    #[test]
    fn bigger_caches_eventually_need_more_hits() {
        // At 2^24 entries on 28 bits, p = 2^-4: even 4 hits give 2^-16,
        // far above the budget.
        assert_eq!(
            min_hits_required(4, tamper_hit_probability(1 << 24, 28), FORGERY_BUDGET),
            None
        );
        // Doubling the cache to 512 entries pushes the x = 3 tail to
        // ~2⁻⁵⁵, just over the budget, forcing x = 4 — the quantitative
        // reason the paper sizes the value cache at exactly 256 entries.
        assert_eq!(plutus_min_hits(512, 28), 4);
        assert_eq!(plutus_min_hits(256, 28), 3);
    }

    #[test]
    fn unmasked_32_bit_matching_allows_three_hits_too() {
        assert_eq!(plutus_min_hits(256, 32), 3);
    }

    #[test]
    fn forgery_probability_is_below_mac_collision() {
        // The claim in the abstract: the value-check false-accept rate is
        // lower than a 56-bit MAC's collision rate.
        let p = tamper_hit_probability(256, 28);
        let accept = binomial_tail(4, 3, p);
        assert!(accept < FORGERY_BUDGET);
        // And the two-unit (32 B sector) check squares it.
        assert!(accept * accept < FORGERY_BUDGET * FORGERY_BUDGET);
    }

    #[test]
    #[should_panic(expected = "effective_bits")]
    fn rejects_bad_bits() {
        tamper_hit_probability(256, 0);
    }

    /// Regression: more entries than tag-space values used to yield p > 1,
    /// a *negative* pmf for x < n, and a bogus `plutus_min_hits` answer.
    #[test]
    fn degenerate_geometry_clamps_to_certain_hit() {
        let p = tamper_hit_probability(1 << 30, 20);
        assert_eq!(p, 1.0);
        for x in 0..=VALUES_PER_UNIT {
            let pmf = binomial_pmf(VALUES_PER_UNIT, x, p);
            assert!((0.0..=1.0).contains(&pmf), "pmf({x}) = {pmf} out of [0, 1]");
        }
        // Every tampered value hits: the tail is 1 for every x, no hit
        // threshold can meet the budget, and the fallback is "all hits".
        assert_eq!(binomial_tail(VALUES_PER_UNIT, VALUES_PER_UNIT, p), 1.0);
        assert_eq!(min_hits_required(VALUES_PER_UNIT, p, FORGERY_BUDGET), None);
        assert_eq!(plutus_min_hits(1 << 30, 20), VALUES_PER_UNIT);
    }
}
