//! Plutus engine configuration and the paper's evaluation presets.

use crate::compact::{CompactConfig, CompactKind};
use crate::value_cache::ValueCacheConfig;
use secure_mem::{CipherKind, SecureMemConfig};

/// Full Plutus configuration: the underlying secure-memory machinery plus
/// per-technique toggles, so each of the paper's three ideas can be
/// evaluated in isolation (Figs. 15–17) or combined (Fig. 18).
#[derive(Debug, Clone, PartialEq)]
pub struct PlutusConfig {
    /// Base secure-memory configuration (cipher, granularities, caches).
    pub mem: SecureMemConfig,
    /// Idea ①: value-based integrity verification (skips MAC traffic).
    pub value_verify: bool,
    /// Value-cache geometry (used when `value_verify` is on).
    pub value_cache: ValueCacheConfig,
    /// Idea ②: compact mirrored counters (None = original counters only).
    pub compact: Option<CompactConfig>,
}

impl PlutusConfig {
    /// The full Plutus design (paper Fig. 18): AES-XTS, value-based
    /// verification, adaptive 3-bit compact counters, and all-32 B
    /// fine-grain metadata (idea ③).
    pub fn full() -> Self {
        Self {
            mem: SecureMemConfig {
                cipher: CipherKind::Xts,
                ..SecureMemConfig::all_32()
            },
            value_verify: true,
            value_cache: ValueCacheConfig::default(),
            compact: Some(CompactConfig::default()),
        }
    }

    /// Idea ① alone (paper Fig. 15): value verification on the otherwise
    /// unchanged PSSM organization, with the XTS cipher it requires.
    pub fn value_verify_only() -> Self {
        Self {
            mem: SecureMemConfig {
                cipher: CipherKind::Xts,
                ..SecureMemConfig::pssm()
            },
            value_verify: true,
            value_cache: ValueCacheConfig::default(),
            compact: None,
        }
    }

    /// Idea ② alone (paper Fig. 17): compact mirrored counters of the given
    /// kind on the baseline organization.
    pub fn compact_only(kind: CompactKind) -> Self {
        Self {
            mem: SecureMemConfig::pssm(),
            value_verify: false,
            value_cache: ValueCacheConfig::default(),
            compact: Some(CompactConfig {
                kind,
                ..CompactConfig::default()
            }),
        }
    }

    /// Fig. 20 mode: full Plutus with all integrity-tree traffic (both the
    /// original BMT and the compact tree's) eliminated, for comparison
    /// against MGX/TNPU/softVN-style schemes.
    pub fn full_no_tree() -> Self {
        let mut cfg = Self::full();
        cfg.mem.disable_tree = true;
        cfg
    }

    /// Full Plutus with a custom value-cache size (paper Fig. 21 sweep).
    pub fn full_with_value_entries(entries: usize) -> Self {
        let mut cfg = Self::full();
        cfg.value_cache.entries = entries;
        cfg
    }

    /// Small protected region for unit tests (single partition so tree
    /// depths are deterministic).
    pub fn test_small() -> Self {
        let mut cfg = Self::full();
        cfg.mem.protected_bytes = 1 << 20;
        cfg.mem.partitions = 1;
        cfg.compact = Some(CompactConfig {
            cache_bytes: 2048,
            ..CompactConfig::default()
        });
        cfg
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency. Notably,
    /// value-based verification is only sound on a diffusing cipher, so
    /// `value_verify` with [`CipherKind::Cme`] is rejected (paper
    /// Section IV-B: CME tampering is bit-localized and *would* hit the
    /// value cache).
    pub fn validate(&self) -> Result<(), String> {
        self.mem.validate()?;
        self.value_cache.validate()?;
        if self.value_verify && self.mem.cipher == CipherKind::Cme {
            return Err(
                "value-based verification requires AES-XTS: CME is malleable, so tampered \
                 data would still hit the value cache"
                    .into(),
            );
        }
        Ok(())
    }
}

impl Default for PlutusConfig {
    fn default() -> Self {
        Self::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        PlutusConfig::full().validate().unwrap();
        PlutusConfig::value_verify_only().validate().unwrap();
        PlutusConfig::compact_only(CompactKind::TwoBit)
            .validate()
            .unwrap();
        PlutusConfig::compact_only(CompactKind::Adaptive3)
            .validate()
            .unwrap();
        PlutusConfig::full_no_tree().validate().unwrap();
        PlutusConfig::test_small().validate().unwrap();
    }

    #[test]
    fn full_uses_xts_and_fine_grain() {
        let c = PlutusConfig::full();
        assert_eq!(c.mem.cipher, CipherKind::Xts);
        assert_eq!(c.mem.ctr_fetch_bytes, 32);
        assert_eq!(c.mem.bmt_node_bytes, 32);
        assert!(c.value_verify);
        assert_eq!(c.compact.unwrap().kind, CompactKind::Adaptive3);
    }

    #[test]
    fn value_verify_on_cme_is_rejected() {
        let mut c = PlutusConfig::value_verify_only();
        c.mem.cipher = CipherKind::Cme;
        let err = c.validate().unwrap_err();
        assert!(err.contains("malleable"));
    }

    #[test]
    fn no_tree_preset_disables_tree() {
        assert!(PlutusConfig::full_no_tree().mem.disable_tree);
    }

    #[test]
    fn value_entries_sweep() {
        assert_eq!(
            PlutusConfig::full_with_value_entries(64)
                .value_cache
                .entries,
            64
        );
    }
}
