//! Value-based integrity verification (paper Section IV-C, Figs. 11–12).
//!
//! A 32-byte sector is two 128-bit AES-XTS cipher blocks; each splits into
//! four 32-bit values. A sector is **verified without its MAC** when *both*
//! 128-bit units score at least [`min_hits`](ValueVerifier::min_hits) value-
//! cache hits (3 of 4 at the paper's design point) — the binomial analysis
//! in [`crate::binomial`] bounds the probability that a *tampered* sector
//! passes below a 56-bit MAC's collision rate.
//!
//! On the write side, a sector whose units all score enough *pinned* hits
//! is guaranteed to pass value verification on its next read (pinned
//! entries are never evicted), so its MAC update can be skipped entirely.

use crate::binomial::{plutus_min_hits, VALUES_PER_UNIT};
use crate::value_cache::{ValueCache, ValueCacheConfig};

/// Verdict for one sector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Both 128-bit units scored enough hits: integrity assured without a
    /// MAC fetch.
    Verified,
    /// At least one unit fell short: the MAC must be fetched and checked.
    NeedMac,
}

/// Result of screening a write for MAC-skip eligibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteScreen {
    /// Every unit scored enough *pinned* hits: the next read is guaranteed
    /// to pass value verification, so the MAC update can be skipped.
    SkipMac,
    /// The MAC must be computed and stored as usual.
    UpdateMac,
}

/// The per-partition value-verification engine.
#[derive(Debug, Clone)]
pub struct ValueVerifier {
    cache: ValueCache,
    min_hits: u32,
    sectors_verified: u64,
    sectors_need_mac: u64,
    writes_skipped: u64,
    writes_with_mac: u64,
}

impl ValueVerifier {
    /// Builds a verifier, deriving the hit requirement from the cache
    /// geometry via the Eq. 1 analysis.
    pub fn new(cfg: ValueCacheConfig) -> Self {
        let min_hits = plutus_min_hits(cfg.entries, cfg.effective_bits());
        Self {
            cache: ValueCache::new(cfg),
            min_hits,
            sectors_verified: 0,
            sectors_need_mac: 0,
            writes_skipped: 0,
            writes_with_mac: 0,
        }
    }

    /// Hits required per 128-bit unit (3 at the paper's design point).
    pub fn min_hits(&self) -> u32 {
        self.min_hits
    }

    /// Mirrors the underlying value cache into `tel` (see
    /// [`ValueCache::attach_telemetry`]).
    pub fn attach_telemetry(&mut self, tel: &plutus_telemetry::Telemetry) {
        self.cache.attach_telemetry(tel);
    }

    /// The underlying value cache.
    pub fn cache(&self) -> &ValueCache {
        &self.cache
    }

    fn values_of(sector: &[u8; 32]) -> [u32; 8] {
        let mut out = [0u32; 8];
        for (i, chunk) in sector.chunks_exact(4).enumerate() {
            out[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        out
    }

    /// Screens a decrypted read sector: probes all eight values, then
    /// inserts them as recently seen (paper: "On reads, before inserting
    /// values, the read value is checked for reuse").
    pub fn verify_read(&mut self, plaintext: &[u8; 32]) -> Verdict {
        let values = Self::values_of(plaintext);
        let mut verdict = Verdict::Verified;
        for unit in values.chunks_exact(VALUES_PER_UNIT as usize) {
            let hits = unit
                .iter()
                .filter(|v| self.cache.probe(**v).is_hit())
                .count() as u32;
            if hits < self.min_hits {
                verdict = Verdict::NeedMac;
            }
        }
        for v in values {
            self.cache.insert(v);
        }
        match verdict {
            Verdict::Verified => self.sectors_verified += 1,
            Verdict::NeedMac => self.sectors_need_mac += 1,
        }
        verdict
    }

    /// Screens a written sector: inserts its values, then decides whether
    /// the MAC update may be skipped (pinned hits only — the guarantee must
    /// survive arbitrary future evictions).
    pub fn screen_write(&mut self, plaintext: &[u8; 32]) -> WriteScreen {
        let values = Self::values_of(plaintext);
        for v in values {
            self.cache.insert(v);
            // Writes also exercise reuse counters so hot values get pinned.
            self.cache.probe(v);
        }
        let mut screen = WriteScreen::SkipMac;
        for unit in values.chunks_exact(VALUES_PER_UNIT as usize) {
            let pinned = unit.iter().filter(|v| self.cache.is_pinned(**v)).count() as u32;
            if pinned < self.min_hits {
                screen = WriteScreen::UpdateMac;
            }
        }
        match screen {
            WriteScreen::SkipMac => self.writes_skipped += 1,
            WriteScreen::UpdateMac => self.writes_with_mac += 1,
        }
        screen
    }

    /// Non-mutating pinned-only screen: would `plaintext` pass value
    /// verification on pinned entries alone? This is exactly the guarantee
    /// [`ValueVerifier::screen_write`] relied on when a MAC update was
    /// skipped, so crash recovery and the degraded (frozen) read path use
    /// it to vouch for sectors that have no fresh MAC.
    pub fn screen_pinned(&self, plaintext: &[u8; 32]) -> bool {
        let values = Self::values_of(plaintext);
        for unit in values.chunks_exact(VALUES_PER_UNIT as usize) {
            let pinned = unit.iter().filter(|v| self.cache.is_pinned(**v)).count() as u32;
            if pinned < self.min_hits {
                return false;
            }
        }
        true
    }

    /// Raw pinned keys (see [`ValueCache::pinned_keys`]).
    pub fn pinned_keys(&self) -> Vec<u32> {
        self.cache.pinned_keys()
    }

    /// Re-pins keys captured before a crash (see
    /// [`ValueCache::graft_pinned`]).
    pub fn graft_pinned(&mut self, keys: &[u32]) {
        self.cache.graft_pinned(keys);
    }

    /// `(reads verified, reads needing MAC, writes skipping MAC, writes
    /// updating MAC)`.
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        (
            self.sectors_verified,
            self.sectors_need_mac,
            self.writes_skipped,
            self.writes_with_mac,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verifier() -> ValueVerifier {
        ValueVerifier::new(ValueCacheConfig::default())
    }

    fn sector_of(values: [u32; 8]) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, v) in values.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&v.to_le_bytes());
        }
        out
    }

    #[test]
    fn paper_rule_is_three_of_four() {
        assert_eq!(verifier().min_hits(), 3);
    }

    #[test]
    fn cold_cache_needs_mac() {
        let mut v = verifier();
        assert_eq!(
            v.verify_read(&sector_of([1, 2, 3, 4, 5, 6, 7, 8])),
            Verdict::NeedMac
        );
    }

    #[test]
    fn repeated_sector_verifies_second_time() {
        let mut v = verifier();
        let s = sector_of([
            10 << 4,
            20 << 4,
            30 << 4,
            40 << 4,
            50 << 4,
            60 << 4,
            70 << 4,
            80 << 4,
        ]);
        assert_eq!(v.verify_read(&s), Verdict::NeedMac);
        assert_eq!(v.verify_read(&s), Verdict::Verified);
    }

    #[test]
    fn three_of_four_suffices_per_unit() {
        let mut v = verifier();
        let base = [
            1u32 << 4,
            2 << 4,
            3 << 4,
            4 << 4,
            5 << 4,
            6 << 4,
            7 << 4,
            8 << 4,
        ];
        v.verify_read(&sector_of(base));
        // One novel value in each unit: still 3 hits per unit.
        let variant = [
            1 << 4,
            2 << 4,
            3 << 4,
            999 << 4,
            5 << 4,
            6 << 4,
            7 << 4,
            888 << 4,
        ];
        assert_eq!(v.verify_read(&sector_of(variant)), Verdict::Verified);
    }

    #[test]
    fn two_of_four_fails_a_unit() {
        let mut v = verifier();
        let base = [
            1u32 << 4,
            2 << 4,
            3 << 4,
            4 << 4,
            5 << 4,
            6 << 4,
            7 << 4,
            8 << 4,
        ];
        v.verify_read(&sector_of(base));
        let variant = [
            1 << 4,
            2 << 4,
            777 << 4,
            999 << 4,
            5 << 4,
            6 << 4,
            7 << 4,
            8 << 4,
        ];
        assert_eq!(v.verify_read(&sector_of(variant)), Verdict::NeedMac);
    }

    #[test]
    fn both_units_must_pass() {
        let mut v = verifier();
        let base = [
            1u32 << 4,
            2 << 4,
            3 << 4,
            4 << 4,
            5 << 4,
            6 << 4,
            7 << 4,
            8 << 4,
        ];
        v.verify_read(&sector_of(base));
        // First unit fully reused, second unit novel.
        let variant = [
            1 << 4,
            2 << 4,
            3 << 4,
            4 << 4,
            91 << 4,
            92 << 4,
            93 << 4,
            94 << 4,
        ];
        assert_eq!(v.verify_read(&sector_of(variant)), Verdict::NeedMac);
    }

    #[test]
    fn hot_write_values_eventually_skip_mac() {
        let mut v = verifier();
        let s = sector_of([7 << 4; 8]);
        // Repeated writes of a hot pattern (e.g. zero-fill / constant fill):
        // once the values are pinned, MAC updates stop.
        let mut saw_skip = false;
        for _ in 0..20 {
            if v.screen_write(&s) == WriteScreen::SkipMac {
                saw_skip = true;
                break;
            }
        }
        assert!(saw_skip, "hot constant writes must eventually skip the MAC");
    }

    /// The soundness contract behind MAC skipping: once a write is screened
    /// `SkipMac`, the very next read of those bytes passes value
    /// verification — even after heavy cache churn — because the guarantee
    /// rests on pinned entries only.
    #[test]
    fn skip_mac_guarantee_survives_churn() {
        let mut v = verifier();
        let s = sector_of([7 << 4; 8]);
        while v.screen_write(&s) != WriteScreen::SkipMac {}
        // Churn: thousands of distinct transient values.
        for i in 0..10_000u32 {
            v.verify_read(&sector_of([
                i << 4,
                (i + 1) << 4,
                (i + 2) << 4,
                (i + 3) << 4,
                (i + 4) << 4,
                (i + 5) << 4,
                (i + 6) << 4,
                (i + 7) << 4,
            ]));
        }
        assert_eq!(v.verify_read(&s), Verdict::Verified);
    }

    #[test]
    fn screen_pinned_matches_skip_mac_guarantee() {
        let mut v = verifier();
        let s = sector_of([7 << 4; 8]);
        assert!(!v.screen_pinned(&s), "cold cache vouches for nothing");
        while v.screen_write(&s) != WriteScreen::SkipMac {}
        assert!(v.screen_pinned(&s), "a SkipMac write implies a pinned pass");
        // And it is non-mutating: repeated calls don't change stats.
        let stats = v.stats();
        v.screen_pinned(&s);
        assert_eq!(v.stats(), stats);
    }

    #[test]
    fn cold_write_updates_mac() {
        let mut v = verifier();
        assert_eq!(
            v.screen_write(&sector_of([
                11 << 4,
                22 << 4,
                33 << 4,
                44 << 4,
                55 << 4,
                66 << 4,
                77 << 4,
                88 << 4
            ])),
            WriteScreen::UpdateMac
        );
    }

    #[test]
    fn tampered_random_data_is_rejected() {
        // Simulate tamper diffusion: uniform random plaintext essentially
        // never scores 3-of-4 against 256 entries of 28-bit keys.
        let mut v = verifier();
        // Warm the cache with a realistic working set.
        for i in 0..256u32 {
            v.verify_read(&sector_of([i << 4; 8]));
        }
        let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x as u32
        };
        let mut accepted = 0;
        for _ in 0..2000 {
            let s = sector_of([rng(), rng(), rng(), rng(), rng(), rng(), rng(), rng()]);
            if v.verify_read(&s) == Verdict::Verified {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 0, "uniform data must not pass value verification");
    }

    #[test]
    fn stats_accumulate() {
        let mut v = verifier();
        let s = sector_of([5 << 4; 8]);
        v.verify_read(&s);
        v.verify_read(&s);
        v.screen_write(&s);
        let (ok, need, _, with_mac) = v.stats();
        assert_eq!(ok, 1);
        assert_eq!(need, 1);
        assert_eq!(with_mac + v.stats().2, 1);
    }
}
