//! The bounded work-stealing pool.

use crate::stats::{SchedStats, StatsAcc, WorkerLocal};
use plutus_telemetry::{Counter, Event, Histogram, Telemetry};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One schedulable unit of work: a label (used when reporting panics)
/// and a closure producing the job's result.
pub struct Job<'a, T> {
    label: String,
    run: Box<dyn FnOnce() -> T + Send + 'a>,
}

impl<'a, T> Job<'a, T> {
    /// Wraps `run` as a job named `label`.
    pub fn new(label: impl Into<String>, run: impl FnOnce() -> T + Send + 'a) -> Self {
        Self {
            label: label.into(),
            run: Box::new(run),
        }
    }

    /// The job's label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl<T> std::fmt::Debug for Job<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job").field("label", &self.label).finish()
    }
}

/// A job's panic, returned as a value: the pool catches worker panics
/// so one failing (workload, scheme, trial) cannot abort a whole sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// Label of the job that panicked.
    pub label: String,
    /// Stringified panic payload.
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {:?} panicked: {}", self.label, self.message)
    }
}

impl std::error::Error for JobPanic {}

/// Unwraps a whole result batch, panicking with `context` on the first
/// [`JobPanic`] in submission order — for fan-outs whose documented
/// contract is panic-propagating rather than panic-as-value.
///
/// # Panics
///
/// Panics if any job panicked.
pub fn expect_all<T>(results: Vec<Result<T, JobPanic>>, context: &str) -> Vec<T> {
    results
        .into_iter()
        .map(|r| r.unwrap_or_else(|p| panic!("{context}: {p}")))
        .collect()
}

/// Stringifies a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// The largest injector batch one grab may take. Small enough that a
/// worker never hoards the tail of a sweep, large enough to amortize
/// the injector lock on thousand-job campaigns.
const MAX_BATCH: usize = 8;

/// A job tagged with its submission index (its result slot).
type IndexedJob<'a, T> = (usize, Job<'a, T>);

/// One lockable deque of indexed jobs.
type JobDeque<'a, T> = Mutex<VecDeque<IndexedJob<'a, T>>>;

struct Inner {
    workers: usize,
    tel: Telemetry,
    queue_ns: Histogram,
    exec_ns: Histogram,
    jobs_ctr: Counter,
    steals_ctr: Counter,
    batches_ctr: Counter,
    panics_ctr: Counter,
    stats: Mutex<StatsAcc>,
    /// Heartbeat interval in milliseconds; 0 disables progress lines.
    heartbeat_ms: AtomicU64,
    /// Watchdog multiple in thousandths (e.g. 4000 = 4x the running
    /// median of completed job durations); 0 disables the watchdog.
    watchdog_x1000: AtomicU64,
    watchdog_ctr: Counter,
}

/// A job currently executing, as seen by the heartbeat monitor.
struct RunningJob {
    label: String,
    started: Instant,
    /// Whether the watchdog has already flagged this job — the
    /// `sched.watchdog` counter increments once per straggler, not once
    /// per heartbeat tick.
    flagged: bool,
}

/// Progress state shared between a `run` call and its heartbeat thread:
/// jobs finished, labels currently executing, and the run's start time.
struct HeartbeatState {
    done: AtomicUsize,
    total: usize,
    running: Mutex<Vec<RunningJob>>,
    /// Durations of completed jobs this run, in nanoseconds; feeds the
    /// watchdog's running median.
    finished_ns: Mutex<Vec<u64>>,
    stop: AtomicBool,
    start: Instant,
    /// Watchdog multiple in thousandths (0 = watchdog off).
    watchdog_x1000: u64,
    watchdog_ctr: Counter,
    /// Telemetry sink for typed progress/slow events — the stderr lines
    /// are ephemeral, the events land in the stream and run artifacts.
    tel: Telemetry,
}

impl HeartbeatState {
    fn begin(&self, label: &str) {
        self.running.lock().unwrap().push(RunningJob {
            label: label.to_string(),
            started: Instant::now(),
            flagged: false,
        });
    }

    fn finish(&self, label: &str) {
        let mut running = self.running.lock().unwrap();
        if let Some(pos) = running.iter().position(|j| j.label == label) {
            let job = running.remove(pos);
            self.finished_ns
                .lock()
                .unwrap()
                .push(job.started.elapsed().as_nanos() as u64);
        }
        drop(running);
        self.done.fetch_add(1, Ordering::SeqCst);
    }

    /// The watchdog threshold in nanoseconds: `multiple` times the
    /// median completed-job duration, once at least three jobs have
    /// finished (before that there is no trustworthy baseline).
    fn watchdog_threshold_ns(&self) -> Option<u64> {
        if self.watchdog_x1000 == 0 {
            return None;
        }
        let mut finished = self.finished_ns.lock().unwrap().clone();
        if finished.len() < 3 {
            return None;
        }
        finished.sort_unstable();
        let median = finished[finished.len() / 2];
        Some(((median as u128 * self.watchdog_x1000 as u128) / 1000) as u64)
    }

    fn print_line(&self) {
        let threshold = self.watchdog_threshold_ns();
        let mut running = self.running.lock().unwrap();
        let mut slow: Vec<(String, u64)> = Vec::new();
        let labels: Vec<String> = running
            .iter_mut()
            .map(|job| match threshold {
                Some(limit) if job.started.elapsed().as_nanos() as u64 > limit => {
                    if !job.flagged {
                        job.flagged = true;
                        self.watchdog_ctr.inc();
                        slow.push((job.label.clone(), job.started.elapsed().as_millis() as u64));
                    }
                    format!(
                        "{} [SLOW {:.1}s]",
                        job.label,
                        job.started.elapsed().as_secs_f64()
                    )
                }
                _ => job.label.clone(),
            })
            .collect();
        let executing = labels.len() as u64;
        drop(running);
        // Typed twins of the stderr line: a progress tick per heartbeat
        // and one slow event per freshly flagged straggler, so pool
        // health reaches the stream and run artifacts, not just the
        // terminal scrollback.
        self.tel.event(Event::PoolProgress {
            done: self.done.load(Ordering::SeqCst) as u64,
            total: self.total as u64,
            running: executing,
        });
        for (label, elapsed_ms) in slow {
            self.tel.event(Event::JobSlow { label, elapsed_ms });
        }
        eprintln!(
            "[plutus-exec] {}/{} jobs done, elapsed {:.0}s, running: [{}]",
            self.done.load(Ordering::SeqCst),
            self.total,
            self.start.elapsed().as_secs_f64(),
            labels.join(", "),
        );
    }
}

/// The bounded work-stealing executor. Clones share one worker cap,
/// telemetry sink, and cumulative [`SchedStats`].
///
/// `run` blocks until every submitted job finished and returns results
/// in **submission order** — callers can assemble reports by walking
/// their (workload, scheme, trial) loop nest in the same order they
/// submitted it, independent of which worker ran what.
#[derive(Clone)]
pub struct Executor {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("workers", &self.inner.workers)
            .finish()
    }
}

impl Executor {
    /// A pool of `workers` threads, or one worker per available core
    /// when `None`. The cap is a hard bound: no `run` call ever has
    /// more jobs in flight than this, however many jobs it receives.
    pub fn new(workers: Option<usize>) -> Self {
        Self::with_telemetry(workers, Telemetry::disabled())
    }

    /// Like [`Executor::new`], recording `sched.*` metrics into `tel`:
    /// `sched.queue_ns` / `sched.exec_ns` histograms per job,
    /// `sched.jobs` / `sched.steals` / `sched.injector_batches` /
    /// `sched.panics` counters, and a `sched.workers` gauge.
    pub fn with_telemetry(workers: Option<usize>, tel: Telemetry) -> Self {
        let workers = workers
            .map(|n| n.max(1))
            .unwrap_or_else(default_parallelism);
        tel.gauge("sched.workers").set(workers as u64);
        Self {
            inner: Arc::new(Inner {
                workers,
                queue_ns: tel.histogram("sched.queue_ns"),
                exec_ns: tel.histogram("sched.exec_ns"),
                jobs_ctr: tel.counter("sched.jobs"),
                steals_ctr: tel.counter("sched.steals"),
                batches_ctr: tel.counter("sched.injector_batches"),
                panics_ctr: tel.counter("sched.panics"),
                watchdog_ctr: tel.counter("sched.watchdog"),
                tel,
                stats: Mutex::new(StatsAcc::default()),
                heartbeat_ms: AtomicU64::new(0),
                watchdog_x1000: AtomicU64::new(0),
            }),
        }
    }

    /// Enables periodic progress lines on stderr during every `run`
    /// call: jobs done/total, the labels currently executing, and
    /// elapsed wall time, printed every `interval`. Intervals under one
    /// millisecond are clamped up; clones of this executor share the
    /// setting.
    pub fn set_heartbeat(&self, interval: Duration) {
        let ms = u64::try_from(interval.as_millis())
            .unwrap_or(u64::MAX)
            .max(1);
        self.inner.heartbeat_ms.store(ms, Ordering::SeqCst);
    }

    /// Arms the soft per-job watchdog: once at least three jobs of a
    /// `run` have completed, any job still executing past `multiple`
    /// times the running median of completed durations is flagged
    /// `[SLOW]` in the heartbeat line and counted once in the
    /// `sched.watchdog` telemetry counter. Soft means observe-and-report
    /// only — the job is never cancelled. Requires an enabled heartbeat
    /// (the watchdog rides its monitor thread); non-positive or
    /// non-finite multiples disable it. Clones share the setting.
    pub fn set_watchdog(&self, multiple: f64) {
        let x1000 = if multiple.is_finite() && multiple > 0.0 {
            (multiple * 1000.0).round().max(1.0) as u64
        } else {
            0
        };
        self.inner.watchdog_x1000.store(x1000, Ordering::SeqCst);
    }

    /// Spawns the heartbeat monitor for a `run` of `total` jobs, if
    /// enabled. The monitor wakes frequently but prints only at the
    /// configured interval, so stopping it is prompt.
    fn start_heartbeat(
        &self,
        total: usize,
    ) -> Option<(Arc<HeartbeatState>, std::thread::JoinHandle<()>)> {
        let ms = self.inner.heartbeat_ms.load(Ordering::SeqCst);
        if ms == 0 {
            return None;
        }
        let state = Arc::new(HeartbeatState {
            done: AtomicUsize::new(0),
            total,
            running: Mutex::new(Vec::new()),
            finished_ns: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
            start: Instant::now(),
            watchdog_x1000: self.inner.watchdog_x1000.load(Ordering::SeqCst),
            watchdog_ctr: self.inner.watchdog_ctr.clone(),
            tel: self.inner.tel.clone(),
        });
        let shared = Arc::clone(&state);
        let handle = std::thread::spawn(move || {
            let interval = Duration::from_millis(ms);
            let tick = Duration::from_millis(25).min(interval);
            let mut next = interval;
            while !shared.stop.load(Ordering::SeqCst) {
                std::thread::sleep(tick);
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                if shared.start.elapsed() >= next {
                    shared.print_line();
                    next += interval;
                }
            }
        });
        Some((state, handle))
    }

    /// A single-worker pool: jobs run on the calling thread, in
    /// submission order. The `--jobs 1` reference configuration.
    pub fn sequential() -> Self {
        Self::new(Some(1))
    }

    /// The configured worker cap.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// The telemetry sink `sched.*` metrics flow into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.tel
    }

    /// Cumulative scheduler statistics over every `run` call so far.
    pub fn stats(&self) -> SchedStats {
        self.inner
            .stats
            .lock()
            .unwrap()
            .snapshot(self.inner.workers)
    }

    /// Runs every job to completion and returns their results in
    /// submission order. Panicking jobs come back as [`JobPanic`]
    /// values; the pool itself never unwinds.
    pub fn run<'a, T: Send>(&self, jobs: Vec<Job<'a, T>>) -> Vec<Result<T, JobPanic>> {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.inner.workers.min(n);
        let heartbeat = self.start_heartbeat(n);
        let hb = heartbeat.as_ref().map(|(state, _)| state.as_ref());
        let submitted = Instant::now();
        let results = if workers == 1 {
            self.run_inline(jobs, submitted, hb)
        } else {
            self.run_stealing(jobs, workers, submitted, hb)
        };
        self.inner
            .stats
            .lock()
            .unwrap()
            .close_run(submitted.elapsed().as_nanos());
        if let Some((state, handle)) = heartbeat {
            state.stop.store(true, Ordering::SeqCst);
            handle.join().ok();
        }
        results
    }

    /// The `--jobs 1` path: every job executes on the caller thread.
    /// Same accounting, no thread machinery at all.
    fn run_inline<'a, T: Send>(
        &self,
        jobs: Vec<Job<'a, T>>,
        submitted: Instant,
        hb: Option<&HeartbeatState>,
    ) -> Vec<Result<T, JobPanic>> {
        let mut local = WorkerLocal::default();
        let out: Vec<Result<T, JobPanic>> = jobs
            .into_iter()
            .map(|job| self.execute(job, submitted, &mut local, hb))
            .collect();
        self.publish_worker_counters(&local);
        let mut acc = self.inner.stats.lock().unwrap();
        acc.merge_worker(0, &local);
        acc.raise_peak(1);
        out
    }

    /// Mirrors a worker's steal/injector tallies into the telemetry
    /// counters (per-job metrics are recorded inline in `execute`).
    fn publish_worker_counters(&self, local: &WorkerLocal) {
        self.inner.steals_ctr.add(local.steals);
        self.inner.batches_ctr.add(local.injector_batches);
    }

    /// The work-stealing path: per-worker deques seeded round-robin,
    /// overflow in a shared injector, idle workers steal from siblings.
    fn run_stealing<'a, T: Send>(
        &self,
        jobs: Vec<Job<'a, T>>,
        workers: usize,
        submitted: Instant,
        hb: Option<&HeartbeatState>,
    ) -> Vec<Result<T, JobPanic>> {
        let n = jobs.len();
        let slots: Vec<Mutex<Option<Result<T, JobPanic>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let mut seed_deques: Vec<VecDeque<IndexedJob<'a, T>>> =
            (0..workers).map(|_| VecDeque::new()).collect();
        let mut overflow: VecDeque<IndexedJob<'a, T>> = VecDeque::new();
        for (idx, job) in jobs.into_iter().enumerate() {
            if idx < workers {
                seed_deques[idx].push_back((idx, job));
            } else {
                overflow.push_back((idx, job));
            }
        }
        let queues: Vec<JobDeque<'a, T>> = seed_deques.into_iter().map(Mutex::new).collect();
        let injector = Mutex::new(overflow);
        // Jobs whose execution has been claimed by some worker. Idle
        // workers exit once every job is claimed: whoever claimed the
        // stragglers finishes them, and the scope join waits for that.
        let claimed = AtomicUsize::new(0);
        let in_flight = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);

        let locals: Vec<WorkerLocal> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|me| {
                    let queues = &queues;
                    let injector = &injector;
                    let slots = &slots;
                    let claimed = &claimed;
                    let in_flight = &in_flight;
                    let peak = &peak;
                    scope.spawn(move || {
                        let mut local = WorkerLocal::default();
                        loop {
                            let next = pop_own(queues, me)
                                .or_else(|| {
                                    grab_injector_batch(injector, queues, me, workers, &mut local)
                                })
                                .or_else(|| steal(queues, me, workers, &mut local));
                            match next {
                                Some((idx, job)) => {
                                    claimed.fetch_add(1, Ordering::SeqCst);
                                    let depth = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                                    peak.fetch_max(depth, Ordering::SeqCst);
                                    let res = self.execute(job, submitted, &mut local, hb);
                                    in_flight.fetch_sub(1, Ordering::SeqCst);
                                    *slots[idx].lock().unwrap() = Some(res);
                                }
                                None => {
                                    if claimed.load(Ordering::SeqCst) >= n {
                                        break;
                                    }
                                    std::thread::yield_now();
                                }
                            }
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pool worker threads never unwind"))
                .collect()
        });

        let mut acc = self.inner.stats.lock().unwrap();
        for (slot, local) in locals.iter().enumerate() {
            self.publish_worker_counters(local);
            acc.merge_worker(slot, local);
        }
        acc.raise_peak(peak.load(Ordering::SeqCst));
        drop(acc);

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("every claimed job stores a result")
            })
            .collect()
    }

    /// Runs one job with full timing/panic accounting, reporting to the
    /// heartbeat monitor when one is active.
    fn execute<T>(
        &self,
        job: Job<'_, T>,
        submitted: Instant,
        local: &mut WorkerLocal,
        hb: Option<&HeartbeatState>,
    ) -> Result<T, JobPanic> {
        let start = Instant::now();
        let queue_ns = start.duration_since(submitted).as_nanos() as u64;
        let Job { label, run } = job;
        if let Some(h) = hb {
            h.begin(&label);
        }
        let outcome = catch_unwind(AssertUnwindSafe(run));
        if let Some(h) = hb {
            h.finish(&label);
        }
        let exec_ns = start.elapsed().as_nanos() as u64;
        self.inner.queue_ns.record(queue_ns);
        self.inner.exec_ns.record(exec_ns);
        self.inner.jobs_ctr.inc();
        local.record_job(queue_ns, exec_ns);
        local.spans.push(crate::stats::JobSpan {
            label: label.clone(),
            worker: 0, // stamped with the real slot at merge time
            start_ns: queue_ns,
            end_ns: queue_ns.saturating_add(exec_ns),
        });
        match outcome {
            Ok(v) => Ok(v),
            Err(payload) => {
                self.inner.panics_ctr.inc();
                local.panics += 1;
                Err(JobPanic {
                    label,
                    message: panic_message(payload),
                })
            }
        }
    }
}

/// Pops the newest job from the worker's own deque (LIFO: cache-warm
/// work first).
fn pop_own<'a, T>(queues: &[JobDeque<'a, T>], me: usize) -> Option<IndexedJob<'a, T>> {
    queues[me].lock().unwrap().pop_back()
}

/// Takes a batch from the shared injector: the first job is returned
/// for immediate execution, the rest land in the worker's own deque
/// (where siblings can steal them back).
fn grab_injector_batch<'a, T>(
    injector: &JobDeque<'a, T>,
    queues: &[JobDeque<'a, T>],
    me: usize,
    workers: usize,
    local: &mut WorkerLocal,
) -> Option<IndexedJob<'a, T>> {
    let mut inj = injector.lock().unwrap();
    if inj.is_empty() {
        return None;
    }
    let grab = inj.len().div_ceil(workers).clamp(1, MAX_BATCH);
    let first = inj.pop_front();
    if grab > 1 {
        let mut own = queues[me].lock().unwrap();
        for _ in 1..grab {
            match inj.pop_front() {
                Some(item) => own.push_back(item),
                None => break,
            }
        }
    }
    local.injector_batches += 1;
    first
}

/// Steals the oldest job from the first non-empty sibling deque (FIFO:
/// take the work its owner would reach last).
fn steal<'a, T>(
    queues: &[JobDeque<'a, T>],
    me: usize,
    workers: usize,
    local: &mut WorkerLocal,
) -> Option<IndexedJob<'a, T>> {
    for offset in 1..workers {
        let victim = (me + offset) % workers;
        if let Some(item) = queues[victim].lock().unwrap().pop_front() {
            local.steals += 1;
            return Some(item);
        }
    }
    None
}

/// The default worker cap: one per core the OS will give us.
fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn indexed_jobs(n: usize) -> Vec<Job<'static, usize>> {
        (0..n)
            .map(|i| Job::new(format!("j{i}"), move || i))
            .collect()
    }

    #[test]
    fn results_come_back_in_submission_order() {
        for workers in [1, 2, 4, 7] {
            let pool = Executor::new(Some(workers));
            let out = pool.run(indexed_jobs(33));
            let values: Vec<usize> = out.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(values, (0..33).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn pool_never_exceeds_the_configured_cap() {
        // The cap regression test the schedulers' predecessors failed:
        // a 32-workload synthetic list on a 2-worker pool must never
        // have more than 2 jobs in flight.
        let pool = Executor::new(Some(2));
        let live = AtomicUsize::new(0);
        let observed_peak = AtomicUsize::new(0);
        let jobs: Vec<Job<'_, ()>> = (0..32)
            .map(|i| {
                let live = &live;
                let observed_peak = &observed_peak;
                Job::new(format!("w{i}"), move || {
                    let depth = live.fetch_add(1, Ordering::SeqCst) + 1;
                    observed_peak.fetch_max(depth, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    live.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        let out = pool.run(jobs);
        assert_eq!(out.len(), 32);
        assert!(out.iter().all(Result::is_ok));
        assert!(
            observed_peak.load(Ordering::SeqCst) <= 2,
            "jobs observed {} concurrent executions on a 2-worker pool",
            observed_peak.load(Ordering::SeqCst)
        );
        let stats = pool.stats();
        assert_eq!(stats.jobs, 32);
        assert!(stats.peak_in_flight <= 2, "peak {}", stats.peak_in_flight);
    }

    #[test]
    fn panics_are_returned_as_values_and_do_not_sink_the_pool() {
        let pool = Executor::new(Some(3));
        let jobs: Vec<Job<'_, u32>> = (0..9)
            .map(|i| {
                Job::new(format!("job-{i}"), move || {
                    if i == 4 {
                        panic!("boom {i}");
                    }
                    i
                })
            })
            .collect();
        let out = pool.run(jobs);
        for (i, res) in out.iter().enumerate() {
            if i == 4 {
                let err = res.as_ref().unwrap_err();
                assert_eq!(err.label, "job-4");
                assert!(err.message.contains("boom 4"));
                assert!(err.to_string().contains("job-4"));
            } else {
                assert_eq!(*res.as_ref().unwrap() as usize, i);
            }
        }
        assert_eq!(pool.stats().panics, 1);
    }

    #[test]
    fn empty_and_single_job_batches_work() {
        let pool = Executor::new(None);
        assert!(pool.run(Vec::<Job<'_, ()>>::new()).is_empty());
        let one = pool.run(vec![Job::new("solo", || 7u8)]);
        assert_eq!(one[0].as_ref().unwrap(), &7);
        assert!(pool.workers() >= 1);
    }

    #[test]
    fn jobs_may_borrow_caller_state() {
        let inputs = [10u64, 20, 30];
        let pool = Executor::new(Some(2));
        let jobs: Vec<Job<'_, u64>> = inputs
            .iter()
            .map(|v| Job::new("borrow", move || v * 2))
            .collect();
        let out = pool.run(jobs);
        let doubled: Vec<u64> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(doubled, vec![20, 40, 60]);
    }

    #[test]
    fn stats_accumulate_across_runs_and_feed_telemetry() {
        let tel = Telemetry::new();
        let pool = Executor::with_telemetry(Some(2), tel.clone());
        pool.run(indexed_jobs(5));
        pool.run(indexed_jobs(3));
        let stats = pool.stats();
        assert_eq!(stats.runs, 2);
        assert_eq!(stats.jobs, 8);
        assert_eq!(stats.workers, 2);
        assert!(stats.exec_ns_total > 0);
        assert!(stats.wall_ns_total > 0);
        assert_eq!(stats.worker_busy_ns.len(), 2);
        let table = stats.summary_table();
        assert!(table.contains("workers"), "{table}");
        let report = tel.report();
        assert_eq!(report.totals.counter("sched.jobs"), Some(8));
        assert!(report
            .totals
            .histograms
            .iter()
            .any(|(name, _)| name == "sched.exec_ns"));
    }

    #[test]
    fn sequential_pool_runs_on_the_caller_thread() {
        let pool = Executor::sequential();
        let caller = std::thread::current().id();
        let out = pool.run(vec![Job::new("here", move || std::thread::current().id())]);
        assert_eq!(out[0].as_ref().unwrap(), &caller);
        assert_eq!(pool.stats().peak_in_flight, 1);
    }

    #[test]
    fn heartbeat_does_not_perturb_results() {
        for workers in [1, 4] {
            let pool = Executor::new(Some(workers));
            pool.set_heartbeat(std::time::Duration::from_millis(1));
            let jobs: Vec<Job<'_, usize>> = (0..16)
                .map(|i| {
                    Job::new(format!("hb{i}"), move || {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                        i
                    })
                })
                .collect();
            let out: Vec<usize> = pool.run(jobs).into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(out, (0..16).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn watchdog_flags_the_straggler_exactly_once() {
        let tel = Telemetry::new();
        let pool = Executor::with_telemetry(Some(4), tel.clone());
        pool.set_heartbeat(std::time::Duration::from_millis(10));
        pool.set_watchdog(8.0);
        // 8 fast jobs establish a ~1ms median and finish before the
        // first heartbeat tick; the straggler runs ~150x the median,
        // far past the 8x threshold, across many ticks.
        let jobs: Vec<Job<'_, usize>> = (0..9)
            .map(|i| {
                Job::new(format!("wd{i}"), move || {
                    let ms = if i == 8 { 150 } else { 1 };
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                    i
                })
            })
            .collect();
        let out: Vec<usize> = pool.run(jobs).into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(out, (0..9).collect::<Vec<_>>());
        assert_eq!(
            tel.report().totals.counter("sched.watchdog"),
            Some(1),
            "the straggler must be counted once, not per tick"
        );
        // The stderr lines have typed twins in the event log: progress
        // ticks, and exactly one slow event naming the straggler.
        let events = tel.report().events;
        assert!(
            events.iter().any(|te| te.event.kind() == "sched_progress"),
            "heartbeat ticks must emit typed progress events"
        );
        let slow: Vec<_> = events
            .iter()
            .filter(|te| te.event.kind() == "sched_slow")
            .collect();
        assert_eq!(slow.len(), 1, "one slow event per straggler");
        match &slow[0].event {
            Event::JobSlow { label, elapsed_ms } => {
                assert_eq!(label, "wd8");
                assert!(*elapsed_ms > 0);
            }
            other => panic!("wrong event: {other:?}"),
        }
    }

    #[test]
    fn watchdog_stays_silent_when_disabled_or_all_jobs_are_uniform() {
        let tel = Telemetry::new();
        let pool = Executor::with_telemetry(Some(2), tel.clone());
        pool.set_heartbeat(std::time::Duration::from_millis(5));
        // Watchdog never armed: uniform jobs, no flag set.
        let jobs: Vec<Job<'_, ()>> = (0..8)
            .map(|i| {
                Job::new(format!("u{i}"), || {
                    std::thread::sleep(std::time::Duration::from_millis(2))
                })
            })
            .collect();
        assert!(pool.run(jobs).iter().all(Result::is_ok));
        assert_eq!(
            tel.report().totals.counter("sched.watchdog").unwrap_or(0),
            0
        );
        // Explicitly disabling after arming also holds it silent.
        pool.set_watchdog(4.0);
        pool.set_watchdog(0.0);
        let jobs: Vec<Job<'_, ()>> = (0..8)
            .map(|i| {
                Job::new(format!("v{i}"), move || {
                    let ms = if i == 7 { 40 } else { 1 };
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                })
            })
            .collect();
        assert!(pool.run(jobs).iter().all(Result::is_ok));
        assert_eq!(
            tel.report().totals.counter("sched.watchdog").unwrap_or(0),
            0
        );
    }

    #[test]
    fn wide_batches_exercise_injector_and_stealing() {
        let pool = Executor::new(Some(4));
        // Uneven job durations force idle workers through the injector
        // and steal paths.
        let jobs: Vec<Job<'_, usize>> = (0..64)
            .map(|i| {
                Job::new(format!("j{i}"), move || {
                    if i % 7 == 0 {
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                    i
                })
            })
            .collect();
        let out = pool.run(jobs);
        assert_eq!(out.len(), 64);
        let stats = pool.stats();
        assert!(
            stats.injector_batches > 0,
            "64 jobs on 4 workers must overflow into the injector"
        );
    }
}
