//! Scheduler statistics: per-worker accounting merged into a
//! cumulative, queryable snapshot for the `--sched-stats` dump.

/// One executed job's wall-clock interval on a worker lane, for the
/// Chrome-trace scheduler export. Times are nanoseconds since the first
/// `run` call's submission instant (monotonic across runs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpan {
    /// Job label as submitted.
    pub label: String,
    /// Worker slot the job executed on (0 for inline runs).
    pub worker: usize,
    /// Execution start, ns since the executor's first submission.
    pub start_ns: u64,
    /// Execution end, ns since the executor's first submission.
    pub end_ns: u64,
}

/// Per-worker tallies collected lock-free on the worker's own stack and
/// merged into the shared accumulator when a `run` call ends.
#[derive(Debug, Default, Clone)]
pub(crate) struct WorkerLocal {
    pub jobs: u64,
    pub panics: u64,
    pub steals: u64,
    pub injector_batches: u64,
    pub busy_ns: u128,
    pub queue_ns_total: u128,
    pub queue_ns_max: u64,
    pub exec_ns_max: u64,
    /// Spans of this run's jobs, start-relative to the run's submission
    /// instant; `merge_worker` rebases them and stamps the worker slot.
    pub spans: Vec<JobSpan>,
}

impl WorkerLocal {
    pub fn record_job(&mut self, queue_ns: u64, exec_ns: u64) {
        self.jobs += 1;
        self.busy_ns += u128::from(exec_ns);
        self.queue_ns_total += u128::from(queue_ns);
        self.queue_ns_max = self.queue_ns_max.max(queue_ns);
        self.exec_ns_max = self.exec_ns_max.max(exec_ns);
    }
}

/// The executor-lifetime accumulator behind [`SchedStats`].
#[derive(Debug, Default)]
pub(crate) struct StatsAcc {
    runs: u64,
    jobs: u64,
    panics: u64,
    steals: u64,
    injector_batches: u64,
    queue_ns_total: u128,
    queue_ns_max: u64,
    exec_ns_total: u128,
    exec_ns_max: u64,
    wall_ns_total: u128,
    peak_in_flight: usize,
    worker_busy_ns: Vec<u128>,
    job_spans: Vec<JobSpan>,
}

impl StatsAcc {
    pub fn merge_worker(&mut self, slot: usize, local: &WorkerLocal) {
        self.jobs += local.jobs;
        self.panics += local.panics;
        self.steals += local.steals;
        self.injector_batches += local.injector_batches;
        self.queue_ns_total += local.queue_ns_total;
        self.queue_ns_max = self.queue_ns_max.max(local.queue_ns_max);
        self.exec_ns_total += local.busy_ns;
        self.exec_ns_max = self.exec_ns_max.max(local.exec_ns_max);
        if self.worker_busy_ns.len() <= slot {
            self.worker_busy_ns.resize(slot + 1, 0);
        }
        self.worker_busy_ns[slot] += local.busy_ns;
        // Rebase run-relative spans onto the executor-lifetime timeline
        // (wall_ns_total = time consumed by all earlier runs).
        let offset = u64::try_from(self.wall_ns_total).unwrap_or(u64::MAX);
        self.job_spans.extend(local.spans.iter().map(|s| JobSpan {
            label: s.label.clone(),
            worker: slot,
            start_ns: s.start_ns.saturating_add(offset),
            end_ns: s.end_ns.saturating_add(offset),
        }));
    }

    pub fn raise_peak(&mut self, peak: usize) {
        self.peak_in_flight = self.peak_in_flight.max(peak);
    }

    pub fn close_run(&mut self, wall_ns: u128) {
        self.runs += 1;
        self.wall_ns_total += wall_ns;
    }

    pub fn snapshot(&self, workers: usize) -> SchedStats {
        SchedStats {
            workers,
            runs: self.runs,
            jobs: self.jobs,
            panics: self.panics,
            steals: self.steals,
            injector_batches: self.injector_batches,
            queue_ns_mean: mean(self.queue_ns_total, self.jobs),
            queue_ns_max: self.queue_ns_max,
            exec_ns_mean: mean(self.exec_ns_total, self.jobs),
            exec_ns_max: self.exec_ns_max,
            exec_ns_total: self.exec_ns_total,
            wall_ns_total: self.wall_ns_total,
            peak_in_flight: self.peak_in_flight,
            worker_busy_ns: self.worker_busy_ns.clone(),
            job_spans: self.job_spans.clone(),
        }
    }
}

fn mean(total: u128, count: u64) -> f64 {
    if count == 0 {
        0.0
    } else {
        total as f64 / count as f64
    }
}

/// A point-in-time view of everything the scheduler has done: job and
/// steal counts, queue/execution timing, wall-clock, and per-worker
/// busy time. Cumulative over every `run` call of one [`Executor`].
///
/// [`Executor`]: crate::Executor
#[derive(Debug, Clone, PartialEq)]
pub struct SchedStats {
    /// Configured worker cap.
    pub workers: usize,
    /// `run` calls completed.
    pub runs: u64,
    /// Jobs executed (including panicked ones).
    pub jobs: u64,
    /// Jobs that panicked (returned as `JobPanic` values).
    pub panics: u64,
    /// Jobs taken from a sibling worker's deque.
    pub steals: u64,
    /// Batches grabbed from the shared injector.
    pub injector_batches: u64,
    /// Mean submission-to-start latency, nanoseconds.
    pub queue_ns_mean: f64,
    /// Worst submission-to-start latency, nanoseconds.
    pub queue_ns_max: u64,
    /// Mean job execution time, nanoseconds.
    pub exec_ns_mean: f64,
    /// Longest job execution time, nanoseconds.
    pub exec_ns_max: u64,
    /// Total CPU time spent inside jobs, nanoseconds.
    pub exec_ns_total: u128,
    /// Total wall-clock across `run` calls, nanoseconds.
    pub wall_ns_total: u128,
    /// Most jobs ever simultaneously in flight (≤ `workers` always).
    pub peak_in_flight: usize,
    /// Busy nanoseconds per worker slot.
    pub worker_busy_ns: Vec<u128>,
    /// Wall-clock execution interval of every job, per worker lane —
    /// the scheduler lanes of the Chrome-trace export.
    pub job_spans: Vec<JobSpan>,
}

impl SchedStats {
    /// Aggregate speedup over a serial execution of the same jobs:
    /// total in-job CPU time over wall-clock.
    pub fn speedup(&self) -> f64 {
        if self.wall_ns_total == 0 {
            0.0
        } else {
            self.exec_ns_total as f64 / self.wall_ns_total as f64
        }
    }

    /// Per-worker utilization in `[0, 1]`: busy time over total
    /// wall-clock.
    pub fn utilization(&self) -> Vec<f64> {
        self.worker_busy_ns
            .iter()
            .map(|&busy| {
                if self.wall_ns_total == 0 {
                    0.0
                } else {
                    (busy as f64 / self.wall_ns_total as f64).min(1.0)
                }
            })
            .collect()
    }

    /// The human-readable `--sched-stats` dump.
    pub fn summary_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "scheduler: {} workers, {} run(s), {} jobs ({} panicked), peak in-flight {}",
            self.workers, self.runs, self.jobs, self.panics, self.peak_in_flight
        );
        let _ = writeln!(
            out,
            "  queue latency   mean {:>10}  max {:>10}",
            fmt_ns(self.queue_ns_mean),
            fmt_ns(self.queue_ns_max as f64)
        );
        let _ = writeln!(
            out,
            "  execution time  mean {:>10}  max {:>10}  total {:>10}",
            fmt_ns(self.exec_ns_mean),
            fmt_ns(self.exec_ns_max as f64),
            fmt_ns(self.exec_ns_total as f64)
        );
        let _ = writeln!(
            out,
            "  wall-clock {:>10}   speedup {:.2}x   steals {}   injector batches {}",
            fmt_ns(self.wall_ns_total as f64),
            self.speedup(),
            self.steals,
            self.injector_batches
        );
        let util = self.utilization();
        if !util.is_empty() {
            let cells: Vec<String> = util
                .iter()
                .enumerate()
                .map(|(i, u)| format!("w{i} {:.0}%", u * 100.0))
                .collect();
            let _ = writeln!(out, "  worker utilization: {}", cells.join("  "));
        }
        out
    }
}

/// Renders nanoseconds at a readable scale.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_snapshot_roundtrip() {
        let mut acc = StatsAcc::default();
        let mut w0 = WorkerLocal::default();
        w0.record_job(100, 1_000);
        w0.record_job(300, 3_000);
        let mut w1 = WorkerLocal::default();
        w1.record_job(200, 2_000);
        w1.steals = 1;
        acc.merge_worker(0, &w0);
        acc.merge_worker(1, &w1);
        acc.raise_peak(2);
        acc.close_run(3_000);
        let s = acc.snapshot(2);
        assert_eq!(s.jobs, 3);
        assert_eq!(s.steals, 1);
        assert_eq!(s.exec_ns_total, 6_000);
        assert_eq!(s.exec_ns_max, 3_000);
        assert!((s.queue_ns_mean - 200.0).abs() < 1e-9);
        assert_eq!(s.peak_in_flight, 2);
        assert!((s.speedup() - 2.0).abs() < 1e-9);
        let util = s.utilization();
        assert_eq!(util[0], 1.0, "busy > wall clamps to full utilization");
        assert!((util[1] - 2_000.0 / 3_000.0).abs() < 1e-9);
        assert!(util.iter().all(|u| (0.0..=1.0).contains(u)));
    }

    #[test]
    fn job_spans_are_rebased_and_stamped() {
        let mut acc = StatsAcc::default();
        let mut w = WorkerLocal::default();
        w.record_job(0, 500);
        w.spans.push(JobSpan {
            label: "a".into(),
            worker: 0,
            start_ns: 10,
            end_ns: 510,
        });
        acc.merge_worker(1, &w);
        acc.close_run(600);
        // Second run's spans shift past the first run's wall time.
        let mut w2 = WorkerLocal::default();
        w2.spans.push(JobSpan {
            label: "b".into(),
            worker: 0,
            start_ns: 5,
            end_ns: 30,
        });
        acc.merge_worker(0, &w2);
        acc.close_run(100);
        let s = acc.snapshot(2);
        assert_eq!(s.job_spans.len(), 2);
        assert_eq!(s.job_spans[0].worker, 1);
        assert_eq!(s.job_spans[0].start_ns, 10);
        assert_eq!(s.job_spans[1].label, "b");
        assert_eq!(s.job_spans[1].worker, 0);
        assert_eq!(s.job_spans[1].start_ns, 605);
        assert_eq!(s.job_spans[1].end_ns, 630);
    }

    #[test]
    fn zero_state_is_well_defined() {
        let s = StatsAcc::default().snapshot(4);
        assert_eq!(s.speedup(), 0.0);
        assert_eq!(s.queue_ns_mean, 0.0);
        assert!(s.utilization().is_empty());
        assert!(s.summary_table().contains("4 workers"));
    }

    #[test]
    fn ns_formatting_scales() {
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_000_000.0), "2.00 ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.00 s");
    }
}
