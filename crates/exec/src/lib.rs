//! **plutus-exec** — the bounded, work-stealing experiment scheduler.
//!
//! Every experiment surface in this workspace — the workload × scheme
//! IPC matrix, the adversarial fault campaigns, and the fail-operational
//! transient/crash campaigns — fans independent simulator runs out over
//! OS threads. Before this crate each surface hand-rolled its own
//! one-thread-per-workload `std::thread::scope` fan-out: core counts
//! were ignored (oversubscription on wide workload lists, idle cores on
//! narrow ones) and all schemes × trials within a workload ran
//! serially, so the slowest workload dominated wall-clock.
//!
//! [`Executor`] fixes the scheduling once, for everyone:
//!
//! * **Bounded.** Worker count defaults to
//!   [`std::thread::available_parallelism`] and never exceeds the
//!   configured cap, regardless of how many jobs are submitted.
//! * **Work-stealing.** Jobs are seeded round-robin into per-worker
//!   deques with the overflow parked in a shared injector; an idle
//!   worker drains its own deque first (LIFO), then grabs a batch from
//!   the injector, then steals (FIFO) from a sibling — so
//!   (workload × scheme × trial)-granularity jobs keep every core busy
//!   until the tail.
//! * **Deterministic.** Results come back in submission order no matter
//!   which worker ran what, and [`derive_seed`] makes every job's
//!   random stream a pure function of (campaign seed, workload index,
//!   scheme index, trial index) — so reports are byte-identical across
//!   `--jobs 1` and `--jobs N`.
//! * **Panic-as-value.** A panicking job is caught and returned as a
//!   [`JobPanic`] carrying its label and payload; the pool and the
//!   remaining jobs keep running.
//! * **Observable.** Per-job queue latency and execution time, steal
//!   and injector-batch counts, and per-worker busy time are recorded
//!   through `plutus-telemetry` (`sched.*` metrics) and aggregated in
//!   [`SchedStats`] for the `experiments --sched-stats` dump.
//!
//! ```
//! use plutus_exec::{Executor, Job};
//!
//! let pool = Executor::new(Some(2));
//! let jobs = (0..8)
//!     .map(|i| Job::new(format!("square-{i}"), move || i * i))
//!     .collect();
//! let results = pool.run(jobs);
//! let squares: Vec<u64> = results.into_iter().map(|r| r.unwrap()).collect();
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! assert!(pool.stats().peak_in_flight <= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pool;
mod stats;

pub use pool::{expect_all, Executor, Job, JobPanic};
pub use stats::{JobSpan, SchedStats};

/// SplitMix-style per-job seed derivation: a pure function of the
/// campaign seed and the (workload, scheme, trial) coordinates, so the
/// random stream a job consumes is independent of worker count,
/// scheduling order, and every other job.
///
/// This is the single derivation both campaign crates use; detection
/// and escape rates measured under any `--jobs N` are bit-identical
/// because of it.
pub fn derive_seed(base: u64, workload: usize, scheme: usize, trial: usize) -> u64 {
    base.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(((workload as u64) << 40) | ((scheme as u64) << 32) | trial as u64)
}

#[cfg(test)]
mod tests {
    use super::derive_seed;
    use std::collections::HashSet;

    #[test]
    fn seeds_are_a_pure_function_of_their_coordinates() {
        for (w, s, t) in [(0, 0, 0), (3, 2, 149), (255, 7, 1000)] {
            assert_eq!(derive_seed(42, w, s, t), derive_seed(42, w, s, t));
        }
    }

    #[test]
    fn seeds_differ_across_the_job_grid() {
        let mut seen = HashSet::new();
        for w in 0..8 {
            for s in 0..4 {
                for t in 0..64 {
                    assert!(
                        seen.insert(derive_seed(0xB00C_5EED, w, s, t)),
                        "seed collision at ({w}, {s}, {t})"
                    );
                }
            }
        }
    }

    #[test]
    fn base_seed_perturbs_every_job() {
        assert_ne!(derive_seed(1, 2, 1, 5), derive_seed(2, 2, 1, 5));
    }
}
