//! Per-partition DRAM channel timing model.
//!
//! Two resources are modeled per channel:
//!
//! - **Banks**: a row miss occupies its bank for the precharge+activate
//!   window; requests to the same bank serialize on that window while
//!   different banks overlap (bank-level parallelism).
//! - **Data bus**: a fluid backlog that accumulates one burst per request
//!   and drains at the configured bytes-per-cycle. Modeling the bus as a
//!   drainable backlog (rather than a single reservation frontier) lets an
//!   out-of-order controller backfill idle slots — a strict-FIFO frontier
//!   would let one bank-delayed request head-of-line-block the whole
//!   channel, which FR-FCFS schedulers specifically avoid.
//!
//! Sustained throughput is capped at `bytes_per_cycle`; scattered accesses
//! additionally pay activation latency and per-bank serialization. This
//! captures the two effects the paper's evaluation depends on: *bandwidth
//! contention* (metadata requests compete with data for bus time) and
//! *locality sensitivity* (scattered metadata fetches pay extra row
//! activations).

use crate::config::DramConfig;
use plutus_telemetry::{Counter, Gauge, Telemetry};

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: u64,
    busy_until: f64,
}

/// Per-bank counters exposed for utilization analysis: row-buffer
/// locality and activation occupancy, per physical bank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BankStat {
    /// Requests that found their row open in this bank.
    pub row_hits: u64,
    /// Requests that paid a precharge+activate in this bank.
    pub row_misses: u64,
    /// Cycles this bank spent occupied by precharge+activate windows
    /// (the resource row conflicts serialize on).
    pub busy_cycles: u64,
}

/// Why one DRAM request waited, phase by phase. The phases partition the
/// request's latency exactly: `bank_wait + activation + backlog_wait +
/// service` equals `done − now`, so ledger attribution built on top of
/// this report stays conservation-exact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramBreakdown {
    /// Completion cycle (what [`DramChannel::access`] returns).
    pub done: u64,
    /// Cycles spent waiting for the target bank to finish an earlier
    /// activation (row-conflict serialization).
    pub bank_wait: u64,
    /// Precharge+activate cycles paid by a row miss (0 on a row hit).
    pub activation: u64,
    /// Cycles spent waiting for the bus backlog to drain before this
    /// burst could start.
    pub backlog_wait: u64,
    /// Burst + CAS service cycles (the residual, so phases sum exactly).
    pub service: u64,
    /// Whether the request hit an open row.
    pub row_hit: bool,
}

/// One DRAM channel (one per memory partition).
#[derive(Debug, Clone)]
pub struct DramChannel {
    cfg: DramConfig,
    banks: Vec<Bank>,
    /// Outstanding bus bytes not yet drained.
    backlog_bytes: f64,
    /// Last time the backlog was drained to.
    last_time: f64,
    bytes_transferred: u64,
    row_hits: u64,
    row_misses: u64,
    bank_stats: Vec<BankStat>,
    /// Deepest bus backlog ever observed, in bytes.
    backlog_hwm_bytes: f64,
    tel_row_hits: Counter,
    tel_row_misses: Counter,
    tel_bank_busy: Counter,
    tel_backlog_hwm: Gauge,
}

impl DramChannel {
    /// Creates a channel with the given timing parameters.
    pub fn new(cfg: DramConfig) -> Self {
        let banks = vec![
            Bank {
                open_row: u64::MAX,
                busy_until: 0.0
            };
            cfg.banks
        ];
        let bank_stats = vec![BankStat::default(); cfg.banks];
        Self {
            cfg,
            banks,
            backlog_bytes: 0.0,
            last_time: 0.0,
            bytes_transferred: 0,
            row_hits: 0,
            row_misses: 0,
            bank_stats,
            backlog_hwm_bytes: 0.0,
            tel_row_hits: Counter::disabled(),
            tel_row_misses: Counter::disabled(),
            tel_bank_busy: Counter::disabled(),
            tel_backlog_hwm: Gauge::disabled(),
        }
    }

    /// Mirrors this channel's statistics into `tel`: `<prefix>.row_hits`,
    /// `<prefix>.row_misses`, `<prefix>.bank_busy_cycles`, and the
    /// `<prefix>.backlog_hwm_bytes` high-water gauge. Channels attached
    /// with the same prefix aggregate into the same counters (the gauge
    /// keeps the max across channels).
    pub fn attach_telemetry(&mut self, tel: &Telemetry, prefix: &str) {
        self.tel_row_hits = tel.counter(&format!("{prefix}.row_hits"));
        self.tel_row_misses = tel.counter(&format!("{prefix}.row_misses"));
        self.tel_bank_busy = tel.counter(&format!("{prefix}.bank_busy_cycles"));
        self.tel_backlog_hwm = tel.gauge(&format!("{prefix}.backlog_hwm_bytes"));
    }

    /// Schedules a `bytes`-byte transfer touching `addr` at time `now`
    /// (core cycles) and returns its completion cycle.
    ///
    /// Calls must use non-decreasing `now` values (the event loop
    /// guarantees this); earlier values are treated as `last_time`.
    pub fn access(&mut self, now: u64, addr: u64, bytes: u32) -> u64 {
        self.access_report(now, addr, bytes).done
    }

    /// Like [`DramChannel::access`], but also reports *why* the request
    /// waited: bank serialization, row activation, bus-backlog drain, and
    /// burst+CAS service, as an exact partition of `done − now` (see
    /// [`DramBreakdown`]). The timing model is identical to `access`.
    pub fn access_report(&mut self, now: u64, addr: u64, bytes: u32) -> DramBreakdown {
        let nowf = (now as f64).max(self.last_time);
        // Drain the bus backlog with elapsed real time.
        self.backlog_bytes =
            (self.backlog_bytes - (nowf - self.last_time) * self.cfg.bytes_per_cycle).max(0.0);
        self.last_time = nowf;

        // Bank-address hashing (universal in GPU memory controllers):
        // XOR-fold upper block bits into the bank index so power-of-two
        // aligned regions — tree-level bases, metadata arrays — don't all
        // camp on bank 0.
        let block = addr / crate::address::BLOCK_SIZE;
        let bank_idx = ((block ^ (block >> 5) ^ (block >> 10) ^ (block >> 15))
            % self.cfg.banks as u64) as usize;
        let row = addr / self.cfg.row_bytes;
        let bank = &mut self.banks[bank_idx];
        let ready = nowf.max(bank.busy_until);
        let row_hit = bank.open_row == row;
        let act_done = if row_hit {
            self.row_hits += 1;
            self.bank_stats[bank_idx].row_hits += 1;
            self.tel_row_hits.inc();
            ready
        } else {
            self.row_misses += 1;
            self.bank_stats[bank_idx].row_misses += 1;
            self.tel_row_misses.inc();
            bank.open_row = row;
            let act = self.cfg.t_rp + self.cfg.t_rcd;
            self.bank_stats[bank_idx].busy_cycles += act;
            self.tel_bank_busy.add(act);
            let done = ready + act as f64;
            bank.busy_until = done;
            done
        };

        let queue_ready = nowf + self.backlog_bytes / self.cfg.bytes_per_cycle;
        let burst = bytes as f64 / self.cfg.bytes_per_cycle;
        self.backlog_bytes += bytes as f64;
        if self.backlog_bytes > self.backlog_hwm_bytes {
            self.backlog_hwm_bytes = self.backlog_bytes;
            self.tel_backlog_hwm.set_max(self.backlog_hwm_bytes as u64);
        }
        self.bytes_transferred += bytes as u64;

        let start = act_done.max(queue_ready);
        let done = (start + burst + self.cfg.t_cas as f64).ceil() as u64;

        // Decompose done − now into waiting phases. Each phase rounds
        // down from the fluid model; the burst+CAS service absorbs the
        // residual so the phases always sum exactly to the latency.
        let bank_wait = (ready - nowf) as u64;
        let activation = if row_hit {
            0
        } else {
            self.cfg.t_rp + self.cfg.t_rcd
        };
        let backlog_wait = (queue_ready.max(nowf) - nowf) as u64;
        let visible_backlog = backlog_wait.saturating_sub(bank_wait + activation);
        let latency = done.saturating_sub(now);
        let accounted = bank_wait + activation + visible_backlog;
        DramBreakdown {
            done,
            bank_wait,
            activation,
            backlog_wait: visible_backlog,
            service: latency.saturating_sub(accounted),
            row_hit,
        }
    }

    /// Unloaded service latency estimate for one request (row activation +
    /// burst + CAS), used to extend a dependent chain's latency without
    /// double-booking the bus.
    pub fn unloaded_latency(&self, bytes: u32) -> u64 {
        let burst = bytes as f64 / self.cfg.bytes_per_cycle;
        (self.cfg.t_rp + self.cfg.t_rcd + self.cfg.t_cas) + burst.ceil() as u64
    }

    /// Instantaneous bus-queue depth in cycles as seen by a request at
    /// `now` (diagnostic).
    pub fn queue_depth_cycles(&self, now: u64) -> f64 {
        let elapsed = (now as f64 - self.last_time).max(0.0);
        ((self.backlog_bytes - elapsed * self.cfg.bytes_per_cycle) / self.cfg.bytes_per_cycle)
            .max(0.0)
    }

    /// Total bytes moved over this channel.
    pub fn bytes_transferred(&self) -> u64 {
        self.bytes_transferred
    }

    /// (row hits, row misses) so far.
    pub fn row_stats(&self) -> (u64, u64) {
        (self.row_hits, self.row_misses)
    }

    /// Per-bank row-locality and occupancy counters, indexed by physical
    /// bank.
    pub fn bank_stats(&self) -> &[BankStat] {
        &self.bank_stats
    }

    /// Deepest bus backlog observed so far, in bytes (rounded up).
    pub fn backlog_high_water_bytes(&self) -> u64 {
        self.backlog_hwm_bytes.ceil() as u64
    }

    /// Bus backlog outstanding at `now`, in bytes (rounded up) — the
    /// instantaneous queue depth for epoch-sampled timelines.
    pub fn backlog_bytes_at(&self, now: u64) -> u64 {
        let elapsed = (now as f64 - self.last_time).max(0.0);
        (self.backlog_bytes - elapsed * self.cfg.bytes_per_cycle)
            .max(0.0)
            .ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel() -> DramChannel {
        DramChannel::new(DramConfig {
            bytes_per_cycle: 16.0,
            banks: 4,
            row_bytes: 1024,
            t_cas: 10,
            t_rcd: 10,
            t_rp: 10,
        })
    }

    #[test]
    fn first_access_pays_row_activation() {
        let mut d = channel();
        // Row miss: (10+10) activate + 32/16 burst + 10 CAS = 32.
        assert_eq!(d.access(0, 0x0, 32), 32);
    }

    #[test]
    fn row_hit_overlaps_activation_window() {
        let mut d = channel();
        let first = d.access(0, 0x0, 32);
        // Same row: backlog is only 2 cycles deep, so the burst rides just
        // behind the first while its activation completes.
        let second = d.access(0, 0x20, 32);
        assert_eq!(first, 32);
        assert_eq!(second, 32);
        assert_eq!(d.row_stats(), (1, 1));
    }

    #[test]
    fn different_banks_overlap_activation() {
        let mut d = channel();
        let a = d.access(0, 0x000, 32); // bank 0 (block 0)
        let b = d.access(0, 0x080, 32); // bank 1 (block 1)
        assert_eq!(a, 32);
        assert_eq!(b, 32);
    }

    #[test]
    fn bandwidth_saturates_bus() {
        let mut d = channel();
        // 100 transfers at time 0 over two banks in one row each: steady
        // state is bus-limited at 2 cycles per 32 B.
        let mut last = 0;
        for i in 0..100u64 {
            last = d.access(0, (i % 2) * 0x80 + (i / 2 % 8) * 0x20, 32);
        }
        // Backlog before the 100th access = 99 bursts = 198 cycles.
        assert_eq!(last, 210);
        assert_eq!(d.bytes_transferred(), 3200);
    }

    #[test]
    fn backlog_drains_with_time() {
        let mut d = channel();
        for i in 0..100u64 {
            d.access(0, (i % 2) * 0x80 + (i / 2 % 8) * 0x20, 32);
        }
        // 300 cycles later the backlog (200 cycles deep) has fully drained:
        // a fresh row hit completes unloaded.
        let done = d.access(300, 0x20, 32);
        assert_eq!(done, 312);
    }

    #[test]
    fn no_head_of_line_blocking_from_busy_banks() {
        let mut d = channel();
        // Three consecutive row conflicts pile 60+ cycles of activation
        // delay onto bank 0.
        d.access(0, 0x0, 32); // bank 0, row 0
        d.access(0, 1024, 32); // bank 0, row 1 (conflict)
        let slow = d.access(0, 2048, 32); // bank 0, row 2 (conflict)
        assert!(slow >= 70, "bank conflicts must serialize: {slow}");
        // A request to an idle bank is NOT stuck behind them on the bus.
        let fast = d.access(0, 0x080, 32);
        assert!(fast <= 40, "idle-bank access must backfill the bus: {fast}");
    }

    #[test]
    fn row_conflicts_serialize_on_the_bank() {
        let mut d = channel();
        let a = d.access(0, 0x0, 32); // row 0
        let b = d.access(0, 1024, 32); // bank 0, row 1
        assert_eq!(a, 32);
        // Bank re-activatable at 20, + 20 activate + 2 burst + 10 CAS.
        assert_eq!(b, 52);
        assert_eq!(d.row_stats(), (0, 2));
    }

    #[test]
    fn later_now_pushes_start_time() {
        let mut d = channel();
        assert_eq!(d.access(1000, 0x0, 32), 1032);
    }

    #[test]
    fn larger_transfers_occupy_proportional_bus_time() {
        let mut d = channel();
        // Back-to-back 128 B row hits at time 0: each adds 8 cycles of
        // backlog; completions stay at 38 while the backlog hides inside
        // the 20-cycle activation window, then fall behind at bus rate.
        assert_eq!(d.access(0, 0x0, 128), 38); // 20 act + 8 burst + 10 CAS
        assert_eq!(d.access(0, 0x20, 128), 38); // queue 8 < act 20
        assert_eq!(d.access(0, 0x40, 128), 38); // queue 16 < act 20
        assert_eq!(d.access(0, 0x60, 128), 42); // queue 24 > act 20
    }

    #[test]
    fn breakdown_phases_sum_to_latency() {
        let mut d = channel();
        for i in 0..200u64 {
            let now = i / 3;
            let b = d.access_report(now, (i % 8) * 0x20 + (i / 8) * 2048, 32);
            let latency = b.done - now;
            assert_eq!(
                b.bank_wait + b.activation + b.backlog_wait + b.service,
                latency,
                "phases must partition the latency exactly (req {i})"
            );
        }
    }

    #[test]
    fn breakdown_matches_access_timing() {
        let mut a = channel();
        let mut b = channel();
        for i in 0..100u64 {
            let addr = (i % 4) * 0x80 + (i / 4 % 8) * 0x20;
            assert_eq!(
                a.access(i / 2, addr, 32),
                b.access_report(i / 2, addr, 32).done
            );
        }
        assert_eq!(a.row_stats(), b.row_stats());
    }

    #[test]
    fn bank_stats_and_backlog_hwm_accumulate() {
        let mut d = channel();
        d.access(0, 0x0, 32); // bank 0 row miss
        d.access(0, 1024, 32); // bank 0 row conflict
        d.access(0, 0x80, 32); // bank 1 row miss
        let bs = d.bank_stats();
        assert_eq!(bs[0].row_misses, 2);
        assert_eq!(bs[1].row_misses, 1);
        // Each miss occupies its bank for t_rp + t_rcd = 20 cycles.
        assert_eq!(bs[0].busy_cycles, 40);
        assert_eq!(bs[1].busy_cycles, 20);
        let (hits, misses) = d.row_stats();
        assert_eq!(
            bs.iter().map(|b| b.row_hits).sum::<u64>()
                + bs.iter().map(|b| b.row_misses).sum::<u64>(),
            hits + misses
        );
        // Three outstanding 32 B bursts at time 0 peak the backlog.
        assert_eq!(d.backlog_high_water_bytes(), 96);
        assert!(d.backlog_bytes_at(0) > 0);
        assert_eq!(d.backlog_bytes_at(1_000_000), 0);
    }

    #[test]
    fn sustained_throughput_capped_at_bus_rate() {
        let mut d = channel();
        // Issue one 32 B request per cycle (above the 16 B/cycle rate) on
        // rotating banks/rows kept hot; completions must fall behind at
        // the bus rate: 2 cycles per request.
        let mut last = 0;
        for i in 0..1000u64 {
            last = d.access(i, (i % 4) * 0x80 + ((i / 4) % 8) * 0x20, 32);
        }
        // 1000 requests × 32 B at 16 B/cycle ≈ 2000 cycles.
        assert!((1990..=2110).contains(&last), "last completion {last}");
    }
}
