//! Cycle- and access-scheduled fault injection.
//!
//! A [`FaultSchedule`] is handed to the simulator before `run()` and
//! consumed *during* execution: when simulated time (or the number of
//! arrived memory accesses) reaches a fault's trigger, the simulator
//! applies it — corrupting or replaying data sectors in the
//! [`crate::BackingMemory`] directly, and delegating metadata faults
//! (counter rollback, MAC tamper, BMT-node tamper, compact-counter
//! rollback) to the owning partition's engine via
//! [`crate::SecurityEngine::inject_fault`].
//!
//! Every applied fault is *armed* on its data sector; the simulator
//! resolves it into a [`crate::stats::FaultOutcome`] when the sector is
//! next filled (detected / escaped), overwritten (clobbered), or when the
//! run ends without either (unobserved). This is what turns one-shot
//! tamper probes into measurable Monte Carlo campaigns: the simulation
//! continues and counts rather than stopping at the first violation.

use crate::address::SectorAddr;
use crate::security::MetaFault;

/// When a scheduled fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTrigger {
    /// Fire at the first event at or after this simulated cycle.
    AtCycle(u64),
    /// Fire just before the Nth memory access (1-based) is processed at
    /// its L2 partition.
    AtAccess(u64),
}

/// What a scheduled fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// XOR `mask` into the stored bytes of the data sector.
    CorruptData {
        /// Mask XORed into the 32 stored bytes.
        mask: [u8; 32],
    },
    /// Capture the sector's current bytes for a later [`FaultKind::ReplayData`].
    /// Snapshots are attacker bookkeeping, not faults: they change nothing
    /// and produce no fault record.
    SnapshotData,
    /// Restore the bytes captured by the most recent snapshot of the same
    /// sector. Applies only if a snapshot exists, the sector is resident,
    /// and the bytes actually differ (replaying identical ciphertext is
    /// not an attack).
    ReplayData,
    /// A fault against the engine's metadata structures.
    Metadata(MetaFault),
}

impl FaultKind {
    /// Stable short label used in fault records and campaign reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::CorruptData { .. } => "corrupt_data",
            FaultKind::SnapshotData => "snapshot_data",
            FaultKind::ReplayData => "replay_data",
            FaultKind::Metadata(mf) => mf.label(),
        }
    }
}

/// One fault scheduled against one data sector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledFault {
    /// When the fault fires.
    pub trigger: FaultTrigger,
    /// The data sector the fault targets (metadata faults name the data
    /// sector whose metadata is attacked).
    pub addr: SectorAddr,
    /// What the fault does.
    pub kind: FaultKind,
}

/// An ordered collection of scheduled faults the simulator drains as the
/// run advances.
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    by_cycle: Vec<ScheduledFault>,
    by_access: Vec<ScheduledFault>,
}

impl FaultSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault to the schedule.
    pub fn push(&mut self, fault: ScheduledFault) {
        match fault.trigger {
            FaultTrigger::AtCycle(_) => self.by_cycle.push(fault),
            FaultTrigger::AtAccess(_) => self.by_access.push(fault),
        }
    }

    /// Number of faults not yet fired.
    pub fn len(&self) -> usize {
        self.by_cycle.len() + self.by_access.len()
    }

    /// Whether all faults have fired (or none were scheduled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sorts both queues so due faults can be popped from the front.
    /// Called once when the schedule is installed; the sort is stable so
    /// same-trigger faults fire in insertion order.
    pub(crate) fn normalize(&mut self) {
        self.by_cycle.sort_by_key(|f| match f.trigger {
            FaultTrigger::AtCycle(c) => c,
            FaultTrigger::AtAccess(_) => unreachable!("cycle queue holds cycle triggers"),
        });
        self.by_access.sort_by_key(|f| match f.trigger {
            FaultTrigger::AtAccess(n) => n,
            FaultTrigger::AtCycle(_) => unreachable!("access queue holds access triggers"),
        });
        // Pop from the back.
        self.by_cycle.reverse();
        self.by_access.reverse();
    }

    /// Removes and returns the next fault due at `cycle` with
    /// `accesses_seen` accesses arrived, if any.
    pub(crate) fn pop_due(&mut self, cycle: u64, accesses_seen: u64) -> Option<ScheduledFault> {
        if let Some(f) = self.by_cycle.last() {
            if matches!(f.trigger, FaultTrigger::AtCycle(c) if c <= cycle) {
                return self.by_cycle.pop();
            }
        }
        if let Some(f) = self.by_access.last() {
            if matches!(f.trigger, FaultTrigger::AtAccess(n) if n <= accesses_seen) {
                return self.by_access.pop();
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fault(trigger: FaultTrigger) -> ScheduledFault {
        ScheduledFault {
            trigger,
            addr: SectorAddr::new(0x40),
            kind: FaultKind::CorruptData { mask: [1; 32] },
        }
    }

    #[test]
    fn pops_in_trigger_order() {
        let mut s = FaultSchedule::new();
        s.push(fault(FaultTrigger::AtCycle(50)));
        s.push(fault(FaultTrigger::AtCycle(10)));
        s.push(fault(FaultTrigger::AtAccess(3)));
        s.normalize();
        assert_eq!(s.len(), 3);
        assert!(s.pop_due(5, 0).is_none());
        assert_eq!(s.pop_due(20, 0).unwrap().trigger, FaultTrigger::AtCycle(10));
        assert!(s.pop_due(20, 2).is_none());
        assert_eq!(s.pop_due(20, 3).unwrap().trigger, FaultTrigger::AtAccess(3));
        assert_eq!(s.pop_due(60, 3).unwrap().trigger, FaultTrigger::AtCycle(50));
        assert!(s.is_empty());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(
            FaultKind::CorruptData { mask: [0; 32] }.label(),
            "corrupt_data"
        );
        assert_eq!(FaultKind::ReplayData.label(), "replay_data");
        assert_eq!(
            FaultKind::Metadata(MetaFault::TamperMac).label(),
            "tamper_mac"
        );
        assert_eq!(
            FaultKind::Metadata(MetaFault::RollbackCompact { value: 0 }).label(),
            "rollback_compact"
        );
    }
}
