//! The interface between the memory controller and a memory-security
//! scheme.
//!
//! Every L2 miss (fill) and dirty writeback passes through a
//! [`SecurityEngine`]. The engine performs the *functional* work (real
//! encryption, MAC and integrity-tree bookkeeping against the
//! [`BackingMemory`]) and returns a *timing plan* describing the extra DRAM
//! requests and crypto latencies the simulator must charge. One engine
//! instance exists per memory partition, mirroring PSSM's per-partition
//! security engines and metadata caches.

use crate::address::SectorAddr;
use crate::mem::BackingMemory;
use crate::stats::TrafficClass;

/// One metadata DRAM request in a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramReq {
    /// Address (used for bank/row mapping; metadata is partition-local).
    pub addr: u64,
    /// Transfer size in bytes (32 for sectors, 128 for whole blocks).
    pub bytes: u32,
    /// Traffic classification for the statistics breakdown.
    pub class: TrafficClass,
    /// Integrity-tree level of the touched node (0 for leaves and
    /// non-tree metadata) — used by the bandwidth-attribution trace.
    pub level: u32,
}

impl DramReq {
    /// Convenience constructor (level 0).
    pub fn new(addr: u64, bytes: u32, class: TrafficClass) -> Self {
        Self {
            addr,
            bytes,
            class,
            level: 0,
        }
    }

    /// Tags the request with the integrity-tree level it touches.
    pub fn at_level(mut self, level: u32) -> Self {
        self.level = level;
        self
    }
}

/// The verification layer that caught an integrity violation.
///
/// Fault-injection campaigns histogram detections by layer to show which
/// mechanism each engine actually relies on: PSSM-style engines catch
/// data tampering at the MAC, Plutus catches it on the value-verification
/// read path, and counter replays surface in one of the two trees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectionLayer {
    /// The value-verification read path (value screen + deferred MAC).
    ValueVerification,
    /// The per-sector MAC, checked in parallel with decryption.
    Mac,
    /// The Bonsai Merkle Tree over the original counters.
    Bmt {
        /// Tree level at which verification failed (0 = leaf).
        level: u32,
    },
    /// The small BMT protecting the compact counters.
    CompactBmt {
        /// Tree level at which verification failed (0 = leaf).
        level: u32,
    },
}

impl DetectionLayer {
    /// Stable short label used in histograms and telemetry exports.
    pub fn label(&self) -> &'static str {
        match self {
            DetectionLayer::ValueVerification => "value_verification",
            DetectionLayer::Mac => "mac",
            DetectionLayer::Bmt { .. } => "bmt",
            DetectionLayer::CompactBmt { .. } => "compact_bmt",
        }
    }
}

impl std::fmt::Display for DetectionLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DetectionLayer::Bmt { level } => write!(f, "bmt[{level}]"),
            DetectionLayer::CompactBmt { level } => write!(f, "compact_bmt[{level}]"),
            other => f.write_str(other.label()),
        }
    }
}

/// A detected integrity violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Violation {
    /// The per-sector MAC did not match the decrypted data.
    MacMismatch {
        /// The offending data sector.
        addr: SectorAddr,
    },
    /// Tampering caught on the value-verification read path: the value
    /// screen rejected the fast path and the deferred MAC confirmed the
    /// mismatch (the Plutus read flow of the paper's Fig. 11).
    ValueMismatch {
        /// The offending data sector.
        addr: SectorAddr,
    },
    /// An integrity-tree node failed verification (replayed counter).
    TreeMismatch {
        /// The offending data sector.
        addr: SectorAddr,
        /// Tree level at which verification failed (0 = leaf/counter).
        level: u32,
    },
    /// A node of the compact-counter BMT failed verification (tampered or
    /// rolled-back compact counter).
    CompactTreeMismatch {
        /// The offending data sector.
        addr: SectorAddr,
        /// Tree level at which verification failed (0 = leaf).
        level: u32,
    },
}

impl Violation {
    /// The data sector the violation was raised for.
    pub fn addr(&self) -> SectorAddr {
        match self {
            Violation::MacMismatch { addr }
            | Violation::ValueMismatch { addr }
            | Violation::TreeMismatch { addr, .. }
            | Violation::CompactTreeMismatch { addr, .. } => *addr,
        }
    }

    /// Which verification layer detected the violation.
    pub fn layer(&self) -> DetectionLayer {
        match self {
            Violation::MacMismatch { .. } => DetectionLayer::Mac,
            Violation::ValueMismatch { .. } => DetectionLayer::ValueVerification,
            Violation::TreeMismatch { level, .. } => DetectionLayer::Bmt { level: *level },
            Violation::CompactTreeMismatch { level, .. } => {
                DetectionLayer::CompactBmt { level: *level }
            }
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::MacMismatch { addr } => write!(f, "MAC mismatch at {addr}"),
            Violation::ValueMismatch { addr } => {
                write!(f, "value-verification mismatch at {addr}")
            }
            Violation::TreeMismatch { addr, level } => {
                write!(f, "integrity-tree mismatch at {addr} (level {level})")
            }
            Violation::CompactTreeMismatch { addr, level } => {
                write!(f, "compact-tree mismatch at {addr} (level {level})")
            }
        }
    }
}

impl std::error::Error for Violation {}

/// Why a checkpoint/restore or metadata-recovery step could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// No checkpoint has been taken yet (enable checkpointing and run
    /// past at least one boundary first).
    NoCheckpoint,
    /// The active engine does not implement the recovery surface.
    Unsupported {
        /// Name of the engine that lacks support.
        engine: &'static str,
    },
    /// Phoenix-style counter reconstruction found no candidate counter
    /// consistent with the sector's persistent MAC (or pinned values).
    CounterUnrecoverable {
        /// Raw address of the unrecoverable sector.
        addr: u64,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::NoCheckpoint => f.write_str("no metadata checkpoint available"),
            RecoveryError::Unsupported { engine } => {
                write!(f, "engine '{engine}' does not support checkpoint/recovery")
            }
            RecoveryError::CounterUnrecoverable { addr } => {
                write!(f, "no counter consistent with MAC at {addr:#x}")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

/// Tally of one Phoenix-style metadata-recovery pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sectors whose checkpointed counter already matched the MAC.
    pub already_consistent: u64,
    /// Sectors whose counter was reconstructed by probing candidate
    /// values against the persistent MAC.
    pub recovered_by_mac: u64,
    /// Sectors recovered through the pinned-value screen (Plutus
    /// skip-MAC writes leave the MAC stale; the persistent pinned set
    /// re-authenticates them and the MAC is then repaired).
    pub recovered_by_value: u64,
    /// Raw addresses of sectors no candidate counter could explain.
    pub failed: Vec<u64>,
}

impl RecoveryReport {
    /// Folds another partition's report into this one.
    pub fn merge(&mut self, other: &RecoveryReport) {
        self.already_consistent += other.already_consistent;
        self.recovered_by_mac += other.recovered_by_mac;
        self.recovered_by_value += other.recovered_by_value;
        self.failed.extend_from_slice(&other.failed);
    }

    /// Sectors examined by the pass.
    pub fn total(&self) -> u64 {
        self.already_consistent
            + self.recovered_by_mac
            + self.recovered_by_value
            + self.failed.len() as u64
    }
}

/// A fault a [`crate::FaultSchedule`] asks the owning engine to apply to
/// its *metadata* structures mid-run (data-sector faults go straight to
/// the [`BackingMemory`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaFault {
    /// Roll the sector's encryption counter (minor part) back to `value`.
    RollbackCounter {
        /// Minor-counter value to roll back to.
        value: u8,
    },
    /// Corrupt the sector's stored MAC tag.
    TamperMac,
    /// Roll the sector's compact counter back to `value`.
    RollbackCompact {
        /// Compact-counter value to roll back to.
        value: u8,
    },
    /// Corrupt the BMT node (leaf record) covering the sector's counter.
    TamperBmtNode,
}

impl MetaFault {
    /// Stable short label used in campaign reports.
    pub fn label(&self) -> &'static str {
        match self {
            MetaFault::RollbackCounter { .. } => "rollback_counter",
            MetaFault::TamperMac => "tamper_mac",
            MetaFault::RollbackCompact { .. } => "rollback_compact",
            MetaFault::TamperBmtNode => "tamper_bmt_node",
        }
    }
}

/// Timing plan for serving one L2 read miss.
///
/// The simulator executes it as:
///
/// ```text
/// t_meta  = max over pre_chains of (sequential DRAM reads in the chain)
/// t_data  = DRAM read of the 32 B data sector (issued by the simulator)
/// t_ready = max(t_meta, t_data) + crypto_latency
/// if post_chain: t_ready = (sequential reads from t_ready) + post_latency
/// ```
///
/// Metadata writebacks in `writes` are fire-and-forget (they consume
/// bandwidth but nothing waits on them).
#[derive(Debug, Clone, Default)]
pub struct FillPlan {
    /// Parallel chains of *sequential* metadata reads required before the
    /// data can be verified (e.g. counter → BMT level 1 → BMT level 2).
    pub pre_chains: Vec<Vec<DramReq>>,
    /// Latency charged once data and `pre_chains` complete (decryption).
    pub crypto_latency: u64,
    /// Reads issued only after decryption — Plutus's deferred MAC fetch.
    pub post_chain: Vec<DramReq>,
    /// Latency charged after `post_chain` (MAC verification).
    pub post_latency: u64,
    /// Reads nothing waits on (e.g. lazy-update fetches of integrity-tree
    /// nodes being propagated); they consume bandwidth only.
    pub async_reads: Vec<DramReq>,
    /// Asynchronous metadata writebacks (dirty metadata-cache evictions).
    pub writes: Vec<DramReq>,
    /// Decrypted sector contents delivered to the core.
    pub plaintext: [u8; 32],
    /// Set when verification failed (tampered/replayed memory).
    pub violation: Option<Violation>,
    /// True when the sector was accepted by value verification alone
    /// (no MAC fetched). Campaigns use this to classify an undetected
    /// tampered fill as a forgery acceptance of the fast path (Eq. 1).
    pub verified_by_value: bool,
}

/// Timing plan for one dirty-sector writeback.
#[derive(Debug, Clone, Default)]
pub struct WritePlan {
    /// Parallel chains of sequential metadata reads needed to perform the
    /// write (e.g. counter fetch for read-modify-write on a miss).
    pub pre_chains: Vec<Vec<DramReq>>,
    /// Crypto latency (encryption + MAC generation).
    pub crypto_latency: u64,
    /// Reads nothing waits on (lazy-update and overflow re-encryption
    /// fetches); they consume bandwidth only.
    pub async_reads: Vec<DramReq>,
    /// Metadata writes (counter/MAC/BMT blocks); the 32 B data write itself
    /// is issued by the simulator.
    pub writes: Vec<DramReq>,
    /// Set when a metadata fetch performed for this write failed to verify.
    pub violation: Option<Violation>,
}

/// A pluggable memory-security scheme, one instance per memory partition.
pub trait SecurityEngine {
    /// Engine name used in reports (e.g. `"pssm"`, `"plutus"`).
    fn name(&self) -> &'static str;

    /// Installs one sector of the initial (pre-kernel) memory image,
    /// encrypting it with its current counter and establishing whatever
    /// metadata the scheme needs. Must not generate timing.
    fn install(&mut self, addr: SectorAddr, plaintext: &[u8; 32], mem: &mut BackingMemory);

    /// Serves an L2 read miss of `addr`: decrypt + verify, returning the
    /// timing plan and plaintext.
    fn on_fill(&mut self, addr: SectorAddr, mem: &mut BackingMemory) -> FillPlan;

    /// Serves a dirty writeback of `addr` carrying `plaintext`: encrypt,
    /// update metadata, write ciphertext to `mem`, return the timing plan.
    fn on_writeback(
        &mut self,
        addr: SectorAddr,
        plaintext: &[u8; 32],
        mem: &mut BackingMemory,
    ) -> WritePlan;

    /// Engine-specific statistic counters folded into [`crate::stats::SimStats::engine`].
    fn extra_stats(&self) -> Vec<(String, u64)> {
        Vec::new()
    }

    /// Hands the engine a telemetry handle so it can register metrics and
    /// emit events (value-cache hits, MAC fetches, BMT walks, …). Called
    /// once per engine, right after construction and before any traffic.
    /// The default implementation ignores it.
    fn attach_telemetry(&mut self, _tel: &plutus_telemetry::Telemetry) {}

    /// Applies a mid-run metadata fault from a [`crate::FaultSchedule`]
    /// to the engine's functional structures (counters, MACs, BMT nodes,
    /// compact counters). Returns `true` only when the engine has such a
    /// structure *and* applying the fault changed its state — a rollback
    /// to the current value, or a fault against metadata the scheme does
    /// not keep, returns `false` so campaigns can count it as
    /// not-applied rather than an escape. Must not generate timing.
    fn inject_fault(&mut self, _addr: SectorAddr, _fault: MetaFault) -> bool {
        false
    }

    /// Clones the engine's full metadata state as an epoch checkpoint.
    /// Engines without checkpoint support return `None` (the default).
    fn checkpoint(&self) -> Option<Box<dyn SecurityEngine>> {
        None
    }

    /// Concrete-type escape hatch so [`SecurityEngine::crash_revert`]
    /// implementations can downcast the checkpoint handed back to them.
    /// Engines supporting recovery return `Some(self)`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Simulates a crash: replaces this engine's *volatile* metadata with
    /// `checkpoint`'s, keeping whatever state the scheme persists across
    /// power loss (write-through MACs, the pinned value set). Returns
    /// `false` when `checkpoint` is not a checkpoint of this engine type
    /// or the scheme has no recovery support.
    fn crash_revert(&mut self, _checkpoint: &dyn SecurityEngine) -> bool {
        false
    }

    /// Phoenix-style metadata reconstruction after a crash revert: for
    /// each resident sector, probe candidate counter values against the
    /// persistent MACs (and pinned values) and restore the metadata that
    /// was lost since the checkpoint. Must not generate timing.
    fn recover(
        &mut self,
        _mem: &BackingMemory,
        _sectors: &[SectorAddr],
    ) -> Result<RecoveryReport, RecoveryError> {
        Err(RecoveryError::Unsupported {
            engine: self.name(),
        })
    }

    /// Decrypts `addr` with the engine's *current* metadata without
    /// mutating any state or generating timing — the oracle crash audits
    /// compare reads against. `None` when the scheme cannot peek.
    fn peek_plaintext(&self, _addr: SectorAddr, _mem: &BackingMemory) -> Option<[u8; 32]> {
        None
    }

    /// Tells the engine one of its fills needed the retry path
    /// (`recovered` = the retry succeeded). Engines use this to drive
    /// graceful degradation after repeated failures; the default ignores
    /// it. Must not generate timing.
    fn note_fill_failure(&mut self, _addr: SectorAddr, _recovered: bool) {}

    /// Tells the engine which trace id the *next* `on_fill`/`on_writeback`
    /// call is attributed to, so engine-internal causal marks (value-cache
    /// vouches, skip-MAC screens, compact spills, degradations) land under
    /// the right root. [`plutus_telemetry::TraceId::NONE`] when the access
    /// is unsampled or tracing is off; the default ignores it.
    fn begin_access_trace(&mut self, _id: plutus_telemetry::TraceId) {}

    /// Starts a live key rotation for `tenant`: subsequent fills and
    /// writebacks interleave a bounded, cycle-charged re-encryption walk
    /// that moves the tenant's slab from its old data key to the next
    /// generation. Returns `false` when the engine has no tenancy/key
    /// table or the tenant is unknown (the default).
    fn start_key_rotation(&mut self, _tenant: u32) -> bool {
        false
    }

    /// True while a key-rotation walk started by
    /// [`SecurityEngine::start_key_rotation`] has not yet covered its
    /// whole range.
    fn rotation_active(&self) -> bool {
        false
    }
}

/// Builds one engine instance per partition.
///
/// Engines hold per-partition state (metadata caches, value caches), so the
/// simulator needs a fresh instance for each partition.
pub trait EngineFactory {
    /// Creates the engine for `partition`.
    fn build(&self, partition: usize) -> Box<dyn SecurityEngine>;

    /// Name of the scheme this factory builds.
    fn scheme_name(&self) -> &'static str;
}

impl<F> EngineFactory for F
where
    F: Fn(usize) -> Box<dyn SecurityEngine>,
{
    fn build(&self, partition: usize) -> Box<dyn SecurityEngine> {
        self(partition)
    }

    fn scheme_name(&self) -> &'static str {
        "custom"
    }
}

/// The no-security baseline: plaintext storage, no metadata, no latency.
///
/// Every paper figure normalizes against this engine.
#[derive(Debug, Default, Clone)]
pub struct NoSecurityEngine;

impl NoSecurityEngine {
    /// Creates the engine.
    pub fn new() -> Self {
        Self
    }

    /// Factory for use with the simulator.
    pub fn factory() -> impl EngineFactory {
        |_p: usize| Box::new(NoSecurityEngine) as Box<dyn SecurityEngine>
    }
}

impl SecurityEngine for NoSecurityEngine {
    fn name(&self) -> &'static str {
        "none"
    }

    fn install(&mut self, addr: SectorAddr, plaintext: &[u8; 32], mem: &mut BackingMemory) {
        mem.write(addr, *plaintext);
    }

    fn on_fill(&mut self, addr: SectorAddr, mem: &mut BackingMemory) -> FillPlan {
        FillPlan {
            plaintext: mem.read(addr).unwrap_or([0; 32]),
            ..FillPlan::default()
        }
    }

    fn on_writeback(
        &mut self,
        addr: SectorAddr,
        plaintext: &[u8; 32],
        mem: &mut BackingMemory,
    ) -> WritePlan {
        mem.write(addr, *plaintext);
        WritePlan::default()
    }

    fn checkpoint(&self) -> Option<Box<dyn SecurityEngine>> {
        Some(Box::new(self.clone()))
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn crash_revert(&mut self, checkpoint: &dyn SecurityEngine) -> bool {
        // Stateless: reverting is a no-op, but the checkpoint must at
        // least be of the right engine type.
        checkpoint
            .as_any()
            .is_some_and(|a| a.is::<NoSecurityEngine>())
    }

    fn recover(
        &mut self,
        _mem: &BackingMemory,
        _sectors: &[SectorAddr],
    ) -> Result<RecoveryReport, RecoveryError> {
        Ok(RecoveryReport::default())
    }

    fn peek_plaintext(&self, addr: SectorAddr, mem: &BackingMemory) -> Option<[u8; 32]> {
        Some(mem.read(addr).unwrap_or([0; 32]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_security_roundtrip() {
        let mut e = NoSecurityEngine::new();
        let mut mem = BackingMemory::new();
        let a = SectorAddr::new(0x100);
        let wp = e.on_writeback(a, &[5; 32], &mut mem);
        assert!(wp.writes.is_empty());
        assert_eq!(wp.crypto_latency, 0);
        let fp = e.on_fill(a, &mut mem);
        assert_eq!(fp.plaintext, [5; 32]);
        assert!(fp.pre_chains.is_empty());
        assert!(fp.violation.is_none());
    }

    #[test]
    fn no_security_unwritten_reads_zero() {
        let mut e = NoSecurityEngine::new();
        let mut mem = BackingMemory::new();
        let fp = e.on_fill(SectorAddr::new(0), &mut mem);
        assert_eq!(fp.plaintext, [0; 32]);
    }

    #[test]
    fn install_writes_plaintext() {
        let mut e = NoSecurityEngine::new();
        let mut mem = BackingMemory::new();
        e.install(SectorAddr::new(0x40), &[3; 32], &mut mem);
        assert_eq!(mem.read(SectorAddr::new(0x40)), Some([3; 32]));
    }

    #[test]
    fn factory_builds_engines() {
        let f = NoSecurityEngine::factory();
        let e = f.build(3);
        assert_eq!(e.name(), "none");
    }

    #[test]
    fn violation_display() {
        let v = Violation::MacMismatch {
            addr: SectorAddr::new(0x40),
        };
        assert!(v.to_string().contains("0x40"));
        let v = Violation::TreeMismatch {
            addr: SectorAddr::new(0x40),
            level: 2,
        };
        assert!(v.to_string().contains("level 2"));
    }

    #[test]
    fn violation_and_recovery_errors_are_std_errors() {
        let v: Box<dyn std::error::Error> = Box::new(Violation::MacMismatch {
            addr: SectorAddr::new(0x40),
        });
        assert!(v.to_string().contains("MAC"));
        let e: Box<dyn std::error::Error> = Box::new(RecoveryError::NoCheckpoint);
        assert!(e.to_string().contains("checkpoint"));
        assert!(RecoveryError::CounterUnrecoverable { addr: 0x40 }
            .to_string()
            .contains("0x40"));
    }

    #[test]
    fn no_security_checkpoint_revert_recover_roundtrip() {
        let mut e = NoSecurityEngine::new();
        let mut mem = BackingMemory::new();
        let a = SectorAddr::new(0x40);
        e.install(a, &[3; 32], &mut mem);
        let ck = e.checkpoint().expect("checkpoint supported");
        assert!(e.crash_revert(ck.as_ref()));
        let report = e.recover(&mem, &[a]).unwrap();
        assert_eq!(report.total(), 0);
        assert_eq!(e.peek_plaintext(a, &mem), Some([3; 32]));
        assert_eq!(e.peek_plaintext(SectorAddr::new(0x80), &mem), Some([0; 32]));
    }

    #[test]
    fn recovery_report_merges() {
        let mut a = RecoveryReport {
            already_consistent: 1,
            recovered_by_mac: 2,
            recovered_by_value: 0,
            failed: vec![0x40],
        };
        let b = RecoveryReport {
            already_consistent: 1,
            recovered_by_mac: 0,
            recovered_by_value: 3,
            failed: vec![],
        };
        a.merge(&b);
        assert_eq!(a.total(), 8);
        assert_eq!(a.failed, vec![0x40]);
    }
}
