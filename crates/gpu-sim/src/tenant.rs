//! Multi-tenant address-space partitioning.
//!
//! The simulator models tenancy by address range: each tenant owns a
//! contiguous slab of the protected region, and every access, violation,
//! and fault is attributed to the tenant whose slab its address falls
//! in. Addresses outside every registered range belong to
//! [`TenantMap::DEFAULT_TENANT`] (tenant 0), so single-tenant
//! configurations — an empty map — behave exactly as before tenancy
//! existed.

use crate::address::SectorAddr;

/// Address-range → tenant mapping shared by the simulator (record
/// tagging) and the security engines (key selection, per-tenant
/// degradation scoping).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantMap {
    /// Non-overlapping `(start, end, tenant)` ranges, end exclusive,
    /// sorted by start.
    ranges: Vec<(u64, u64, u32)>,
}

impl TenantMap {
    /// The tenant unmapped addresses belong to.
    pub const DEFAULT_TENANT: u32 = 0;

    /// An empty map: every address belongs to tenant 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `[start, end)` as belonging to `tenant`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or overlaps a registered range.
    pub fn add_range(&mut self, start: u64, end: u64, tenant: u32) {
        assert!(start < end, "tenant range must be non-empty");
        assert!(
            !self.ranges.iter().any(|&(s, e, _)| start < e && s < end),
            "tenant ranges must not overlap"
        );
        self.ranges.push((start, end, tenant));
        self.ranges.sort_by_key(|&(s, _, _)| s);
    }

    /// The tenant owning `addr` (tenant 0 when unmapped).
    pub fn tenant_of(&self, addr: SectorAddr) -> u32 {
        self.tenant_of_raw(addr.raw())
    }

    /// The tenant owning raw address `addr` (tenant 0 when unmapped).
    pub fn tenant_of_raw(&self, addr: u64) -> u32 {
        match self
            .ranges
            .binary_search_by(|&(s, e, _)| {
                if addr < s {
                    std::cmp::Ordering::Greater
                } else if addr >= e {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .ok()
        {
            Some(i) => self.ranges[i].2,
            None => Self::DEFAULT_TENANT,
        }
    }

    /// The `[start, end)` slab registered for `tenant`, if any.
    pub fn range_of(&self, tenant: u32) -> Option<(u64, u64)> {
        self.ranges
            .iter()
            .find(|&&(_, _, t)| t == tenant)
            .map(|&(s, e, _)| (s, e))
    }

    /// The registered `(start, end, tenant)` ranges, sorted by start.
    pub fn ranges(&self) -> &[(u64, u64, u32)] {
        &self.ranges
    }

    /// Every registered tenant id, sorted and deduplicated.
    pub fn tenants(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.ranges.iter().map(|&(_, _, t)| t).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// True when no ranges are registered (single-tenant operation).
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }
}

/// Per-tenant progress counters the simulator keeps so campaigns can
/// compare each tenant's throughput across runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStat {
    /// Tenant id.
    pub tenant: u32,
    /// Instructions retired by this tenant's accesses.
    pub instructions: u64,
    /// Cycle at which the tenant's last instruction retired — the
    /// tenant's finish time under whatever interference the run had.
    pub last_retire_cycle: u64,
    /// Integrity violations recorded against this tenant's addresses.
    pub violations: u64,
}

impl TenantStat {
    /// The tenant's effective IPC: its own instructions over the span it
    /// took to retire them.
    pub fn ipc(&self) -> f64 {
        if self.last_retire_cycle == 0 {
            0.0
        } else {
            self.instructions as f64 / self.last_retire_cycle as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map_is_single_tenant() {
        let m = TenantMap::new();
        assert!(m.is_empty());
        assert_eq!(m.tenant_of(SectorAddr::new(0)), 0);
        assert_eq!(m.tenant_of(SectorAddr::new(1 << 30)), 0);
        assert!(m.tenants().is_empty());
    }

    #[test]
    fn ranges_route_to_their_tenant() {
        let mut m = TenantMap::new();
        m.add_range(0, 0x1000, 1);
        m.add_range(0x1000, 0x2000, 2);
        assert_eq!(m.tenant_of(SectorAddr::new(0)), 1);
        assert_eq!(m.tenant_of(SectorAddr::new(0xfe0)), 1);
        assert_eq!(m.tenant_of(SectorAddr::new(0x1000)), 2);
        assert_eq!(m.tenant_of(SectorAddr::new(0x2000)), 0, "past the end");
        assert_eq!(m.range_of(2), Some((0x1000, 0x2000)));
        assert_eq!(m.range_of(9), None);
        assert_eq!(m.tenants(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_ranges_are_rejected() {
        let mut m = TenantMap::new();
        m.add_range(0, 0x1000, 1);
        m.add_range(0x800, 0x1800, 2);
    }

    #[test]
    fn tenant_stat_ipc() {
        let s = TenantStat {
            tenant: 1,
            instructions: 50,
            last_retire_cycle: 100,
            violations: 0,
        };
        assert!((s.ipc() - 0.5).abs() < 1e-12);
        assert_eq!(TenantStat::default().ipc(), 0.0);
    }
}
