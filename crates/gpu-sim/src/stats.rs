//! Traffic and performance statistics.
//!
//! Everything the paper's figures plot comes from these counters: IPC
//! (Figs. 6, 15–18, 20–21), per-class DRAM traffic (Figs. 7, 19), request
//! mix (Fig. 10), and the DRAM-energy proxy behind the power figure
//! (Fig. 22).

use crate::dram::BankStat;
use crate::ledger::{PartitionLedger, StallBucket, NUM_STALL_BUCKETS};
use crate::security::DetectionLayer;
use crate::tenant::TenantStat;

/// Classification of DRAM traffic, matching the paper's breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TrafficClass {
    /// Application data sectors.
    Data,
    /// Encryption counter blocks (the original split counters).
    Counter,
    /// Per-sector MACs.
    Mac,
    /// Bonsai Merkle Tree nodes over the original counters.
    BmtNode,
    /// Plutus compact mirrored counter blocks.
    CompactCounter,
    /// Nodes of the small BMT protecting the compact counters.
    CompactBmt,
}

impl TrafficClass {
    /// All classes, in display order.
    pub const ALL: [TrafficClass; 6] = [
        TrafficClass::Data,
        TrafficClass::Counter,
        TrafficClass::Mac,
        TrafficClass::BmtNode,
        TrafficClass::CompactCounter,
        TrafficClass::CompactBmt,
    ];

    /// Index into per-class arrays.
    pub fn idx(self) -> usize {
        match self {
            TrafficClass::Data => 0,
            TrafficClass::Counter => 1,
            TrafficClass::Mac => 2,
            TrafficClass::BmtNode => 3,
            TrafficClass::CompactCounter => 4,
            TrafficClass::CompactBmt => 5,
        }
    }

    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            TrafficClass::Data => "data",
            TrafficClass::Counter => "counter",
            TrafficClass::Mac => "mac",
            TrafficClass::BmtNode => "bmt",
            TrafficClass::CompactCounter => "compact_ctr",
            TrafficClass::CompactBmt => "compact_bmt",
        }
    }

    /// True for classes that are security metadata rather than data.
    pub fn is_metadata(self) -> bool {
        !matches!(self, TrafficClass::Data)
    }
}

impl std::fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Byte/request counters for one traffic class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassTraffic {
    /// Bytes read from DRAM.
    pub read_bytes: u64,
    /// Bytes written to DRAM.
    pub write_bytes: u64,
    /// Read requests.
    pub read_reqs: u64,
    /// Write requests.
    pub write_reqs: u64,
}

impl ClassTraffic {
    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }
}

/// One detected integrity violation, with where and when it was caught.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViolationRecord {
    /// Cycle at which the offending request arrived at the controller.
    pub cycle: u64,
    /// Raw address of the offending data sector.
    pub addr: u64,
    /// Tenant owning the offending address (0 without a tenant map).
    pub tenant: u32,
    /// Verification layer that caught the violation.
    pub layer: DetectionLayer,
    /// Cycles from the request's arrival to verified rejection (the
    /// fill's verification latency; 0 for writeback-path detections,
    /// which nothing waits on).
    pub latency: u64,
}

/// How one scheduled fault resolved by the end of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Verification caught the fault.
    Detected {
        /// Layer that raised the violation.
        layer: DetectionLayer,
        /// Cycles from injection to detection.
        latency: u64,
    },
    /// The faulted sector was served to the core with no violation.
    Escaped {
        /// True when the sector was accepted by the value-verification
        /// fast path alone — a forgery acceptance in Eq. 1's terms.
        value_verified: bool,
    },
    /// The faulted state was overwritten (writeback) before any
    /// verification saw it.
    Clobbered,
    /// The faulted sector was never verified again before the run ended.
    Unobserved,
    /// The fault could not be applied (target not resident, metadata the
    /// scheme does not keep, or a rollback to the current value).
    NotApplied,
}

/// The full life of one scheduled fault: what was injected, when, and how
/// it resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Raw address of the targeted data sector.
    pub addr: u64,
    /// Tenant owning the targeted address (0 without a tenant map).
    pub tenant: u32,
    /// Stable label of the fault kind (see `FaultKind::label`).
    pub kind: &'static str,
    /// Cycle at which the fault was applied.
    pub injected_cycle: u64,
    /// How the fault resolved.
    pub outcome: FaultOutcome,
}

/// How one sampled transient (soft-error) fault resolved.
///
/// The crucial distinction against [`FaultOutcome`]: a transient fault
/// that is retried away is *recovered*, not an attack; only
/// [`TransientOutcome::Escalated`] means the controller misclassified a
/// soft error as tampering (the condition transient campaigns gate on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransientOutcome {
    /// Verification tripped, and a bounded re-fetch then succeeded.
    Recovered {
        /// Number of retry attempts the recovery took.
        retries: u32,
    },
    /// Verification tripped and every allowed retry also failed, so the
    /// fill escalated to a recorded [`crate::Violation`].
    Escalated {
        /// Retry attempts charged before escalation.
        retries: u32,
    },
    /// The corrupted transfer was served without any verification layer
    /// noticing (silent data corruption; only possible when the active
    /// scheme does not cover the faulted structure).
    Undetected,
    /// The fault targeted state the engine does not keep (or a
    /// non-resident sector) and changed nothing.
    NotApplied,
}

/// One sampled transient fault: where it struck and how it resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransientRecord {
    /// Raw address of the fill the fault struck.
    pub addr: u64,
    /// Stable label of the transient kind (see `TransientKind::label`).
    pub kind: &'static str,
    /// Cycle of the afflicted fill's arrival at the controller.
    pub cycle: u64,
    /// How the fault resolved.
    pub outcome: TransientOutcome,
}

/// DRAM-internal statistics aggregated across all partitions' channels.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Requests that found their row open, all channels.
    pub row_hits: u64,
    /// Requests that paid a precharge+activate, all channels.
    pub row_misses: u64,
    /// Total cycles banks spent occupied by precharge+activate windows.
    pub bank_busy_cycles: u64,
    /// Deepest bus backlog observed on any single channel, in bytes.
    pub backlog_hwm_bytes: u64,
    /// Per-bank counters summed across partitions by bank index.
    pub per_bank: Vec<BankStat>,
}

/// Aggregated statistics for one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Total simulated cycles (time of the last retired event).
    pub cycles: u64,
    /// Instructions retired (from trace annotations).
    pub instructions: u64,
    /// Memory accesses completed.
    pub accesses: u64,
    /// Read accesses issued by the cores.
    pub read_accesses: u64,
    /// Write accesses issued by the cores.
    pub write_accesses: u64,
    /// L2 hits (sector present and not pending).
    pub l2_hits: u64,
    /// L2 misses that allocated an MSHR.
    pub l2_misses: u64,
    /// Accesses merged into an in-flight MSHR entry.
    pub mshr_merges: u64,
    /// Retries due to MSHR exhaustion.
    pub mshr_stalls: u64,
    /// Per-class DRAM traffic, indexed by [`TrafficClass::idx`].
    pub traffic: [ClassTraffic; 6],
    /// Integrity violations detected (nonzero only under active attack).
    pub violations: u64,
    /// Per-violation records: detecting layer and detection latency.
    /// Accrues only under active attack (honest runs leave it empty).
    pub violation_records: Vec<ViolationRecord>,
    /// Resolution of every fault applied from a
    /// [`crate::FaultSchedule`], in deterministic order.
    pub fault_records: Vec<FaultRecord>,
    /// Transient faults sampled by the soft-error model (including
    /// not-applied samples).
    pub transients_injected: u64,
    /// Transient faults cleared by the bounded retry path.
    pub transients_recovered: u64,
    /// Transient faults that exhausted retries and escalated to a
    /// recorded violation (soft errors misclassified as attacks).
    pub transients_escalated: u64,
    /// Transient faults served without any verification layer noticing.
    pub transients_undetected: u64,
    /// Transient faults that could not change state.
    pub transients_not_applied: u64,
    /// Fill re-fetch attempts issued by the retry path.
    pub retries: u64,
    /// Extra cycles charged to retried fills (failed attempts + backoff).
    pub retry_cycles: u64,
    /// Metadata checkpoints taken during the run.
    pub checkpoints: u64,
    /// One record per sampled transient fault, in injection order.
    pub transient_records: Vec<TransientRecord>,
    /// Steady-state warm-up boundary in cycles (from
    /// [`crate::GpuConfig::warmup_cycles`]); 0 when the whole run is
    /// measured.
    pub warmup_cycles: u64,
    /// Instructions retired before the warm-up boundary, excluded from
    /// [`Self::steady_ipc`].
    pub warmup_instructions: u64,
    /// Cycles warps spent stalled by the store-buffer backpressure
    /// throttle (bus saturation pushing back on write issue).
    pub write_throttle_cycles: u64,
    /// Sum of fill latencies (ready − arrival), for average-latency
    /// diagnostics.
    pub fill_latency_sum: u64,
    /// Number of fills contributing to [`Self::fill_latency_sum`].
    pub fill_count: u64,
    /// Engine-specific counters (e.g. value-cache hits), name → count.
    pub engine: Vec<(String, u64)>,
    /// DRAM-internal counters: row locality, bank occupancy, and the bus
    /// backlog high-water mark.
    pub dram: DramStats,
    /// The closed cycle ledger, one [`PartitionLedger`] per partition —
    /// conservation-exact: each sums to [`SimStats::cycles`].
    pub ledgers: Vec<PartitionLedger>,
    /// Per-tenant progress and violation counters, sorted by tenant id.
    /// Empty when no tenant map was installed.
    pub tenants: Vec<TenantStat>,
}

impl SimStats {
    /// Records a DRAM transfer.
    pub fn record_traffic(&mut self, class: TrafficClass, bytes: u64, is_write: bool) {
        let t = &mut self.traffic[class.idx()];
        if is_write {
            t.write_bytes += bytes;
            t.write_reqs += 1;
        } else {
            t.read_bytes += bytes;
            t.read_reqs += 1;
        }
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Steady-state instructions per cycle: retirement measured after
    /// the warm-up boundary, so the warp-pool launch ramp and cold-cache
    /// start do not dilute the bandwidth-bound regime the paper's
    /// figures study. Falls back to [`Self::ipc`] when no warm-up was
    /// configured or the run ended inside the warm-up window.
    pub fn steady_ipc(&self) -> f64 {
        if self.warmup_cycles == 0 || self.cycles <= self.warmup_cycles {
            return self.ipc();
        }
        (self.instructions - self.warmup_instructions) as f64
            / (self.cycles - self.warmup_cycles) as f64
    }

    /// Total DRAM bytes moved, all classes.
    pub fn total_bytes(&self) -> u64 {
        self.traffic.iter().map(ClassTraffic::total_bytes).sum()
    }

    /// Bytes of security metadata moved (everything but `Data`).
    pub fn metadata_bytes(&self) -> u64 {
        TrafficClass::ALL
            .iter()
            .filter(|c| c.is_metadata())
            .map(|c| self.traffic[c.idx()].total_bytes())
            .sum()
    }

    /// Bytes for one class.
    pub fn class_bytes(&self, class: TrafficClass) -> u64 {
        self.traffic[class.idx()].total_bytes()
    }

    /// Achieved DRAM bandwidth utilization against a theoretical peak,
    /// `bytes_per_cycle` aggregated over all partitions. Degenerate
    /// inputs (no cycles, or a non-positive/non-finite peak) return 0.0
    /// so empty or crashed runs can't push NaN/Inf into reports or
    /// `BENCH_*.json` snapshots.
    pub fn bandwidth_utilization(&self, peak_bytes_per_cycle: f64) -> f64 {
        if self.cycles == 0 || peak_bytes_per_cycle <= 0.0 || !peak_bytes_per_cycle.is_finite() {
            0.0
        } else {
            self.total_bytes() as f64 / (self.cycles as f64 * peak_bytes_per_cycle)
        }
    }

    /// Looks up an engine-specific counter by name.
    pub fn engine_counter(&self, name: &str) -> Option<u64> {
        self.engine.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up one tenant's progress counters.
    pub fn tenant_stat(&self, tenant: u32) -> Option<&TenantStat> {
        self.tenants.iter().find(|t| t.tenant == tenant)
    }

    /// DRAM energy proxy in picojoules: `pj_per_byte` × bytes moved.
    /// Used by the Fig. 22 power model.
    pub fn dram_energy_pj(&self, pj_per_byte: f64) -> f64 {
        self.total_bytes() as f64 * pj_per_byte
    }

    /// The run's CPI stack: per-bucket cycles summed across partitions,
    /// indexed by [`StallBucket::idx`]. Sums to
    /// `cycles × partitions` once the ledger is closed.
    pub fn cpi_stack(&self) -> [u64; NUM_STALL_BUCKETS] {
        let mut out = [0u64; NUM_STALL_BUCKETS];
        for led in &self.ledgers {
            for (o, b) in out.iter_mut().zip(led.buckets.iter()) {
                *o += b;
            }
        }
        out
    }

    /// Cycles attributed to `bucket` across all partitions.
    pub fn ledger_cycles(&self, bucket: StallBucket) -> u64 {
        self.ledgers.iter().map(|l| l.get(bucket)).sum()
    }

    /// Conservation check: every partition's ledger sums exactly to
    /// [`SimStats::cycles`]. Vacuously true for stats with no ledger
    /// (hand-built defaults).
    pub fn ledger_conserved(&self) -> bool {
        self.ledgers.iter().all(|l| l.total() == self.cycles)
    }

    /// Average fill latency in cycles (arrival at the controller to
    /// verified data).
    pub fn avg_fill_latency(&self) -> f64 {
        if self.fill_count == 0 {
            0.0
        } else {
            self.fill_latency_sum as f64 / self.fill_count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_denominators_yield_zero_not_nan() {
        // Empty/crashed runs must not leak NaN/Inf into reports.
        let empty = SimStats::default();
        assert_eq!(empty.avg_fill_latency(), 0.0);
        assert_eq!(empty.bandwidth_utilization(32.0), 0.0);

        let mut s = SimStats::default();
        s.record_traffic(TrafficClass::Data, 64, false);
        s.cycles = 100;
        assert_eq!(s.bandwidth_utilization(0.0), 0.0);
        assert_eq!(s.bandwidth_utilization(-4.0), 0.0);
        assert_eq!(s.bandwidth_utilization(f64::NAN), 0.0);
        assert_eq!(s.bandwidth_utilization(f64::INFINITY), 0.0);
        let util = s.bandwidth_utilization(32.0);
        assert!(util > 0.0 && util.is_finite());

        s.fill_latency_sum = 50;
        s.fill_count = 10;
        assert_eq!(s.avg_fill_latency(), 5.0);
    }

    #[test]
    fn traffic_classification() {
        let mut s = SimStats::default();
        s.record_traffic(TrafficClass::Data, 32, false);
        s.record_traffic(TrafficClass::Mac, 32, false);
        s.record_traffic(TrafficClass::Counter, 128, true);
        assert_eq!(s.total_bytes(), 192);
        assert_eq!(s.metadata_bytes(), 160);
        assert_eq!(s.class_bytes(TrafficClass::Mac), 32);
        assert_eq!(s.traffic[TrafficClass::Counter.idx()].write_reqs, 1);
    }

    #[test]
    fn ipc_handles_zero_cycles() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
    }

    #[test]
    fn ipc_computation() {
        let s = SimStats {
            cycles: 100,
            instructions: 250,
            ..Default::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn steady_ipc_excludes_warmup_window() {
        let mut s = SimStats {
            cycles: 1000,
            instructions: 1000,
            ..Default::default()
        };
        // No warm-up configured → whole-run IPC.
        assert!((s.steady_ipc() - s.ipc()).abs() < 1e-12);
        // 200 warm-up cycles retiring 50 instructions: steady window is
        // 950 instructions over 800 cycles.
        s.warmup_cycles = 200;
        s.warmup_instructions = 50;
        assert!((s.steady_ipc() - 950.0 / 800.0).abs() < 1e-12);
        // Run ended inside the warm-up window → fall back to full-run IPC.
        s.warmup_cycles = 2000;
        assert!((s.steady_ipc() - s.ipc()).abs() < 1e-12);
    }

    #[test]
    fn class_indices_are_unique_and_dense() {
        let mut seen = [false; 6];
        for c in TrafficClass::ALL {
            assert!(!seen[c.idx()], "duplicate idx for {c}");
            seen[c.idx()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bandwidth_utilization_bounds() {
        let mut s = SimStats {
            cycles: 10,
            ..Default::default()
        };
        s.record_traffic(TrafficClass::Data, 240, false);
        let u = s.bandwidth_utilization(24.0);
        assert!((u - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cpi_stack_sums_partitions_and_checks_conservation() {
        let mut s = SimStats {
            cycles: 100,
            ..Default::default()
        };
        assert!(s.ledger_conserved(), "no ledger is vacuously conserved");
        let mut a = PartitionLedger::default();
        a.buckets[StallBucket::Issue.idx()] = 60;
        a.buckets[StallBucket::DataFill.idx()] = 40;
        let mut b = PartitionLedger::default();
        b.buckets[StallBucket::Issue.idx()] = 100;
        s.ledgers = vec![a, b];
        assert!(s.ledger_conserved());
        assert_eq!(s.ledger_cycles(StallBucket::Issue), 160);
        assert_eq!(s.cpi_stack().iter().sum::<u64>(), 200);
        s.ledgers[0].buckets[StallBucket::Issue.idx()] = 61;
        assert!(!s.ledger_conserved());
    }

    #[test]
    fn only_data_is_not_metadata() {
        for c in TrafficClass::ALL {
            assert_eq!(c.is_metadata(), c != TrafficClass::Data);
        }
    }
}
