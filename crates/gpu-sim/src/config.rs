//! Simulator configuration, defaulting to the paper's Table I Volta model.

/// Top-level GPU configuration (paper Table I).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors (informational; the warp pool
    /// abstracts cores).
    pub sm_count: usize,
    /// Core clock in MHz. All latencies and bandwidths are expressed in core
    /// cycles.
    pub core_clock_mhz: u64,
    /// Number of warps kept in flight by the warp-pool core model. Sized so
    /// that memory latency is fully hidden and bandwidth is the bottleneck,
    /// matching the memory-intensive regime the paper studies.
    pub warps: usize,
    /// Number of memory partitions, each with its own L2 slice, memory
    /// controller, DRAM channel, and security engine.
    pub partitions: usize,
    /// L2 banks per partition.
    pub l2_banks_per_partition: usize,
    /// Capacity of each L2 bank in bytes (Volta: 96 KiB × 2 banks × 32
    /// partitions = 6 MiB).
    pub l2_bank_bytes: u64,
    /// L2 associativity.
    pub l2_ways: usize,
    /// L2 hit latency in cycles.
    pub l2_hit_latency: u64,
    /// One-way core ↔ partition interconnect latency in cycles.
    pub interconnect_latency: u64,
    /// Data MSHRs per partition.
    pub mshrs_per_partition: usize,
    /// DRAM channel model parameters (per partition).
    pub dram: DramConfig,
    /// Flush dirty L2 lines through the security engine when the trace
    /// drains (off by default, mirroring end-of-kernel behavior).
    pub flush_l2_at_end: bool,
    /// Serialize dependent metadata fetches (counter → tree levels) as
    /// back-to-back DRAM round trips. Off by default: tree-node addresses
    /// are index-computable, so controllers issue the whole path in
    /// parallel and only the (pipelined) hash checks serialize.
    pub serial_metadata_chains: bool,
    /// Steady-state warm-up cutoff in cycles: instructions retired before
    /// this boundary are excluded from [`crate::SimStats::steady_ipc`], so
    /// measured IPC reflects the post-launch-ramp regime rather than the
    /// cold start. 0 (the default) measures the whole run.
    pub warmup_cycles: u64,
    /// Per-channel store-buffer depth in bytes: when a store's partition
    /// has more DRAM bus backlog than this, the issuing warp stalls until
    /// the excess drains — the feedback path that lets bus saturation
    /// throttle write traffic. `u64::MAX` disables the throttle.
    pub write_throttle_bytes: u64,
}

impl Default for GpuConfig {
    /// The paper's Table I configuration (NVIDIA Volta V100 class).
    fn default() -> Self {
        Self {
            sm_count: 80,
            core_clock_mhz: 1132,
            warps: 4096,
            partitions: 32,
            l2_banks_per_partition: 2,
            l2_bank_bytes: 96 * 1024,
            l2_ways: 16,
            l2_hit_latency: 32,
            interconnect_latency: 40,
            mshrs_per_partition: 256,
            dram: DramConfig::default(),
            flush_l2_at_end: false,
            serial_metadata_chains: false,
            warmup_cycles: 0,
            // 8 KiB ≈ 340 cycles of drain at 24 B/cycle: deep enough that
            // bursts pass untouched, shallow enough that a saturated
            // channel pushes back on the issuing warps.
            write_throttle_bytes: 8 * 1024,
        }
    }
}

impl GpuConfig {
    /// A reduced configuration for fast unit tests: 4 partitions, small L2,
    /// few warps. Keeps every mechanism active while letting tests run in
    /// milliseconds.
    pub fn test_small() -> Self {
        Self {
            sm_count: 4,
            warps: 32,
            partitions: 4,
            l2_banks_per_partition: 1,
            l2_bank_bytes: 16 * 1024,
            mshrs_per_partition: 32,
            ..Self::default()
        }
    }

    /// Total L2 capacity across the GPU in bytes.
    pub fn total_l2_bytes(&self) -> u64 {
        self.l2_bank_bytes * (self.l2_banks_per_partition * self.partitions) as u64
    }

    /// Aggregate DRAM bandwidth in GB/s implied by the DRAM model.
    pub fn total_dram_gbps(&self) -> f64 {
        self.dram.bytes_per_cycle * self.partitions as f64 * self.core_clock_mhz as f64 / 1000.0
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first inconsistent field.
    pub fn validate(&self) -> Result<(), String> {
        if self.partitions == 0 {
            return Err("partitions must be > 0".into());
        }
        if self.warps == 0 {
            return Err("warps must be > 0".into());
        }
        if self.l2_banks_per_partition == 0 {
            return Err("l2_banks_per_partition must be > 0".into());
        }
        let line_bytes = crate::address::BLOCK_SIZE;
        let lines = self.l2_bank_bytes / line_bytes;
        if lines == 0 || !lines.is_multiple_of(self.l2_ways as u64) {
            return Err(format!(
                "l2_bank_bytes {} must hold a multiple of l2_ways {} lines",
                self.l2_bank_bytes, self.l2_ways
            ));
        }
        if self.mshrs_per_partition == 0 {
            return Err("mshrs_per_partition must be > 0".into());
        }
        self.dram.validate()
    }
}

/// DRAM channel model parameters (one channel per partition).
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Effective data-bus bandwidth per partition in bytes per core cycle.
    /// Default: 868 GB/s ÷ 32 partitions at 1132 MHz ≈ 24 B/cycle.
    pub bytes_per_cycle: f64,
    /// Banks per channel.
    pub banks: usize,
    /// Row-buffer size in bytes (contiguous addresses sharing an open row).
    pub row_bytes: u64,
    /// Column access latency in core cycles (row hit).
    pub t_cas: u64,
    /// Row activate latency in core cycles.
    pub t_rcd: u64,
    /// Precharge latency in core cycles.
    pub t_rp: u64,
}

impl Default for DramConfig {
    /// HBM2-class channel: with 4 bank groups × 4 banks per pseudo-channel
    /// and 2 pseudo-channels, ~32 banks are concurrently schedulable per
    /// partition, so random 32 B traffic is bus-limited rather than
    /// activation-limited — the bandwidth-bound regime the paper studies.
    fn default() -> Self {
        Self {
            bytes_per_cycle: 24.0,
            banks: 32,
            row_bytes: 2048,
            t_cas: 20,
            t_rcd: 20,
            t_rp: 20,
        }
    }
}

impl DramConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first inconsistent field.
    pub fn validate(&self) -> Result<(), String> {
        if self.bytes_per_cycle <= 0.0 {
            return Err("dram.bytes_per_cycle must be positive".into());
        }
        if self.banks == 0 || !self.banks.is_power_of_two() {
            return Err("dram.banks must be a positive power of two".into());
        }
        if self.row_bytes < crate::address::SECTOR_SIZE || !self.row_bytes.is_power_of_two() {
            return Err("dram.row_bytes must be a power of two ≥ 32".into());
        }
        Ok(())
    }
}

/// Security-engine latency parameters shared by all engines (paper Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecurityLatencies {
    /// AES encryption/decryption pipeline latency in cycles.
    pub aes_latency: u64,
    /// MAC computation/verification latency in cycles.
    pub mac_latency: u64,
}

impl Default for SecurityLatencies {
    fn default() -> Self {
        Self {
            aes_latency: 40,
            mac_latency: 40,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = GpuConfig::default();
        assert_eq!(c.sm_count, 80);
        assert_eq!(c.partitions, 32);
        assert_eq!(c.total_l2_bytes(), 6 * 1024 * 1024);
        // 24 B/cycle × 32 partitions × 1.132 GHz ≈ 869 GB/s (Table I: 868).
        let bw = c.total_dram_gbps();
        assert!(
            (bw - 868.0).abs() < 5.0,
            "bandwidth {bw} too far from Table I"
        );
        c.validate().unwrap();
    }

    #[test]
    fn test_small_is_valid() {
        GpuConfig::test_small().validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_values() {
        let c = GpuConfig {
            partitions: 0,
            ..GpuConfig::default()
        };
        assert!(c.validate().is_err());

        // Not a whole number of lines.
        let c = GpuConfig {
            l2_bank_bytes: 100,
            ..GpuConfig::default()
        };
        assert!(c.validate().is_err());

        let mut c = GpuConfig::default();
        c.dram.banks = 3;
        assert!(c.validate().is_err());
    }

    #[test]
    fn security_latencies_default_matches_table2() {
        let l = SecurityLatencies::default();
        assert_eq!(l.mac_latency, 40);
        assert_eq!(l.aes_latency, 40);
    }
}
