//! A trace-driven GPU memory-subsystem simulator, built as the substrate
//! for reproducing *"Plutus: Bandwidth-Efficient Memory Security for GPUs"*
//! (HPCA 2023).
//!
//! The simulator models the parts of a Volta-class GPU that determine the
//! cost of secure memory:
//!
//! - a **warp-pool core model** ([`Simulator`]) that keeps enough memory
//!   requests in flight to make DRAM bandwidth the bottleneck;
//! - **sectored L2 slices** with MSHRs ([`cache::SectoredCache`]), 128-byte
//!   lines transferring 32-byte sectors;
//! - a per-partition **DRAM channel model** ([`dram::DramChannel`]) with
//!   banks, row buffers, and a shared data bus;
//! - a pluggable **security engine** interface ([`SecurityEngine`]): every
//!   L2 miss and writeback is routed through the active memory-security
//!   scheme, which returns the metadata DRAM requests and crypto latencies
//!   to charge;
//! - a **functional backing store** ([`mem::BackingMemory`]) holding real
//!   (encrypted) bytes, which doubles as the physical-attack surface.
//!
//! # Quick start
//!
//! ```
//! use gpu_sim::{GpuConfig, NoSecurityEngine, SectorAddr, Simulator, Trace};
//!
//! let mut trace = Trace::new("stream");
//! for i in 0..256 {
//!     trace.push_read(SectorAddr::new(i * 32), 4, 10);
//! }
//! let mut sim = Simulator::new(GpuConfig::test_small(), trace, &NoSecurityEngine::factory());
//! let result = sim.run();
//! println!("IPC = {:.2}", result.ipc());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod cache;
pub mod config;
pub mod dram;
pub mod fault;
pub mod ledger;
pub mod mem;
pub mod security;
pub mod sim;
pub mod stats;
pub mod tenant;
pub mod trace;
pub mod transient;

pub use address::{
    partition_of, BlockAddr, SectorAddr, BLOCK_SIZE, SECTORS_PER_BLOCK, SECTOR_SIZE,
};
pub use config::{DramConfig, GpuConfig, SecurityLatencies};
pub use dram::{BankStat, DramBreakdown};
pub use fault::{FaultKind, FaultSchedule, FaultTrigger, ScheduledFault};
pub use ledger::{CycleLedger, LedgerWeights, PartitionLedger, StallBucket, NUM_STALL_BUCKETS};
pub use mem::BackingMemory;
pub use security::{
    DetectionLayer, DramReq, EngineFactory, FillPlan, MetaFault, NoSecurityEngine, RecoveryError,
    RecoveryReport, SecurityEngine, Violation, WritePlan,
};
pub use sim::{CrashAudit, SimResult, Simulator};
pub use stats::{
    DramStats, FaultOutcome, FaultRecord, SimStats, TrafficClass, TransientOutcome,
    TransientRecord, ViolationRecord,
};
pub use tenant::{TenantMap, TenantStat};
pub use trace::{AccessKind, Trace, TraceAccess};
pub use transient::{RetryPolicy, TransientConfig, TransientKind, TransientSampler};
