//! The cycle ledger: conservation-exact per-partition stall attribution.
//!
//! Every simulated cycle of every partition is attributed to exactly one
//! [`StallBucket`], producing a CPI stack per run. The invariant the whole
//! subsystem is built around:
//!
//! > **Conservation**: for every partition, the bucket sums equal
//! > [`crate::SimStats::cycles`] — no cycle is double-counted, none
//! > vanishes.
//!
//! # Attribution model
//!
//! Each partition keeps a *frontier* cursor: the cycle up to which its
//! timeline has already been attributed. When the simulator books a DRAM
//! activity span `[start, end)` (a fill, a retry attempt, a writeback), the
//! ledger:
//!
//! 1. attributes the gap `[frontier, start)` — time the partition spent
//!    with no memory activity to account — to [`StallBucket::Issue`];
//! 2. splits the *newly visible* part of the span,
//!    `[max(start, frontier), end)`, across the caller's weights with an
//!    exact integer largest-remainder division (so overlapping in-flight
//!    spans never double-book: only time past the frontier is charged);
//! 3. advances the frontier to `max(frontier, end)`.
//!
//! At finalize, [`CycleLedger::close`] attributes the tail
//! `[frontier, horizon)` to `Issue`; on early-halted runs whose in-flight
//! activity was booked past the halt cycle, the excess is trimmed back
//! deterministically so conservation holds for crashed runs too.

/// One destination for an attributed cycle. Every simulated cycle of every
/// partition lands in exactly one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StallBucket {
    /// Issue/compute: cycles with no DRAM-side activity to account —
    /// warps issuing, L2 hits, interconnect transit, or plain idleness.
    Issue,
    /// Waiting on application data transfers (DRAM service of `Data`
    /// class requests, plus crypto pipeline time of metadata-free plans).
    DataFill,
    /// Waiting on encryption-counter metadata transfers.
    MetaCounter,
    /// Waiting on MAC metadata transfers and on the crypto/verification
    /// pipeline of metadata-bearing plans.
    MetaMac,
    /// Waiting on Bonsai-Merkle-tree node transfers.
    MetaBmt,
    /// Waiting on Plutus compact-counter / compact-BMT transfers.
    MetaCompact,
    /// DRAM bank serialization: the target bank was still busy with an
    /// earlier activation (row-conflict wait).
    BankConflict,
    /// DRAM data-bus backlog: the channel's fluid bus queue had to drain
    /// before this burst could start.
    BusBacklog,
    /// MSHR-full backpressure: the access sat in the partition's pending
    /// queue waiting for a free MSHR.
    MshrFull,
    /// Failed fill attempts that were re-fetched by the bounded-retry
    /// path (the whole failed attempt's span).
    TransientRetry,
    /// Retry backoff windows and other recovery-path dead time.
    Recovery,
}

/// Number of [`StallBucket`] variants (length of per-bucket arrays).
pub const NUM_STALL_BUCKETS: usize = 11;

impl StallBucket {
    /// All buckets, in display (and array-index) order.
    pub const ALL: [StallBucket; NUM_STALL_BUCKETS] = [
        StallBucket::Issue,
        StallBucket::DataFill,
        StallBucket::MetaCounter,
        StallBucket::MetaMac,
        StallBucket::MetaBmt,
        StallBucket::MetaCompact,
        StallBucket::BankConflict,
        StallBucket::BusBacklog,
        StallBucket::MshrFull,
        StallBucket::TransientRetry,
        StallBucket::Recovery,
    ];

    /// Index into per-bucket arrays.
    pub fn idx(self) -> usize {
        match self {
            StallBucket::Issue => 0,
            StallBucket::DataFill => 1,
            StallBucket::MetaCounter => 2,
            StallBucket::MetaMac => 3,
            StallBucket::MetaBmt => 4,
            StallBucket::MetaCompact => 5,
            StallBucket::BankConflict => 6,
            StallBucket::BusBacklog => 7,
            StallBucket::MshrFull => 8,
            StallBucket::TransientRetry => 9,
            StallBucket::Recovery => 10,
        }
    }

    /// Stable snake_case label used in exports and telemetry names.
    pub fn label(self) -> &'static str {
        match self {
            StallBucket::Issue => "issue",
            StallBucket::DataFill => "data_fill",
            StallBucket::MetaCounter => "meta_counter",
            StallBucket::MetaMac => "meta_mac",
            StallBucket::MetaBmt => "meta_bmt",
            StallBucket::MetaCompact => "meta_compact",
            StallBucket::BankConflict => "bank_conflict",
            StallBucket::BusBacklog => "bus_backlog",
            StallBucket::MshrFull => "mshr_full",
            StallBucket::TransientRetry => "transient_retry",
            StallBucket::Recovery => "recovery",
        }
    }

    /// The bucket charged for DRAM service time of one traffic class.
    pub fn of_class(class: crate::stats::TrafficClass) -> StallBucket {
        use crate::stats::TrafficClass;
        match class {
            TrafficClass::Data => StallBucket::DataFill,
            TrafficClass::Counter => StallBucket::MetaCounter,
            TrafficClass::Mac => StallBucket::MetaMac,
            TrafficClass::BmtNode => StallBucket::MetaBmt,
            TrafficClass::CompactCounter | TrafficClass::CompactBmt => StallBucket::MetaCompact,
        }
    }
}

impl std::fmt::Display for StallBucket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The attributed cycles of one partition, indexed by
/// [`StallBucket::idx`]. Conservation-exact: totals equal the run's
/// cycle count (enforced by [`CycleLedger::close`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PartitionLedger {
    /// Cycles per bucket.
    pub buckets: [u64; NUM_STALL_BUCKETS],
}

impl PartitionLedger {
    /// Cycles attributed to `bucket`.
    pub fn get(&self, bucket: StallBucket) -> u64 {
        self.buckets[bucket.idx()]
    }

    /// Sum over all buckets — equals the run's total cycles once closed.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

/// Per-bucket weights describing how one activity span should be split.
/// Weights are in cycles of *booked component latency*; the span is
/// divided proportionally, so overlapping bookings shrink together.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LedgerWeights {
    w: [u64; NUM_STALL_BUCKETS],
}

impl LedgerWeights {
    /// Adds `cycles` of weight to `bucket`.
    pub fn add(&mut self, bucket: StallBucket, cycles: u64) {
        self.w[bucket.idx()] += cycles;
    }

    /// Adds DRAM-service weight for a request of traffic class `class`.
    pub fn add_class(&mut self, class: crate::stats::TrafficClass, cycles: u64) {
        self.add(StallBucket::of_class(class), cycles);
    }

    /// Moves every accumulated weight into `bucket` (used to charge a
    /// whole failed retry attempt to [`StallBucket::TransientRetry`]).
    pub fn collapse_into(&mut self, bucket: StallBucket) {
        let total: u64 = self.w.iter().sum();
        self.w = [0; NUM_STALL_BUCKETS];
        self.w[bucket.idx()] = total;
    }

    /// True when no weight has been added.
    pub fn is_empty(&self) -> bool {
        self.w.iter().all(|&w| w == 0)
    }
}

/// Splits `span` cycles across `weights` exactly: floor shares first,
/// then the remainder goes to the largest weight (lowest index on ties),
/// so the parts always sum to `span` and the split is deterministic.
/// A zero-weight span falls back entirely to `fallback`.
fn split_span(
    span: u64,
    weights: &[u64; NUM_STALL_BUCKETS],
    fallback: StallBucket,
) -> [u64; NUM_STALL_BUCKETS] {
    let mut out = [0u64; NUM_STALL_BUCKETS];
    if span == 0 {
        return out;
    }
    let total: u128 = weights.iter().map(|&w| w as u128).sum();
    if total == 0 {
        out[fallback.idx()] = span;
        return out;
    }
    let mut assigned: u64 = 0;
    for (o, &w) in out.iter_mut().zip(weights.iter()) {
        let share = (span as u128 * w as u128 / total) as u64;
        *o = share;
        assigned += share;
    }
    let mut max_i = 0;
    for (i, &w) in weights.iter().enumerate() {
        if w > weights[max_i] {
            max_i = i;
        }
    }
    out[max_i] += span - assigned;
    out
}

/// Per-partition frontier cursor plus its accumulating ledger.
#[derive(Debug, Clone, Default)]
struct Cursor {
    frontier: u64,
    ledger: PartitionLedger,
}

/// The run-wide cycle ledger: one frontier cursor and bucket array per
/// partition. Owned by the simulator; closed at finalize.
#[derive(Debug, Clone)]
pub struct CycleLedger {
    cursors: Vec<Cursor>,
}

impl CycleLedger {
    /// A ledger for `partitions` partitions, all frontiers at cycle 0.
    pub fn new(partitions: usize) -> Self {
        Self {
            cursors: vec![Cursor::default(); partitions],
        }
    }

    /// Attributes activity span `[start, end)` on partition `p`: the gap
    /// since the frontier goes to [`StallBucket::Issue`], the newly
    /// visible part of the span is split across `weights` (falling back
    /// to `fallback` when all weights are zero), and the frontier
    /// advances to `end`. Returns the per-bucket cycles added, for
    /// telemetry mirroring.
    pub fn commit(
        &mut self,
        p: usize,
        start: u64,
        end: u64,
        weights: &LedgerWeights,
        fallback: StallBucket,
    ) -> [u64; NUM_STALL_BUCKETS] {
        let cur = &mut self.cursors[p];
        let mut delta = [0u64; NUM_STALL_BUCKETS];
        if start > cur.frontier {
            delta[StallBucket::Issue.idx()] += start - cur.frontier;
            cur.frontier = start;
        }
        let visible = end.saturating_sub(cur.frontier);
        if visible > 0 {
            let parts = split_span(visible, &weights.w, fallback);
            for (d, p) in delta.iter_mut().zip(parts.iter()) {
                *d += p;
            }
            cur.frontier = end;
        }
        for (b, d) in cur.ledger.buckets.iter_mut().zip(delta.iter()) {
            *b += d;
        }
        delta
    }

    /// Closes the ledger at `horizon`: remaining unattributed time on each
    /// partition becomes [`StallBucket::Issue`]; partitions whose frontier
    /// ran past the horizon (early-halted runs with in-flight activity)
    /// are trimmed back deterministically, walking buckets in reverse
    /// order. After this, every partition's total equals `horizon`.
    /// Returns the total `Issue` cycles added across partitions (for
    /// telemetry mirroring; trims are not mirrored, so telemetry ledger
    /// counters may over-report on crashed runs).
    pub fn close(&mut self, horizon: u64) -> u64 {
        let mut issue_added = 0u64;
        for cur in &mut self.cursors {
            if horizon >= cur.frontier {
                let gap = horizon - cur.frontier;
                cur.ledger.buckets[StallBucket::Issue.idx()] += gap;
                issue_added += gap;
            } else {
                let mut trim = cur.frontier - horizon;
                for b in cur.ledger.buckets.iter_mut().rev() {
                    let cut = trim.min(*b);
                    *b -= cut;
                    trim -= cut;
                    if trim == 0 {
                        break;
                    }
                }
            }
            cur.frontier = horizon;
        }
        issue_added
    }

    /// Snapshot of every partition's ledger, in partition order.
    pub fn ledgers(&self) -> Vec<PartitionLedger> {
        self.cursors.iter().map(|c| c.ledger.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indices_are_unique_and_dense() {
        let mut seen = [false; NUM_STALL_BUCKETS];
        for b in StallBucket::ALL {
            assert!(!seen[b.idx()], "duplicate idx for {b}");
            seen[b.idx()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn split_is_exact_and_deterministic() {
        let mut w = [0u64; NUM_STALL_BUCKETS];
        w[1] = 3;
        w[4] = 7;
        w[6] = 2;
        for span in [0u64, 1, 5, 12, 97, 1_000_003] {
            let parts = split_span(span, &w, StallBucket::Issue);
            assert_eq!(parts.iter().sum::<u64>(), span, "span {span} not conserved");
        }
        // Remainder lands on the largest weight.
        let parts = split_span(10, &w, StallBucket::Issue);
        assert!(parts[4] >= parts[1] && parts[4] >= parts[6]);
    }

    #[test]
    fn zero_weights_fall_back() {
        let w = [0u64; NUM_STALL_BUCKETS];
        let parts = split_span(42, &w, StallBucket::DataFill);
        assert_eq!(parts[StallBucket::DataFill.idx()], 42);
        assert_eq!(parts.iter().sum::<u64>(), 42);
    }

    #[test]
    fn commit_attributes_gap_to_issue_and_advances_frontier() {
        let mut l = CycleLedger::new(1);
        let mut w = LedgerWeights::default();
        w.add(StallBucket::DataFill, 10);
        let delta = l.commit(0, 100, 150, &w, StallBucket::DataFill);
        assert_eq!(delta[StallBucket::Issue.idx()], 100);
        assert_eq!(delta[StallBucket::DataFill.idx()], 50);
        l.close(150);
        let ledgers = l.ledgers();
        assert_eq!(ledgers[0].total(), 150);
    }

    #[test]
    fn overlapping_spans_do_not_double_book() {
        let mut l = CycleLedger::new(1);
        let mut w = LedgerWeights::default();
        w.add(StallBucket::DataFill, 1);
        l.commit(0, 0, 100, &w, StallBucket::DataFill);
        // Second span overlaps [50, 100): only [100, 120) is new.
        let delta = l.commit(0, 50, 120, &w, StallBucket::DataFill);
        assert_eq!(delta.iter().sum::<u64>(), 20);
        l.close(120);
        assert_eq!(l.ledgers()[0].total(), 120);
    }

    #[test]
    fn close_trims_overrun_on_early_halt() {
        let mut l = CycleLedger::new(2);
        let mut w = LedgerWeights::default();
        w.add(StallBucket::MetaMac, 1);
        l.commit(0, 0, 500, &w, StallBucket::DataFill);
        // Halt at 200: partition 0's frontier (500) must be trimmed back.
        l.close(200);
        for led in l.ledgers() {
            assert_eq!(led.total(), 200);
        }
    }

    #[test]
    fn collapse_moves_all_weight() {
        let mut w = LedgerWeights::default();
        w.add(StallBucket::DataFill, 10);
        w.add(StallBucket::BankConflict, 5);
        w.collapse_into(StallBucket::TransientRetry);
        let mut l = CycleLedger::new(1);
        let delta = l.commit(0, 0, 30, &w, StallBucket::Issue);
        assert_eq!(delta[StallBucket::TransientRetry.idx()], 30);
    }

    #[test]
    fn untouched_partitions_close_to_pure_issue() {
        let mut l = CycleLedger::new(3);
        l.close(1000);
        for led in l.ledgers() {
            assert_eq!(led.get(StallBucket::Issue), 1000);
            assert_eq!(led.total(), 1000);
        }
    }
}
