//! Sectored set-associative cache with optional data storage.
//!
//! Used for the L2 data slices (which hold real bytes so dirty evictions
//! carry their payload back through the security engine) and for the
//! security-metadata caches (tags only — metadata *values* live in the
//! engine's functional tables; only hit/miss behavior and eviction traffic
//! matter).
//!
//! Lines are `line_size` bytes split into `line_size / sector_size` sectors
//! with independent valid and dirty bits, modeling Volta's sectored caches
//! and the PSSM sectored metadata caches. Setting `line_size == sector_size`
//! yields the plain (non-sectored) 32-byte-block caches of Plutus's
//! fine-grain metadata designs.

use crate::address::SECTOR_SIZE;
use plutus_telemetry::{Counter, Telemetry};

/// Maximum sectors per line supported (128 B line / 32 B sector).
const MAX_SECTORS: usize = 4;

/// A dirty sector pushed out of the cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictedSector {
    /// Address of the evicted sector.
    pub addr: u64,
    /// The sector's bytes, if this cache stores data.
    pub data: Option<[u8; 32]>,
}

#[derive(Debug, Clone)]
struct Line {
    tag: u64,
    valid_mask: u8,
    dirty_mask: u8,
    lru: u64,
    data: Option<Box<[[u8; 32]; MAX_SECTORS]>>,
}

impl Line {
    fn empty() -> Self {
        Self {
            tag: u64::MAX,
            valid_mask: 0,
            dirty_mask: 0,
            lru: 0,
            data: None,
        }
    }
}

/// Outcome of a lookup-with-allocate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The requested sector was already valid.
    pub hit: bool,
    /// Dirty sectors displaced by the allocation (empty on hits).
    pub evicted: Vec<EvictedSector>,
}

/// A sectored, set-associative, write-back cache with LRU replacement.
#[derive(Debug, Clone)]
pub struct SectoredCache {
    sets: usize,
    ways: usize,
    line_size: u64,
    sectors_per_line: usize,
    store_data: bool,
    lines: Vec<Line>,
    lru_tick: u64,
    hits: u64,
    misses: u64,
    tel_hits: Counter,
    tel_misses: Counter,
}

impl SectoredCache {
    /// Builds a cache of `capacity_bytes` with `ways` associativity and
    /// `line_size`-byte lines (a multiple of 32, at most 128).
    ///
    /// `store_data` selects whether sector payloads are kept (L2) or only
    /// tags (metadata caches).
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not a multiple of
    /// `ways × line_size`, or unsupported line size).
    pub fn new(capacity_bytes: u64, ways: usize, line_size: u64, store_data: bool) -> Self {
        assert!(
            line_size.is_multiple_of(SECTOR_SIZE) && (SECTOR_SIZE..=128).contains(&line_size),
            "line_size must be 32, 64, 96 or 128 bytes, got {line_size}"
        );
        assert!(ways > 0, "ways must be positive");
        let lines_total = capacity_bytes / line_size;
        assert!(
            lines_total >= ways as u64 && lines_total.is_multiple_of(ways as u64),
            "capacity {capacity_bytes} must hold a whole number of {ways}-way sets of {line_size}B lines"
        );
        let sets = (lines_total / ways as u64) as usize;
        Self {
            sets,
            ways,
            line_size,
            sectors_per_line: (line_size / SECTOR_SIZE) as usize,
            store_data,
            lines: vec![Line::empty(); (lines_total) as usize],
            lru_tick: 0,
            hits: 0,
            misses: 0,
            tel_hits: Counter::disabled(),
            tel_misses: Counter::disabled(),
        }
    }

    /// Mirrors this cache's hit/miss statistics into `tel` under
    /// `<prefix>.hits` / `<prefix>.misses`. Caches attached with the same
    /// prefix (e.g. every L2 bank, or one metadata cache per partition)
    /// aggregate into the same counters.
    pub fn attach_telemetry(&mut self, tel: &Telemetry, prefix: &str) {
        self.tel_hits = tel.counter(&format!("{prefix}.hits"));
        self.tel_misses = tel.counter(&format!("{prefix}.misses"));
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr / self.line_size) % self.sets as u64) as usize
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr / self.line_size / self.sets as u64
    }

    fn sector_of(&self, addr: u64) -> usize {
        ((addr % self.line_size) / SECTOR_SIZE) as usize
    }

    fn line_base(&self, set: usize, tag: u64) -> u64 {
        (tag * self.sets as u64 + set as u64) * self.line_size
    }

    fn set_lines(&mut self, set: usize) -> &mut [Line] {
        &mut self.lines[set * self.ways..(set + 1) * self.ways]
    }

    /// True if the sector is currently valid (no state change, no LRU touch).
    pub fn probe(&self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let sector = self.sector_of(addr);
        self.lines[set * self.ways..(set + 1) * self.ways]
            .iter()
            .any(|l| l.tag == tag && l.valid_mask & (1 << sector) != 0)
    }

    /// Looks up `addr`, allocating the line and marking the sector valid on
    /// a miss. Returns whether it hit and any dirty sectors evicted.
    ///
    /// `write` marks the sector dirty; `data` (for data-storing caches)
    /// installs the sector payload.
    pub fn access(&mut self, addr: u64, write: bool, data: Option<[u8; 32]>) -> AccessOutcome {
        self.lru_tick += 1;
        let tick = self.lru_tick;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let sector = self.sector_of(addr);
        let store_data = self.store_data;
        let ways = self.ways;

        // Existing line?
        let lines = self.set_lines(set);
        if let Some(way) = lines.iter().position(|l| l.tag == tag && l.valid_mask != 0) {
            let line = &mut lines[way];
            line.lru = tick;
            let was_valid = line.valid_mask & (1 << sector) != 0;
            line.valid_mask |= 1 << sector;
            if write {
                line.dirty_mask |= 1 << sector;
            }
            if store_data {
                if let Some(d) = data {
                    line.data
                        .get_or_insert_with(|| Box::new([[0; 32]; MAX_SECTORS]))[sector] = d;
                }
            }
            if was_valid {
                self.hits += 1;
                self.tel_hits.inc();
                return AccessOutcome {
                    hit: true,
                    evicted: Vec::new(),
                };
            }
            // Sector miss within a present line: no eviction needed.
            self.misses += 1;
            self.tel_misses.inc();
            return AccessOutcome {
                hit: false,
                evicted: Vec::new(),
            };
        }

        // Allocate: pick invalid way or LRU victim.
        self.misses += 1;
        self.tel_misses.inc();
        let lines = self.set_lines(set);
        let victim_way = lines
            .iter()
            .position(|l| l.valid_mask == 0)
            .unwrap_or_else(|| {
                (0..ways)
                    .min_by_key(|&w| lines[w].lru)
                    .expect("cache set has at least one way")
            });

        // Collect dirty evictions from the victim.
        let victim_tag = lines[victim_way].tag;
        let mut evicted = Vec::new();
        if lines[victim_way].valid_mask != 0 {
            let base = self.line_base(set, victim_tag);
            let sectors_per_line = self.sectors_per_line;
            let line = &self.lines[set * ways + victim_way];
            for s in 0..sectors_per_line {
                if line.dirty_mask & (1 << s) != 0 {
                    let payload = line.data.as_ref().map(|d| d[s]);
                    evicted.push(EvictedSector {
                        addr: base + s as u64 * SECTOR_SIZE,
                        data: payload,
                    });
                }
            }
        }

        let line = &mut self.set_lines(set)[victim_way];
        line.tag = tag;
        line.valid_mask = 1 << sector;
        line.dirty_mask = if write { 1 << sector } else { 0 };
        line.lru = tick;
        line.data = None;
        if store_data {
            if let Some(d) = data {
                line.data
                    .get_or_insert_with(|| Box::new([[0; 32]; MAX_SECTORS]))[sector] = d;
            }
        }
        AccessOutcome {
            hit: false,
            evicted,
        }
    }

    /// Installs sector data without changing hit statistics (used when a
    /// fill completes). No-op if the line was since evicted or the sector
    /// was overwritten by a newer store (dirty).
    pub fn fill_data(&mut self, addr: u64, data: [u8; 32]) {
        if !self.store_data {
            return;
        }
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let sector = self.sector_of(addr);
        let lines = self.set_lines(set);
        if let Some(line) = lines.iter_mut().find(|l| l.tag == tag && l.valid_mask != 0) {
            if line.dirty_mask & (1 << sector) == 0 {
                line.data
                    .get_or_insert_with(|| Box::new([[0; 32]; MAX_SECTORS]))[sector] = data;
            }
        }
    }

    /// Reads a valid sector's stored payload, if present.
    pub fn peek_data(&self, addr: u64) -> Option<[u8; 32]> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let sector = self.sector_of(addr);
        self.lines[set * self.ways..(set + 1) * self.ways]
            .iter()
            .find(|l| l.tag == tag && l.valid_mask & (1 << sector) != 0)
            .and_then(|l| l.data.as_ref().map(|d| d[sector]))
    }

    /// Drains every dirty sector (end-of-kernel flush), clearing dirty bits.
    pub fn flush_dirty(&mut self) -> Vec<EvictedSector> {
        let mut out = Vec::new();
        for set in 0..self.sets {
            for way in 0..self.ways {
                let idx = set * self.ways + way;
                let (tag, dirty_mask) = (self.lines[idx].tag, self.lines[idx].dirty_mask);
                if self.lines[idx].valid_mask == 0 || dirty_mask == 0 {
                    continue;
                }
                let base = self.line_base(set, tag);
                for s in 0..self.sectors_per_line {
                    if dirty_mask & (1 << s) != 0 {
                        let payload = self.lines[idx].data.as_ref().map(|d| d[s]);
                        out.push(EvictedSector {
                            addr: base + s as u64 * SECTOR_SIZE,
                            data: payload,
                        });
                    }
                }
                self.lines[idx].dirty_mask = 0;
            }
        }
        out
    }

    /// (hits, misses) so far.
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SectoredCache {
        // 4 sets × 2 ways × 128 B = 1 KiB.
        SectoredCache::new(1024, 2, 128, true)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        let o = c.access(0x40, false, Some([1; 32]));
        assert!(!o.hit);
        let o = c.access(0x40, false, None);
        assert!(o.hit);
        assert_eq!(c.hit_stats(), (1, 1));
    }

    #[test]
    fn sector_miss_in_present_line() {
        let mut c = small();
        c.access(0x00, false, None);
        // Different sector, same 128B line: miss but no eviction.
        let o = c.access(0x20, false, None);
        assert!(!o.hit);
        assert!(o.evicted.is_empty());
        // Both sectors now valid.
        assert!(c.probe(0x00));
        assert!(c.probe(0x20));
    }

    #[test]
    fn dirty_eviction_carries_data() {
        let mut c = small();
        // Set count = 1024/128/2 = 4 sets. Addresses with the same
        // (addr/128)%4 map to the same set: 0x000, 0x200, 0x400 (set 0).
        c.access(0x000, true, Some([0xaa; 32]));
        c.access(0x200, false, None);
        let o = c.access(0x400, false, None); // evicts LRU = 0x000 line
        assert_eq!(o.evicted.len(), 1);
        assert_eq!(o.evicted[0].addr, 0x000);
        assert_eq!(o.evicted[0].data, Some([0xaa; 32]));
    }

    #[test]
    fn lru_order_respected() {
        let mut c = small();
        c.access(0x000, false, None);
        c.access(0x200, false, None);
        c.access(0x000, false, None); // touch 0x000 so 0x200 is LRU
        c.access(0x400, false, None); // should evict 0x200
        assert!(c.probe(0x000));
        assert!(!c.probe(0x200));
        assert!(c.probe(0x400));
    }

    #[test]
    fn fill_data_respects_newer_store() {
        let mut c = small();
        c.access(0x40, false, None); // read miss, no data yet
        c.access(0x40, true, Some([2; 32])); // store overwrites while "pending"
        c.fill_data(0x40, [1; 32]); // stale fill must not clobber
        assert_eq!(c.peek_data(0x40), Some([2; 32]));
    }

    #[test]
    fn fill_data_installs_on_clean_sector() {
        let mut c = small();
        c.access(0x40, false, None);
        c.fill_data(0x40, [3; 32]);
        assert_eq!(c.peek_data(0x40), Some([3; 32]));
    }

    #[test]
    fn flush_collects_all_dirty_sectors() {
        let mut c = small();
        c.access(0x00, true, Some([1; 32]));
        c.access(0x20, true, Some([2; 32]));
        c.access(0x80, false, None);
        let mut flushed = c.flush_dirty();
        flushed.sort_by_key(|e| e.addr);
        assert_eq!(flushed.len(), 2);
        assert_eq!(flushed[0].addr, 0x00);
        assert_eq!(flushed[1].addr, 0x20);
        // Second flush is empty.
        assert!(c.flush_dirty().is_empty());
    }

    #[test]
    fn tagless_cache_tracks_hits_without_data() {
        let mut c = SectoredCache::new(2048, 4, 128, false);
        assert!(!c.access(0x100, false, None).hit);
        assert!(c.access(0x100, false, None).hit);
        assert_eq!(c.peek_data(0x100), None);
    }

    #[test]
    fn thirty_two_byte_line_mode() {
        // Plutus fine-grain metadata cache: line == sector == 32 B.
        let mut c = SectoredCache::new(256, 2, 32, false);
        assert!(!c.access(0x00, false, None).hit);
        // Adjacent 32B address is a *different* line now.
        assert!(!c.access(0x20, false, None).hit);
        assert!(c.access(0x00, false, None).hit);
    }

    #[test]
    #[should_panic(expected = "line_size")]
    fn rejects_bad_line_size() {
        SectoredCache::new(1024, 2, 48, false);
    }

    #[test]
    fn line_addresses_reconstructed_correctly() {
        // Eviction addresses must be the original addresses.
        let mut c = SectoredCache::new(1024, 1, 128, true); // 8 sets direct-mapped
        let addr = 8 * 128 * 5 + 0x60; // set 5... tag 5? compute: line 45 → set 45%8=5, tag 5
        c.access(addr, true, Some([9; 32]));
        // Conflict: same set, different tag.
        let conflict = addr + 8 * 128;
        let o = c.access(conflict, false, None);
        assert_eq!(o.evicted.len(), 1);
        assert_eq!(
            o.evicted[0].addr,
            addr & !(31),
            "evicted addr must match original"
        );
    }
}
