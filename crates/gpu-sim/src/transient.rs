//! Transient (soft-error) fault model and the bounded retry policy.
//!
//! PR 2's [`crate::FaultSchedule`] models an *adversary*: persistent
//! tampering that verification must catch and report. This module models
//! the other failure class real controllers face — benign, transient
//! corruption of a DRAM transfer (a link CRC miss, a marginal cell read)
//! in the spirit of SecDDR's retryable-error class. A transient fault is
//! an *in-flight* error: the stored bytes were never wrong, so re-issuing
//! the fetch observes clean data. The simulator therefore applies the
//! fault for the duration of one fill attempt and undoes it afterwards
//! (every injection primitive is an involution), and a [`RetryPolicy`]
//! decides how many cycle-charged re-fetches are attempted before the
//! failure escalates to a recorded [`crate::Violation`].
//!
//! Sampling is deterministic: a [`TransientSampler`] hashes (seed, fill
//! ordinal) with SplitMix64, so a campaign is exactly reproducible from
//! its seed without any global RNG state.

/// What a transient fault corrupts for the duration of one fill attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransientKind {
    /// The data sector's ciphertext transfer (bit flips via XOR mask).
    Data,
    /// The sector's stored MAC tag (metadata-path soft error).
    Mac,
    /// The BMT leaf record covering the sector's counter.
    BmtNode,
}

impl TransientKind {
    /// Stable short label used in records and campaign reports.
    pub fn label(&self) -> &'static str {
        match self {
            TransientKind::Data => "transient_data",
            TransientKind::Mac => "transient_mac",
            TransientKind::BmtNode => "transient_bmt_node",
        }
    }
}

/// Configuration of the seeded soft-error process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientConfig {
    /// Probability that any given fill suffers a transient fault.
    pub rate: f64,
    /// Seed for the deterministic per-fill sampler.
    pub seed: u64,
}

impl TransientConfig {
    /// A soft-error process at `rate` faults per fill.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1]`.
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "soft-error rate must be in [0, 1], got {rate}"
        );
        Self { rate, seed }
    }
}

/// Bounded retry with cycle-charged exponential backoff.
///
/// `limit == 0` (the default) disables retry entirely: the first failed
/// verification escalates immediately, which is the pre-recovery
/// behavior every existing test and campaign was built against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of re-fetch attempts after the first failure.
    pub limit: u32,
    /// Backoff charged before retry `n` is `backoff_base << (n - 1)`.
    pub backoff_base: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            limit: 0,
            backoff_base: 8,
        }
    }
}

impl RetryPolicy {
    /// A policy allowing `limit` retries with the default backoff base.
    pub fn with_limit(limit: u32) -> Self {
        Self {
            limit,
            ..Self::default()
        }
    }

    /// Backoff cycles charged before the `attempt`-th retry (1-based).
    pub fn backoff(&self, attempt: u32) -> u64 {
        // Cap the shift so a pathological limit cannot overflow.
        self.backoff_base << attempt.saturating_sub(1).min(16)
    }
}

/// SplitMix64 step: the standard 64-bit finalizer-based generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic per-fill soft-error sampler.
#[derive(Debug, Clone, Copy)]
pub struct TransientSampler {
    cfg: TransientConfig,
}

impl TransientSampler {
    /// A sampler for the given soft-error process.
    pub fn new(cfg: TransientConfig) -> Self {
        Self { cfg }
    }

    /// The configured soft-error process.
    pub fn config(&self) -> TransientConfig {
        self.cfg
    }

    /// Decides whether the fill with ordinal `fill_ordinal` suffers a
    /// transient fault, and if so of which kind and (for data faults)
    /// with which XOR mask. Pure function of (seed, ordinal).
    pub fn sample(&self, fill_ordinal: u64) -> Option<(TransientKind, [u8; 32])> {
        if self.cfg.rate <= 0.0 {
            return None;
        }
        let mut state = self
            .cfg
            .seed
            .wrapping_add(fill_ordinal.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let draw = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
        if draw >= self.cfg.rate {
            return None;
        }
        let kind = match splitmix64(&mut state) % 3 {
            0 => TransientKind::Data,
            1 => TransientKind::Mac,
            _ => TransientKind::BmtNode,
        };
        let mut mask = [0u8; 32];
        for chunk in mask.chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
        }
        if mask.iter().all(|&b| b == 0) {
            mask[0] = 1; // a zero mask would be a no-op "fault"
        }
        Some((kind, mask))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_is_deterministic() {
        let s = TransientSampler::new(TransientConfig::new(0.5, 42));
        let a: Vec<_> = (0..64).map(|i| s.sample(i)).collect();
        let b: Vec<_> = (0..64).map(|i| s.sample(i)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn rate_bounds_hold() {
        let never = TransientSampler::new(TransientConfig::new(0.0, 1));
        assert!((0..1000).all(|i| never.sample(i).is_none()));
        let always = TransientSampler::new(TransientConfig::new(1.0, 1));
        assert!((0..1000).all(|i| always.sample(i).is_some()));
    }

    #[test]
    fn moderate_rate_hits_a_plausible_fraction() {
        let s = TransientSampler::new(TransientConfig::new(0.1, 7));
        let hits = (0..10_000).filter(|&i| s.sample(i).is_some()).count();
        assert!((700..1300).contains(&hits), "got {hits} faults at rate 0.1");
    }

    #[test]
    fn all_kinds_are_sampled() {
        let s = TransientSampler::new(TransientConfig::new(1.0, 3));
        let mut seen = [false; 3];
        for i in 0..256 {
            match s.sample(i).unwrap().0 {
                TransientKind::Data => seen[0] = true,
                TransientKind::Mac => seen[1] = true,
                TransientKind::BmtNode => seen[2] = true,
            }
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn masks_are_nonzero() {
        let s = TransientSampler::new(TransientConfig::new(1.0, 9));
        for i in 0..256 {
            let (_, mask) = s.sample(i).unwrap();
            assert!(mask.iter().any(|&b| b != 0));
        }
    }

    #[test]
    fn backoff_is_exponential_and_bounded() {
        let p = RetryPolicy {
            limit: 4,
            backoff_base: 8,
        };
        assert_eq!(p.backoff(1), 8);
        assert_eq!(p.backoff(2), 16);
        assert_eq!(p.backoff(3), 32);
        // Shift saturates rather than overflowing.
        assert_eq!(p.backoff(200), 8 << 16);
        assert_eq!(RetryPolicy::default().limit, 0);
    }

    #[test]
    #[should_panic(expected = "soft-error rate")]
    fn invalid_rate_is_rejected() {
        let _ = TransientConfig::new(1.5, 0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(TransientKind::Data.label(), "transient_data");
        assert_eq!(TransientKind::Mac.label(), "transient_mac");
        assert_eq!(TransientKind::BmtNode.label(), "transient_bmt_node");
    }
}
