//! Memory-access traces driving the simulator.
//!
//! A [`Trace`] is a flat, ordered stream of sector accesses plus the initial
//! memory image. The warp pool dispatches accesses round-robin: each warp
//! repeatedly claims the next access, spends its `think_cycles` of compute,
//! issues it, and (for reads) blocks until the response returns. This keeps
//! workload generation (in the `workloads` crate) fully decoupled from
//! timing.

use crate::address::SectorAddr;

/// Whether an access reads or writes its sector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Load: blocks the issuing warp until data returns.
    Read,
    /// Full-sector store: fire-and-forget from the warp's perspective.
    Write,
}

/// Sentinel for "no write data attached".
pub const NO_DATA: u32 = u32::MAX;

/// One memory access in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceAccess {
    /// Sector-aligned address.
    pub addr: SectorAddr,
    /// Read or write.
    pub kind: AccessKind,
    /// Compute cycles the warp spends before issuing this access.
    pub think_cycles: u32,
    /// Instructions retired when this access completes (models the
    /// arithmetic the access feeds; drives IPC).
    pub instructions: u32,
    /// Index into [`Trace::write_data`] for writes; [`NO_DATA`] for reads.
    pub data_idx: u32,
}

/// A complete workload trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Human-readable workload name (e.g. `"bfs"`).
    pub name: String,
    /// The ordered access stream.
    pub accesses: Vec<TraceAccess>,
    /// Write payloads referenced by [`TraceAccess::data_idx`].
    pub write_data: Vec<[u8; 32]>,
    /// Initial plaintext memory image: (sector address, contents).
    pub initial_image: Vec<(SectorAddr, [u8; 32])>,
}

impl Trace {
    /// Creates an empty named trace.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Appends a read access.
    pub fn push_read(&mut self, addr: SectorAddr, think_cycles: u32, instructions: u32) {
        self.accesses.push(TraceAccess {
            addr,
            kind: AccessKind::Read,
            think_cycles,
            instructions,
            data_idx: NO_DATA,
        });
    }

    /// Appends a full-sector write access carrying `data`.
    pub fn push_write(
        &mut self,
        addr: SectorAddr,
        data: [u8; 32],
        think_cycles: u32,
        instructions: u32,
    ) {
        let idx = self.write_data.len() as u32;
        assert!(idx != NO_DATA, "trace write_data overflow");
        self.write_data.push(data);
        self.accesses.push(TraceAccess {
            addr,
            kind: AccessKind::Write,
            think_cycles,
            instructions,
            data_idx: idx,
        });
    }

    /// Adds an initial-image sector (pre-kernel device memory contents).
    pub fn set_initial(&mut self, addr: SectorAddr, data: [u8; 32]) {
        self.initial_image.push((addr, data));
    }

    /// Payload of a write access.
    ///
    /// # Panics
    ///
    /// Panics if `access` is not a write from this trace.
    pub fn data_of(&self, access: &TraceAccess) -> &[u8; 32] {
        assert_eq!(access.kind, AccessKind::Write, "data_of called on a read");
        &self.write_data[access.data_idx as usize]
    }

    /// Number of accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// True if the trace has no accesses.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Fraction of accesses that are writes (paper Fig. 10).
    pub fn write_fraction(&self) -> f64 {
        if self.accesses.is_empty() {
            return 0.0;
        }
        let writes = self
            .accesses
            .iter()
            .filter(|a| a.kind == AccessKind::Write)
            .count();
        writes as f64 / self.accesses.len() as f64
    }

    /// Total instructions annotated on the trace.
    pub fn total_instructions(&self) -> u64 {
        self.accesses.iter().map(|a| a.instructions as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_inspect() {
        let mut t = Trace::new("unit");
        t.push_read(SectorAddr::new(0), 4, 10);
        t.push_write(SectorAddr::new(32), [7; 32], 2, 5);
        assert_eq!(t.len(), 2);
        assert_eq!(t.total_instructions(), 15);
        assert!((t.write_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(t.data_of(&t.accesses[1]), &[7; 32]);
    }

    #[test]
    #[should_panic(expected = "data_of called on a read")]
    fn data_of_read_panics() {
        let mut t = Trace::new("unit");
        t.push_read(SectorAddr::new(0), 0, 0);
        let a = t.accesses[0];
        t.data_of(&a);
    }

    #[test]
    fn empty_trace_properties() {
        let t = Trace::new("empty");
        assert!(t.is_empty());
        assert_eq!(t.write_fraction(), 0.0);
    }
}
