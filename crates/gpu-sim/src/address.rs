//! Address arithmetic for the sectored GPU memory hierarchy.
//!
//! Volta-class GPUs cache 128-byte lines but transfer 32-byte *sectors* to
//! and from DRAM; sectors are the granularity at which the Plutus paper
//! attaches security metadata (one counter and one MAC per sector).

/// Bytes per DRAM access sector.
pub const SECTOR_SIZE: u64 = 32;
/// Bytes per cache line ("block" in the paper).
pub const BLOCK_SIZE: u64 = 128;
/// Sectors per cache line.
pub const SECTORS_PER_BLOCK: usize = (BLOCK_SIZE / SECTOR_SIZE) as usize;

/// A sector-aligned physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SectorAddr(u64);

impl SectorAddr {
    /// Creates a sector address by aligning `addr` down to 32 bytes.
    pub fn containing(addr: u64) -> Self {
        Self(addr & !(SECTOR_SIZE - 1))
    }

    /// Creates a sector address from an already-aligned value.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 32-byte aligned.
    pub fn new(addr: u64) -> Self {
        assert_eq!(
            addr % SECTOR_SIZE,
            0,
            "sector address {addr:#x} not 32B-aligned"
        );
        Self(addr)
    }

    /// The raw byte address.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The 128-byte block containing this sector.
    pub fn block(self) -> BlockAddr {
        BlockAddr(self.0 & !(BLOCK_SIZE - 1))
    }

    /// Index of this sector within its block (0..4).
    pub fn sector_in_block(self) -> usize {
        ((self.0 % BLOCK_SIZE) / SECTOR_SIZE) as usize
    }

    /// Global sector index (address / 32).
    pub fn index(self) -> u64 {
        self.0 / SECTOR_SIZE
    }
}

impl std::fmt::Display for SectorAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A 128-byte-aligned block (cache line) address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block address by aligning `addr` down to 128 bytes.
    pub fn containing(addr: u64) -> Self {
        Self(addr & !(BLOCK_SIZE - 1))
    }

    /// The raw byte address.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Global block index (address / 128).
    pub fn index(self) -> u64 {
        self.0 / BLOCK_SIZE
    }

    /// The `i`-th sector of this block.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 4`.
    pub fn sector(self, i: usize) -> SectorAddr {
        assert!(i < SECTORS_PER_BLOCK, "sector index {i} out of range");
        SectorAddr(self.0 + i as u64 * SECTOR_SIZE)
    }
}

impl std::fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Maps a block to its memory partition using a pseudo-random interleave.
///
/// Volta interleaves 128-byte blocks across 32 partitions with an
/// address hash to avoid camping; we fold the upper block-index bits into
/// the lower ones before taking the modulus, which spreads strided patterns
/// evenly (Table I: "pseudo-random memory interleaving").
pub fn partition_of(block: BlockAddr, partitions: usize) -> usize {
    assert!(partitions > 0, "partition count must be positive");
    let idx = block.index();
    let mixed = idx ^ (idx >> 7) ^ (idx >> 13) ^ (idx >> 21);
    (mixed % partitions as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sector_alignment_and_block_membership() {
        let s = SectorAddr::containing(0x1234_5678);
        assert_eq!(s.raw() % SECTOR_SIZE, 0);
        assert_eq!(s.block().raw() % BLOCK_SIZE, 0);
        assert!(s.raw() >= s.block().raw());
        assert!(s.raw() < s.block().raw() + BLOCK_SIZE);
    }

    #[test]
    fn sector_in_block_covers_all_four() {
        let b = BlockAddr::containing(0x8000);
        for i in 0..SECTORS_PER_BLOCK {
            assert_eq!(b.sector(i).sector_in_block(), i);
            assert_eq!(b.sector(i).block(), b);
        }
    }

    #[test]
    #[should_panic(expected = "not 32B-aligned")]
    fn unaligned_sector_rejected() {
        SectorAddr::new(33);
    }

    #[test]
    fn partition_mapping_is_stable_and_in_range() {
        for i in 0..10_000u64 {
            let b = BlockAddr::containing(i * BLOCK_SIZE);
            let p = partition_of(b, 32);
            assert!(p < 32);
            assert_eq!(p, partition_of(b, 32), "mapping must be deterministic");
        }
    }

    #[test]
    fn partition_mapping_spreads_strided_accesses() {
        // A large power-of-two stride must not camp on one partition.
        let mut counts = [0usize; 32];
        for i in 0..3200u64 {
            let b = BlockAddr::containing(i * 4096);
            counts[partition_of(b, 32)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(
            max < 3 * (min + 1),
            "imbalanced interleave: min={min} max={max}"
        );
    }

    #[test]
    fn index_roundtrip() {
        let s = SectorAddr::new(96);
        assert_eq!(s.index(), 3);
        assert_eq!(s.sector_in_block(), 3);
        assert_eq!(s.block().index(), 0);
    }
}
