//! The trace-driven simulator: warp pool, L2 slices, MSHRs, security
//! engines, and DRAM channels.
//!
//! # Model
//!
//! A pool of warps round-robins over the trace: each warp claims the next
//! access, spends its `think_cycles`, then issues. Reads block the warp
//! until the fill returns; writes are fire-and-forget (GPU store buffers).
//! With the default 1024-warp pool, latency is hidden and throughput is set
//! by DRAM bandwidth — the regime in which the paper's security-metadata
//! traffic matters.
//!
//! Every L2 miss and dirty writeback is routed through the partition's
//! [`SecurityEngine`], which returns a [`FillPlan`]/[`WritePlan`] of extra
//! metadata DRAM requests and crypto latencies; the simulator books those
//! on the partition's DRAM channel and classifies the traffic.

use crate::address::{partition_of, SectorAddr, SECTOR_SIZE};
use crate::cache::{EvictedSector, SectoredCache};
use crate::config::GpuConfig;
use crate::dram::DramChannel;
use crate::fault::{FaultKind, FaultSchedule, ScheduledFault};
use crate::ledger::{CycleLedger, LedgerWeights, StallBucket, NUM_STALL_BUCKETS};
use crate::mem::BackingMemory;
use crate::security::{
    EngineFactory, FillPlan, MetaFault, RecoveryError, RecoveryReport, SecurityEngine, Violation,
};
use crate::stats::{
    DramStats, FaultOutcome, FaultRecord, SimStats, TrafficClass, TransientOutcome,
    TransientRecord, ViolationRecord,
};
use crate::tenant::{TenantMap, TenantStat};
use crate::trace::{AccessKind, Trace, TraceAccess};
use crate::transient::{RetryPolicy, TransientConfig, TransientKind, TransientSampler};
use plutus_telemetry::{Counter, Event as TelEvent, Gauge, Histogram, Telemetry, TraceId, Tracer};
use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// A warp is free and may claim its next trace access.
    WarpNext { warp: u32 },
    /// An access arrives at its partition's L2 after the interconnect.
    Arrive { access: TraceAccess },
    /// A miss's fill is complete at the memory controller.
    FillDone { partition: u32, sector: SectorAddr },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    time: u64,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A fault applied to a sector, awaiting resolution (detected / escaped /
/// clobbered) at the sector's next verification.
#[derive(Debug, Clone, Copy)]
struct ArmedFault {
    /// Cycle at which the fault was applied.
    cycle: u64,
    /// Stable label of the fault kind.
    kind: &'static str,
}

/// A transient fault applied for the duration of one fill attempt.
/// Every injection primitive is an involution, so undoing is re-applying.
#[derive(Debug, Clone, Copy)]
struct PendingTransient {
    kind: TransientKind,
    mask: [u8; 32],
}

/// Last metadata checkpoint: one cloned engine per partition, plus the
/// cycle the snapshot was taken at.
struct CheckpointState {
    cycle: u64,
    engines: Vec<Box<dyn SecurityEngine>>,
}

/// Outcome of a crash-inject → restore → recover → re-read audit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CrashAudit {
    /// Cycle of the checkpoint the crash was restored from.
    pub checkpoint_cycle: u64,
    /// Cycle the crash was injected at (last event processed).
    pub crash_cycle: u64,
    /// Tally of the Phoenix-style recovery pass.
    pub report: RecoveryReport,
    /// Resident sectors compared against the pre-crash oracle.
    pub audited: u64,
    /// Sectors whose post-recovery plaintext diverged from the oracle.
    pub mismatches: u64,
    /// Post-recovery fills that raised a violation on honest data.
    pub spurious_violations: u64,
}

impl CrashAudit {
    /// True when every read came back bit-identical with no spurious
    /// violations — the condition crash campaigns gate on.
    pub fn is_clean(&self) -> bool {
        self.mismatches == 0 && self.spurious_violations == 0 && self.report.failed.is_empty()
    }
}

#[derive(Debug)]
struct Waiter {
    warp: u32,
    instructions: u32,
}

#[derive(Debug)]
struct MshrEntry {
    waiters: Vec<Waiter>,
    plaintext: [u8; 32],
}

struct Partition {
    l2: Vec<SectoredCache>,
    mshr: HashMap<SectorAddr, MshrEntry>,
    mshr_capacity: usize,
    /// Accesses waiting for a free MSHR (with the cycle they started
    /// waiting at, so the ledger can charge the wait to
    /// [`StallBucket::MshrFull`]), admitted in FIFO order as fills
    /// complete (avoids retry storms that would synchronize warps into
    /// convoys).
    pending: VecDeque<(TraceAccess, u64)>,
    dram: DramChannel,
    engine: Box<dyn SecurityEngine>,
}

/// Registry handles mirroring [`SimStats`] into the telemetry layer.
///
/// [`SimStats`] stays the synchronous source of truth for results (its
/// accessors are the compatibility facade every experiment reads); these
/// handles feed the same observations into the shared registry so epoch
/// deltas, exports, and cross-run aggregation see them. All handles are
/// branch-free no-ops when telemetry is disabled.
struct SimTelemetry {
    /// Per-class DRAM read bytes, indexed by [`TrafficClass::idx`].
    read_bytes: [Counter; 6],
    /// Per-class DRAM write bytes.
    write_bytes: [Counter; 6],
    l2_hits: Counter,
    l2_misses: Counter,
    mshr_merges: Counter,
    mshr_stalls: Counter,
    violations: Counter,
    /// Per-bucket cycle-ledger counters (`ledger.<bucket>`), indexed by
    /// [`StallBucket::idx`]; epoch deltas give the CPI-stack time series.
    ledger_ctrs: [Counter; NUM_STALL_BUCKETS],
    /// Aggregate DRAM bus backlog at the last epoch sample, bytes.
    backlog_gauge: Gauge,
    /// Aggregate MSHR occupancy at the last epoch sample.
    mshr_gauge: Gauge,
    /// Fill latency (arrival at the controller → verified data), cycles.
    fill_latency: Histogram,
    /// The causal flight recorder (disarmed unless the run enabled
    /// tracing; every call against it is then a single compare).
    tracer: Tracer,
    /// Root trace id of the demand access currently being served, so
    /// `book_traffic` can attribute each transfer without threading an
    /// argument through every plan-booking path.
    cur_root: Cell<TraceId>,
}

impl SimTelemetry {
    fn new(tel: &Telemetry) -> Self {
        let per_class = |dir: &str| {
            TrafficClass::ALL.map(|c| tel.counter(&format!("traffic.{}.{dir}_bytes", c.label())))
        };
        Self {
            read_bytes: per_class("read"),
            write_bytes: per_class("write"),
            l2_hits: tel.counter("l2.hits"),
            l2_misses: tel.counter("l2.misses"),
            mshr_merges: tel.counter("mshr.merges"),
            mshr_stalls: tel.counter("mshr.stalls"),
            violations: tel.counter("violations"),
            ledger_ctrs: StallBucket::ALL.map(|b| tel.counter(&format!("ledger.{}", b.label()))),
            backlog_gauge: tel.gauge("dram.backlog_bytes"),
            mshr_gauge: tel.gauge("mshr.occupancy"),
            fill_latency: tel.histogram("fill.latency_cycles"),
            tracer: tel.tracer(),
            cur_root: Cell::new(TraceId::NONE),
        }
    }
}

/// Books one DRAM transfer into both the per-run [`SimStats`] and the
/// shared registry (free function so callers can hold disjoint borrows of
/// other `Simulator` fields).
fn book_traffic(
    stats: &mut SimStats,
    tel: &SimTelemetry,
    class: TrafficClass,
    bytes: u64,
    is_write: bool,
    level: u32,
) {
    stats.record_traffic(class, bytes, is_write);
    if is_write {
        tel.write_bytes[class.idx()].add(bytes);
    } else {
        tel.read_bytes[class.idx()].add(bytes);
    }
    tel.tracer
        .traffic(tel.cur_root.get(), class.label(), bytes, is_write, level);
}

/// Commits one activity span into the cycle ledger and mirrors the
/// attributed deltas into the per-bucket telemetry counters (free
/// function so callers can hold disjoint borrows of other `Simulator`
/// fields).
fn commit_ledger(
    ledger: &mut CycleLedger,
    tel: &SimTelemetry,
    p: usize,
    start: u64,
    end: u64,
    weights: &LedgerWeights,
    fallback: StallBucket,
) {
    let delta = ledger.commit(p, start, end, weights, fallback);
    for (c, d) in tel.ledger_ctrs.iter().zip(delta.iter()) {
        c.add(*d);
    }
}

/// Folds one DRAM request's wait breakdown into ledger weights: service
/// (activation + burst + CAS) is charged to the request's traffic class,
/// bank serialization to [`StallBucket::BankConflict`], and bus-queue
/// drain to [`StallBucket::BusBacklog`].
fn weigh_breakdown(
    weights: &mut LedgerWeights,
    class: TrafficClass,
    rep: &crate::dram::DramBreakdown,
) {
    weights.add_class(class, rep.activation + rep.service);
    weights.add(StallBucket::BankConflict, rep.bank_wait);
    weights.add(StallBucket::BusBacklog, rep.backlog_wait);
}

/// Result of a completed simulation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Scheme name reported by the engine.
    pub engine: String,
    /// Workload name from the trace.
    pub workload: String,
    /// Aggregated statistics.
    pub stats: SimStats,
}

impl SimResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }
}

/// The trace-driven GPU memory-system simulator.
///
/// # Example
///
/// ```
/// use gpu_sim::{Simulator, GpuConfig, Trace, SectorAddr, NoSecurityEngine};
///
/// let mut trace = Trace::new("demo");
/// for i in 0..64 {
///     trace.push_read(SectorAddr::new(i * 32), 4, 10);
/// }
/// let mut sim = Simulator::new(GpuConfig::test_small(), trace, &NoSecurityEngine::factory());
/// let result = sim.run();
/// assert_eq!(result.stats.accesses, 64);
/// assert!(result.stats.cycles > 0);
/// ```
pub struct Simulator {
    cfg: GpuConfig,
    trace: Trace,
    cursor: usize,
    partitions: Vec<Partition>,
    backing: BackingMemory,
    events: BinaryHeap<Reverse<Event>>,
    seq: u64,
    horizon: u64,
    stats: SimStats,
    engine_name: &'static str,
    tel: Telemetry,
    simtel: SimTelemetry,
    /// Close a telemetry epoch every this many simulated cycles.
    epoch_interval: Option<u64>,
    next_epoch_at: u64,
    /// Faults still waiting for their trigger.
    faults: FaultSchedule,
    /// Attacker snapshots captured by [`FaultKind::SnapshotData`].
    snapshots: HashMap<u64, [u8; 32]>,
    /// Applied faults awaiting resolution, keyed by raw sector address.
    armed: HashMap<u64, ArmedFault>,
    /// Accesses that have arrived at their partition (drives
    /// [`crate::FaultTrigger::AtAccess`]).
    accesses_seen: u64,
    /// Soft-error process sampling transient faults per fill.
    transients: Option<TransientSampler>,
    /// Bounded-retry policy for failed fills (limit 0 = fail-stop).
    retry: RetryPolicy,
    /// Fill ordinal feeding the transient sampler.
    fill_ordinal: u64,
    /// Stop the event loop at the first recorded violation.
    halt_on_violation: bool,
    /// Take a metadata checkpoint every this many cycles.
    checkpoint_interval: Option<u64>,
    next_checkpoint_at: u64,
    checkpoint: Option<CheckpointState>,
    /// The per-partition cycle ledger (CPI-stack attribution), closed at
    /// finalize.
    ledger: CycleLedger,
    /// Whether the warp pool has been launched (guards re-entry of
    /// [`Simulator::run_until`]).
    started: bool,
    /// Time of the last processed event (the crash cycle on early stop).
    last_event_time: u64,
    /// Whether the warm-up boundary has been crossed (instruction
    /// snapshot taken).
    warmup_done: bool,
    /// Address-range → tenant mapping (empty = single-tenant; no
    /// per-tenant stats are kept then).
    tenants: TenantMap,
    /// Per-tenant progress accumulation, folded into
    /// [`SimStats::tenants`] at finalize.
    tenant_acc: HashMap<u32, TenantStat>,
    /// `(instructions, violations)` already mirrored into the registry
    /// per tenant — epoch rollups add only the delta since the previous
    /// mirror so `tenant.t<id>.*` counters stay monotonic.
    tenant_mirrored: HashMap<u32, (u64, u64)>,
}

impl Simulator {
    /// Builds a simulator for `trace` with engines from `factory`,
    /// installing the trace's initial memory image through the engines.
    /// Telemetry is disabled; see [`Simulator::with_telemetry`].
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn new(cfg: GpuConfig, trace: Trace, factory: &dyn EngineFactory) -> Self {
        Self::with_telemetry(cfg, trace, factory, Telemetry::disabled())
    }

    /// Builds a simulator whose statistics also feed `tel`'s registry, and
    /// whose engines, caches, and DRAM channels are handed the same handle
    /// (via [`SecurityEngine::attach_telemetry`] and friends).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn with_telemetry(
        cfg: GpuConfig,
        trace: Trace,
        factory: &dyn EngineFactory,
        tel: Telemetry,
    ) -> Self {
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid GpuConfig: {e}"));
        let mut backing = BackingMemory::new();
        let mut partitions: Vec<Partition> = (0..cfg.partitions)
            .map(|p| {
                let mut engine = factory.build(p);
                engine.attach_telemetry(&tel);
                let mut dram = DramChannel::new(cfg.dram.clone());
                dram.attach_telemetry(&tel, "dram");
                let l2 = (0..cfg.l2_banks_per_partition)
                    .map(|_| {
                        let mut bank =
                            SectoredCache::new(cfg.l2_bank_bytes, cfg.l2_ways, 128, true);
                        bank.attach_telemetry(&tel, "l2_bank");
                        bank
                    })
                    .collect();
                Partition {
                    l2,
                    mshr: HashMap::new(),
                    mshr_capacity: cfg.mshrs_per_partition,
                    pending: VecDeque::new(),
                    dram,
                    engine,
                }
            })
            .collect();
        let engine_name = partitions
            .first()
            .map(|p| p.engine.name())
            .unwrap_or("none");

        for (addr, data) in &trace.initial_image {
            let p = partition_of(addr.block(), cfg.partitions);
            partitions[p].engine.install(*addr, data, &mut backing);
        }

        let simtel = SimTelemetry::new(&tel);
        let ledger = CycleLedger::new(cfg.partitions);
        Self {
            cfg,
            trace,
            cursor: 0,
            partitions,
            backing,
            events: BinaryHeap::new(),
            seq: 0,
            horizon: 0,
            stats: SimStats::default(),
            engine_name,
            tel,
            simtel,
            epoch_interval: None,
            next_epoch_at: u64::MAX,
            faults: FaultSchedule::new(),
            snapshots: HashMap::new(),
            armed: HashMap::new(),
            accesses_seen: 0,
            transients: None,
            retry: RetryPolicy::default(),
            fill_ordinal: 0,
            halt_on_violation: false,
            checkpoint_interval: None,
            next_checkpoint_at: u64::MAX,
            checkpoint: None,
            ledger,
            started: false,
            last_event_time: 0,
            warmup_done: false,
            tenants: TenantMap::new(),
            tenant_acc: HashMap::new(),
            tenant_mirrored: HashMap::new(),
        }
    }

    /// Fallible variant of [`Simulator::with_telemetry`]: returns the
    /// configuration-validation error as a value instead of panicking.
    pub fn try_with_telemetry(
        cfg: GpuConfig,
        trace: Trace,
        factory: &dyn EngineFactory,
        tel: Telemetry,
    ) -> Result<Self, String> {
        cfg.validate()?;
        Ok(Self::with_telemetry(cfg, trace, factory, tel))
    }

    /// Closes a telemetry epoch every `cycles` simulated cycles, labelled
    /// with the cycle boundary. No effect when telemetry is disabled.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn set_epoch_interval(&mut self, cycles: u64) {
        assert!(cycles > 0, "epoch interval must be positive");
        self.epoch_interval = Some(cycles);
        self.next_epoch_at = cycles;
    }

    /// Enables the seeded soft-error process: each fill may suffer a
    /// transient fault per `cfg`. Pair with
    /// [`Simulator::set_retry_policy`] so detections are retried rather
    /// than escalated.
    pub fn set_transient_faults(&mut self, cfg: TransientConfig) {
        self.transients = Some(TransientSampler::new(cfg));
    }

    /// Sets the bounded-retry policy for failed fills. The default
    /// (limit 0) escalates the first failed verification immediately,
    /// matching pre-recovery behavior.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// Stops the event loop at the first recorded violation (stats and
    /// telemetry epochs are still flushed; see [`Simulator::run_until`]).
    pub fn set_halt_on_violation(&mut self, halt: bool) {
        self.halt_on_violation = halt;
    }

    /// Takes a metadata checkpoint at run start and then every `cycles`
    /// simulated cycles. Requires every partition engine to support
    /// [`SecurityEngine::checkpoint`].
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn set_checkpoint_interval(&mut self, cycles: u64) {
        assert!(cycles > 0, "checkpoint interval must be positive");
        self.checkpoint_interval = Some(cycles);
        self.next_checkpoint_at = cycles;
    }

    /// Cycle of the last metadata checkpoint, if one was taken.
    pub fn last_checkpoint_cycle(&self) -> Option<u64> {
        self.checkpoint.as_ref().map(|c| c.cycle)
    }

    /// Installs the address-range → tenant mapping. Violations, fault
    /// records, and per-tenant progress ([`SimStats::tenants`]) are
    /// attributed through it; an empty map keeps single-tenant behavior
    /// (every record tagged tenant 0, no per-tenant stats).
    pub fn set_tenant_map(&mut self, map: TenantMap) {
        self.tenants = map;
    }

    /// Starts a live key-rotation walk for `tenant` on every partition
    /// engine. Returns `true` only if every engine accepted (engines
    /// without tenancy configured refuse).
    pub fn start_key_rotation(&mut self, tenant: u32) -> bool {
        let mut all = !self.partitions.is_empty();
        for p in &mut self.partitions {
            all &= p.engine.start_key_rotation(tenant);
        }
        all
    }

    /// True while any partition engine still has an unfinished
    /// key-rotation walk.
    pub fn rotation_active(&self) -> bool {
        self.partitions.iter().any(|p| p.engine.rotation_active())
    }

    /// Mutable access to the functional memory, for injecting physical
    /// attacks before (or between) runs. Mid-run attacks go through
    /// [`Simulator::set_fault_schedule`] instead, which also tracks each
    /// fault's outcome.
    pub fn backing_mut(&mut self) -> &mut BackingMemory {
        &mut self.backing
    }

    /// Installs a schedule of faults to inject *during* the run.
    ///
    /// Each applied fault is resolved into a
    /// [`FaultOutcome`] in [`SimStats::fault_records`]: detected (with the
    /// detecting layer and injection-to-detection latency), escaped,
    /// clobbered by a writeback, or unobserved. The simulation continues
    /// and counts violations rather than stopping at the first one, so a
    /// schedule with thousands of faults measures detection rates in one
    /// run. Replaces any previously installed schedule.
    pub fn set_fault_schedule(&mut self, mut schedule: FaultSchedule) {
        schedule.normalize();
        self.faults = schedule;
    }

    /// Read access to the functional memory.
    pub fn backing(&self) -> &BackingMemory {
        &self.backing
    }

    fn schedule(&mut self, time: u64, kind: EventKind) {
        self.seq += 1;
        self.events.push(Reverse(Event {
            time,
            seq: self.seq,
            kind,
        }));
    }

    /// Extends the measured horizon to `time`. Called only at points where
    /// work *retires* — instruction retirement, fill readiness, DRAM
    /// activity completion — never for merely scheduled events. A
    /// `WarpNext` that finds the trace drained is a no-op and must not
    /// define the cycle count (staggered launches of a 4k-warp pool would
    /// otherwise floor every run at the launch tail).
    fn retire_at(&mut self, time: u64) {
        self.horizon = self.horizon.max(time);
    }

    /// Credits `instructions` retiring at `time` to the tenant owning
    /// `addr`. No-op in single-tenant runs (empty map) so existing
    /// configurations keep an empty [`SimStats::tenants`].
    fn retire_tenant(&mut self, addr: SectorAddr, instructions: u64, time: u64) {
        if self.tenants.is_empty() {
            return;
        }
        let tenant = self.tenants.tenant_of(addr);
        let acc = self.tenant_acc.entry(tenant).or_default();
        acc.tenant = tenant;
        acc.instructions += instructions;
        acc.last_retire_cycle = acc.last_retire_cycle.max(time);
    }

    /// Mirrors per-tenant progress into `tenant.t<id>.instructions` /
    /// `tenant.t<id>.violations` registry counters, adding only what
    /// accumulated since the previous mirror — epoch deltas therefore
    /// carry per-tenant rollups and the counters sum to
    /// [`SimStats::tenants`]. Sorted iteration keeps the registration
    /// order (and hence exported byte order) deterministic.
    fn mirror_tenants(&mut self) {
        if !self.tel.enabled() || self.tenant_acc.is_empty() {
            return;
        }
        let mut ids: Vec<u32> = self.tenant_acc.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let acc = self.tenant_acc[&id];
            let seen = self.tenant_mirrored.entry(id).or_insert((0, 0));
            if acc.instructions > seen.0 {
                self.tel
                    .counter(&format!("tenant.t{id}.instructions"))
                    .add(acc.instructions - seen.0);
                seen.0 = acc.instructions;
            }
            if acc.violations > seen.1 {
                self.tel
                    .counter(&format!("tenant.t{id}.violations"))
                    .add(acc.violations - seen.1);
                seen.1 = acc.violations;
            }
        }
    }

    /// Runs the simulation to completion and returns the results.
    pub fn run(&mut self) -> SimResult {
        self.run_until(u64::MAX)
    }

    /// Runs the simulation until the event queue drains or the next event
    /// would be after `limit` — the crash-injection point. On early
    /// termination the remaining events are abandoned (a crash, not a
    /// pause), stats are finalized from the last processed event, and any
    /// open telemetry epoch is flushed so nothing observed is lost.
    /// [`Simulator::set_halt_on_violation`] stops the same way at the
    /// first violation.
    pub fn run_until(&mut self, limit: u64) -> SimResult {
        if !self.started {
            self.started = true;
            let warps = self.cfg.warps.min(self.trace.len().max(1));
            for w in 0..warps {
                // Stagger warp launches (thread-block wave scheduling): an
                // instantaneous 4k-warp burst would create an artificial
                // standing convoy at the memory controllers.
                self.schedule(w as u64 / 2, EventKind::WarpNext { warp: w as u32 });
            }
            if self.checkpoint_interval.is_some() {
                self.take_checkpoint(0);
            }
        }
        let mut halted = false;
        while let Some(&Reverse(ev)) = self.events.peek() {
            if ev.time > limit {
                halted = true;
                break;
            }
            self.events.pop();
            self.last_event_time = ev.time;
            if !self.warmup_done && ev.time >= self.cfg.warmup_cycles {
                // Steady-state cutoff: events are processed in time
                // order, so this snapshots the instruction count exactly
                // at the warm-up boundary.
                self.stats.warmup_cycles = self.cfg.warmup_cycles;
                self.stats.warmup_instructions = self.stats.instructions;
                self.warmup_done = true;
            }
            if self.tel.enabled() {
                self.tel.advance_clock(ev.time);
                if ev.time >= self.next_epoch_at {
                    self.roll_epochs(ev.time);
                }
            }
            if ev.time >= self.next_checkpoint_at {
                self.roll_checkpoints(ev.time);
            }
            if !self.faults.is_empty() {
                if matches!(ev.kind, EventKind::Arrive { .. }) {
                    self.accesses_seen += 1;
                }
                while let Some(f) = self.faults.pop_due(ev.time, self.accesses_seen) {
                    self.apply_fault(ev.time, f);
                }
            }
            match ev.kind {
                EventKind::WarpNext { warp } => self.warp_next(ev.time, warp),
                EventKind::Arrive { access } => self.arrive(ev.time, access, 0),
                EventKind::FillDone { partition, sector } => {
                    self.fill_done(ev.time, partition as usize, sector)
                }
            }
            if self.halt_on_violation && self.stats.violations > 0 {
                halted = true;
                break;
            }
        }
        if halted {
            // Early termination: the future scheduled work never happens,
            // so the run's horizon is the moment of the stop — without
            // this, in-flight fills would inflate the cycle count of a
            // run that was cut short.
            self.horizon = self.last_event_time;
            if self.tel.enabled() {
                self.tel.advance_clock(self.last_event_time);
                self.tel
                    .end_epoch(&format!("halt-{}", self.last_event_time));
            }
        } else if self.cfg.flush_l2_at_end {
            self.flush_l2();
        }
        self.finalize()
    }

    /// Closes every epoch boundary at or before `now` (several may pass at
    /// once when the event queue jumps across idle time). Utilization
    /// gauges — aggregate bus backlog and MSHR occupancy — are sampled
    /// as-of `now` so epoch snapshots carry the DRAM-pressure timeline.
    fn roll_epochs(&mut self, now: u64) {
        let Some(interval) = self.epoch_interval else {
            return;
        };
        if now >= self.next_epoch_at {
            let backlog: u64 = self
                .partitions
                .iter()
                .map(|p| p.dram.backlog_bytes_at(now))
                .sum();
            self.simtel.backlog_gauge.set(backlog);
            let occupancy: u64 = self.partitions.iter().map(|p| p.mshr.len() as u64).sum();
            self.simtel.mshr_gauge.set(occupancy);
            self.mirror_tenants();
        }
        while now >= self.next_epoch_at {
            self.tel.end_epoch(&format!("cycle-{}", self.next_epoch_at));
            self.next_epoch_at += interval;
        }
    }

    /// Takes one checkpoint when `now` crosses a checkpoint boundary and
    /// advances the boundary past `now` (state is snapshotted as-of `now`,
    /// so crossing several idle boundaries at once yields one snapshot).
    fn roll_checkpoints(&mut self, now: u64) {
        let Some(interval) = self.checkpoint_interval else {
            return;
        };
        if now >= self.next_checkpoint_at {
            self.take_checkpoint(now);
            while self.next_checkpoint_at <= now {
                self.next_checkpoint_at += interval;
            }
        }
    }

    /// Clones every partition engine's metadata as the current
    /// checkpoint. Returns `false` (keeping any previous checkpoint) if
    /// an engine does not support checkpointing.
    fn take_checkpoint(&mut self, now: u64) -> bool {
        let mut engines = Vec::with_capacity(self.partitions.len());
        for p in &self.partitions {
            match p.engine.checkpoint() {
                Some(e) => engines.push(e),
                None => return false,
            }
        }
        self.checkpoint = Some(CheckpointState {
            cycle: now,
            engines,
        });
        self.stats.checkpoints += 1;
        if self.tel.enabled() {
            self.tel.event(TelEvent::Checkpoint { cycle: now });
        }
        true
    }

    /// Simulates a crash at the current point: every partition engine's
    /// volatile metadata reverts to the last checkpoint (persistent state
    /// — write-through MACs, the pinned value set — survives). Returns
    /// the checkpoint cycle restored to.
    pub fn crash_revert_to_checkpoint(&mut self) -> Result<u64, RecoveryError> {
        let ck = self
            .checkpoint
            .as_ref()
            .ok_or(RecoveryError::NoCheckpoint)?;
        for (p, saved) in self.partitions.iter_mut().zip(ck.engines.iter()) {
            if !p.engine.crash_revert(saved.as_ref()) {
                return Err(RecoveryError::Unsupported {
                    engine: p.engine.name(),
                });
            }
        }
        if self.tel.enabled() {
            self.tel.event(TelEvent::CrashRestore {
                checkpoint_cycle: ck.cycle,
            });
        }
        Ok(ck.cycle)
    }

    /// Resident data sectors grouped by owning partition.
    fn sectors_by_partition(&self) -> Vec<Vec<SectorAddr>> {
        let mut per: Vec<Vec<SectorAddr>> = vec![Vec::new(); self.partitions.len()];
        for addr in self.backing.resident_addrs() {
            per[partition_of(addr.block(), self.cfg.partitions)].push(addr);
        }
        per
    }

    /// Phoenix-style reconstruction of metadata lost since the restored
    /// checkpoint: every partition engine probes its resident sectors'
    /// counters against the persistent MACs. Call after
    /// [`Simulator::crash_revert_to_checkpoint`].
    pub fn recover_metadata(&mut self) -> Result<RecoveryReport, RecoveryError> {
        let per = self.sectors_by_partition();
        let mut total = RecoveryReport::default();
        for (p, sectors) in self.partitions.iter_mut().zip(per) {
            let r = p.engine.recover(&self.backing, &sectors)?;
            total.merge(&r);
        }
        Ok(total)
    }

    /// Full crash-consistency audit: record what every resident sector
    /// decrypts to *now* (the pre-crash oracle), crash-revert to the last
    /// checkpoint, run metadata recovery, then re-read every sector and
    /// count divergences and spurious violations. Call after
    /// [`Simulator::run_until`] stopped at the crash point.
    pub fn crash_recover_audit(&mut self) -> Result<CrashAudit, RecoveryError> {
        let per = self.sectors_by_partition();
        let mut expected: Vec<(usize, SectorAddr, [u8; 32])> = Vec::new();
        for (p_idx, sectors) in per.iter().enumerate() {
            for &s in sectors {
                let pt = self.partitions[p_idx]
                    .engine
                    .peek_plaintext(s, &self.backing)
                    .ok_or(RecoveryError::Unsupported {
                        engine: self.partitions[p_idx].engine.name(),
                    })?;
                expected.push((p_idx, s, pt));
            }
        }
        let checkpoint_cycle = self.crash_revert_to_checkpoint()?;
        let report = self.recover_metadata()?;
        let mut audit = CrashAudit {
            checkpoint_cycle,
            crash_cycle: self.last_event_time,
            report,
            ..CrashAudit::default()
        };
        for (p_idx, s, want) in expected {
            audit.audited += 1;
            let part = &mut self.partitions[p_idx];
            let got = part.engine.peek_plaintext(s, &self.backing);
            if got != Some(want) {
                audit.mismatches += 1;
                continue;
            }
            // Drive the real fill path too: recovery must not leave state
            // that verifies under peek but trips the production read.
            let plan = part.engine.on_fill(s, &mut self.backing);
            if plan.violation.is_some() {
                audit.spurious_violations += 1;
            } else if plan.plaintext != want {
                audit.mismatches += 1;
            }
        }
        Ok(audit)
    }

    /// Applies one scheduled fault: data faults go straight to the
    /// backing store; metadata faults are delegated to the partition
    /// engine owning the sector. Applied faults are armed on the sector
    /// for outcome resolution; faults that could not change state are
    /// recorded as [`FaultOutcome::NotApplied`] immediately.
    fn apply_fault(&mut self, now: u64, f: ScheduledFault) {
        let applied = match f.kind {
            FaultKind::CorruptData { mask } => self.backing.corrupt(f.addr, &mask),
            FaultKind::SnapshotData => {
                if let Some(bytes) = self.backing.snapshot(f.addr) {
                    self.snapshots.insert(f.addr.raw(), bytes);
                }
                return; // bookkeeping only, no fault record
            }
            FaultKind::ReplayData => match self.snapshots.get(&f.addr.raw()) {
                Some(&old) if self.backing.read(f.addr) != Some(old) => {
                    self.backing.replay(f.addr, old)
                }
                _ => false,
            },
            FaultKind::Metadata(mf) => {
                let p = partition_of(f.addr.block(), self.cfg.partitions);
                self.partitions[p].engine.inject_fault(f.addr, mf)
            }
        };
        let kind = f.kind.label();
        if applied {
            if self.tel.enabled() {
                self.tel.event(TelEvent::FaultInjected {
                    addr: f.addr.raw(),
                    kind: kind.to_string(),
                });
            }
            let armed = ArmedFault { cycle: now, kind };
            // A second fault on an already-armed sector takes over the
            // arming; the first can no longer be told apart and resolves
            // as unobserved.
            let tenant = self.tenants.tenant_of(f.addr);
            if let Some(prev) = self.armed.insert(f.addr.raw(), armed) {
                self.stats.fault_records.push(FaultRecord {
                    addr: f.addr.raw(),
                    tenant,
                    kind: prev.kind,
                    injected_cycle: prev.cycle,
                    outcome: FaultOutcome::Unobserved,
                });
            }
        } else {
            self.stats.fault_records.push(FaultRecord {
                addr: f.addr.raw(),
                tenant: self.tenants.tenant_of(f.addr),
                kind,
                injected_cycle: now,
                outcome: FaultOutcome::NotApplied,
            });
        }
    }

    /// Books a detected violation into stats and telemetry. `latency` is
    /// the verification latency of the detecting request (0 on the
    /// writeback path, which nothing waits on).
    fn record_violation(&mut self, now: u64, v: Violation, latency: u64) {
        self.stats.violations += 1;
        self.simtel.violations.inc();
        let tenant = self.tenants.tenant_of(v.addr());
        if !self.tenants.is_empty() {
            let acc = self.tenant_acc.entry(tenant).or_default();
            acc.tenant = tenant;
            acc.violations += 1;
        }
        self.stats.violation_records.push(ViolationRecord {
            cycle: now,
            addr: v.addr().raw(),
            tenant,
            layer: v.layer(),
            latency,
        });
        if self.tel.enabled() {
            self.tel.event(TelEvent::Violation {
                kind: v.to_string(),
                layer: v.layer().label().to_string(),
                latency,
            });
        }
        self.simtel.tracer.mark(
            self.simtel.cur_root.get(),
            "violation",
            v.addr().raw(),
            latency,
        );
    }

    /// Resolves the armed fault on `sector` (if any) into a fault record,
    /// computing the outcome from the armed state.
    fn resolve_armed(
        &mut self,
        sector: SectorAddr,
        outcome_of: impl FnOnce(&ArmedFault) -> FaultOutcome,
    ) {
        if let Some(armed) = self.armed.remove(&sector.raw()) {
            self.stats.fault_records.push(FaultRecord {
                addr: sector.raw(),
                tenant: self.tenants.tenant_of(sector),
                kind: armed.kind,
                injected_cycle: armed.cycle,
                outcome: outcome_of(&armed),
            });
        }
    }

    fn finalize(&mut self) -> SimResult {
        self.stats.cycles = self.horizon;
        // Close the cycle ledger at the horizon: remaining unattributed
        // time becomes issue/compute, overruns from early halts are
        // trimmed, and conservation (bucket sums == cycles per partition)
        // holds from here on.
        let issue_tail = self.ledger.close(self.horizon);
        self.simtel.ledger_ctrs[StallBucket::Issue.idx()].add(issue_tail);
        self.stats.ledgers = self.ledger.ledgers();
        // Aggregate DRAM internals across partitions: per-bank counters
        // sum by bank index, the backlog high-water mark takes the
        // deepest single channel.
        let mut dram = DramStats {
            per_bank: vec![crate::dram::BankStat::default(); self.cfg.dram.banks],
            ..DramStats::default()
        };
        for p in &self.partitions {
            let (h, m) = p.dram.row_stats();
            dram.row_hits += h;
            dram.row_misses += m;
            dram.backlog_hwm_bytes = dram
                .backlog_hwm_bytes
                .max(p.dram.backlog_high_water_bytes());
            for (agg, b) in dram.per_bank.iter_mut().zip(p.dram.bank_stats()) {
                agg.row_hits += b.row_hits;
                agg.row_misses += b.row_misses;
                agg.busy_cycles += b.busy_cycles;
                dram.bank_busy_cycles += b.busy_cycles;
            }
        }
        self.stats.dram = dram;
        // Faults never verified again resolve as unobserved; sort for
        // deterministic record order (the armed map is a HashMap).
        let mut leftovers: Vec<(u64, ArmedFault)> = self.armed.drain().collect();
        leftovers.sort_by_key(|(addr, armed)| (armed.cycle, *addr));
        for (addr, armed) in leftovers {
            self.stats.fault_records.push(FaultRecord {
                addr,
                tenant: self.tenants.tenant_of_raw(addr),
                kind: armed.kind,
                injected_cycle: armed.cycle,
                outcome: FaultOutcome::Unobserved,
            });
        }
        // Merge engine-specific counters across partitions.
        let mut merged: Vec<(String, u64)> = Vec::new();
        for p in &self.partitions {
            for (name, value) in p.engine.extra_stats() {
                match merged.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, v)) => *v += value,
                    None => merged.push((name, value)),
                }
            }
        }
        self.stats.engine = merged;
        // Per-tenant progress, sorted by tenant id for deterministic
        // output (the accumulator is a HashMap).
        let mut tenants: Vec<TenantStat> = self.tenant_acc.values().copied().collect();
        tenants.sort_by_key(|t| t.tenant);
        self.stats.tenants = tenants;
        // Mirror the final per-tenant progress and close a terminal
        // epoch at the horizon, so the streamed epoch deltas sum exactly
        // to the run's counter totals (conservation over the stream).
        if self.tel.enabled() {
            self.mirror_tenants();
            if self.epoch_interval.is_some() {
                self.tel.advance_clock(self.horizon);
                self.tel.end_epoch(&format!("final-{}", self.horizon));
            }
        }
        SimResult {
            engine: self.engine_name.to_string(),
            workload: self.trace.name.clone(),
            stats: self.stats.clone(),
        }
    }

    fn warp_next(&mut self, now: u64, warp: u32) {
        let Some(&access) = self.trace.accesses.get(self.cursor) else {
            return; // trace drained; warp retires
        };
        self.cursor += 1;
        let issue = now + access.think_cycles as u64;
        let arrive = issue + self.cfg.interconnect_latency;
        match access.kind {
            AccessKind::Read => {
                self.stats.read_accesses += 1;
                // Warp blocks; it is rescheduled when the fill (or hit)
                // completes.
                self.schedule_arrive(arrive, access, warp);
            }
            AccessKind::Write => {
                self.stats.write_accesses += 1;
                // Fire-and-forget store: retire instructions at issue and
                // let the warp continue.
                self.stats.instructions += access.instructions as u64;
                self.stats.accesses += 1;
                self.retire_at(issue);
                self.retire_tenant(access.addr, access.instructions as u64, issue);
                self.schedule_arrive(arrive, access, warp);
                // Store-buffer backpressure: when the target partition's
                // bus backlog exceeds the buffer depth, the issuing warp
                // stalls until the excess drains — bus saturation
                // throttles write issue instead of letting stores pile
                // bytes onto an unbounded queue for free.
                let p_idx = partition_of(access.addr.block(), self.cfg.partitions);
                let backlog = self.partitions[p_idx].dram.backlog_bytes_at(issue);
                let resume = if backlog > self.cfg.write_throttle_bytes {
                    let excess = (backlog - self.cfg.write_throttle_bytes) as f64;
                    let stall = (excess / self.cfg.dram.bytes_per_cycle).ceil() as u64;
                    self.stats.write_throttle_cycles += stall;
                    issue + stall
                } else {
                    issue
                };
                self.schedule(resume, EventKind::WarpNext { warp });
            }
        }
    }

    fn schedule_arrive(&mut self, time: u64, access: TraceAccess, warp: u32) {
        // The issuing warp id rides in `think_cycles`' place? No — pack it
        // into the access via the MSHR at arrival. We must carry it through
        // the event instead: reads encode the warp in `data_idx`, which is
        // unused for reads.
        let mut tagged = access;
        if access.kind == AccessKind::Read {
            tagged.data_idx = warp;
        }
        self.schedule(time, EventKind::Arrive { access: tagged });
    }

    fn bank_of(&self, sector: SectorAddr) -> usize {
        let idx = sector.block().index() / self.cfg.partitions as u64;
        (idx % self.cfg.l2_banks_per_partition as u64) as usize
    }

    /// Handles an access arriving at its partition. `mshr_wait` is the
    /// cycles the access already spent queued for a free MSHR (nonzero
    /// only when re-admitted from the pending queue); the ledger charges
    /// it to [`StallBucket::MshrFull`].
    fn arrive(&mut self, now: u64, access: TraceAccess, mshr_wait: u64) {
        let sector = access.addr;
        let p_idx = partition_of(sector.block(), self.cfg.partitions);
        let bank = self.bank_of(sector);
        match access.kind {
            AccessKind::Write => {
                let data = *self.trace.data_of(&access);
                let outcome =
                    self.partitions[p_idx].l2[bank].access(sector.raw(), true, Some(data));
                if outcome.hit {
                    self.stats.l2_hits += 1;
                    self.simtel.l2_hits.inc();
                } else {
                    self.stats.l2_misses += 1;
                    self.simtel.l2_misses.inc();
                }
                self.handle_evictions(now, p_idx, &outcome.evicted);
            }
            AccessKind::Read => {
                let warp = access.data_idx; // see schedule_arrive
                                            // Merge into an outstanding miss?
                if let Some(entry) = self.partitions[p_idx].mshr.get_mut(&sector) {
                    entry.waiters.push(Waiter {
                        warp,
                        instructions: access.instructions,
                    });
                    self.stats.mshr_merges += 1;
                    self.simtel.mshr_merges.inc();
                    return;
                }
                if self.partitions[p_idx].l2[bank].probe(sector.raw()) {
                    // Hit.
                    self.partitions[p_idx].l2[bank].access(sector.raw(), false, None);
                    self.stats.l2_hits += 1;
                    self.simtel.l2_hits.inc();
                    self.stats.instructions += access.instructions as u64;
                    self.stats.accesses += 1;
                    let wake = now + self.cfg.l2_hit_latency + self.cfg.interconnect_latency;
                    self.retire_at(wake);
                    self.retire_tenant(sector, access.instructions as u64, wake);
                    self.schedule(wake, EventKind::WarpNext { warp });
                    return;
                }
                // Miss.
                if self.partitions[p_idx].mshr.len() >= self.partitions[p_idx].mshr_capacity {
                    self.stats.mshr_stalls += 1;
                    self.simtel.mshr_stalls.inc();
                    // Back-date the queue entry by any wait already served
                    // so the accumulated MSHR wait survives re-queueing.
                    self.partitions[p_idx]
                        .pending
                        .push_back((access, now - mshr_wait.min(now)));
                    return;
                }
                self.stats.l2_misses += 1;
                self.simtel.l2_misses.inc();
                let outcome = self.partitions[p_idx].l2[bank].access(sector.raw(), false, None);
                self.handle_evictions(now, p_idx, &outcome.evicted);
                let (ready, plaintext) = self.execute_fill(now, p_idx, sector, mshr_wait);
                self.partitions[p_idx].mshr.insert(
                    sector,
                    MshrEntry {
                        waiters: vec![Waiter {
                            warp,
                            instructions: access.instructions,
                        }],
                        plaintext,
                    },
                );
                self.schedule(
                    ready,
                    EventKind::FillDone {
                        partition: p_idx as u32,
                        sector,
                    },
                );
            }
        }
    }

    fn fill_done(&mut self, now: u64, p_idx: usize, sector: SectorAddr) {
        let bank = self.bank_of(sector);
        let Some(entry) = self.partitions[p_idx].mshr.remove(&sector) else {
            return;
        };
        self.partitions[p_idx].l2[bank].fill_data(sector.raw(), entry.plaintext);
        for w in entry.waiters {
            self.stats.instructions += w.instructions as u64;
            self.stats.accesses += 1;
            let wake = now + self.cfg.interconnect_latency;
            self.retire_at(wake);
            self.retire_tenant(sector, w.instructions as u64, wake);
            self.schedule(wake, EventKind::WarpNext { warp: w.warp });
        }
        // Admit queued accesses while MSHRs are free (merges and hits do
        // not consume a slot, so keep draining).
        while self.partitions[p_idx].mshr.len() < self.partitions[p_idx].mshr_capacity {
            let Some((next, queued_at)) = self.partitions[p_idx].pending.pop_front() else {
                break;
            };
            self.arrive(now, next, now.saturating_sub(queued_at));
        }
    }

    /// Books the data + metadata DRAM requests of one fill attempt
    /// starting at `start`, accumulating stall-attribution weights into
    /// `weights`. Returns `(ready, end)`: the cycle at which the verified
    /// plaintext is ready at the controller, and the end of all DRAM
    /// activity booked by this attempt (≥ `ready`; async reads and
    /// writes can outlive the fill).
    fn book_fill_plan(
        &mut self,
        start: u64,
        p_idx: usize,
        sector: SectorAddr,
        plan: &FillPlan,
        weights: &mut LedgerWeights,
    ) -> (u64, u64) {
        let part = &mut self.partitions[p_idx];
        // All of a fill's DRAM requests book bus bandwidth at issue time;
        // dependence chains (counter → tree levels, deferred MAC) extend
        // the fill's *latency* only. Bandwidth contention stays exact while
        // latency — which the warp pool hides — is approximated, keeping
        // the simulator in the paper's bandwidth-bound regime.
        let rep = part
            .dram
            .access_report(start, sector.raw(), SECTOR_SIZE as u32);
        weigh_breakdown(weights, TrafficClass::Data, &rep);
        let data_done = rep.done;
        book_traffic(
            &mut self.stats,
            &self.simtel,
            TrafficClass::Data,
            SECTOR_SIZE,
            false,
            0,
        );

        let mut ready = data_done;
        let mut end = data_done;
        let serial = self.cfg.serial_metadata_chains;
        for chain in &plan.pre_chains {
            let mut t = start;
            for (i, req) in chain.iter().enumerate() {
                // Serial chains issue each dependent fetch when its
                // predecessor returns: book it at `t` so it both observes
                // the backlog that has built up by then and contributes
                // its own bytes to the backlog later fetches see.
                // Parallel chains (index-computable addresses) all issue
                // at `start`.
                let issue_at = if serial && i > 0 { t } else { start };
                let rep = part.dram.access_report(issue_at, req.addr, req.bytes);
                weigh_breakdown(weights, req.class, &rep);
                t = t.max(rep.done);
                book_traffic(
                    &mut self.stats,
                    &self.simtel,
                    req.class,
                    req.bytes as u64,
                    false,
                    req.level,
                );
            }
            ready = ready.max(t);
        }
        ready += plan.crypto_latency;
        if !plan.post_chain.is_empty() || plan.post_latency > 0 {
            for req in &plan.post_chain {
                // Post-chain fetches (deferred MAC) issue after the data
                // returns, but their *bandwidth* is still booked at the
                // fill's start: the fluid-queue channel clock is
                // monotonic in event time, and booking at the future
                // `ready` would drag it forward and serialize every
                // later fill on this partition. The dependence cost is
                // charged additively as an unloaded round trip instead
                // (bandwidth exact, latency approximated — see the
                // header comment).
                let rep = part.dram.access_report(start, req.addr, req.bytes);
                weigh_breakdown(weights, req.class, &rep);
                let unloaded = part.dram.unloaded_latency(req.bytes);
                weights.add_class(req.class, unloaded);
                ready += unloaded;
                book_traffic(
                    &mut self.stats,
                    &self.simtel,
                    req.class,
                    req.bytes as u64,
                    false,
                    req.level,
                );
            }
            ready += plan.post_latency;
        }
        for req in &plan.async_reads {
            let rep = part.dram.access_report(start, req.addr, req.bytes);
            weigh_breakdown(weights, req.class, &rep);
            end = end.max(rep.done);
            self.horizon = self.horizon.max(rep.done); // DRAM activity retires
            book_traffic(
                &mut self.stats,
                &self.simtel,
                req.class,
                req.bytes as u64,
                false,
                req.level,
            );
        }
        for req in &plan.writes {
            let rep = part.dram.access_report(start, req.addr, req.bytes);
            weigh_breakdown(weights, req.class, &rep);
            end = end.max(rep.done);
            self.horizon = self.horizon.max(rep.done); // DRAM activity retires
            book_traffic(
                &mut self.stats,
                &self.simtel,
                req.class,
                req.bytes as u64,
                true,
                req.level,
            );
        }
        // Crypto/verification pipeline time: charged to the MAC bucket
        // when the plan carries security metadata (the hash/MAC check is
        // what serializes), to the data bucket otherwise.
        let crypto = plan.crypto_latency + plan.post_latency;
        if crypto > 0 {
            let has_meta = !plan.pre_chains.is_empty()
                || !plan.post_chain.is_empty()
                || !plan.async_reads.is_empty()
                || !plan.writes.is_empty();
            weights.add(
                if has_meta {
                    StallBucket::MetaMac
                } else {
                    StallBucket::DataFill
                },
                crypto,
            );
        }
        self.horizon = self.horizon.max(ready); // fill readiness retires
        (ready, end.max(ready))
    }

    /// Samples the soft-error process for this fill and, if a fault
    /// fires, applies it. Returns the pending fault so the fill path can
    /// undo it (transients are in-flight transfer errors: the stored
    /// bytes were never wrong).
    fn begin_transient(
        &mut self,
        now: u64,
        p_idx: usize,
        sector: SectorAddr,
    ) -> Option<PendingTransient> {
        let sampler = self.transients.as_ref()?;
        let (kind, mask) = sampler.sample(self.fill_ordinal)?;
        self.stats.transients_injected += 1;
        let applied = self.apply_transient(p_idx, sector, kind, &mask);
        if !applied {
            self.stats.transients_not_applied += 1;
            self.stats.transient_records.push(TransientRecord {
                addr: sector.raw(),
                kind: kind.label(),
                cycle: now,
                outcome: TransientOutcome::NotApplied,
            });
            return None;
        }
        if self.tel.enabled() {
            self.tel.event(TelEvent::TransientFault {
                addr: sector.raw(),
                kind: kind.label().to_string(),
            });
        }
        Some(PendingTransient { kind, mask })
    }

    /// Applies (or, because every primitive is an involution, undoes) a
    /// transient fault. Returns whether state changed.
    fn apply_transient(
        &mut self,
        p_idx: usize,
        sector: SectorAddr,
        kind: TransientKind,
        mask: &[u8; 32],
    ) -> bool {
        match kind {
            TransientKind::Data => self.backing.corrupt(sector, mask),
            TransientKind::Mac => self.partitions[p_idx]
                .engine
                .inject_fault(sector, MetaFault::TamperMac),
            TransientKind::BmtNode => self.partitions[p_idx]
                .engine
                .inject_fault(sector, MetaFault::TamperBmtNode),
        }
    }

    /// Serves one L2 read miss, with bounded retry: a failed verification
    /// is re-fetched up to the retry limit with exponential backoff, and
    /// only the final attempt's outcome escalates to a recorded
    /// [`Violation`]. `mshr_wait` is time already spent queued for an
    /// MSHR, charged to [`StallBucket::MshrFull`] in the ledger. Returns
    /// the cycle at which verified plaintext is ready, along with the
    /// plaintext itself.
    fn execute_fill(
        &mut self,
        now: u64,
        p_idx: usize,
        sector: SectorAddr,
        mshr_wait: u64,
    ) -> (u64, [u8; 32]) {
        self.fill_ordinal += 1;
        let root = self.simtel.tracer.begin("fill", sector.raw());
        self.simtel.cur_root.set(root);
        let transient = self.begin_transient(now, p_idx, sector);
        let mut transient_active = transient.is_some();
        let mut transient_tripped = false;
        let mut attempt: u32 = 0;
        let mut start = now;
        loop {
            let part = &mut self.partitions[p_idx];
            part.engine.begin_access_trace(root);
            let plan = part.engine.on_fill(sector, &mut self.backing);
            let mut weights = LedgerWeights::default();
            if attempt == 0 {
                weights.add(StallBucket::MshrFull, mshr_wait);
            }
            let (ready, end) = self.book_fill_plan(start, p_idx, sector, &plan, &mut weights);
            if plan.violation.is_some() && attempt < self.retry.limit {
                // Failed verification with retries remaining: undo any
                // in-flight transient (a re-fetch observes clean data),
                // charge backoff, and re-issue the whole fetch.
                attempt += 1;
                self.stats.retries += 1;
                let backoff = self.retry.backoff(attempt);
                self.stats.retry_cycles += ready.saturating_sub(start) + backoff;
                // The whole failed attempt is wasted work: charge its span
                // to transient-retry, and the backoff window to recovery.
                weights.collapse_into(StallBucket::TransientRetry);
                commit_ledger(
                    &mut self.ledger,
                    &self.simtel,
                    p_idx,
                    start,
                    end,
                    &weights,
                    StallBucket::TransientRetry,
                );
                if backoff > 0 {
                    let mut bw = LedgerWeights::default();
                    bw.add(StallBucket::Recovery, backoff);
                    commit_ledger(
                        &mut self.ledger,
                        &self.simtel,
                        p_idx,
                        ready,
                        ready + backoff,
                        &bw,
                        StallBucket::Recovery,
                    );
                }
                if let Some(t) = transient {
                    if transient_active {
                        transient_tripped = true;
                        self.apply_transient(p_idx, sector, t.kind, &t.mask);
                        transient_active = false;
                    }
                }
                if self.tel.enabled() {
                    self.tel.event(TelEvent::FillRetry {
                        addr: sector.raw(),
                        attempt,
                    });
                }
                self.simtel
                    .tracer
                    .mark(root, "retry", sector.raw(), u64::from(attempt));
                start = ready + backoff;
                continue;
            }

            // Final attempt: undo a still-active transient (the stored
            // bytes were never wrong, only this transfer), then resolve.
            if let Some(t) = transient {
                if transient_active {
                    self.apply_transient(p_idx, sector, t.kind, &t.mask);
                }
                let outcome = if plan.violation.is_some() {
                    self.stats.transients_escalated += 1;
                    TransientOutcome::Escalated { retries: attempt }
                } else if transient_tripped {
                    self.stats.transients_recovered += 1;
                    TransientOutcome::Recovered { retries: attempt }
                } else {
                    self.stats.transients_undetected += 1;
                    TransientOutcome::Undetected
                };
                self.stats.transient_records.push(TransientRecord {
                    addr: sector.raw(),
                    kind: t.kind.label(),
                    cycle: now,
                    outcome,
                });
                if self.tel.enabled() {
                    if let TransientOutcome::Recovered { retries } = outcome {
                        self.tel.event(TelEvent::TransientRecovered {
                            addr: sector.raw(),
                            retries,
                        });
                    }
                }
            }
            if self.retry.limit > 0 && (transient_tripped || plan.violation.is_some()) {
                // Degradation hook: the engine learns this fill needed
                // the retry path (only when retry is enabled, so legacy
                // fail-stop campaigns keep their exact behavior).
                self.partitions[p_idx]
                    .engine
                    .note_fill_failure(sector, plan.violation.is_none());
            }
            let latency = ready.saturating_sub(now);
            if let Some(v) = plan.violation {
                self.record_violation(now, v, latency);
            }
            if !self.armed.is_empty() {
                self.resolve_armed(sector, |armed| match plan.violation {
                    Some(v) => FaultOutcome::Detected {
                        layer: v.layer(),
                        latency: ready.saturating_sub(armed.cycle),
                    },
                    None => FaultOutcome::Escaped {
                        value_verified: plan.verified_by_value,
                    },
                });
            }
            self.stats.fill_latency_sum += latency;
            self.stats.fill_count += 1;
            self.simtel.fill_latency.record(latency);
            self.simtel.cur_root.set(TraceId::NONE);
            commit_ledger(
                &mut self.ledger,
                &self.simtel,
                p_idx,
                start,
                end,
                &weights,
                StallBucket::DataFill,
            );
            return (ready, plan.plaintext);
        }
    }

    fn handle_evictions(&mut self, now: u64, p_idx: usize, evicted: &[EvictedSector]) {
        for ev in evicted {
            let sector = SectorAddr::new(ev.addr);
            let data = ev.data.unwrap_or([0; 32]);
            self.writeback(now, p_idx, sector, &data);
        }
    }

    fn writeback(&mut self, now: u64, p_idx: usize, sector: SectorAddr, data: &[u8; 32]) {
        let root = self.simtel.tracer.begin("writeback", sector.raw());
        self.simtel.cur_root.set(root);
        let part = &mut self.partitions[p_idx];
        part.engine.begin_access_trace(root);
        let plan = part.engine.on_writeback(sector, data, &mut self.backing);
        let serial = self.cfg.serial_metadata_chains;
        let mut weights = LedgerWeights::default();
        let mut meta_ready = now;
        let mut end = now;
        for chain in &plan.pre_chains {
            let mut t = now;
            for (i, req) in chain.iter().enumerate() {
                // Same rule as `book_fill_plan`: serial dependent fetches
                // are booked at the time they actually issue.
                let issue_at = if serial && i > 0 { t } else { now };
                let rep = part.dram.access_report(issue_at, req.addr, req.bytes);
                weigh_breakdown(&mut weights, req.class, &rep);
                t = t.max(rep.done);
                book_traffic(
                    &mut self.stats,
                    &self.simtel,
                    req.class,
                    req.bytes as u64,
                    false,
                    req.level,
                );
            }
            meta_ready = meta_ready.max(t);
        }
        end = end.max(meta_ready);
        for req in &plan.async_reads {
            let rep = part.dram.access_report(now, req.addr, req.bytes);
            weigh_breakdown(&mut weights, req.class, &rep);
            end = end.max(rep.done);
            self.horizon = self.horizon.max(rep.done); // DRAM activity retires
            book_traffic(
                &mut self.stats,
                &self.simtel,
                req.class,
                req.bytes as u64,
                false,
                req.level,
            );
        }
        // The encrypted data and metadata writes drain from the write
        // buffer; their bandwidth is booked immediately, and the pipeline
        // latency (crypto) only extends the horizon.
        let rep = part
            .dram
            .access_report(now, sector.raw(), SECTOR_SIZE as u32);
        weigh_breakdown(&mut weights, TrafficClass::Data, &rep);
        let wb_done = rep.done.max(meta_ready) + plan.crypto_latency;
        end = end.max(wb_done);
        self.horizon = self.horizon.max(wb_done); // writeback drain retires
        book_traffic(
            &mut self.stats,
            &self.simtel,
            TrafficClass::Data,
            SECTOR_SIZE,
            true,
            0,
        );
        for req in &plan.writes {
            let rep = part.dram.access_report(now, req.addr, req.bytes);
            weigh_breakdown(&mut weights, req.class, &rep);
            end = end.max(rep.done);
            self.horizon = self.horizon.max(rep.done); // DRAM activity retires
            book_traffic(
                &mut self.stats,
                &self.simtel,
                req.class,
                req.bytes as u64,
                true,
                req.level,
            );
        }
        // Crypto pipeline time on the writeback path follows the fill
        // rule: metadata-bearing plans charge the MAC bucket.
        if plan.crypto_latency > 0 {
            let has_meta = !plan.pre_chains.is_empty()
                || !plan.async_reads.is_empty()
                || !plan.writes.is_empty();
            weights.add(
                if has_meta {
                    StallBucket::MetaMac
                } else {
                    StallBucket::DataFill
                },
                plan.crypto_latency,
            );
        }
        commit_ledger(
            &mut self.ledger,
            &self.simtel,
            p_idx,
            now,
            end,
            &weights,
            StallBucket::DataFill,
        );
        if let Some(v) = plan.violation {
            self.record_violation(now, v, 0);
        }
        self.simtel.cur_root.set(TraceId::NONE);
        if !self.armed.is_empty() {
            // A writeback either trips verification (metadata fetched for
            // the read-modify-write fails) or overwrites the faulted state
            // with fresh ciphertext and metadata before any verification
            // saw it.
            self.resolve_armed(sector, |armed| match plan.violation {
                Some(v) => FaultOutcome::Detected {
                    layer: v.layer(),
                    latency: now.saturating_sub(armed.cycle),
                },
                None => FaultOutcome::Clobbered,
            });
        }
    }

    fn flush_l2(&mut self) {
        let now = self.horizon;
        for p_idx in 0..self.partitions.len() {
            for bank in 0..self.partitions[p_idx].l2.len() {
                let flushed = self.partitions[p_idx].l2[bank].flush_dirty();
                self.handle_evictions(now, p_idx, &flushed);
            }
        }
    }
}

impl Simulator {
    /// Aggregate L2 hit/miss counts across all banks and partitions.
    pub fn l2_hit_stats(&self) -> (u64, u64) {
        let mut hits = 0;
        let mut misses = 0;
        for p in &self.partitions {
            for bank in &p.l2 {
                let (h, m) = bank.hit_stats();
                hits += h;
                misses += m;
            }
        }
        (hits, misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::security::NoSecurityEngine;
    use plutus_telemetry::{CycleClock, Telemetry};

    fn read_trace(n: u64, stride: u64) -> Trace {
        let mut t = Trace::new("reads");
        for i in 0..n {
            t.push_read(SectorAddr::new(i * stride), 2, 10);
        }
        t
    }

    #[test]
    fn all_reads_complete() {
        let trace = read_trace(200, 32);
        let mut sim = Simulator::new(GpuConfig::test_small(), trace, &NoSecurityEngine::factory());
        let r = sim.run();
        assert_eq!(r.stats.accesses, 200);
        assert_eq!(r.stats.instructions, 2000);
        assert!(r.stats.cycles > 0);
        assert_eq!(r.stats.violations, 0);
    }

    #[test]
    fn repeated_reads_hit_in_l2() {
        let mut trace = Trace::new("rehit");
        for _ in 0..4 {
            for i in 0..16u64 {
                trace.push_read(SectorAddr::new(i * 32), 1, 1);
            }
        }
        let mut sim = Simulator::new(GpuConfig::test_small(), trace, &NoSecurityEngine::factory());
        let r = sim.run();
        // 16 distinct sectors: ≥ one miss each, everything else hits or
        // merges.
        assert!(r.stats.l2_misses >= 16);
        assert!(r.stats.l2_hits + r.stats.mshr_merges >= 3 * 16);
        // DRAM data read traffic = misses × 32B.
        assert_eq!(
            r.stats.traffic[TrafficClass::Data.idx()].read_bytes,
            r.stats.l2_misses * 32
        );
    }

    #[test]
    fn writes_produce_writeback_traffic_on_eviction() {
        // Write far more sectors than the small L2 holds, forcing dirty
        // evictions.
        let mut trace = Trace::new("writes");
        for i in 0..4096u64 {
            trace.push_write(SectorAddr::new(i * 32), [i as u8; 32], 1, 1);
        }
        let mut sim = Simulator::new(GpuConfig::test_small(), trace, &NoSecurityEngine::factory());
        let r = sim.run();
        assert_eq!(r.stats.write_accesses, 4096);
        assert!(
            r.stats.traffic[TrafficClass::Data.idx()].write_bytes > 0,
            "expected dirty evictions to reach DRAM"
        );
    }

    #[test]
    fn written_data_reaches_backing_memory_after_flush() {
        let mut trace = Trace::new("wb");
        trace.push_write(SectorAddr::new(0x40), [0xcd; 32], 0, 1);
        let mut cfg = GpuConfig::test_small();
        cfg.flush_l2_at_end = true;
        let mut sim = Simulator::new(cfg, trace, &NoSecurityEngine::factory());
        sim.run();
        assert_eq!(sim.backing().read(SectorAddr::new(0x40)), Some([0xcd; 32]));
    }

    #[test]
    fn initial_image_is_readable() {
        let mut trace = Trace::new("init");
        trace.set_initial(SectorAddr::new(0x80), [7; 32]);
        trace.push_read(SectorAddr::new(0x80), 0, 1);
        let mut sim = Simulator::new(GpuConfig::test_small(), trace, &NoSecurityEngine::factory());
        let r = sim.run();
        assert_eq!(r.stats.accesses, 1);
        // The fill read the installed image functionally.
        assert_eq!(sim.backing().read(SectorAddr::new(0x80)), Some([7; 32]));
    }

    #[test]
    fn mshr_merges_coalesce_same_sector_reads() {
        let mut trace = Trace::new("merge");
        for _ in 0..32 {
            trace.push_read(SectorAddr::new(0x100), 0, 1);
        }
        let mut sim = Simulator::new(GpuConfig::test_small(), trace, &NoSecurityEngine::factory());
        let r = sim.run();
        assert_eq!(r.stats.accesses, 32);
        // One miss; the rest merge or hit after fill.
        assert_eq!(r.stats.l2_misses, 1);
        assert!(r.stats.mshr_merges > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let trace = read_trace(500, 96);
            let mut sim =
                Simulator::new(GpuConfig::test_small(), trace, &NoSecurityEngine::factory());
            let r = sim.run();
            (r.stats.cycles, r.stats.l2_hits, r.stats.total_bytes())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn trace_shorter_than_warp_pool_completes() {
        let mut trace = Trace::new("tiny");
        trace.push_read(SectorAddr::new(0), 0, 5);
        trace.push_write(SectorAddr::new(32), [1; 32], 0, 5);
        let mut sim = Simulator::new(GpuConfig::test_small(), trace, &NoSecurityEngine::factory());
        let r = sim.run();
        assert_eq!(r.stats.accesses, 2);
        assert_eq!(r.stats.instructions, 10);
    }

    #[test]
    fn write_while_read_pending_is_not_clobbered_by_fill() {
        // A read miss to sector S followed immediately by a write to S:
        // when the (stale) fill completes it must not overwrite the newer
        // store, and the final flush must carry the written value.
        let mut trace = Trace::new("raw-hazard");
        trace.set_initial(SectorAddr::new(0x40), [7; 32]);
        trace.push_read(SectorAddr::new(0x40), 0, 1);
        trace.push_write(SectorAddr::new(0x40), [9; 32], 0, 1);
        let mut cfg = GpuConfig::test_small();
        cfg.warps = 2; // read and write issue concurrently
        cfg.flush_l2_at_end = true;
        let mut sim = Simulator::new(cfg, trace, &NoSecurityEngine::factory());
        sim.run();
        assert_eq!(
            sim.backing().read(SectorAddr::new(0x40)),
            Some([9; 32]),
            "fill must not clobber a newer store"
        );
    }

    #[test]
    fn empty_trace_is_harmless() {
        let mut sim = Simulator::new(
            GpuConfig::test_small(),
            Trace::new("empty"),
            &NoSecurityEngine::factory(),
        );
        let r = sim.run();
        assert_eq!(r.stats.accesses, 0);
    }

    #[test]
    fn mshr_pressure_queues_instead_of_losing_accesses() {
        let mut cfg = GpuConfig::test_small();
        cfg.mshrs_per_partition = 2;
        cfg.warps = 64;
        let trace = read_trace(400, 32);
        let mut sim = Simulator::new(cfg, trace, &NoSecurityEngine::factory());
        let r = sim.run();
        assert_eq!(r.stats.accesses, 400, "queued accesses must all complete");
        assert!(r.stats.mshr_stalls > 0, "tiny MSHR must actually saturate");
    }

    #[test]
    fn ledger_conserves_cycles_under_mshr_pressure() {
        let mut cfg = GpuConfig::test_small();
        cfg.mshrs_per_partition = 2;
        cfg.warps = 64;
        let trace = read_trace(400, 32);
        let mut sim = Simulator::new(cfg, trace, &NoSecurityEngine::factory());
        let r = sim.run();
        assert_eq!(r.stats.ledgers.len(), 4, "one ledger per partition");
        assert!(
            r.stats.ledger_conserved(),
            "every partition's buckets must sum to {} cycles",
            r.stats.cycles
        );
        let stack = r.stats.cpi_stack();
        assert_eq!(stack.iter().sum::<u64>(), r.stats.cycles * 4);
        assert!(r.stats.ledger_cycles(crate::ledger::StallBucket::DataFill) > 0);
        assert!(
            r.stats.ledger_cycles(crate::ledger::StallBucket::MshrFull) > 0,
            "saturated MSHRs must show up in the ledger"
        );
    }

    #[test]
    fn ledger_conserves_cycles_with_writebacks() {
        let mut trace = Trace::new("writes");
        for i in 0..4096u64 {
            trace.push_write(SectorAddr::new(i * 32), [i as u8; 32], 1, 1);
        }
        let mut sim = Simulator::new(GpuConfig::test_small(), trace, &NoSecurityEngine::factory());
        let r = sim.run();
        assert!(r.stats.ledger_conserved());
    }

    #[test]
    fn ledger_conserved_on_early_halt() {
        let trace = read_trace(400, 32);
        let mut sim = Simulator::new(GpuConfig::test_small(), trace, &NoSecurityEngine::factory());
        let r = sim.run_until(100);
        assert!(r.stats.cycles <= 100);
        assert!(
            r.stats.ledger_conserved(),
            "crashed runs must still conserve: totals {:?} vs cycles {}",
            r.stats
                .ledgers
                .iter()
                .map(|l| l.total())
                .collect::<Vec<_>>(),
            r.stats.cycles
        );
    }

    #[test]
    fn dram_stats_aggregate_across_partitions() {
        let trace = read_trace(400, 32);
        let mut sim = Simulator::new(GpuConfig::test_small(), trace, &NoSecurityEngine::factory());
        let r = sim.run();
        let d = &r.stats.dram;
        assert_eq!(
            d.row_hits + d.row_misses,
            r.stats
                .traffic
                .iter()
                .map(|t| t.read_reqs + t.write_reqs)
                .sum::<u64>()
        );
        assert_eq!(
            d.per_bank.iter().map(|b| b.row_misses).sum::<u64>(),
            d.row_misses
        );
        assert_eq!(
            d.per_bank.iter().map(|b| b.busy_cycles).sum::<u64>(),
            d.bank_busy_cycles
        );
        assert!(d.backlog_hwm_bytes > 0, "misses must queue bus bytes");
    }

    #[test]
    fn telemetry_mirrors_stats_and_rolls_epochs() {
        let tel = Telemetry::with_clock(std::sync::Arc::new(CycleClock::new()));
        let trace = read_trace(400, 32);
        let mut sim = Simulator::with_telemetry(
            GpuConfig::test_small(),
            trace,
            &NoSecurityEngine::factory(),
            tel.clone(),
        );
        sim.set_epoch_interval(50);
        let r = sim.run();
        let snap = tel.snapshot();
        assert_eq!(
            snap.counter("traffic.data.read_bytes"),
            Some(r.stats.traffic[TrafficClass::Data.idx()].read_bytes)
        );
        assert_eq!(snap.counter("l2.hits"), Some(r.stats.l2_hits));
        assert_eq!(snap.counter("l2.misses"), Some(r.stats.l2_misses));
        assert_eq!(snap.counter("violations"), Some(0));
        let (row_hits, row_misses) = (
            snap.counter("dram.row_hits"),
            snap.counter("dram.row_misses"),
        );
        assert_eq!(
            row_hits.unwrap() + row_misses.unwrap(),
            r.stats
                .traffic
                .iter()
                .map(|t| t.read_reqs + t.write_reqs)
                .sum::<u64>()
        );
        // Fill-latency histogram observed every fill.
        let hist = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "fill.latency_cycles")
            .map(|(_, h)| h.clone())
            .expect("fill latency histogram registered");
        assert_eq!(hist.count, r.stats.fill_count);
        assert_eq!(hist.sum, r.stats.fill_latency_sum);
        // 400 misses over hundreds of cycles at a 50-cycle interval must
        // close multiple epochs, and their deltas chain contiguously.
        let epochs = tel.epochs();
        assert!(
            epochs.len() >= 2,
            "expected >=2 epochs, got {}",
            epochs.len()
        );
        for w in epochs.windows(2) {
            assert_eq!(w[1].start_time, w[0].end_time);
        }
    }

    #[test]
    fn tenant_rollups_mirror_into_epochs_and_sum_to_stats() {
        let tel = Telemetry::with_clock(std::sync::Arc::new(CycleClock::new()));
        let trace = read_trace(400, 32);
        let mut sim = Simulator::with_telemetry(
            GpuConfig::test_small(),
            trace,
            &NoSecurityEngine::factory(),
            tel.clone(),
        );
        // Split the touched address range between two tenants.
        let mut map = TenantMap::new();
        map.add_range(0, 400 * 32 / 2, 1);
        map.add_range(400 * 32 / 2, u64::MAX, 2);
        sim.set_tenant_map(map);
        sim.set_epoch_interval(50);
        let r = sim.run();
        assert!(r.stats.tenants.len() == 2, "both tenants progressed");
        let snap = tel.snapshot();
        for t in &r.stats.tenants {
            let name = format!("tenant.t{}.instructions", t.tenant);
            assert_eq!(
                snap.counter(&name),
                Some(t.instructions),
                "{name} total mismatch"
            );
            // Per-tenant epoch deltas chain back to the same total —
            // this is what the NDJSON stream serializes per line.
            let from_epochs: u64 = tel.epochs().iter().map(|e| e.delta(&name)).sum();
            assert_eq!(from_epochs, t.instructions, "{name} epoch sum mismatch");
        }
        // The terminal epoch captures the tail past the last boundary.
        let labels: Vec<String> = tel.epochs().iter().map(|e| e.label.clone()).collect();
        assert!(
            labels.last().unwrap().starts_with("final-"),
            "missing terminal epoch: {labels:?}"
        );
    }

    #[test]
    fn disabled_telemetry_changes_nothing() {
        let run = |tel: Telemetry| {
            let mut sim = Simulator::with_telemetry(
                GpuConfig::test_small(),
                read_trace(300, 64),
                &NoSecurityEngine::factory(),
                tel,
            );
            let r = sim.run();
            (r.stats.cycles, r.stats.total_bytes(), r.stats.l2_hits)
        };
        assert_eq!(run(Telemetry::disabled()), run(Telemetry::new()));
    }

    #[test]
    fn drained_trace_wakeups_do_not_define_cycles() {
        // 8192 same-sector reads with zero think time: a handful of early
        // warps recycle through the trace and drain it long before the
        // last of 4096 staggered launches at cycle (4096-1)/2 = 2047.
        // Those late launches find the trace drained; the measured cycle
        // count must come from the last retirement, not the launch tail.
        let mk_trace = || {
            let mut t = Trace::new("drain");
            for _ in 0..8192 {
                t.push_read(SectorAddr::new(0x100), 0, 1);
            }
            t
        };
        let mut cfg = GpuConfig::test_small();
        cfg.warps = 4096;
        let r = Simulator::new(cfg, mk_trace(), &NoSecurityEngine::factory()).run();
        assert_eq!(r.stats.accesses, 8192);
        assert!(
            r.stats.cycles < 4096 / 2,
            "launch-stagger tail must not floor cycles, got {}",
            r.stats.cycles
        );
        assert!(r.stats.ledger_conserved());
        // A 1-access trace's cycle count is independent of the warp pool.
        let one = |warps: usize| {
            let mut cfg = GpuConfig::test_small();
            cfg.warps = warps;
            Simulator::new(cfg, read_trace(1, 32), &NoSecurityEngine::factory())
                .run()
                .stats
                .cycles
        };
        assert_eq!(one(2), one(4096));
    }

    #[test]
    fn serial_chain_requests_book_at_dependent_time() {
        use crate::security::{DramReq, FillPlan};
        // Book one fill with a serial two-element metadata chain onto a
        // saturated channel, once with serial chains and once with
        // parallel ones. `backlog_bytes_at` clamps a past `now` up to the
        // channel's last issue time, so probing at cycle 100 reads the
        // queue as of the latest booking: for the serial chain that is
        // the dependent element's issue time t1 (= its predecessor's
        // completion, after the burst drained), where only the dependent
        // element's own bytes remain queued.
        let book = |serial: bool| {
            let mut cfg = GpuConfig::test_small();
            cfg.serial_metadata_chains = serial;
            let mut sim = Simulator::new(cfg, Trace::new("sat"), &NoSecurityEngine::factory());
            // 24 KiB burst at cycle 0: ~1024 cycles of bus backlog at
            // 24 B/cycle.
            sim.partitions[0].dram.access_report(0, 0, 24 * 1024);
            let plan = FillPlan {
                pre_chains: vec![vec![
                    DramReq::new(0x10_0000, 32, TrafficClass::Counter),
                    DramReq::new(0x20_0000, 4096, TrafficClass::BmtNode),
                ]],
                ..FillPlan::default()
            };
            let mut w = LedgerWeights::default();
            let (ready, _end) = sim.book_fill_plan(0, 0, SectorAddr::new(0x40), &plan, &mut w);
            let backlog = sim.partitions[0].dram.backlog_bytes_at(100);
            (ready, backlog)
        };
        let (ready_serial, backlog_serial) = book(true);
        let (ready_parallel, backlog_parallel) = book(false);
        // Serial: the dependent 4 KiB element was booked at t1 ≈ 1060,
        // after the burst drained — it is the only thing in the queue.
        // Booking it at the fill's start (the old bug) would leave the
        // channel clock at 0 and the probe would see the whole burst.
        assert!(
            backlog_serial <= 4096,
            "dependent fetch must be booked at its issue time t1, after \
             the burst drained (backlog {backlog_serial})"
        );
        assert!(
            backlog_serial >= 4000,
            "dependent fetch's bytes must enter the backlog at t1 \
             (backlog {backlog_serial})"
        );
        // Parallel: everything was booked at cycle 0; mid-drain the burst
        // still dominates the queue.
        assert!(
            backlog_parallel > 20_000,
            "parallel chains book at fill start (backlog {backlog_parallel})"
        );
        assert!(
            ready_serial >= ready_parallel,
            "serialized chain cannot be faster than a parallel one \
             ({ready_serial} vs {ready_parallel})"
        );
    }

    #[test]
    fn write_backpressure_throttles_issue_on_saturated_channel() {
        // Stores headed for a saturated partition must stall the issuing
        // warp until the excess backlog drains; with the throttle disabled
        // the same trace issues freely and finishes sooner.
        let run = |throttle: u64| {
            // 64 distinct sectors, all mapping to partition 0.
            let addrs: Vec<SectorAddr> = (0u64..)
                .map(|i| SectorAddr::new(i * 32))
                .filter(|a| partition_of(a.block(), 4) == 0)
                .take(64)
                .collect();
            let mut trace = Trace::new("wthrottle");
            for (i, a) in addrs.iter().enumerate() {
                trace.push_write(*a, [i as u8; 32], 1, 1);
            }
            let mut cfg = GpuConfig::test_small();
            cfg.write_throttle_bytes = throttle;
            let mut sim = Simulator::new(cfg, trace, &NoSecurityEngine::factory());
            // ~100 KiB burst at cycle 0: far beyond the 8 KiB store-buffer
            // depth, ~4300 cycles of bus backlog at 24 B/cycle.
            sim.partitions[0].dram.access_report(0, 0, 100 * 1024);
            let r = sim.run();
            assert_eq!(r.stats.write_accesses, 64, "all stores must complete");
            r.stats.clone()
        };
        let throttled = run(8 * 1024);
        let free = run(u64::MAX);
        assert!(
            throttled.write_throttle_cycles > 0,
            "saturated channel must stall write issue"
        );
        assert_eq!(free.write_throttle_cycles, 0);
        assert!(
            throttled.cycles > free.cycles,
            "backpressure must show up in measured cycles \
             ({} vs {})",
            throttled.cycles,
            free.cycles
        );
    }

    #[test]
    fn more_warps_do_not_change_work_done() {
        let mut cfg_few = GpuConfig::test_small();
        cfg_few.warps = 2;
        let mut cfg_many = GpuConfig::test_small();
        cfg_many.warps = 64;
        let r1 = Simulator::new(cfg_few, read_trace(300, 32), &NoSecurityEngine::factory()).run();
        let r2 = Simulator::new(cfg_many, read_trace(300, 32), &NoSecurityEngine::factory()).run();
        assert_eq!(r1.stats.accesses, r2.stats.accesses);
        // More parallelism should not slow things down.
        assert!(r2.stats.cycles <= r1.stats.cycles);
    }
}
