//! The trace-driven simulator: warp pool, L2 slices, MSHRs, security
//! engines, and DRAM channels.
//!
//! # Model
//!
//! A pool of warps round-robins over the trace: each warp claims the next
//! access, spends its `think_cycles`, then issues. Reads block the warp
//! until the fill returns; writes are fire-and-forget (GPU store buffers).
//! With the default 1024-warp pool, latency is hidden and throughput is set
//! by DRAM bandwidth — the regime in which the paper's security-metadata
//! traffic matters.
//!
//! Every L2 miss and dirty writeback is routed through the partition's
//! [`SecurityEngine`], which returns a [`FillPlan`]/[`WritePlan`] of extra
//! metadata DRAM requests and crypto latencies; the simulator books those
//! on the partition's DRAM channel and classifies the traffic.

use crate::address::{partition_of, SectorAddr, SECTOR_SIZE};
use crate::cache::{EvictedSector, SectoredCache};
use crate::config::GpuConfig;
use crate::dram::DramChannel;
use crate::fault::{FaultKind, FaultSchedule, ScheduledFault};
use crate::mem::BackingMemory;
use crate::security::{EngineFactory, SecurityEngine, Violation};
use crate::stats::{FaultOutcome, FaultRecord, SimStats, TrafficClass, ViolationRecord};
use crate::trace::{AccessKind, Trace, TraceAccess};
use plutus_telemetry::{Counter, Event as TelEvent, Histogram, Telemetry};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// A warp is free and may claim its next trace access.
    WarpNext { warp: u32 },
    /// An access arrives at its partition's L2 after the interconnect.
    Arrive { access: TraceAccess },
    /// A miss's fill is complete at the memory controller.
    FillDone { partition: u32, sector: SectorAddr },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    time: u64,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A fault applied to a sector, awaiting resolution (detected / escaped /
/// clobbered) at the sector's next verification.
#[derive(Debug, Clone, Copy)]
struct ArmedFault {
    /// Cycle at which the fault was applied.
    cycle: u64,
    /// Stable label of the fault kind.
    kind: &'static str,
}

#[derive(Debug)]
struct Waiter {
    warp: u32,
    instructions: u32,
}

#[derive(Debug)]
struct MshrEntry {
    waiters: Vec<Waiter>,
    plaintext: [u8; 32],
}

struct Partition {
    l2: Vec<SectoredCache>,
    mshr: HashMap<SectorAddr, MshrEntry>,
    mshr_capacity: usize,
    /// Accesses waiting for a free MSHR, admitted in FIFO order as fills
    /// complete (avoids retry storms that would synchronize warps into
    /// convoys).
    pending: VecDeque<TraceAccess>,
    dram: DramChannel,
    engine: Box<dyn SecurityEngine>,
}

/// Registry handles mirroring [`SimStats`] into the telemetry layer.
///
/// [`SimStats`] stays the synchronous source of truth for results (its
/// accessors are the compatibility facade every experiment reads); these
/// handles feed the same observations into the shared registry so epoch
/// deltas, exports, and cross-run aggregation see them. All handles are
/// branch-free no-ops when telemetry is disabled.
struct SimTelemetry {
    /// Per-class DRAM read bytes, indexed by [`TrafficClass::idx`].
    read_bytes: [Counter; 6],
    /// Per-class DRAM write bytes.
    write_bytes: [Counter; 6],
    l2_hits: Counter,
    l2_misses: Counter,
    mshr_merges: Counter,
    mshr_stalls: Counter,
    violations: Counter,
    /// Fill latency (arrival at the controller → verified data), cycles.
    fill_latency: Histogram,
}

impl SimTelemetry {
    fn new(tel: &Telemetry) -> Self {
        let per_class = |dir: &str| {
            TrafficClass::ALL.map(|c| tel.counter(&format!("traffic.{}.{dir}_bytes", c.label())))
        };
        Self {
            read_bytes: per_class("read"),
            write_bytes: per_class("write"),
            l2_hits: tel.counter("l2.hits"),
            l2_misses: tel.counter("l2.misses"),
            mshr_merges: tel.counter("mshr.merges"),
            mshr_stalls: tel.counter("mshr.stalls"),
            violations: tel.counter("violations"),
            fill_latency: tel.histogram("fill.latency_cycles"),
        }
    }
}

/// Books one DRAM transfer into both the per-run [`SimStats`] and the
/// shared registry (free function so callers can hold disjoint borrows of
/// other `Simulator` fields).
fn book_traffic(
    stats: &mut SimStats,
    tel: &SimTelemetry,
    class: TrafficClass,
    bytes: u64,
    is_write: bool,
) {
    stats.record_traffic(class, bytes, is_write);
    if is_write {
        tel.write_bytes[class.idx()].add(bytes);
    } else {
        tel.read_bytes[class.idx()].add(bytes);
    }
}

/// Result of a completed simulation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Scheme name reported by the engine.
    pub engine: String,
    /// Workload name from the trace.
    pub workload: String,
    /// Aggregated statistics.
    pub stats: SimStats,
}

impl SimResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }
}

/// The trace-driven GPU memory-system simulator.
///
/// # Example
///
/// ```
/// use gpu_sim::{Simulator, GpuConfig, Trace, SectorAddr, NoSecurityEngine};
///
/// let mut trace = Trace::new("demo");
/// for i in 0..64 {
///     trace.push_read(SectorAddr::new(i * 32), 4, 10);
/// }
/// let mut sim = Simulator::new(GpuConfig::test_small(), trace, &NoSecurityEngine::factory());
/// let result = sim.run();
/// assert_eq!(result.stats.accesses, 64);
/// assert!(result.stats.cycles > 0);
/// ```
pub struct Simulator {
    cfg: GpuConfig,
    trace: Trace,
    cursor: usize,
    partitions: Vec<Partition>,
    backing: BackingMemory,
    events: BinaryHeap<Reverse<Event>>,
    seq: u64,
    horizon: u64,
    stats: SimStats,
    engine_name: &'static str,
    tel: Telemetry,
    simtel: SimTelemetry,
    /// Close a telemetry epoch every this many simulated cycles.
    epoch_interval: Option<u64>,
    next_epoch_at: u64,
    /// Faults still waiting for their trigger.
    faults: FaultSchedule,
    /// Attacker snapshots captured by [`FaultKind::SnapshotData`].
    snapshots: HashMap<u64, [u8; 32]>,
    /// Applied faults awaiting resolution, keyed by raw sector address.
    armed: HashMap<u64, ArmedFault>,
    /// Accesses that have arrived at their partition (drives
    /// [`crate::FaultTrigger::AtAccess`]).
    accesses_seen: u64,
}

impl Simulator {
    /// Builds a simulator for `trace` with engines from `factory`,
    /// installing the trace's initial memory image through the engines.
    /// Telemetry is disabled; see [`Simulator::with_telemetry`].
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn new(cfg: GpuConfig, trace: Trace, factory: &dyn EngineFactory) -> Self {
        Self::with_telemetry(cfg, trace, factory, Telemetry::disabled())
    }

    /// Builds a simulator whose statistics also feed `tel`'s registry, and
    /// whose engines, caches, and DRAM channels are handed the same handle
    /// (via [`SecurityEngine::attach_telemetry`] and friends).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn with_telemetry(
        cfg: GpuConfig,
        trace: Trace,
        factory: &dyn EngineFactory,
        tel: Telemetry,
    ) -> Self {
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid GpuConfig: {e}"));
        let mut backing = BackingMemory::new();
        let mut partitions: Vec<Partition> = (0..cfg.partitions)
            .map(|p| {
                let mut engine = factory.build(p);
                engine.attach_telemetry(&tel);
                let mut dram = DramChannel::new(cfg.dram.clone());
                dram.attach_telemetry(&tel, "dram");
                let l2 = (0..cfg.l2_banks_per_partition)
                    .map(|_| {
                        let mut bank =
                            SectoredCache::new(cfg.l2_bank_bytes, cfg.l2_ways, 128, true);
                        bank.attach_telemetry(&tel, "l2_bank");
                        bank
                    })
                    .collect();
                Partition {
                    l2,
                    mshr: HashMap::new(),
                    mshr_capacity: cfg.mshrs_per_partition,
                    pending: VecDeque::new(),
                    dram,
                    engine,
                }
            })
            .collect();
        let engine_name = partitions
            .first()
            .map(|p| p.engine.name())
            .unwrap_or("none");

        for (addr, data) in &trace.initial_image {
            let p = partition_of(addr.block(), cfg.partitions);
            partitions[p].engine.install(*addr, data, &mut backing);
        }

        let simtel = SimTelemetry::new(&tel);
        Self {
            cfg,
            trace,
            cursor: 0,
            partitions,
            backing,
            events: BinaryHeap::new(),
            seq: 0,
            horizon: 0,
            stats: SimStats::default(),
            engine_name,
            tel,
            simtel,
            epoch_interval: None,
            next_epoch_at: u64::MAX,
            faults: FaultSchedule::new(),
            snapshots: HashMap::new(),
            armed: HashMap::new(),
            accesses_seen: 0,
        }
    }

    /// Closes a telemetry epoch every `cycles` simulated cycles, labelled
    /// with the cycle boundary. No effect when telemetry is disabled.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn set_epoch_interval(&mut self, cycles: u64) {
        assert!(cycles > 0, "epoch interval must be positive");
        self.epoch_interval = Some(cycles);
        self.next_epoch_at = cycles;
    }

    /// Mutable access to the functional memory, for injecting physical
    /// attacks before (or between) runs. Mid-run attacks go through
    /// [`Simulator::set_fault_schedule`] instead, which also tracks each
    /// fault's outcome.
    pub fn backing_mut(&mut self) -> &mut BackingMemory {
        &mut self.backing
    }

    /// Installs a schedule of faults to inject *during* the run.
    ///
    /// Each applied fault is resolved into a
    /// [`FaultOutcome`] in [`SimStats::fault_records`]: detected (with the
    /// detecting layer and injection-to-detection latency), escaped,
    /// clobbered by a writeback, or unobserved. The simulation continues
    /// and counts violations rather than stopping at the first one, so a
    /// schedule with thousands of faults measures detection rates in one
    /// run. Replaces any previously installed schedule.
    pub fn set_fault_schedule(&mut self, mut schedule: FaultSchedule) {
        schedule.normalize();
        self.faults = schedule;
    }

    /// Read access to the functional memory.
    pub fn backing(&self) -> &BackingMemory {
        &self.backing
    }

    fn schedule(&mut self, time: u64, kind: EventKind) {
        self.seq += 1;
        self.horizon = self.horizon.max(time);
        self.events.push(Reverse(Event {
            time,
            seq: self.seq,
            kind,
        }));
    }

    /// Runs the simulation to completion and returns the results.
    pub fn run(&mut self) -> SimResult {
        let warps = self.cfg.warps.min(self.trace.len().max(1));
        for w in 0..warps {
            // Stagger warp launches (thread-block wave scheduling): an
            // instantaneous 4k-warp burst would create an artificial
            // standing convoy at the memory controllers.
            self.schedule(w as u64 / 2, EventKind::WarpNext { warp: w as u32 });
        }
        while let Some(Reverse(ev)) = self.events.pop() {
            self.horizon = self.horizon.max(ev.time);
            if self.tel.enabled() {
                self.tel.advance_clock(ev.time);
                if ev.time >= self.next_epoch_at {
                    self.roll_epochs(ev.time);
                }
            }
            if !self.faults.is_empty() {
                if matches!(ev.kind, EventKind::Arrive { .. }) {
                    self.accesses_seen += 1;
                }
                while let Some(f) = self.faults.pop_due(ev.time, self.accesses_seen) {
                    self.apply_fault(ev.time, f);
                }
            }
            match ev.kind {
                EventKind::WarpNext { warp } => self.warp_next(ev.time, warp),
                EventKind::Arrive { access } => self.arrive(ev.time, access),
                EventKind::FillDone { partition, sector } => {
                    self.fill_done(ev.time, partition as usize, sector)
                }
            }
        }
        if self.cfg.flush_l2_at_end {
            self.flush_l2();
        }
        self.finalize()
    }

    /// Closes every epoch boundary at or before `now` (several may pass at
    /// once when the event queue jumps across idle time).
    fn roll_epochs(&mut self, now: u64) {
        let Some(interval) = self.epoch_interval else {
            return;
        };
        while now >= self.next_epoch_at {
            self.tel.end_epoch(&format!("cycle-{}", self.next_epoch_at));
            self.next_epoch_at += interval;
        }
    }

    /// Applies one scheduled fault: data faults go straight to the
    /// backing store; metadata faults are delegated to the partition
    /// engine owning the sector. Applied faults are armed on the sector
    /// for outcome resolution; faults that could not change state are
    /// recorded as [`FaultOutcome::NotApplied`] immediately.
    fn apply_fault(&mut self, now: u64, f: ScheduledFault) {
        let applied = match f.kind {
            FaultKind::CorruptData { mask } => self.backing.corrupt(f.addr, &mask),
            FaultKind::SnapshotData => {
                if let Some(bytes) = self.backing.snapshot(f.addr) {
                    self.snapshots.insert(f.addr.raw(), bytes);
                }
                return; // bookkeeping only, no fault record
            }
            FaultKind::ReplayData => match self.snapshots.get(&f.addr.raw()) {
                Some(&old) if self.backing.read(f.addr) != Some(old) => {
                    self.backing.replay(f.addr, old)
                }
                _ => false,
            },
            FaultKind::Metadata(mf) => {
                let p = partition_of(f.addr.block(), self.cfg.partitions);
                self.partitions[p].engine.inject_fault(f.addr, mf)
            }
        };
        let kind = f.kind.label();
        if applied {
            if self.tel.enabled() {
                self.tel.event(TelEvent::FaultInjected {
                    addr: f.addr.raw(),
                    kind: kind.to_string(),
                });
            }
            let armed = ArmedFault { cycle: now, kind };
            // A second fault on an already-armed sector takes over the
            // arming; the first can no longer be told apart and resolves
            // as unobserved.
            if let Some(prev) = self.armed.insert(f.addr.raw(), armed) {
                self.stats.fault_records.push(FaultRecord {
                    addr: f.addr.raw(),
                    kind: prev.kind,
                    injected_cycle: prev.cycle,
                    outcome: FaultOutcome::Unobserved,
                });
            }
        } else {
            self.stats.fault_records.push(FaultRecord {
                addr: f.addr.raw(),
                kind,
                injected_cycle: now,
                outcome: FaultOutcome::NotApplied,
            });
        }
    }

    /// Books a detected violation into stats and telemetry. `latency` is
    /// the verification latency of the detecting request (0 on the
    /// writeback path, which nothing waits on).
    fn record_violation(&mut self, now: u64, v: Violation, latency: u64) {
        self.stats.violations += 1;
        self.simtel.violations.inc();
        self.stats.violation_records.push(ViolationRecord {
            cycle: now,
            addr: v.addr().raw(),
            layer: v.layer(),
            latency,
        });
        if self.tel.enabled() {
            self.tel.event(TelEvent::Violation {
                kind: v.to_string(),
                layer: v.layer().label().to_string(),
                latency,
            });
        }
    }

    /// Resolves the armed fault on `sector` (if any) into a fault record,
    /// computing the outcome from the armed state.
    fn resolve_armed(
        &mut self,
        sector: SectorAddr,
        outcome_of: impl FnOnce(&ArmedFault) -> FaultOutcome,
    ) {
        if let Some(armed) = self.armed.remove(&sector.raw()) {
            self.stats.fault_records.push(FaultRecord {
                addr: sector.raw(),
                kind: armed.kind,
                injected_cycle: armed.cycle,
                outcome: outcome_of(&armed),
            });
        }
    }

    fn finalize(&mut self) -> SimResult {
        self.stats.cycles = self.horizon;
        // Faults never verified again resolve as unobserved; sort for
        // deterministic record order (the armed map is a HashMap).
        let mut leftovers: Vec<(u64, ArmedFault)> = self.armed.drain().collect();
        leftovers.sort_by_key(|(addr, armed)| (armed.cycle, *addr));
        for (addr, armed) in leftovers {
            self.stats.fault_records.push(FaultRecord {
                addr,
                kind: armed.kind,
                injected_cycle: armed.cycle,
                outcome: FaultOutcome::Unobserved,
            });
        }
        // Merge engine-specific counters across partitions.
        let mut merged: Vec<(String, u64)> = Vec::new();
        for p in &self.partitions {
            for (name, value) in p.engine.extra_stats() {
                match merged.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, v)) => *v += value,
                    None => merged.push((name, value)),
                }
            }
        }
        self.stats.engine = merged;
        SimResult {
            engine: self.engine_name.to_string(),
            workload: self.trace.name.clone(),
            stats: self.stats.clone(),
        }
    }

    fn warp_next(&mut self, now: u64, warp: u32) {
        let Some(&access) = self.trace.accesses.get(self.cursor) else {
            return; // trace drained; warp retires
        };
        self.cursor += 1;
        let issue = now + access.think_cycles as u64;
        let arrive = issue + self.cfg.interconnect_latency;
        match access.kind {
            AccessKind::Read => {
                self.stats.read_accesses += 1;
                // Warp blocks; it is rescheduled when the fill (or hit)
                // completes.
                self.schedule_arrive(arrive, access, warp);
            }
            AccessKind::Write => {
                self.stats.write_accesses += 1;
                // Fire-and-forget store: retire instructions at issue and
                // let the warp continue.
                self.stats.instructions += access.instructions as u64;
                self.stats.accesses += 1;
                self.schedule_arrive(arrive, access, warp);
                self.schedule(issue, EventKind::WarpNext { warp });
            }
        }
    }

    fn schedule_arrive(&mut self, time: u64, access: TraceAccess, warp: u32) {
        // The issuing warp id rides in `think_cycles`' place? No — pack it
        // into the access via the MSHR at arrival. We must carry it through
        // the event instead: reads encode the warp in `data_idx`, which is
        // unused for reads.
        let mut tagged = access;
        if access.kind == AccessKind::Read {
            tagged.data_idx = warp;
        }
        self.schedule(time, EventKind::Arrive { access: tagged });
    }

    fn bank_of(&self, sector: SectorAddr) -> usize {
        let idx = sector.block().index() / self.cfg.partitions as u64;
        (idx % self.cfg.l2_banks_per_partition as u64) as usize
    }

    fn arrive(&mut self, now: u64, access: TraceAccess) {
        let sector = access.addr;
        let p_idx = partition_of(sector.block(), self.cfg.partitions);
        let bank = self.bank_of(sector);
        match access.kind {
            AccessKind::Write => {
                let data = *self.trace.data_of(&access);
                let outcome =
                    self.partitions[p_idx].l2[bank].access(sector.raw(), true, Some(data));
                if outcome.hit {
                    self.stats.l2_hits += 1;
                    self.simtel.l2_hits.inc();
                } else {
                    self.stats.l2_misses += 1;
                    self.simtel.l2_misses.inc();
                }
                self.handle_evictions(now, p_idx, &outcome.evicted);
            }
            AccessKind::Read => {
                let warp = access.data_idx; // see schedule_arrive
                                            // Merge into an outstanding miss?
                if let Some(entry) = self.partitions[p_idx].mshr.get_mut(&sector) {
                    entry.waiters.push(Waiter {
                        warp,
                        instructions: access.instructions,
                    });
                    self.stats.mshr_merges += 1;
                    self.simtel.mshr_merges.inc();
                    return;
                }
                if self.partitions[p_idx].l2[bank].probe(sector.raw()) {
                    // Hit.
                    self.partitions[p_idx].l2[bank].access(sector.raw(), false, None);
                    self.stats.l2_hits += 1;
                    self.simtel.l2_hits.inc();
                    self.stats.instructions += access.instructions as u64;
                    self.stats.accesses += 1;
                    let wake = now + self.cfg.l2_hit_latency + self.cfg.interconnect_latency;
                    self.schedule(wake, EventKind::WarpNext { warp });
                    return;
                }
                // Miss.
                if self.partitions[p_idx].mshr.len() >= self.partitions[p_idx].mshr_capacity {
                    self.stats.mshr_stalls += 1;
                    self.simtel.mshr_stalls.inc();
                    self.partitions[p_idx].pending.push_back(access);
                    return;
                }
                self.stats.l2_misses += 1;
                self.simtel.l2_misses.inc();
                let outcome = self.partitions[p_idx].l2[bank].access(sector.raw(), false, None);
                self.handle_evictions(now, p_idx, &outcome.evicted);
                let (ready, plaintext) = self.execute_fill(now, p_idx, sector);
                self.partitions[p_idx].mshr.insert(
                    sector,
                    MshrEntry {
                        waiters: vec![Waiter {
                            warp,
                            instructions: access.instructions,
                        }],
                        plaintext,
                    },
                );
                self.schedule(
                    ready,
                    EventKind::FillDone {
                        partition: p_idx as u32,
                        sector,
                    },
                );
            }
        }
    }

    fn fill_done(&mut self, now: u64, p_idx: usize, sector: SectorAddr) {
        let bank = self.bank_of(sector);
        let Some(entry) = self.partitions[p_idx].mshr.remove(&sector) else {
            return;
        };
        self.partitions[p_idx].l2[bank].fill_data(sector.raw(), entry.plaintext);
        for w in entry.waiters {
            self.stats.instructions += w.instructions as u64;
            self.stats.accesses += 1;
            let wake = now + self.cfg.interconnect_latency;
            self.schedule(wake, EventKind::WarpNext { warp: w.warp });
        }
        // Admit queued accesses while MSHRs are free (merges and hits do
        // not consume a slot, so keep draining).
        while self.partitions[p_idx].mshr.len() < self.partitions[p_idx].mshr_capacity {
            let Some(next) = self.partitions[p_idx].pending.pop_front() else {
                break;
            };
            self.arrive(now, next);
        }
    }

    /// Books the data + metadata DRAM requests for a fill and returns the
    /// cycle at which the verified plaintext is ready at the controller,
    /// along with the plaintext itself.
    fn execute_fill(&mut self, now: u64, p_idx: usize, sector: SectorAddr) -> (u64, [u8; 32]) {
        let part = &mut self.partitions[p_idx];
        let plan = part.engine.on_fill(sector, &mut self.backing);

        // All of a fill's DRAM requests book bus bandwidth at issue time;
        // dependence chains (counter → tree levels, deferred MAC) extend
        // the fill's *latency* only. Bandwidth contention stays exact while
        // latency — which the warp pool hides — is approximated, keeping
        // the simulator in the paper's bandwidth-bound regime.
        let data_done = part.dram.access(now, sector.raw(), SECTOR_SIZE as u32);
        book_traffic(
            &mut self.stats,
            &self.simtel,
            TrafficClass::Data,
            SECTOR_SIZE,
            false,
        );

        let mut ready = data_done;
        let serial = self.cfg.serial_metadata_chains;
        for chain in &plan.pre_chains {
            let mut t = now;
            for (i, req) in chain.iter().enumerate() {
                let done = part.dram.access(now, req.addr, req.bytes);
                if serial && i > 0 {
                    t += part.dram.unloaded_latency(req.bytes);
                } else {
                    t = t.max(done);
                }
                book_traffic(
                    &mut self.stats,
                    &self.simtel,
                    req.class,
                    req.bytes as u64,
                    false,
                );
            }
            ready = ready.max(t);
        }
        ready += plan.crypto_latency;
        if !plan.post_chain.is_empty() || plan.post_latency > 0 {
            for req in &plan.post_chain {
                part.dram.access(now, req.addr, req.bytes);
                ready += part.dram.unloaded_latency(req.bytes);
                book_traffic(
                    &mut self.stats,
                    &self.simtel,
                    req.class,
                    req.bytes as u64,
                    false,
                );
            }
            ready += plan.post_latency;
        }
        for req in &plan.async_reads {
            let done = part.dram.access(now, req.addr, req.bytes);
            self.horizon = self.horizon.max(done);
            book_traffic(
                &mut self.stats,
                &self.simtel,
                req.class,
                req.bytes as u64,
                false,
            );
        }
        for req in &plan.writes {
            let done = part.dram.access(now, req.addr, req.bytes);
            self.horizon = self.horizon.max(done);
            book_traffic(
                &mut self.stats,
                &self.simtel,
                req.class,
                req.bytes as u64,
                true,
            );
        }
        let latency = ready.saturating_sub(now);
        if let Some(v) = plan.violation {
            self.record_violation(now, v, latency);
        }
        if !self.armed.is_empty() {
            self.resolve_armed(sector, |armed| match plan.violation {
                Some(v) => FaultOutcome::Detected {
                    layer: v.layer(),
                    latency: ready.saturating_sub(armed.cycle),
                },
                None => FaultOutcome::Escaped {
                    value_verified: plan.verified_by_value,
                },
            });
        }
        self.stats.fill_latency_sum += latency;
        self.stats.fill_count += 1;
        self.simtel.fill_latency.record(latency);
        self.horizon = self.horizon.max(ready);
        (ready, plan.plaintext)
    }

    fn handle_evictions(&mut self, now: u64, p_idx: usize, evicted: &[EvictedSector]) {
        for ev in evicted {
            let sector = SectorAddr::new(ev.addr);
            let data = ev.data.unwrap_or([0; 32]);
            self.writeback(now, p_idx, sector, &data);
        }
    }

    fn writeback(&mut self, now: u64, p_idx: usize, sector: SectorAddr, data: &[u8; 32]) {
        let part = &mut self.partitions[p_idx];
        let plan = part.engine.on_writeback(sector, data, &mut self.backing);
        let serial = self.cfg.serial_metadata_chains;
        let mut meta_ready = now;
        for chain in &plan.pre_chains {
            let mut t = now;
            for (i, req) in chain.iter().enumerate() {
                let done = part.dram.access(now, req.addr, req.bytes);
                if serial && i > 0 {
                    t += part.dram.unloaded_latency(req.bytes);
                } else {
                    t = t.max(done);
                }
                book_traffic(
                    &mut self.stats,
                    &self.simtel,
                    req.class,
                    req.bytes as u64,
                    false,
                );
            }
            meta_ready = meta_ready.max(t);
        }
        for req in &plan.async_reads {
            let done = part.dram.access(now, req.addr, req.bytes);
            self.horizon = self.horizon.max(done);
            book_traffic(
                &mut self.stats,
                &self.simtel,
                req.class,
                req.bytes as u64,
                false,
            );
        }
        // The encrypted data and metadata writes drain from the write
        // buffer; their bandwidth is booked immediately, and the pipeline
        // latency (crypto) only extends the horizon.
        let done = part.dram.access(now, sector.raw(), SECTOR_SIZE as u32);
        self.horizon = self.horizon.max(done.max(meta_ready) + plan.crypto_latency);
        book_traffic(
            &mut self.stats,
            &self.simtel,
            TrafficClass::Data,
            SECTOR_SIZE,
            true,
        );
        for req in &plan.writes {
            let done = part.dram.access(now, req.addr, req.bytes);
            self.horizon = self.horizon.max(done);
            book_traffic(
                &mut self.stats,
                &self.simtel,
                req.class,
                req.bytes as u64,
                true,
            );
        }
        if let Some(v) = plan.violation {
            self.record_violation(now, v, 0);
        }
        if !self.armed.is_empty() {
            // A writeback either trips verification (metadata fetched for
            // the read-modify-write fails) or overwrites the faulted state
            // with fresh ciphertext and metadata before any verification
            // saw it.
            self.resolve_armed(sector, |armed| match plan.violation {
                Some(v) => FaultOutcome::Detected {
                    layer: v.layer(),
                    latency: now.saturating_sub(armed.cycle),
                },
                None => FaultOutcome::Clobbered,
            });
        }
    }

    fn flush_l2(&mut self) {
        let now = self.horizon;
        for p_idx in 0..self.partitions.len() {
            for bank in 0..self.partitions[p_idx].l2.len() {
                let flushed = self.partitions[p_idx].l2[bank].flush_dirty();
                self.handle_evictions(now, p_idx, &flushed);
            }
        }
    }
}

impl Simulator {
    /// Aggregate L2 hit/miss counts across all banks and partitions.
    pub fn l2_hit_stats(&self) -> (u64, u64) {
        let mut hits = 0;
        let mut misses = 0;
        for p in &self.partitions {
            for bank in &p.l2 {
                let (h, m) = bank.hit_stats();
                hits += h;
                misses += m;
            }
        }
        (hits, misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::security::NoSecurityEngine;
    use plutus_telemetry::{CycleClock, Telemetry};

    fn read_trace(n: u64, stride: u64) -> Trace {
        let mut t = Trace::new("reads");
        for i in 0..n {
            t.push_read(SectorAddr::new(i * stride), 2, 10);
        }
        t
    }

    #[test]
    fn all_reads_complete() {
        let trace = read_trace(200, 32);
        let mut sim = Simulator::new(GpuConfig::test_small(), trace, &NoSecurityEngine::factory());
        let r = sim.run();
        assert_eq!(r.stats.accesses, 200);
        assert_eq!(r.stats.instructions, 2000);
        assert!(r.stats.cycles > 0);
        assert_eq!(r.stats.violations, 0);
    }

    #[test]
    fn repeated_reads_hit_in_l2() {
        let mut trace = Trace::new("rehit");
        for _ in 0..4 {
            for i in 0..16u64 {
                trace.push_read(SectorAddr::new(i * 32), 1, 1);
            }
        }
        let mut sim = Simulator::new(GpuConfig::test_small(), trace, &NoSecurityEngine::factory());
        let r = sim.run();
        // 16 distinct sectors: ≥ one miss each, everything else hits or
        // merges.
        assert!(r.stats.l2_misses >= 16);
        assert!(r.stats.l2_hits + r.stats.mshr_merges >= 3 * 16);
        // DRAM data read traffic = misses × 32B.
        assert_eq!(
            r.stats.traffic[TrafficClass::Data.idx()].read_bytes,
            r.stats.l2_misses * 32
        );
    }

    #[test]
    fn writes_produce_writeback_traffic_on_eviction() {
        // Write far more sectors than the small L2 holds, forcing dirty
        // evictions.
        let mut trace = Trace::new("writes");
        for i in 0..4096u64 {
            trace.push_write(SectorAddr::new(i * 32), [i as u8; 32], 1, 1);
        }
        let mut sim = Simulator::new(GpuConfig::test_small(), trace, &NoSecurityEngine::factory());
        let r = sim.run();
        assert_eq!(r.stats.write_accesses, 4096);
        assert!(
            r.stats.traffic[TrafficClass::Data.idx()].write_bytes > 0,
            "expected dirty evictions to reach DRAM"
        );
    }

    #[test]
    fn written_data_reaches_backing_memory_after_flush() {
        let mut trace = Trace::new("wb");
        trace.push_write(SectorAddr::new(0x40), [0xcd; 32], 0, 1);
        let mut cfg = GpuConfig::test_small();
        cfg.flush_l2_at_end = true;
        let mut sim = Simulator::new(cfg, trace, &NoSecurityEngine::factory());
        sim.run();
        assert_eq!(sim.backing().read(SectorAddr::new(0x40)), Some([0xcd; 32]));
    }

    #[test]
    fn initial_image_is_readable() {
        let mut trace = Trace::new("init");
        trace.set_initial(SectorAddr::new(0x80), [7; 32]);
        trace.push_read(SectorAddr::new(0x80), 0, 1);
        let mut sim = Simulator::new(GpuConfig::test_small(), trace, &NoSecurityEngine::factory());
        let r = sim.run();
        assert_eq!(r.stats.accesses, 1);
        // The fill read the installed image functionally.
        assert_eq!(sim.backing().read(SectorAddr::new(0x80)), Some([7; 32]));
    }

    #[test]
    fn mshr_merges_coalesce_same_sector_reads() {
        let mut trace = Trace::new("merge");
        for _ in 0..32 {
            trace.push_read(SectorAddr::new(0x100), 0, 1);
        }
        let mut sim = Simulator::new(GpuConfig::test_small(), trace, &NoSecurityEngine::factory());
        let r = sim.run();
        assert_eq!(r.stats.accesses, 32);
        // One miss; the rest merge or hit after fill.
        assert_eq!(r.stats.l2_misses, 1);
        assert!(r.stats.mshr_merges > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let trace = read_trace(500, 96);
            let mut sim =
                Simulator::new(GpuConfig::test_small(), trace, &NoSecurityEngine::factory());
            let r = sim.run();
            (r.stats.cycles, r.stats.l2_hits, r.stats.total_bytes())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn trace_shorter_than_warp_pool_completes() {
        let mut trace = Trace::new("tiny");
        trace.push_read(SectorAddr::new(0), 0, 5);
        trace.push_write(SectorAddr::new(32), [1; 32], 0, 5);
        let mut sim = Simulator::new(GpuConfig::test_small(), trace, &NoSecurityEngine::factory());
        let r = sim.run();
        assert_eq!(r.stats.accesses, 2);
        assert_eq!(r.stats.instructions, 10);
    }

    #[test]
    fn write_while_read_pending_is_not_clobbered_by_fill() {
        // A read miss to sector S followed immediately by a write to S:
        // when the (stale) fill completes it must not overwrite the newer
        // store, and the final flush must carry the written value.
        let mut trace = Trace::new("raw-hazard");
        trace.set_initial(SectorAddr::new(0x40), [7; 32]);
        trace.push_read(SectorAddr::new(0x40), 0, 1);
        trace.push_write(SectorAddr::new(0x40), [9; 32], 0, 1);
        let mut cfg = GpuConfig::test_small();
        cfg.warps = 2; // read and write issue concurrently
        cfg.flush_l2_at_end = true;
        let mut sim = Simulator::new(cfg, trace, &NoSecurityEngine::factory());
        sim.run();
        assert_eq!(
            sim.backing().read(SectorAddr::new(0x40)),
            Some([9; 32]),
            "fill must not clobber a newer store"
        );
    }

    #[test]
    fn empty_trace_is_harmless() {
        let mut sim = Simulator::new(
            GpuConfig::test_small(),
            Trace::new("empty"),
            &NoSecurityEngine::factory(),
        );
        let r = sim.run();
        assert_eq!(r.stats.accesses, 0);
    }

    #[test]
    fn mshr_pressure_queues_instead_of_losing_accesses() {
        let mut cfg = GpuConfig::test_small();
        cfg.mshrs_per_partition = 2;
        cfg.warps = 64;
        let trace = read_trace(400, 32);
        let mut sim = Simulator::new(cfg, trace, &NoSecurityEngine::factory());
        let r = sim.run();
        assert_eq!(r.stats.accesses, 400, "queued accesses must all complete");
        assert!(r.stats.mshr_stalls > 0, "tiny MSHR must actually saturate");
    }

    #[test]
    fn telemetry_mirrors_stats_and_rolls_epochs() {
        let tel = Telemetry::with_clock(std::sync::Arc::new(CycleClock::new()));
        let trace = read_trace(400, 32);
        let mut sim = Simulator::with_telemetry(
            GpuConfig::test_small(),
            trace,
            &NoSecurityEngine::factory(),
            tel.clone(),
        );
        sim.set_epoch_interval(50);
        let r = sim.run();
        let snap = tel.snapshot();
        assert_eq!(
            snap.counter("traffic.data.read_bytes"),
            Some(r.stats.traffic[TrafficClass::Data.idx()].read_bytes)
        );
        assert_eq!(snap.counter("l2.hits"), Some(r.stats.l2_hits));
        assert_eq!(snap.counter("l2.misses"), Some(r.stats.l2_misses));
        assert_eq!(snap.counter("violations"), Some(0));
        let (row_hits, row_misses) = (
            snap.counter("dram.row_hits"),
            snap.counter("dram.row_misses"),
        );
        assert_eq!(
            row_hits.unwrap() + row_misses.unwrap(),
            r.stats
                .traffic
                .iter()
                .map(|t| t.read_reqs + t.write_reqs)
                .sum::<u64>()
        );
        // Fill-latency histogram observed every fill.
        let hist = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "fill.latency_cycles")
            .map(|(_, h)| h.clone())
            .expect("fill latency histogram registered");
        assert_eq!(hist.count, r.stats.fill_count);
        assert_eq!(hist.sum, r.stats.fill_latency_sum);
        // 400 misses over hundreds of cycles at a 50-cycle interval must
        // close multiple epochs, and their deltas chain contiguously.
        let epochs = tel.epochs();
        assert!(
            epochs.len() >= 2,
            "expected >=2 epochs, got {}",
            epochs.len()
        );
        for w in epochs.windows(2) {
            assert_eq!(w[1].start_time, w[0].end_time);
        }
    }

    #[test]
    fn disabled_telemetry_changes_nothing() {
        let run = |tel: Telemetry| {
            let mut sim = Simulator::with_telemetry(
                GpuConfig::test_small(),
                read_trace(300, 64),
                &NoSecurityEngine::factory(),
                tel,
            );
            let r = sim.run();
            (r.stats.cycles, r.stats.total_bytes(), r.stats.l2_hits)
        };
        assert_eq!(run(Telemetry::disabled()), run(Telemetry::new()));
    }

    #[test]
    fn more_warps_do_not_change_work_done() {
        let mut cfg_few = GpuConfig::test_small();
        cfg_few.warps = 2;
        let mut cfg_many = GpuConfig::test_small();
        cfg_many.warps = 64;
        let r1 = Simulator::new(cfg_few, read_trace(300, 32), &NoSecurityEngine::factory()).run();
        let r2 = Simulator::new(cfg_many, read_trace(300, 32), &NoSecurityEngine::factory()).run();
        assert_eq!(r1.stats.accesses, r2.stats.accesses);
        // More parallelism should not slow things down.
        assert!(r2.stats.cycles <= r1.stats.cycles);
    }
}
