//! Functional backing store for simulated device memory.
//!
//! The store holds whatever bytes the active security engine writes —
//! ciphertext for encrypting engines, plaintext for the no-security
//! baseline. Sectors never written read back as `None`; engines interpret
//! that as an all-zero plaintext sector with a zero write counter, matching
//! zero-initialized device memory.
//!
//! The store doubles as the *attack surface*: [`BackingMemory::corrupt`]
//! and [`BackingMemory::replay`] model the physical attacker of the paper's
//! threat model, and integration tests drive detection through them.

use crate::address::{SectorAddr, SECTOR_SIZE};
use std::collections::HashMap;

/// Sparse functional memory, sector granularity.
#[derive(Debug, Default, Clone)]
pub struct BackingMemory {
    sectors: HashMap<u64, [u8; SECTOR_SIZE as usize]>,
}

impl BackingMemory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a sector, or `None` if it was never written.
    pub fn read(&self, addr: SectorAddr) -> Option<[u8; 32]> {
        self.sectors.get(&addr.raw()).copied()
    }

    /// Writes a sector.
    pub fn write(&mut self, addr: SectorAddr, data: [u8; 32]) {
        self.sectors.insert(addr.raw(), data);
    }

    /// Number of distinct sectors ever written.
    pub fn resident_sectors(&self) -> usize {
        self.sectors.len()
    }

    /// Addresses of every resident sector, sorted for deterministic
    /// iteration (the map itself is unordered). Crash recovery walks this
    /// to rebuild metadata for exactly the data that reached DRAM.
    pub fn resident_addrs(&self) -> Vec<SectorAddr> {
        let mut addrs: Vec<SectorAddr> = self.sectors.keys().map(|&a| SectorAddr::new(a)).collect();
        addrs.sort_by_key(|a| a.raw());
        addrs
    }

    /// Physical attack: XORs `mask` into the stored bytes of `addr`.
    ///
    /// Returns `false` (and does nothing) if the sector is not resident —
    /// an attacker can only flip bits in bytes that exist.
    pub fn corrupt(&mut self, addr: SectorAddr, mask: &[u8; 32]) -> bool {
        match self.sectors.get_mut(&addr.raw()) {
            Some(data) => {
                for (b, m) in data.iter_mut().zip(mask.iter()) {
                    *b ^= m;
                }
                true
            }
            None => false,
        }
    }

    /// Physical attack: captures the current bytes of `addr` for later
    /// replay. Returns `None` if not resident.
    pub fn snapshot(&self, addr: SectorAddr) -> Option<[u8; 32]> {
        self.read(addr)
    }

    /// Physical attack: restores previously captured bytes (a replay).
    ///
    /// Returns `false` (and does nothing) if the sector is not resident —
    /// like [`BackingMemory::corrupt`], a physical attacker can overwrite
    /// bytes that exist but cannot materialize sectors the program never
    /// wrote.
    pub fn replay(&mut self, addr: SectorAddr, old: [u8; 32]) -> bool {
        match self.sectors.get_mut(&addr.raw()) {
            Some(data) => {
                *data = old;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_back_what_was_written() {
        let mut m = BackingMemory::new();
        let a = SectorAddr::new(0x40);
        assert_eq!(m.read(a), None);
        m.write(a, [9; 32]);
        assert_eq!(m.read(a), Some([9; 32]));
        assert_eq!(m.resident_sectors(), 1);
    }

    #[test]
    fn corrupt_flips_exactly_masked_bits() {
        let mut m = BackingMemory::new();
        let a = SectorAddr::new(0x40);
        m.write(a, [0xff; 32]);
        let mut mask = [0u8; 32];
        mask[5] = 0x0f;
        assert!(m.corrupt(a, &mask));
        let got = m.read(a).unwrap();
        assert_eq!(got[5], 0xf0);
        assert_eq!(got[4], 0xff);
    }

    #[test]
    fn resident_addrs_are_sorted() {
        let mut m = BackingMemory::new();
        m.write(SectorAddr::new(0xc0), [1; 32]);
        m.write(SectorAddr::new(0x40), [2; 32]);
        m.write(SectorAddr::new(0x80), [3; 32]);
        let addrs: Vec<u64> = m.resident_addrs().iter().map(|a| a.raw()).collect();
        assert_eq!(addrs, vec![0x40, 0x80, 0xc0]);
    }

    #[test]
    fn corrupt_missing_sector_is_noop() {
        let mut m = BackingMemory::new();
        assert!(!m.corrupt(SectorAddr::new(0), &[1; 32]));
    }

    #[test]
    fn snapshot_replay_roundtrip() {
        let mut m = BackingMemory::new();
        let a = SectorAddr::new(0x80);
        m.write(a, [1; 32]);
        let old = m.snapshot(a).unwrap();
        m.write(a, [2; 32]);
        assert!(m.replay(a, old));
        assert_eq!(m.read(a), Some([1; 32]));
    }

    #[test]
    fn replay_missing_sector_is_rejected() {
        // Regression: replay used to call `write` unconditionally, letting
        // an "attacker" materialize sectors the program never wrote.
        let mut m = BackingMemory::new();
        assert!(!m.replay(SectorAddr::new(0x100), [7; 32]));
        assert_eq!(m.read(SectorAddr::new(0x100)), None);
        assert_eq!(m.resident_sectors(), 0);
    }
}
