//! Property-style tests for the simulator substrate, run over many seeded
//! random inputs: the sectored cache is checked against a reference model,
//! the DRAM channel against its throughput/latency contracts, and
//! [`SimStats`] against its aggregation invariants.

use gpu_sim::cache::SectoredCache;
use gpu_sim::dram::DramChannel;
use gpu_sim::{partition_of, BlockAddr, DramConfig, SectorAddr, SimStats, TrafficClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

const SEEDS: u64 = 32;

#[derive(Debug, Clone)]
enum CacheOp {
    Read(u64),
    Write(u64, u8),
}

fn cache_ops(rng: &mut StdRng) -> Vec<CacheOp> {
    let n = rng.gen_range(1..300);
    (0..n)
        .map(|_| {
            let addr = rng.gen_range(0u64..256) * 32;
            if rng.gen_bool(0.5) {
                CacheOp::Read(addr)
            } else {
                CacheOp::Write(addr, rng.gen::<u8>())
            }
        })
        .collect()
}

/// Write-back correctness: every byte the cache ever returns (via eviction
/// or final flush) matches the last value written there.
#[test]
fn cache_is_a_faithful_writeback_store() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let ops = cache_ops(&mut rng);
        let mut cache = SectoredCache::new(2048, 4, 128, true);
        let mut reference: HashMap<u64, [u8; 32]> = HashMap::new();
        let mut evictions: Vec<(u64, Option<[u8; 32]>, [u8; 32])> = Vec::new();
        for op in &ops {
            let out = match *op {
                CacheOp::Read(addr) => cache.access(addr, false, None),
                CacheOp::Write(addr, v) => {
                    let data = [v; 32];
                    let out = cache.access(addr, true, Some(data));
                    reference.insert(addr, data);
                    out
                }
            };
            for ev in out.evicted {
                let expected = reference.get(&ev.addr).copied().unwrap_or([0; 32]);
                evictions.push((ev.addr, ev.data, expected));
            }
        }
        for ev in cache.flush_dirty() {
            let expected = reference.get(&ev.addr).copied().unwrap_or([0; 32]);
            evictions.push((ev.addr, ev.data, expected));
        }
        for (addr, data, expected) in evictions {
            if let Some(d) = data {
                assert_eq!(d, expected, "stale eviction at {addr:#x} (seed {seed})");
            }
        }
    }
}

/// A probe after an access to the same sector always hits until an
/// intervening eviction; stats never decrease.
#[test]
fn cache_probe_agrees_with_access() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1..100);
        let addrs: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..64)).collect();
        let mut cache = SectoredCache::new(4096, 4, 128, false);
        for &a in &addrs {
            let addr = a * 32;
            cache.access(addr, false, None);
            // 4 KiB cache, 64 sectors ≤ capacity: nothing evicts, so the
            // sector must be present.
            assert!(cache.probe(addr), "probe miss after access (seed {seed})");
        }
        let (hits, misses) = cache.hit_stats();
        assert_eq!(hits + misses, addrs.len() as u64);
    }
}

/// DRAM completions respect arrival time plus minimum service, and a dense
/// batch never exceeds the configured bandwidth.
#[test]
fn dram_respects_time_and_bandwidth() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1..200);
        let cfg = DramConfig::default();
        let bpc = cfg.bytes_per_cycle;
        let mut d = DramChannel::new(cfg);
        let mut last_done = 0u64;
        let mut total = 0u64;
        for now in 0..n as u64 {
            let addr = u64::from(rng.gen::<u16>()) * 32;
            let bytes = if rng.gen_bool(0.5) { 32u32 } else { 128u32 };
            let done = d.access(now, addr, bytes);
            assert!(done >= now, "completion before arrival (seed {seed})");
            total += u64::from(bytes);
            last_done = last_done.max(done);
        }
        // Bandwidth cap: the whole batch cannot finish faster than the bus
        // can move its bytes.
        assert!((last_done as f64) + 1e-9 >= total as f64 / bpc);
        assert_eq!(d.bytes_transferred(), total);
    }
}

/// Address arithmetic invariants.
#[test]
fn address_roundtrips() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..4096 {
        let addr = rng.gen::<u64>();
        let s = SectorAddr::containing(addr);
        assert!(s.raw() <= addr);
        assert!(addr - s.raw() < 32);
        assert_eq!(s.block().sector(s.sector_in_block()).raw(), s.raw());
        let p = partition_of(s.block(), 32);
        assert!(p < 32);
        assert_eq!(p, partition_of(BlockAddr::containing(addr), 32));
    }
}

/// `total_bytes` is exactly the sum of the per-class byte totals, and
/// `metadata_bytes` counts exactly the classes flagged `is_metadata`, no
/// matter what mix of transfers is recorded.
#[test]
fn stats_totals_decompose_by_class() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = SimStats::default();
        let n = rng.gen_range(0..500);
        for _ in 0..n {
            let class = TrafficClass::ALL[rng.gen_range(0..TrafficClass::ALL.len())];
            let bytes = 32 * rng.gen_range(1u64..5);
            s.record_traffic(class, bytes, rng.gen_bool(0.4));
        }
        let by_class: u64 = TrafficClass::ALL.iter().map(|&c| s.class_bytes(c)).sum();
        assert_eq!(s.total_bytes(), by_class, "seed {seed}");
        let metadata: u64 = TrafficClass::ALL
            .iter()
            .filter(|c| c.is_metadata())
            .map(|&c| s.class_bytes(c))
            .sum();
        assert_eq!(s.metadata_bytes(), metadata, "seed {seed}");
        assert_eq!(
            s.total_bytes(),
            s.metadata_bytes() + s.class_bytes(TrafficClass::Data),
            "metadata must be everything except Data (seed {seed})"
        );
    }
}

/// Requests and bytes recorded per class agree in direction: read requests
/// move read bytes only, write requests write bytes only.
#[test]
fn stats_directions_are_independent() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut s = SimStats::default();
    let mut reads = 0u64;
    let mut writes = 0u64;
    for _ in 0..300 {
        let class = TrafficClass::ALL[rng.gen_range(0..TrafficClass::ALL.len())];
        let is_write = rng.gen_bool(0.5);
        s.record_traffic(class, 32, is_write);
        if is_write {
            writes += 32;
        } else {
            reads += 32;
        }
    }
    let read_total: u64 = s.traffic.iter().map(|t| t.read_bytes).sum();
    let write_total: u64 = s.traffic.iter().map(|t| t.write_bytes).sum();
    assert_eq!(read_total, reads);
    assert_eq!(write_total, writes);
    assert_eq!(s.total_bytes(), reads + writes);
}
