//! Property-based tests for the simulator substrate: the sectored cache is
//! checked against a reference model, and the DRAM channel against its
//! throughput/latency contracts.

use gpu_sim::cache::SectoredCache;
use gpu_sim::dram::DramChannel;
use gpu_sim::{partition_of, BlockAddr, DramConfig, SectorAddr};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum CacheOp {
    Read(u64),
    Write(u64, u8),
}

fn cache_ops() -> impl Strategy<Value = Vec<CacheOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..256).prop_map(|s| CacheOp::Read(s * 32)),
            ((0u64..256), any::<u8>()).prop_map(|(s, v)| CacheOp::Write(s * 32, v)),
        ],
        1..300,
    )
}

proptest! {
    /// Write-back correctness: every byte the cache ever returns (via
    /// eviction or final flush) matches the last value written there.
    #[test]
    fn cache_is_a_faithful_writeback_store(ops in cache_ops()) {
        let mut cache = SectoredCache::new(2048, 4, 128, true);
        let mut reference: HashMap<u64, [u8; 32]> = HashMap::new();
        let mut evictions: Vec<(u64, Option<[u8; 32]>, [u8; 32])> = Vec::new();
        for op in &ops {
            let (addr, out) = match *op {
                CacheOp::Read(addr) => (addr, cache.access(addr, false, None)),
                CacheOp::Write(addr, v) => {
                    let data = [v; 32];
                    let out = cache.access(addr, true, Some(data));
                    reference.insert(addr, data);
                    (addr, out)
                }
            };
            let _ = addr;
            for ev in out.evicted {
                let expected = reference.get(&ev.addr).copied().unwrap_or([0; 32]);
                evictions.push((ev.addr, ev.data, expected));
            }
        }
        for ev in cache.flush_dirty() {
            let expected = reference.get(&ev.addr).copied().unwrap_or([0; 32]);
            evictions.push((ev.addr, ev.data, expected));
        }
        for (addr, data, expected) in evictions {
            if let Some(d) = data {
                prop_assert_eq!(d, expected, "stale eviction at {:#x}", addr);
            }
        }
    }

    /// A probe after an access to the same sector always hits until an
    /// intervening eviction; stats never decrease.
    #[test]
    fn cache_probe_agrees_with_access(addrs in proptest::collection::vec(0u64..64, 1..100)) {
        let mut cache = SectoredCache::new(4096, 4, 128, false);
        for &a in &addrs {
            let addr = a * 32;
            cache.access(addr, false, None);
            // 4 KiB cache, 64 sectors ≤ capacity: nothing evicts, so the
            // sector must be present.
            prop_assert!(cache.probe(addr));
        }
        let (hits, misses) = cache.hit_stats();
        prop_assert_eq!(hits + misses, addrs.len() as u64);
    }

    /// DRAM completions respect arrival time plus minimum service, and a
    /// dense batch never exceeds the configured bandwidth.
    #[test]
    fn dram_respects_time_and_bandwidth(
        reqs in proptest::collection::vec((any::<u16>(), prop_oneof![Just(32u32), Just(128u32)]), 1..200)
    ) {
        let cfg = DramConfig::default();
        let bpc = cfg.bytes_per_cycle;
        let mut d = DramChannel::new(cfg);
        let mut now = 0u64;
        let mut last_done = 0u64;
        let mut total = 0u64;
        for (addr, bytes) in reqs {
            let done = d.access(now, u64::from(addr) * 32, bytes);
            prop_assert!(done >= now, "completion before arrival");
            total += u64::from(bytes);
            last_done = last_done.max(done);
            now += 1;
        }
        // Bandwidth cap: the whole batch cannot finish faster than the bus
        // can move its bytes.
        prop_assert!((last_done as f64) + 1e-9 >= total as f64 / bpc);
        prop_assert_eq!(d.bytes_transferred(), total);
    }

    /// Address arithmetic invariants.
    #[test]
    fn address_roundtrips(addr in any::<u64>()) {
        let s = SectorAddr::containing(addr);
        prop_assert!(s.raw() <= addr);
        prop_assert!(addr - s.raw() < 32);
        prop_assert_eq!(s.block().sector(s.sector_in_block()).raw(), s.raw());
        let p = partition_of(s.block(), 32);
        prop_assert!(p < 32);
        prop_assert_eq!(p, partition_of(BlockAddr::containing(addr), 32));
    }
}
