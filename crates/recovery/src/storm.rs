//! The multi-tenant overflow-storm / soak chaos campaign.
//!
//! One adversarial tenant and several victim tenants share the GPU: the
//! adversary hammers a tiny sector set with locality-free writes (a
//! counter-group overflow storm, `workloads::overflow_storm_trace`) and
//! fires tamper/replay/metadata faults at its *own* slab, while a live
//! key rotation of a victim tenant walks underneath and — in the crash
//! phase — the whole machine is kill-9'd mid-walk and recovered.
//!
//! Continuous invariant monitors turn the chaos into a pass/fail gate
//! ([`storm_gate`]):
//!
//! - **isolation** — victims record zero violations and zero degradation-
//!   ladder transitions, no matter what the adversary does;
//! - **backpressure** — every victim's per-tenant IPC stays within a
//!   configured tolerance of an honest-company baseline (the adversary
//!   slot replaced by an equal-volume neutral workload);
//! - **conservation** — the per-partition cycle ledger still sums to the
//!   run length;
//! - **Eq. 1** — the measured value-verification forgery-acceptance
//!   rate stays at or below the paper's analytic binomial bound;
//! - **rotation** — the walk completes under fire, and a crash-kill in
//!   the middle of it recovers bit-identical plaintext under the
//!   post-rotation key schedule.
//!
//! The soak variant additionally pours seeded benign soft errors over
//! the same storm (no transient may escalate into a recorded violation)
//! and probes more crash points.

use crate::SchemeProvider;
use gpu_sim::{
    AccessKind, EngineFactory, FaultKind, FaultOutcome, FaultSchedule, FaultTrigger, GpuConfig,
    MetaFault, RetryPolicy, ScheduledFault, SectorAddr, SimStats, Simulator, TenantMap, Trace,
    TransientConfig,
};
use plutus_core::binomial::{
    binomial_tail, plutus_min_hits, tamper_hit_probability, VALUES_PER_UNIT,
};
use plutus_core::{PlutusConfig, PlutusEngine, ValueCacheConfig};
use plutus_exec::{expect_all, Executor, Job};
use plutus_telemetry::Json;
use secure_mem::{CommonCountersEngine, PssmEngine, SecureMemConfig, TenancyConfig};
use std::collections::BTreeMap;
use workloads::{
    generate, multi_tenant_trace, overflow_storm_trace, GenParams, Pattern, ValueProfile,
};

/// The adversary's tenant id (slot 0 of the composed trace).
pub const ADVERSARY: u32 = 1;
/// First victim tenant id; victims are numbered consecutively from it.
pub const FIRST_VICTIM: u32 = 2;

/// Parameters of a storm/soak campaign.
#[derive(Debug, Clone, Copy)]
pub struct StormCampaignConfig {
    /// Master seed: trace generation, fault placement, key derivation.
    pub seed: u64,
    /// Victim tenants co-resident with the adversary (≥ 1; the
    /// acceptance configuration uses 3).
    pub victims: usize,
    /// Accesses each tenant issues.
    pub accesses_per_tenant: usize,
    /// Bytes of protected memory per tenant slab (4 KiB-aligned).
    pub slab_bytes: u64,
    /// Metadata checkpoint cadence for the crash phase.
    pub checkpoint_cycles: u64,
    /// Adversarial tamper/replay/metadata faults fired during the storm.
    pub faults: usize,
    /// Mid-rotation crash-kills probed per scheme.
    pub crash_points: usize,
    /// Victim IPC must stay ≥ `1 - ipc_tolerance` of its honest
    /// baseline.
    pub ipc_tolerance: f64,
    /// Run the soak extension: seeded soft errors over the storm plus
    /// the transient-escalation monitor.
    pub soak: bool,
    /// Soft-error probability per DRAM transfer in the soak phase.
    pub soft_error_rate: f64,
    /// Bounded re-fetch attempts for the soak phase.
    pub retry_limit: u32,
    /// Deliberately fault a victim's slab during the storm — an
    /// injected isolation breach that must make [`storm_gate`] fail
    /// (used to prove the monitors are live).
    pub inject_breach: bool,
}

impl StormCampaignConfig {
    /// The default storm campaign: 3 victims, one adversary, a
    /// mid-storm key rotation, and 2 mid-rotation crash-kills.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            victims: 3,
            accesses_per_tenant: 2500,
            slab_bytes: 0x10000,
            checkpoint_cycles: 2000,
            faults: 24,
            crash_points: 2,
            ipc_tolerance: 0.25,
            soak: false,
            soft_error_rate: 5e-5,
            retry_limit: 3,
            inject_breach: false,
        }
    }

    /// The soak campaign: the storm plus soft errors and more crash
    /// points.
    pub fn soak(seed: u64) -> Self {
        Self {
            soak: true,
            crash_points: 4,
            ..Self::new(seed)
        }
    }

    fn victim_ids(&self) -> Vec<u32> {
        (0..self.victims as u32).map(|v| FIRST_VICTIM + v).collect()
    }
}

/// One monitored phase of the campaign for one scheme.
#[derive(Debug, Clone)]
pub struct StormRow {
    /// Scheme label.
    pub scheme: String,
    /// `baseline`, `storm`, `soak`, or `rotation@<cycle>`.
    pub phase: String,
    /// Run length in cycles.
    pub cycles: u64,
    /// Per-victim `(tenant, ipc)` for this run.
    pub victim_ipc: Vec<(u32, f64)>,
    /// Worst victim IPC relative to the honest baseline (1.0 for the
    /// baseline itself and for phases without an IPC monitor).
    pub min_ipc_ratio: f64,
    /// Violations recorded against victim addresses.
    pub victim_violations: u64,
    /// Victim tenants the degradation ladder froze.
    pub victim_frozen: u64,
    /// Violations recorded against the adversary's addresses.
    pub adversary_violations: u64,
    /// Whether every partition's cycle ledger summed to the run length.
    pub ledger_conserved: bool,
    /// Overflow re-encryptions the per-tenant storm gate rate-limited.
    pub storm_suppressed: u64,
    /// DRAM requests the storm gate deferred onto the offender.
    pub storm_deferred: u64,
    /// Key-rotation walks completed during the run.
    pub rotations_completed: u64,
    /// Sectors re-encrypted by rotation walks.
    pub rotated_sectors: u64,
    /// Scheduled faults a verification layer ruled on.
    pub faults_adjudicated: u64,
    /// Value-verification forgery acceptances among them (Eq. 1).
    pub forgeries: u64,
    /// Whether the measured forgery rate respects the analytic bound.
    pub eq1_ok: bool,
    /// Benign transients misclassified as attacks (soak phase).
    pub transients_escalated: u64,
    /// Sectors audited after the mid-rotation crash recovery.
    pub rotation_audited: u64,
    /// Audited sectors whose post-recovery plaintext diverged.
    pub rotation_mismatches: u64,
    /// Post-recovery fills that flagged honest data.
    pub rotation_spurious: u64,
    /// Sectors recovery could not reconstruct.
    pub rotation_failed: u64,
    /// Machinery error, if the phase could not run.
    pub error: Option<String>,
}

impl StormRow {
    fn new(scheme: &str, phase: impl Into<String>) -> Self {
        Self {
            scheme: scheme.to_string(),
            phase: phase.into(),
            cycles: 0,
            victim_ipc: Vec::new(),
            min_ipc_ratio: 1.0,
            victim_violations: 0,
            victim_frozen: 0,
            adversary_violations: 0,
            ledger_conserved: true,
            storm_suppressed: 0,
            storm_deferred: 0,
            rotations_completed: 0,
            rotated_sectors: 0,
            faults_adjudicated: 0,
            forgeries: 0,
            eq1_ok: true,
            transients_escalated: 0,
            rotation_audited: 0,
            rotation_mismatches: 0,
            rotation_spurious: 0,
            rotation_failed: 0,
            error: None,
        }
    }

    /// The per-row invariants ([`storm_gate`] also checks cross-row
    /// conditions): no victim violation or freeze, ledger conserved,
    /// IPC within tolerance, Eq. 1 respected, crash audits bit-identical.
    pub fn is_clean(&self, ipc_tolerance: f64) -> bool {
        self.error.is_none()
            && self.victim_violations == 0
            && self.victim_frozen == 0
            && self.ledger_conserved
            && self.min_ipc_ratio >= 1.0 - ipc_tolerance
            && self.eq1_ok
            && self.transients_escalated == 0
            && self.rotation_mismatches == 0
            && self.rotation_spurious == 0
            && self.rotation_failed == 0
    }
}

/// The three checkpoint-capable engines, with tenancy configured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StormScheme {
    Pssm,
    CommonCounters,
    Plutus,
}

const STORM_SCHEMES: [StormScheme; 3] = [
    StormScheme::Pssm,
    StormScheme::CommonCounters,
    StormScheme::Plutus,
];

impl StormScheme {
    fn label(self) -> &'static str {
        match self {
            StormScheme::Pssm => "pssm",
            StormScheme::CommonCounters => "common-counters",
            StormScheme::Plutus => "plutus",
        }
    }

    /// True for schemes whose value-verification fast path Eq. 1
    /// bounds.
    fn value_verifying(self) -> bool {
        self == StormScheme::Plutus
    }

    fn factory(self, tenancy: TenancyConfig) -> Box<dyn EngineFactory> {
        match self {
            StormScheme::Pssm => {
                let mut cfg = SecureMemConfig::pssm();
                cfg.tenancy = Some(tenancy);
                Box::new(PssmEngine::factory(cfg))
            }
            StormScheme::CommonCounters => {
                let mut cfg = SecureMemConfig::pssm();
                cfg.tenancy = Some(tenancy);
                Box::new(CommonCountersEngine::factory(cfg))
            }
            StormScheme::Plutus => {
                let mut cfg = PlutusConfig::full();
                cfg.mem.tenancy = Some(tenancy);
                Box::new(PlutusEngine::factory(cfg))
            }
        }
    }
}

/// The composed campaign inputs: both traces and the shared tenant map.
struct StormFixture {
    storm: Trace,
    honest: Trace,
    map: TenantMap,
    tenancy: TenancyConfig,
}

/// Builds one victim workload; patterns rotate by victim index so the
/// company mixes regular and irregular traffic.
fn victim_trace(cfg: &StormCampaignConfig, index: usize) -> Trace {
    let params = GenParams {
        footprint_sectors: (cfg.slab_bytes / gpu_sim::SECTOR_SIZE / 2).clamp(64, 1024),
        accesses: cfg.accesses_per_tenant,
        think_cycles: (1, 4),
        instructions: 8,
        seed: cfg.seed ^ (0x51C7 + index as u64),
    };
    let (name, pattern) = match index % 3 {
        0 => ("victim-rmw", Pattern::RandomRmw),
        1 => (
            "victim-graph",
            Pattern::Graph {
                degree: 3,
                write_permille: 150,
            },
        ),
        _ => (
            "victim-stencil",
            Pattern::Stencil {
                read_arrays: 2,
                write_period: 4,
                passes: 8,
            },
        ),
    };
    generate(
        name,
        pattern,
        params,
        ValueProfile::SmallInts { max: 100 },
        ValueProfile::Mixed {
            small_permille: 500,
            max: 100,
        },
    )
}

/// A neutral equal-volume workload standing in for the adversary in the
/// honest baseline: same access count, benign streaming behaviour.
fn neutral_trace(cfg: &StormCampaignConfig) -> Trace {
    generate(
        "neutral",
        Pattern::Stencil {
            read_arrays: 2,
            write_period: 4,
            passes: 16,
        },
        GenParams {
            footprint_sectors: (cfg.slab_bytes / gpu_sim::SECTOR_SIZE / 2).clamp(64, 1024),
            accesses: cfg.accesses_per_tenant,
            think_cycles: (1, 4),
            instructions: 8,
            seed: cfg.seed ^ 0x4EA7,
        },
        ValueProfile::SmallInts { max: 100 },
        ValueProfile::SmallInts { max: 100 },
    )
}

/// The adversary's write-hammer footprint — small enough to stay
/// cache-hot, so overflow storms are pure writeback pressure.
const HAMMER_SECTORS: u64 = 4;

/// The adversary's read-probe footprint. Probe sectors are read rarely,
/// get evicted by co-tenant thrash in between, and are re-filled on the
/// next probe — the fill path where injected tampering is adjudicated.
const PROBE_SECTORS: u64 = 64;

fn build_fixture(cfg: &StormCampaignConfig) -> StormFixture {
    assert!(cfg.victims >= 1, "storm campaign needs at least one victim");
    let adversary = overflow_storm_trace(
        "adversary",
        cfg.seed ^ 0xAD,
        HAMMER_SECTORS,
        PROBE_SECTORS,
        cfg.accesses_per_tenant,
    );
    let neutral = neutral_trace(cfg);
    let victims: Vec<Trace> = (0..cfg.victims).map(|i| victim_trace(cfg, i)).collect();

    let mut storm_slots = vec![(ADVERSARY, adversary)];
    let mut honest_slots = vec![(ADVERSARY, neutral)];
    for (i, v) in victims.into_iter().enumerate() {
        storm_slots.push((FIRST_VICTIM + i as u32, v.clone()));
        honest_slots.push((FIRST_VICTIM + i as u32, v));
    }
    let (storm, map) = multi_tenant_trace("storm", &storm_slots, cfg.slab_bytes);
    let (honest, honest_map) = multi_tenant_trace("storm-honest", &honest_slots, cfg.slab_bytes);
    assert_eq!(
        map, honest_map,
        "storm and baseline must share the slab map"
    );
    let tenancy = TenancyConfig::new(map.clone(), cfg.seed ^ 0x7E4A);
    StormFixture {
        storm,
        honest,
        map,
        tenancy,
    }
}

/// The adversary's fault barrage, spread evenly through the run's steady
/// state by access count — all aimed at the adversary's own slab:
///
/// - ciphertext corruption and MAC tamper target the *probe* region,
///   whose sectors are evicted and re-filled, so the verifier actually
///   rules on each fault (the cache-hot hammer set would leave tampered
///   DRAM unread);
/// - snapshot/replay pairs target a *hammer* sector — the classic
///   replay against a constantly-rewritten line.
///
/// With `inject_breach`, cross-tenant corruption is added on top: the
/// first victim's longest-reuse-distance reads (sectors certain to have
/// been evicted and re-filled) are each corrupted shortly before the
/// victim fetches them — the breach the isolation gate must catch as
/// victim-attributed violations.
fn adversary_faults(cfg: &StormCampaignConfig, trace: &Trace, map: &TenantMap) -> FaultSchedule {
    let total_accesses = trace.accesses.len() as u64;
    let mut schedule = FaultSchedule::new();
    let n = cfg.faults.max(1) as u64;
    if cfg.inject_breach {
        for (at, addr) in breach_targets(trace, map, (cfg.faults / 2).max(3)) {
            schedule.push(ScheduledFault {
                trigger: FaultTrigger::AtAccess(at),
                addr,
                kind: FaultKind::CorruptData { mask: [0x5A; 32] },
            });
        }
    }
    for i in 0..n {
        // Skip the first and last tenth so faults land in steady state.
        let at = (total_accesses / 10 + (total_accesses * 8 / 10) * i / n).max(1);
        let probe = SectorAddr::new((HAMMER_SECTORS + i % PROBE_SECTORS) * gpu_sim::SECTOR_SIZE);
        match i % 4 {
            1 => {
                let addr = SectorAddr::new((i / 4 % HAMMER_SECTORS) * gpu_sim::SECTOR_SIZE);
                schedule.push(ScheduledFault {
                    trigger: FaultTrigger::AtAccess(at),
                    addr,
                    kind: FaultKind::SnapshotData,
                });
                schedule.push(ScheduledFault {
                    trigger: FaultTrigger::AtAccess(at + total_accesses / 12),
                    addr,
                    kind: FaultKind::ReplayData,
                });
            }
            3 => schedule.push(ScheduledFault {
                trigger: FaultTrigger::AtAccess(at),
                addr: probe,
                kind: FaultKind::Metadata(MetaFault::TamperMac),
            }),
            _ => schedule.push(ScheduledFault {
                trigger: FaultTrigger::AtAccess(at),
                addr: probe,
                kind: FaultKind::CorruptData { mask: [0x5A; 32] },
            }),
        }
    }
    schedule
}

/// Picks up to `want` first-victim reads in the second half of the
/// merged trace, preferring the longest reuse distance since the
/// sector's previous access — those sectors are certain to have been
/// evicted by co-tenant thrash, so the pre-read corruption is actually
/// fetched and adjudicated. Returns `(fault_access, sector)` pairs with
/// the fault scheduled shortly before the victim's read.
fn breach_targets(trace: &Trace, map: &TenantMap, want: usize) -> Vec<(u64, SectorAddr)> {
    let mut last_touch: BTreeMap<u64, usize> = BTreeMap::new();
    // (reuse distance, read index, sector)
    let mut candidates: Vec<(usize, usize, SectorAddr)> = Vec::new();
    let half = trace.accesses.len() / 2;
    for (i, a) in trace.accesses.iter().enumerate() {
        if map.tenant_of(a.addr) != FIRST_VICTIM {
            continue;
        }
        if a.kind == AccessKind::Read && i >= half {
            if let Some(&prev) = last_touch.get(&a.addr.raw()) {
                candidates.push((i - prev, i, a.addr));
            }
        }
        last_touch.insert(a.addr.raw(), i);
    }
    candidates.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    candidates.truncate(want);
    candidates.sort_by_key(|c| c.1);
    candidates
        .into_iter()
        .map(|(_, i, addr)| ((i as u64).saturating_sub(32).max(1), addr))
        .collect()
}

/// Fault kinds whose applied effect changes the plaintext served to the
/// core — the only escapes Eq. 1 counts as forgeries (mirrors the
/// adversarial campaign's accounting).
fn randomizes_plaintext(kind: &str) -> bool {
    matches!(
        kind,
        "corrupt_data" | "replay_data" | "rollback_counter" | "rollback_compact"
    )
}

/// The analytic Eq. 1 forgery bound at the default value-cache design
/// point.
fn eq1_bound() -> f64 {
    let vc = ValueCacheConfig::default();
    let p = tamper_hit_probability(vc.entries, vc.effective_bits());
    binomial_tail(
        VALUES_PER_UNIT,
        plutus_min_hits(vc.entries, vc.effective_bits()),
        p,
    )
}

/// Folds a finished run's stats into `row`: tenant attribution, ladder
/// freezes, ledger conservation, storm/rotation counters, and Eq. 1.
fn absorb_stats(row: &mut StormRow, stats: &SimStats, victims: &[u32], value_verifying: bool) {
    row.cycles = stats.cycles;
    row.ledger_conserved = stats.ledger_conserved();
    for &v in victims {
        let t = stats.tenant_stat(v);
        row.victim_ipc.push((v, t.map_or(0.0, |t| t.ipc())));
        row.victim_violations += t.map_or(0, |t| t.violations);
        if stats
            .engine_counter(&format!("ladder_frozen_t{v}"))
            .unwrap_or(0)
            > 0
        {
            row.victim_frozen += 1;
        }
    }
    row.adversary_violations = stats.tenant_stat(ADVERSARY).map_or(0, |t| t.violations);
    row.storm_suppressed = stats
        .engine_counter("storm_suppressed_overflows")
        .unwrap_or(0);
    row.storm_deferred = stats.engine_counter("storm_deferred_reqs").unwrap_or(0);
    row.rotations_completed = stats.engine_counter("rotations_completed").unwrap_or(0);
    row.rotated_sectors = stats.engine_counter("rotated_sectors").unwrap_or(0);
    row.transients_escalated = stats.transients_escalated;
    let mut detected = 0u64;
    let mut escaped = 0u64;
    for r in &stats.fault_records {
        match r.outcome {
            FaultOutcome::Detected { .. } => detected += 1,
            FaultOutcome::Escaped { value_verified } => {
                escaped += 1;
                if value_verified && randomizes_plaintext(r.kind) {
                    row.forgeries += 1;
                }
            }
            _ => {}
        }
    }
    row.faults_adjudicated = detected + escaped;
    if value_verifying && row.faults_adjudicated > 0 {
        let empirical = row.forgeries as f64 / row.faults_adjudicated as f64;
        row.eq1_ok = empirical <= eq1_bound();
    }
}

/// Applies the baseline IPC reference to a monitored row.
fn apply_ipc_ratio(row: &mut StormRow, baseline: &StormRow) {
    let mut min_ratio = f64::INFINITY;
    for &(v, ipc) in &row.victim_ipc {
        let base = baseline
            .victim_ipc
            .iter()
            .find(|&&(bv, _)| bv == v)
            .map_or(0.0, |&(_, b)| b);
        if base > 0.0 {
            min_ratio = min_ratio.min(ipc / base);
        }
    }
    row.min_ipc_ratio = if min_ratio.is_finite() {
        min_ratio
    } else {
        0.0
    };
}

/// Runs the storm (or soak) campaign on a default-sized pool. See
/// [`run_storm_campaign_on`].
///
/// # Panics
///
/// Panics if a campaign job panics.
pub fn run_storm_campaign(campaign: &StormCampaignConfig, cfg: &GpuConfig) -> Vec<StormRow> {
    run_storm_campaign_on(&Executor::new(None), campaign, cfg)
}

/// The storm fan-out on a caller-supplied pool. Per scheme (PSSM,
/// Common Counters, Plutus — all with per-tenant keys):
///
/// 1. **baseline** — the honest company (adversary slot replaced by a
///    neutral equal-volume workload) establishes each victim's IPC;
/// 2. **storm** — the adversary hammers overflows and fires
///    tamper/replay/MAC faults at its own slab while the first victim's
///    key rotation walks live;
/// 3. **soak** (soak mode only) — the same storm under seeded soft
///    errors with bounded retry;
/// 4. **rotation@c** — `crash_points` kill-cycles: rotation started
///    before the first covering checkpoint, crash mid-walk, revert,
///    Phoenix-recover, and audit every resident sector bit-identically.
///
/// Rows come back in a fixed phase order per scheme, identical for any
/// worker count. Unlike the crash/transient campaigns the storm
/// campaign composes its own multi-tenant traces, so it takes no
/// workload list.
///
/// # Panics
///
/// Panics if a campaign job panics.
pub fn run_storm_campaign_on(
    exec: &Executor,
    campaign: &StormCampaignConfig,
    cfg: &GpuConfig,
) -> Vec<StormRow> {
    run_storm_campaign_observed(exec, campaign, cfg, &mut |_| {})
}

/// [`run_storm_campaign_on`] with a live row observer: `observer` is
/// called on the caller thread the moment each campaign row is
/// assembled — baseline/storm/soak rows right after the first parallel
/// round lands (while the crash-audit jobs are still running), crash
/// rows at final assembly. Observation order is the fixed phase order,
/// independent of worker count, so observers that mirror rows into
/// telemetry epochs or feed SLO trackers stay deterministic.
///
/// # Panics
///
/// Panics if a campaign job panics.
pub fn run_storm_campaign_observed(
    exec: &Executor,
    campaign: &StormCampaignConfig,
    cfg: &GpuConfig,
    observer: &mut dyn FnMut(&StormRow),
) -> Vec<StormRow> {
    let fixture = build_fixture(campaign);
    let victims = campaign.victim_ids();

    // Phase 1: honest baseline + storm (+ soak) runs, in one parallel
    // round. Each job returns the finished stats and whether the live
    // rotation completed.
    let mut round1: Vec<Job<'_, (Box<SimStats>, bool)>> = Vec::new();
    for scheme in STORM_SCHEMES {
        let fx = &fixture;
        round1.push(Job::new(
            format!("{}/baseline", scheme.label()),
            move || {
                let factory = scheme.factory(fx.tenancy.clone());
                let mut sim = Simulator::new(cfg.clone(), fx.honest.clone(), factory.as_ref());
                sim.set_tenant_map(fx.map.clone());
                let r = sim.run();
                (Box::new(r.stats), true)
            },
        ));
    }
    for scheme in STORM_SCHEMES {
        let fx = &fixture;
        round1.push(Job::new(format!("{}/storm", scheme.label()), move || {
            let factory = scheme.factory(fx.tenancy.clone());
            let mut sim = Simulator::new(cfg.clone(), fx.storm.clone(), factory.as_ref());
            sim.set_tenant_map(fx.map.clone());
            sim.set_fault_schedule(adversary_faults(campaign, &fx.storm, &fx.map));
            // Live rotation of the first victim, under fire from the
            // adversary's overflow storm.
            let rotation_ok = sim.start_key_rotation(FIRST_VICTIM);
            let r = sim.run();
            (Box::new(r.stats), rotation_ok && !sim.rotation_active())
        }));
    }
    if campaign.soak {
        for scheme in STORM_SCHEMES {
            let fx = &fixture;
            round1.push(Job::new(format!("{}/soak", scheme.label()), move || {
                let factory = scheme.factory(fx.tenancy.clone());
                let mut sim = Simulator::new(cfg.clone(), fx.storm.clone(), factory.as_ref());
                sim.set_tenant_map(fx.map.clone());
                sim.set_transient_faults(TransientConfig::new(
                    campaign.soft_error_rate,
                    campaign.seed ^ 0x050A_CE44,
                ));
                sim.set_retry_policy(RetryPolicy::with_limit(campaign.retry_limit));
                let rotation_ok = sim.start_key_rotation(FIRST_VICTIM);
                let r = sim.run();
                (Box::new(r.stats), rotation_ok && !sim.rotation_active())
            }));
        }
    }
    let mut round1_out = expect_all(exec.run(round1), "storm campaign runs").into_iter();

    let mut baselines: Vec<StormRow> = Vec::new();
    for scheme in STORM_SCHEMES {
        let (stats, _) = round1_out.next().expect("baseline result");
        let mut row = StormRow::new(scheme.label(), "baseline");
        absorb_stats(&mut row, &stats, &victims, false);
        observer(&row);
        baselines.push(row);
    }
    let mut storm_rows: Vec<StormRow> = Vec::new();
    for (si, scheme) in STORM_SCHEMES.iter().enumerate() {
        let (stats, rotation_done) = round1_out.next().expect("storm result");
        let mut row = StormRow::new(scheme.label(), "storm");
        absorb_stats(&mut row, &stats, &victims, scheme.value_verifying());
        apply_ipc_ratio(&mut row, &baselines[si]);
        if !rotation_done {
            row.error = Some("key-rotation walk did not complete".into());
        }
        observer(&row);
        storm_rows.push(row);
    }
    let mut soak_rows: Vec<StormRow> = Vec::new();
    if campaign.soak {
        for (si, scheme) in STORM_SCHEMES.iter().enumerate() {
            let (stats, rotation_done) = round1_out.next().expect("soak result");
            let mut row = StormRow::new(scheme.label(), "soak");
            absorb_stats(&mut row, &stats, &victims, scheme.value_verifying());
            apply_ipc_ratio(&mut row, &baselines[si]);
            if !rotation_done {
                row.error = Some("key-rotation walk did not complete".into());
            }
            observer(&row);
            soak_rows.push(row);
        }
    }

    // Phase 2: mid-rotation crash-kills. Crash cycles span the storm
    // run's measured length; rotation starts before the first covering
    // checkpoint so the restored checkpoint always postdates the
    // generation bump (the dual-generation recovery invariant).
    let mut crash_jobs: Vec<Job<'_, StormRow>> = Vec::new();
    for (si, scheme) in STORM_SCHEMES.iter().enumerate() {
        let total = storm_rows[si].cycles.max(campaign.checkpoint_cycles + 2);
        for i in 1..=campaign.crash_points {
            let lo = campaign.checkpoint_cycles + 1;
            let hi = (total * 9 / 10).max(lo + 1);
            let crash_at = lo + (hi - lo) * i as u64 / (campaign.crash_points as u64 + 1);
            let fx = &fixture;
            let scheme = *scheme;
            crash_jobs.push(Job::new(
                format!("{}/rotation@{crash_at}", scheme.label()),
                move || {
                    let factory = scheme.factory(fx.tenancy.clone());
                    let mut sim = Simulator::new(cfg.clone(), fx.storm.clone(), factory.as_ref());
                    sim.set_tenant_map(fx.map.clone());
                    sim.set_checkpoint_interval(campaign.checkpoint_cycles);
                    let mut row = StormRow::new(scheme.label(), format!("rotation@{crash_at}"));
                    // Start the walk before the first periodic
                    // checkpoint covers it.
                    let start_at = (campaign.checkpoint_cycles / 2).max(1);
                    let _ = sim.run_until(start_at);
                    if !sim.start_key_rotation(FIRST_VICTIM) {
                        row.error = Some("engine refused key rotation".into());
                        return row;
                    }
                    let r = sim.run_until(crash_at);
                    row.cycles = r.stats.cycles;
                    match sim.crash_recover_audit() {
                        Ok(audit) => {
                            row.rotation_audited = audit.audited;
                            row.rotation_mismatches = audit.mismatches;
                            row.rotation_spurious = audit.spurious_violations;
                            row.rotation_failed = audit.report.failed.len() as u64;
                        }
                        Err(e) => row.error = Some(e.to_string()),
                    }
                    row
                },
            ));
        }
    }
    let crash_rows = expect_all(exec.run(crash_jobs), "storm rotation-crash audits");

    // Assemble: per scheme — baseline, storm, (soak), rotation crashes.
    let mut out = Vec::new();
    let mut crash_iter = crash_rows.into_iter();
    for (si, _scheme) in STORM_SCHEMES.iter().enumerate() {
        out.push(baselines[si].clone());
        out.push(storm_rows[si].clone());
        if campaign.soak {
            out.push(soak_rows[si].clone());
        }
        for _ in 0..campaign.crash_points {
            let row = crash_iter.next().expect("one row per crash job");
            observer(&row);
            out.push(row);
        }
    }
    out
}

/// The storm gate: every row's invariants hold, the storm actually
/// exercised the machinery (faults adjudicated, rotation completed and
/// re-encrypted sectors, crash audits audited sectors), and victims
/// were never disturbed.
///
/// # Errors
///
/// Returns a description of every violated condition.
pub fn storm_gate(rows: &[StormRow], campaign: &StormCampaignConfig) -> Result<(), String> {
    if rows.is_empty() {
        return Err("storm campaign produced no rows".into());
    }
    let mut bad: Vec<String> = Vec::new();
    for r in rows {
        if !r.is_clean(campaign.ipc_tolerance) {
            let detail = match &r.error {
                Some(e) => e.clone(),
                None => format!(
                    "{} victim violations, {} frozen victims, ipc ratio {:.3}, \
                     ledger conserved {}, eq1 {}, {} escalated transients, \
                     rotation {}/{}/{} mismatch/spurious/failed",
                    r.victim_violations,
                    r.victim_frozen,
                    r.min_ipc_ratio,
                    r.ledger_conserved,
                    r.eq1_ok,
                    r.transients_escalated,
                    r.rotation_mismatches,
                    r.rotation_spurious,
                    r.rotation_failed
                ),
            };
            bad.push(format!("{}/{}: {detail}", r.scheme, r.phase));
        }
        if r.phase == "storm" && r.faults_adjudicated == 0 && r.error.is_none() {
            bad.push(format!(
                "{}/storm: no adversarial fault was ever adjudicated",
                r.scheme
            ));
        }
        if (r.phase == "storm" || r.phase == "soak")
            && r.error.is_none()
            && (r.rotations_completed == 0 || r.rotated_sectors == 0)
        {
            bad.push(format!(
                "{}/{}: key rotation did not complete ({} walks, {} sectors)",
                r.scheme, r.phase, r.rotations_completed, r.rotated_sectors
            ));
        }
        if r.phase.starts_with("rotation@") && r.rotation_audited == 0 && r.error.is_none() {
            bad.push(format!(
                "{}/{}: crash audit saw no sectors",
                r.scheme, r.phase
            ));
        }
    }
    if bad.is_empty() {
        Ok(())
    } else {
        Err(bad.join("; "))
    }
}

/// Renders storm rows as a JSON document.
pub fn storm_json(rows: &[StormRow], campaign: &StormCampaignConfig) -> Json {
    Json::Array(
        rows.iter()
            .map(|r| {
                let ipc = r
                    .victim_ipc
                    .iter()
                    .fold(Json::object(), |o, (t, v)| o.set(&format!("t{t}"), *v));
                let mut o = Json::object()
                    .set("scheme", r.scheme.as_str())
                    .set("phase", r.phase.as_str())
                    .set("cycles", r.cycles)
                    .set("victim_ipc", ipc)
                    .set("min_ipc_ratio", r.min_ipc_ratio)
                    .set("victim_violations", r.victim_violations)
                    .set("victim_frozen", r.victim_frozen)
                    .set("adversary_violations", r.adversary_violations)
                    .set("ledger_conserved", r.ledger_conserved)
                    .set("storm_suppressed", r.storm_suppressed)
                    .set("storm_deferred", r.storm_deferred)
                    .set("rotations_completed", r.rotations_completed)
                    .set("rotated_sectors", r.rotated_sectors)
                    .set("faults_adjudicated", r.faults_adjudicated)
                    .set("forgeries", r.forgeries)
                    .set("eq1_ok", r.eq1_ok)
                    .set("transients_escalated", r.transients_escalated)
                    .set("rotation_audited", r.rotation_audited)
                    .set("rotation_mismatches", r.rotation_mismatches)
                    .set("rotation_spurious", r.rotation_spurious)
                    .set("rotation_failed", r.rotation_failed)
                    .set("clean", r.is_clean(campaign.ipc_tolerance));
                if let Some(e) = &r.error {
                    o = o.set("error", e.as_str());
                }
                o
            })
            .collect(),
    )
}

/// Renders storm rows as CSV.
pub fn storm_csv(rows: &[StormRow], campaign: &StormCampaignConfig) -> String {
    let mut out = String::from(
        "scheme,phase,cycles,min_ipc_ratio,victim_violations,victim_frozen,\
         adversary_violations,ledger_conserved,storm_suppressed,storm_deferred,\
         rotations_completed,rotated_sectors,faults_adjudicated,forgeries,eq1_ok,\
         transients_escalated,rotation_audited,rotation_mismatches,rotation_spurious,\
         rotation_failed,clean\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{:.4},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            r.scheme,
            r.phase,
            r.cycles,
            r.min_ipc_ratio,
            r.victim_violations,
            r.victim_frozen,
            r.adversary_violations,
            r.ledger_conserved,
            r.storm_suppressed,
            r.storm_deferred,
            r.rotations_completed,
            r.rotated_sectors,
            r.faults_adjudicated,
            r.forgeries,
            r.eq1_ok,
            r.transients_escalated,
            r.rotation_audited,
            r.rotation_mismatches,
            r.rotation_spurious,
            r.rotation_failed,
            r.is_clean(campaign.ipc_tolerance)
        ));
    }
    out
}

/// Renders the per-phase storm table.
pub fn storm_table(rows: &[StormRow], campaign: &StormCampaignConfig) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18}{:<16}{:>9}{:>9}{:>8}{:>8}{:>9}{:>9}{:>8}{:>8}{:>7}",
        "scheme",
        "phase",
        "cycles",
        "ipc-rat",
        "v-viol",
        "v-frz",
        "rot-sec",
        "audited",
        "mism",
        "adjud",
        "clean"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<18}{:<16}{:>9}{:>9.3}{:>8}{:>8}{:>9}{:>9}{:>8}{:>8}{:>7}",
            r.scheme,
            r.phase,
            r.cycles,
            r.min_ipc_ratio,
            r.victim_violations,
            r.victim_frozen,
            r.rotated_sectors,
            r.rotation_audited,
            r.rotation_mismatches,
            r.faults_adjudicated,
            if r.is_clean(campaign.ipc_tolerance) {
                "yes"
            } else {
                "NO"
            }
        );
    }
    out
}

/// Writes the storm campaign as JSON and CSV under `target/experiments/`,
/// returning the JSON path.
///
/// # Errors
///
/// Returns any I/O error.
pub fn save_storm_campaign(
    name: &str,
    rows: &[StormRow],
    campaign: &StormCampaignConfig,
) -> std::io::Result<std::path::PathBuf> {
    crate::save_reports(
        name,
        &storm_json(rows, campaign),
        &storm_csv(rows, campaign),
    )
}

/// Adapts the storm schemes onto [`SchemeProvider`] for callers that
/// want tenancy-configured engines outside the storm campaign itself.
pub fn storm_schemes(tenancy: TenancyConfig) -> Vec<Box<dyn SchemeProvider>> {
    struct P(StormScheme, TenancyConfig);
    impl SchemeProvider for P {
        fn scheme_label(&self) -> String {
            self.0.label().to_string()
        }
        fn make_factory(&self) -> Box<dyn EngineFactory> {
            self.0.factory(self.1.clone())
        }
    }
    STORM_SCHEMES
        .iter()
        .map(|&s| Box::new(P(s, tenancy.clone())) as Box<dyn SchemeProvider>)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(seed: u64) -> StormCampaignConfig {
        StormCampaignConfig {
            accesses_per_tenant: 700,
            faults: 12,
            crash_points: 1,
            ..StormCampaignConfig::new(seed)
        }
    }

    #[test]
    fn honest_storm_campaign_passes_the_gate() {
        let campaign = quick(0xB00C);
        let rows = run_storm_campaign(&campaign, &GpuConfig::test_small());
        // baseline + storm + 1 rotation crash, per scheme.
        assert_eq!(rows.len(), 3 * 3);
        storm_gate(&rows, &campaign).expect("honest storm must pass");
        // The campaign must actually exercise the machinery: overflows
        // suppressed or deferred somewhere, sectors rotated, faults
        // adjudicated against the adversary.
        let storm = |r: &StormRow| r.phase == "storm";
        assert!(rows
            .iter()
            .filter(|r| storm(r))
            .all(|r| r.rotated_sectors > 0));
        assert!(rows
            .iter()
            .filter(|r| storm(r))
            .any(|r| r.faults_adjudicated > 0));
        assert!(rows
            .iter()
            .any(|r| r.phase.starts_with("rotation@") && r.rotation_audited > 0));
    }

    #[test]
    fn injected_breach_fails_the_gate() {
        let campaign = StormCampaignConfig {
            inject_breach: true,
            ..quick(0xB00C)
        };
        let rows = run_storm_campaign(&campaign, &GpuConfig::test_small());
        let err = storm_gate(&rows, &campaign).unwrap_err();
        assert!(
            err.contains("victim violations") || err.contains("frozen"),
            "breach must surface as a victim-isolation failure: {err}"
        );
    }

    #[test]
    fn storm_campaign_is_deterministic_across_worker_counts() {
        let campaign = quick(7);
        let cfg = GpuConfig::test_small();
        let a = run_storm_campaign_on(&Executor::new(Some(1)), &campaign, &cfg);
        let b = run_storm_campaign_on(&Executor::new(Some(4)), &campaign, &cfg);
        assert_eq!(
            storm_csv(&a, &campaign),
            storm_csv(&b, &campaign),
            "storm rows must not depend on worker count"
        );
        assert_eq!(
            storm_json(&a, &campaign).to_string_pretty(),
            storm_json(&b, &campaign).to_string_pretty()
        );
    }

    #[test]
    fn reports_serialize() {
        let campaign = StormCampaignConfig::new(1);
        let mut row = StormRow::new("plutus", "storm");
        row.victim_ipc = vec![(2, 0.5), (3, 0.4)];
        row.min_ipc_ratio = 0.93;
        row.rotated_sectors = 40;
        let json = storm_json(std::slice::from_ref(&row), &campaign).to_string_pretty();
        assert!(json.contains("\"clean\": true"));
        assert!(json.contains("\"t2\""));
        let csv = storm_csv(std::slice::from_ref(&row), &campaign);
        assert!(csv.contains("plutus,storm"));
        assert!(storm_table(&[row], &campaign).contains("yes"));
    }
}
