//! The transient (soft-error) retry campaign.

use crate::SchemeProvider;
use gpu_sim::{GpuConfig, RetryPolicy, SimStats, Simulator, TransientConfig};
use plutus_exec::{expect_all, Executor, Job};
use plutus_telemetry::Json;
use workloads::{Scale, WorkloadSpec};

/// Parameters of a transient campaign. `runs` independently seeded
/// simulations execute per (workload, scheme) pair, all derived from
/// `seed`.
#[derive(Debug, Clone, Copy)]
pub struct TransientCampaignConfig {
    /// Probability that any given fill suffers a transient fault.
    pub soft_error_rate: f64,
    /// Maximum re-fetch attempts after a failed verification.
    pub retry_limit: u32,
    /// Independently seeded runs per (workload, scheme) pair.
    pub runs: usize,
    /// Master seed; every run's soft-error stream derives from it.
    pub seed: u64,
    /// Trace scale the workloads run at.
    pub scale: Scale,
}

impl TransientCampaignConfig {
    /// The default campaign: a 2% soft-error rate (high enough to hit
    /// every workload many times at test scale), 3 retries, 3 runs.
    pub fn new(seed: u64, scale: Scale) -> Self {
        Self {
            soft_error_rate: 0.02,
            retry_limit: 3,
            runs: 3,
            seed,
            scale,
        }
    }
}

/// Aggregated transient-campaign outcome for one (workload, engine)
/// pair, summed over all runs.
#[derive(Debug, Clone)]
pub struct TransientRow {
    /// Workload name.
    pub workload: String,
    /// Scheme label.
    pub scheme: String,
    /// Total L2-miss fills served.
    pub fills: u64,
    /// Transient faults the soft-error process fired.
    pub injected: u64,
    /// Detected transients cleared by the bounded retry path.
    pub recovered: u64,
    /// Transients still failing at the retry limit — benign faults
    /// misclassified as attacks. The gate requires zero.
    pub escalated: u64,
    /// Applied transients no verification layer observed (e.g. a MAC
    /// soft error under a value-verified read that never consults it).
    pub undetected: u64,
    /// Sampled faults that could not change state.
    pub not_applied: u64,
    /// Individual re-fetch attempts issued.
    pub retries: u64,
    /// Extra cycles charged to retries (wasted fetch + backoff).
    pub retry_cycles: u64,
    /// Violations recorded across all runs (should equal `escalated`
    /// in an attack-free campaign).
    pub violations: u64,
    /// Engine degradation counters observed (`degraded_*` stats).
    pub degraded: Vec<(String, u64)>,
}

impl TransientRow {
    fn new(workload: &str, scheme: String) -> Self {
        Self {
            workload: workload.to_string(),
            scheme,
            fills: 0,
            injected: 0,
            recovered: 0,
            escalated: 0,
            undetected: 0,
            not_applied: 0,
            retries: 0,
            retry_cycles: 0,
            violations: 0,
            degraded: Vec::new(),
        }
    }

    /// Detected transients (those that tripped at least one fetch).
    pub fn detected(&self) -> u64 {
        self.recovered + self.escalated
    }

    /// Fraction of detected transients the retry path recovered.
    pub fn recovery_rate(&self) -> f64 {
        let det = self.detected();
        if det == 0 {
            0.0
        } else {
            self.recovered as f64 / det as f64
        }
    }
}

/// Runs the transient campaign on a default-sized pool: every workload
/// × every scheme × `runs` seeded runs, each with an independent
/// soft-error stream. See [`run_transient_campaign_on`].
///
/// # Panics
///
/// Panics if a campaign job panics.
pub fn run_transient_campaign(
    workloads: &[WorkloadSpec],
    schemes: &[Box<dyn SchemeProvider>],
    campaign: &TransientCampaignConfig,
    cfg: &GpuConfig,
) -> Vec<TransientRow> {
    run_transient_campaign_on(&Executor::new(None), workloads, schemes, campaign, cfg)
}

/// The transient fan-out on a caller-supplied pool. Traces are built
/// once per workload (phase 1), then every (workload, scheme, run)
/// triple is one independent job (phase 2) whose soft-error stream
/// derives from [`plutus_exec::derive_seed`]; rows are accumulated in
/// submission order, so results are identical for any worker count.
///
/// # Panics
///
/// Panics if a campaign job panics.
pub fn run_transient_campaign_on(
    exec: &Executor,
    workloads: &[WorkloadSpec],
    schemes: &[Box<dyn SchemeProvider>],
    campaign: &TransientCampaignConfig,
    cfg: &GpuConfig,
) -> Vec<TransientRow> {
    // Phase 1: one trace per workload.
    let trace_jobs: Vec<Job<'_, gpu_sim::Trace>> = workloads
        .iter()
        .map(|w| Job::new(w.name, move || w.trace(campaign.scale)))
        .collect();
    let traces = expect_all(exec.run(trace_jobs), "transient trace preparation");

    // Phase 2: one job per (workload, scheme, run).
    let mut run_jobs: Vec<Job<'_, SimStats>> = Vec::new();
    for (wi, w) in workloads.iter().enumerate() {
        let trace = &traces[wi];
        for (si, scheme) in schemes.iter().enumerate() {
            for run in 0..campaign.runs {
                run_jobs.push(Job::new(
                    format!("{}/{}/run{run}", w.name, scheme.scheme_label()),
                    move || {
                        let factory = scheme.make_factory();
                        let mut sim = Simulator::new(cfg.clone(), trace.clone(), factory.as_ref());
                        sim.set_transient_faults(TransientConfig::new(
                            campaign.soft_error_rate,
                            plutus_exec::derive_seed(campaign.seed, wi, si, run),
                        ));
                        sim.set_retry_policy(RetryPolicy::with_limit(campaign.retry_limit));
                        sim.run().stats
                    },
                ));
            }
        }
    }
    let mut stats = expect_all(exec.run(run_jobs), "transient campaign run").into_iter();

    // Deterministic submission-order accumulation.
    let mut out = Vec::new();
    for w in workloads {
        for scheme in schemes {
            let mut row = TransientRow::new(w.name, scheme.scheme_label());
            for _ in 0..campaign.runs {
                let s = stats.next().expect("one stats set per submitted run job");
                row.fills += s.fill_count;
                row.injected += s.transients_injected;
                row.recovered += s.transients_recovered;
                row.escalated += s.transients_escalated;
                row.undetected += s.transients_undetected;
                row.not_applied += s.transients_not_applied;
                row.retries += s.retries;
                row.retry_cycles += s.retry_cycles;
                row.violations += s.violations;
                for (name, v) in &s.engine {
                    if name.starts_with("degraded_") {
                        match row.degraded.iter_mut().find(|(n, _)| n == name) {
                            Some((_, acc)) => *acc += v,
                            None => row.degraded.push((name.clone(), *v)),
                        }
                    }
                }
            }
            out.push(row);
        }
    }
    out
}

/// The fail-operational gate: no transient fault may be misclassified
/// as an attack, and the campaign must actually have exercised the
/// fault path.
///
/// # Errors
///
/// Returns a description of every violated condition.
pub fn transient_gate(rows: &[TransientRow]) -> Result<(), String> {
    if rows.is_empty() {
        return Err("transient campaign produced no rows".into());
    }
    let injected: u64 = rows.iter().map(|r| r.injected).sum();
    if injected == 0 {
        return Err("transient campaign injected no faults (rate too low for scale?)".into());
    }
    let bad: Vec<String> = rows
        .iter()
        .filter(|r| r.escalated > 0)
        .map(|r| {
            format!(
                "{}/{}: {} transient fault(s) escalated to violations",
                r.workload, r.scheme, r.escalated
            )
        })
        .collect();
    if bad.is_empty() {
        Ok(())
    } else {
        Err(bad.join("; "))
    }
}

/// Renders transient rows as a JSON document.
pub fn transient_json(rows: &[TransientRow]) -> Json {
    Json::Array(
        rows.iter()
            .map(|r| {
                let degraded = r
                    .degraded
                    .iter()
                    .fold(Json::object(), |o, (k, v)| o.set(k, *v));
                Json::object()
                    .set("workload", r.workload.as_str())
                    .set("scheme", r.scheme.as_str())
                    .set("fills", r.fills)
                    .set("injected", r.injected)
                    .set("recovered", r.recovered)
                    .set("escalated", r.escalated)
                    .set("undetected", r.undetected)
                    .set("not_applied", r.not_applied)
                    .set("retries", r.retries)
                    .set("retry_cycles", r.retry_cycles)
                    .set("violations", r.violations)
                    .set("recovery_rate", r.recovery_rate())
                    .set("degraded", degraded)
            })
            .collect(),
    )
}

/// Renders transient rows as CSV.
pub fn transient_csv(rows: &[TransientRow]) -> String {
    let mut out = String::from(
        "workload,scheme,fills,injected,recovered,escalated,undetected,not_applied,\
         retries,retry_cycles,violations,recovery_rate\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{:.6}\n",
            r.workload,
            r.scheme,
            r.fills,
            r.injected,
            r.recovered,
            r.escalated,
            r.undetected,
            r.not_applied,
            r.retries,
            r.retry_cycles,
            r.violations,
            r.recovery_rate()
        ));
    }
    out
}

/// Renders the per-(workload, engine) transient table.
pub fn transient_table(rows: &[TransientRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14}{:<18}{:>9}{:>10}{:>10}{:>10}{:>8}{:>9}{:>12}{:>10}",
        "workload",
        "scheme",
        "injected",
        "recovered",
        "escalated",
        "undetect",
        "n/a",
        "retries",
        "retry-cyc",
        "rec-rate"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<14}{:<18}{:>9}{:>10}{:>10}{:>10}{:>8}{:>9}{:>12}{:>9.1}%",
            r.workload,
            r.scheme,
            r.injected,
            r.recovered,
            r.escalated,
            r.undetected,
            r.not_applied,
            r.retries,
            r.retry_cycles,
            r.recovery_rate() * 100.0
        );
    }
    out
}

/// Writes the transient campaign as JSON and CSV under
/// `target/experiments/`, returning the JSON path.
///
/// # Errors
///
/// Returns any I/O error.
pub fn save_transient_campaign(
    name: &str,
    rows: &[TransientRow],
) -> std::io::Result<std::path::PathBuf> {
    crate::save_reports(name, &transient_json(rows), &transient_csv(rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::all_schemes;
    use workloads::by_name;

    fn tiny(retry_limit: u32) -> TransientCampaignConfig {
        TransientCampaignConfig {
            soft_error_rate: 0.05,
            retry_limit,
            runs: 2,
            seed: 11,
            scale: Scale::Test,
        }
    }

    #[test]
    fn retry_recovers_every_transient() {
        let w = [by_name("bfs").unwrap()];
        let rows = run_transient_campaign(&w, &all_schemes(), &tiny(3), &GpuConfig::test_small());
        assert_eq!(rows.len(), 3);
        let injected: u64 = rows.iter().map(|r| r.injected).sum();
        let recovered: u64 = rows.iter().map(|r| r.recovered).sum();
        assert!(injected > 0, "campaign must inject at this rate");
        assert!(recovered > 0, "retry path must clear detected transients");
        transient_gate(&rows).expect("no transient may escalate with retries enabled");
        for r in &rows {
            assert_eq!(r.violations, 0, "{}: spurious violations", r.scheme);
        }
    }

    #[test]
    fn without_retry_transients_escalate() {
        let w = [by_name("bfs").unwrap()];
        let rows = run_transient_campaign(&w, &all_schemes(), &tiny(0), &GpuConfig::test_small());
        let escalated: u64 = rows.iter().map(|r| r.escalated).sum();
        assert!(escalated > 0, "fail-stop must misclassify transients");
        assert!(transient_gate(&rows).is_err());
    }

    #[test]
    fn campaign_is_deterministic_per_seed() {
        let w = [by_name("bfs").unwrap()];
        let run = || {
            run_transient_campaign(&w, &all_schemes(), &tiny(2), &GpuConfig::test_small())
                .iter()
                .map(|r| (r.injected, r.recovered, r.escalated, r.retry_cycles))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reports_serialize() {
        let mut row = TransientRow::new("bfs", "plutus".into());
        row.injected = 5;
        row.recovered = 4;
        row.escalated = 1;
        row.retries = 6;
        row.degraded = vec![("degraded_verifier_frozen".into(), 1)];
        let json = transient_json(&[row.clone()]).to_string_pretty();
        assert!(json.contains("\"recovery_rate\""));
        assert!(json.contains("\"degraded_verifier_frozen\": 1"));
        let csv = transient_csv(&[row.clone()]);
        assert!(csv.starts_with("workload,scheme"));
        assert!(csv.contains("bfs,plutus"));
        assert!((row.recovery_rate() - 0.8).abs() < 1e-12);
        assert!(transient_table(&[row]).contains("plutus"));
    }

    #[test]
    fn gate_rejects_empty_and_fault_free_campaigns() {
        assert!(transient_gate(&[]).is_err());
        let row = TransientRow::new("bfs", "plutus".into());
        assert!(transient_gate(&[row]).is_err(), "zero injected is vacuous");
    }
}
