//! Fail-operational campaigns for the secure-memory pipeline.
//!
//! Three campaign families exercise the recovery machinery end-to-end:
//!
//! - **Transient** ([`run_transient_campaign`]): a seeded soft-error
//!   process ([`gpu_sim::TransientConfig`]) corrupts individual DRAM
//!   transfers while real workload traces run, and a bounded
//!   [`gpu_sim::RetryPolicy`] re-fetches failed fills. The campaign
//!   tallies how every transient resolved — recovered by retry,
//!   escalated to a recorded violation (a benign fault *misclassified*
//!   as an attack), or never observed — and [`transient_gate`] fails
//!   the run if any transient escalated.
//! - **Crash** ([`run_crash_campaign`]): runs are killed at arbitrary
//!   cycles, volatile security metadata reverts to the last epoch
//!   checkpoint, counters are reconstructed Phoenix-style against the
//!   persistent MACs, and every resident sector is re-read and compared
//!   against a pre-crash oracle. [`crash_gate`] fails unless every
//!   audit came back bit-identical with no spurious violations.
//! - **Storm / soak** ([`run_storm_campaign`]): a multi-tenant chaos
//!   campaign — an adversarial tenant forces counter-group overflow
//!   storms and fires tamper/replay faults at its own slab while victim
//!   tenants run concurrently, a victim's key rotation walks live, and
//!   crash-kills land mid-walk. [`storm_gate`] fails on any isolation,
//!   conservation, Eq. 1, or recovery breach.
//!
//! Engines are supplied through [`SchemeProvider`] so the campaign
//! runners stay independent of any particular scheme catalogue; the
//! bench crate adapts its `Scheme` enum onto this trait.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crash;
mod storm;
mod transient;

pub use crash::{
    crash_csv, crash_gate, crash_json, crash_table, run_crash_campaign, run_crash_campaign_on,
    save_crash_campaign, CrashCampaignConfig, CrashRow,
};
pub use storm::{
    run_storm_campaign, run_storm_campaign_observed, run_storm_campaign_on, save_storm_campaign,
    storm_csv, storm_gate, storm_json, storm_schemes, storm_table, StormCampaignConfig, StormRow,
    ADVERSARY, FIRST_VICTIM,
};
pub use transient::{
    run_transient_campaign, run_transient_campaign_on, save_transient_campaign, transient_csv,
    transient_gate, transient_json, transient_table, TransientCampaignConfig, TransientRow,
};

use gpu_sim::EngineFactory;

/// A named source of security engines a campaign can instantiate.
///
/// Factories are built inside each campaign job, on whichever pool
/// worker runs it, so the provider itself only needs to be [`Sync`].
pub trait SchemeProvider: Sync {
    /// Display label used in campaign rows and reports.
    fn scheme_label(&self) -> String;
    /// Builds a fresh engine factory for one simulator instance.
    fn make_factory(&self) -> Box<dyn EngineFactory>;
}

/// Writes a campaign's JSON and CSV renderings into the report
/// directory (the `--run-dir` when set, `target/experiments/`
/// otherwise), returning the JSON path.
pub(crate) fn save_reports(
    name: &str,
    json: &plutus_telemetry::Json,
    csv: &str,
) -> std::io::Result<std::path::PathBuf> {
    let dir = plutus_telemetry::report_dir();
    std::fs::create_dir_all(&dir)?;
    let json_path = dir.join(format!("{name}.json"));
    plutus_telemetry::atomic_write(&json_path, json.to_string_pretty())?;
    plutus_telemetry::atomic_write(dir.join(format!("{name}.csv")), csv)?;
    Ok(json_path)
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::SchemeProvider;
    use gpu_sim::EngineFactory;
    use plutus_core::{PlutusConfig, PlutusEngine};
    use secure_mem::{CommonCountersEngine, PssmEngine, SecureMemConfig};

    /// The three checkpoint-capable engines, as test providers.
    pub enum TestScheme {
        Pssm,
        CommonCounters,
        Plutus,
    }

    impl SchemeProvider for TestScheme {
        fn scheme_label(&self) -> String {
            match self {
                TestScheme::Pssm => "pssm".into(),
                TestScheme::CommonCounters => "common-counters".into(),
                TestScheme::Plutus => "plutus".into(),
            }
        }

        fn make_factory(&self) -> Box<dyn EngineFactory> {
            match self {
                TestScheme::Pssm => Box::new(PssmEngine::factory(SecureMemConfig::pssm())),
                TestScheme::CommonCounters => {
                    Box::new(CommonCountersEngine::factory(SecureMemConfig::pssm()))
                }
                TestScheme::Plutus => Box::new(PlutusEngine::factory(PlutusConfig::full())),
            }
        }
    }

    pub fn all_schemes() -> Vec<Box<dyn SchemeProvider>> {
        vec![
            Box::new(TestScheme::Pssm),
            Box::new(TestScheme::CommonCounters),
            Box::new(TestScheme::Plutus),
        ]
    }
}
