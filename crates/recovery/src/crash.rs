//! The crash-injection / checkpoint-restore campaign.

use crate::SchemeProvider;
use gpu_sim::{GpuConfig, Simulator};
use plutus_exec::{expect_all, Executor, Job};
use plutus_telemetry::Json;
use workloads::{Scale, WorkloadSpec};

/// Parameters of a crash campaign. Each (workload, scheme) pair is
/// first run to completion to learn its cycle count, then killed at
/// `crash_points` evenly spaced cycles, restored from the last epoch
/// checkpoint, recovered, and audited.
#[derive(Debug, Clone, Copy)]
pub struct CrashCampaignConfig {
    /// Metadata checkpoint cadence in simulated cycles.
    pub checkpoint_cycles: u64,
    /// Crash points probed per (workload, scheme) pair.
    pub crash_points: usize,
    /// Trace scale the workloads run at.
    pub scale: Scale,
}

impl CrashCampaignConfig {
    /// The default campaign: checkpoints every `checkpoint_cycles`,
    /// 4 crash points per pair.
    pub fn new(checkpoint_cycles: u64, scale: Scale) -> Self {
        Self {
            checkpoint_cycles,
            crash_points: 4,
            scale,
        }
    }
}

/// One crash-inject → restore → recover → re-read audit.
#[derive(Debug, Clone)]
pub struct CrashRow {
    /// Workload name.
    pub workload: String,
    /// Scheme label.
    pub scheme: String,
    /// Cycle the crash was injected at.
    pub crash_cycle: u64,
    /// Cycle of the checkpoint restored from.
    pub checkpoint_cycle: u64,
    /// Resident sectors compared against the pre-crash oracle.
    pub audited: u64,
    /// Sectors whose post-recovery plaintext diverged.
    pub mismatches: u64,
    /// Post-recovery fills that flagged honest data.
    pub spurious_violations: u64,
    /// Sectors already consistent with the checkpoint metadata.
    pub already_consistent: u64,
    /// Counters reconstructed by MAC probing.
    pub recovered_by_mac: u64,
    /// Sectors vouched by the pinned-value screen (skip-MAC writes).
    pub recovered_by_value: u64,
    /// Sectors recovery could not reconstruct.
    pub failed: u64,
    /// Recovery machinery error, if the engine rejected the audit.
    pub error: Option<String>,
}

impl CrashRow {
    /// True when the audit came back bit-identical with no spurious
    /// violations and no unrecoverable sectors.
    pub fn is_clean(&self) -> bool {
        self.error.is_none()
            && self.mismatches == 0
            && self.spurious_violations == 0
            && self.failed == 0
    }
}

/// Runs the crash campaign on a default-sized pool: every workload ×
/// every scheme × `crash_points` kill cycles. See
/// [`run_crash_campaign_on`].
///
/// # Panics
///
/// Panics if a campaign job panics.
pub fn run_crash_campaign(
    workloads: &[WorkloadSpec],
    schemes: &[Box<dyn SchemeProvider>],
    campaign: &CrashCampaignConfig,
    cfg: &GpuConfig,
) -> Vec<CrashRow> {
    run_crash_campaign_on(&Executor::new(None), workloads, schemes, campaign, cfg)
}

/// The crash fan-out on a caller-supplied pool, in three phases: build
/// every trace, learn every (workload, scheme) pair's run length so
/// crash points span the whole execution, then audit every
/// (workload, scheme, crash point) as an independent job. Rows come
/// back in submission order, identical for any worker count.
///
/// # Panics
///
/// Panics if a campaign job panics.
pub fn run_crash_campaign_on(
    exec: &Executor,
    workloads: &[WorkloadSpec],
    schemes: &[Box<dyn SchemeProvider>],
    campaign: &CrashCampaignConfig,
    cfg: &GpuConfig,
) -> Vec<CrashRow> {
    // Phase 1: one trace per workload.
    let trace_jobs: Vec<Job<'_, gpu_sim::Trace>> = workloads
        .iter()
        .map(|w| Job::new(w.name, move || w.trace(campaign.scale)))
        .collect();
    let traces = expect_all(exec.run(trace_jobs), "crash trace preparation");

    // Phase 2: learn each pair's run length.
    let mut length_jobs: Vec<Job<'_, u64>> = Vec::new();
    for (wi, w) in workloads.iter().enumerate() {
        let trace = &traces[wi];
        for scheme in schemes {
            length_jobs.push(Job::new(
                format!("{}/{}/length", w.name, scheme.scheme_label()),
                move || {
                    let factory = scheme.make_factory();
                    let mut sim = Simulator::new(cfg.clone(), trace.clone(), factory.as_ref());
                    sim.run().stats.cycles
                },
            ));
        }
    }
    let totals = expect_all(exec.run(length_jobs), "crash run-length probe");

    // Phase 3: one crash-inject → restore → audit job per
    // (workload, scheme, crash point).
    let mut audit_jobs: Vec<Job<'_, CrashRow>> = Vec::new();
    for (wi, w) in workloads.iter().enumerate() {
        let trace = &traces[wi];
        for (si, scheme) in schemes.iter().enumerate() {
            let total = totals[wi * schemes.len() + si];
            for i in 1..=campaign.crash_points {
                let crash_at = (total * i as u64 / (campaign.crash_points as u64 + 1)).max(1);
                audit_jobs.push(Job::new(
                    format!("{}/{}/crash@{crash_at}", w.name, scheme.scheme_label()),
                    move || {
                        let factory = scheme.make_factory();
                        let mut sim = Simulator::new(cfg.clone(), trace.clone(), factory.as_ref());
                        sim.set_checkpoint_interval(campaign.checkpoint_cycles);
                        let _ = sim.run_until(crash_at);
                        let mut row = CrashRow {
                            workload: w.name.to_string(),
                            scheme: scheme.scheme_label(),
                            crash_cycle: crash_at,
                            checkpoint_cycle: 0,
                            audited: 0,
                            mismatches: 0,
                            spurious_violations: 0,
                            already_consistent: 0,
                            recovered_by_mac: 0,
                            recovered_by_value: 0,
                            failed: 0,
                            error: None,
                        };
                        match sim.crash_recover_audit() {
                            Ok(audit) => {
                                row.crash_cycle = audit.crash_cycle;
                                row.checkpoint_cycle = audit.checkpoint_cycle;
                                row.audited = audit.audited;
                                row.mismatches = audit.mismatches;
                                row.spurious_violations = audit.spurious_violations;
                                row.already_consistent = audit.report.already_consistent;
                                row.recovered_by_mac = audit.report.recovered_by_mac;
                                row.recovered_by_value = audit.report.recovered_by_value;
                                row.failed = audit.report.failed.len() as u64;
                            }
                            Err(e) => row.error = Some(e.to_string()),
                        }
                        row
                    },
                ));
            }
        }
    }
    expect_all(exec.run(audit_jobs), "crash audit")
}

/// The crash-consistency gate: every audit must be clean (bit-identical
/// re-reads, no spurious violations, nothing unrecoverable) and must
/// actually have audited sectors.
///
/// # Errors
///
/// Returns a description of every violated condition.
pub fn crash_gate(rows: &[CrashRow]) -> Result<(), String> {
    if rows.is_empty() {
        return Err("crash campaign produced no rows".into());
    }
    if rows.iter().map(|r| r.audited).sum::<u64>() == 0 {
        return Err("crash campaign audited no sectors".into());
    }
    let bad: Vec<String> = rows
        .iter()
        .filter(|r| !r.is_clean())
        .map(|r| match &r.error {
            Some(e) => format!("{}/{} @{}: {e}", r.workload, r.scheme, r.crash_cycle),
            None => format!(
                "{}/{} @{}: {} mismatches, {} spurious violations, {} unrecoverable",
                r.workload, r.scheme, r.crash_cycle, r.mismatches, r.spurious_violations, r.failed
            ),
        })
        .collect();
    if bad.is_empty() {
        Ok(())
    } else {
        Err(bad.join("; "))
    }
}

/// Renders crash rows as a JSON document.
pub fn crash_json(rows: &[CrashRow]) -> Json {
    Json::Array(
        rows.iter()
            .map(|r| {
                let mut o = Json::object()
                    .set("workload", r.workload.as_str())
                    .set("scheme", r.scheme.as_str())
                    .set("crash_cycle", r.crash_cycle)
                    .set("checkpoint_cycle", r.checkpoint_cycle)
                    .set("audited", r.audited)
                    .set("mismatches", r.mismatches)
                    .set("spurious_violations", r.spurious_violations)
                    .set("already_consistent", r.already_consistent)
                    .set("recovered_by_mac", r.recovered_by_mac)
                    .set("recovered_by_value", r.recovered_by_value)
                    .set("failed", r.failed)
                    .set("clean", r.is_clean());
                if let Some(e) = &r.error {
                    o = o.set("error", e.as_str());
                }
                o
            })
            .collect(),
    )
}

/// Renders crash rows as CSV.
pub fn crash_csv(rows: &[CrashRow]) -> String {
    let mut out = String::from(
        "workload,scheme,crash_cycle,checkpoint_cycle,audited,mismatches,\
         spurious_violations,already_consistent,recovered_by_mac,recovered_by_value,\
         failed,clean\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{}\n",
            r.workload,
            r.scheme,
            r.crash_cycle,
            r.checkpoint_cycle,
            r.audited,
            r.mismatches,
            r.spurious_violations,
            r.already_consistent,
            r.recovered_by_mac,
            r.recovered_by_value,
            r.failed,
            r.is_clean()
        ));
    }
    out
}

/// Renders the per-audit crash table.
pub fn crash_table(rows: &[CrashRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14}{:<18}{:>10}{:>8}{:>9}{:>9}{:>9}{:>9}{:>8}{:>7}",
        "workload",
        "scheme",
        "crash@",
        "ckpt@",
        "audited",
        "consist",
        "by-mac",
        "by-val",
        "failed",
        "clean"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<14}{:<18}{:>10}{:>8}{:>9}{:>9}{:>9}{:>9}{:>8}{:>7}",
            r.workload,
            r.scheme,
            r.crash_cycle,
            r.checkpoint_cycle,
            r.audited,
            r.already_consistent,
            r.recovered_by_mac,
            r.recovered_by_value,
            r.failed,
            if r.is_clean() { "yes" } else { "NO" }
        );
    }
    out
}

/// Writes the crash campaign as JSON and CSV under
/// `target/experiments/`, returning the JSON path.
///
/// # Errors
///
/// Returns any I/O error.
pub fn save_crash_campaign(name: &str, rows: &[CrashRow]) -> std::io::Result<std::path::PathBuf> {
    crate::save_reports(name, &crash_json(rows), &crash_csv(rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::all_schemes;
    use workloads::by_name;

    #[test]
    fn every_scheme_recovers_bit_identically() {
        let w = [by_name("bfs").unwrap()];
        let campaign = CrashCampaignConfig {
            checkpoint_cycles: 500,
            crash_points: 2,
            scale: Scale::Test,
        };
        let rows = run_crash_campaign(&w, &all_schemes(), &campaign, &GpuConfig::test_small());
        assert_eq!(rows.len(), 3 * 2);
        crash_gate(&rows).expect("all audits must be clean");
        assert!(rows.iter().all(|r| r.audited > 0));
        // Mid-run crashes must actually exercise reconstruction, not
        // just find everything consistent.
        let reconstructed: u64 = rows
            .iter()
            .map(|r| r.recovered_by_mac + r.recovered_by_value)
            .sum();
        assert!(reconstructed > 0, "no counters were reconstructed");
    }

    #[test]
    fn reports_serialize() {
        let row = CrashRow {
            workload: "bfs".into(),
            scheme: "plutus".into(),
            crash_cycle: 900,
            checkpoint_cycle: 500,
            audited: 40,
            mismatches: 0,
            spurious_violations: 0,
            already_consistent: 30,
            recovered_by_mac: 9,
            recovered_by_value: 1,
            failed: 0,
            error: None,
        };
        let json = crash_json(std::slice::from_ref(&row)).to_string_pretty();
        assert!(json.contains("\"clean\": true"));
        let csv = crash_csv(std::slice::from_ref(&row));
        assert!(csv.contains("bfs,plutus,900,500,40"));
        assert!(crash_table(&[row]).contains("yes"));
    }

    #[test]
    fn gate_flags_dirty_audits() {
        let dirty = CrashRow {
            workload: "bfs".into(),
            scheme: "pssm".into(),
            crash_cycle: 10,
            checkpoint_cycle: 0,
            audited: 4,
            mismatches: 1,
            spurious_violations: 0,
            already_consistent: 3,
            recovered_by_mac: 0,
            recovered_by_value: 0,
            failed: 0,
            error: None,
        };
        let err = crash_gate(std::slice::from_ref(&dirty)).unwrap_err();
        assert!(err.contains("1 mismatches"));
        assert!(crash_gate(&[]).is_err());
    }
}
