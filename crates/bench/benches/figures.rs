//! Figure-regeneration benches: one Criterion target per paper experiment
//! family, each timing a complete simulation (workload trace + engine) at
//! test scale. `cargo bench -p plutus-bench --bench figures` therefore
//! both exercises every experiment path and tracks simulator performance;
//! the full-size figures come from the `experiments` binary (see
//! EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::GpuConfig;
use plutus_bench::{run_one, Scheme};
use std::hint::black_box;
use workloads::{by_name, Scale};

fn cfg() -> GpuConfig {
    GpuConfig::test_small()
}

fn bench_fig6_overhead(c: &mut Criterion) {
    let w = by_name("bfs").unwrap();
    let mut g = c.benchmark_group("fig6_secure_memory_overhead");
    g.sample_size(10);
    for scheme in [Scheme::None, Scheme::Pssm] {
        g.bench_with_input(BenchmarkId::new("bfs", scheme.label()), &scheme, |b, &s| {
            b.iter(|| black_box(run_one(&w, s, Scale::Test, &cfg()).stats.cycles));
        });
    }
    g.finish();
}

fn bench_fig15_value_verification(c: &mut Criterion) {
    let w = by_name("color").unwrap();
    let mut g = c.benchmark_group("fig15_value_verification");
    g.sample_size(10);
    for scheme in [Scheme::Pssm, Scheme::ValueVerifyOnly] {
        g.bench_with_input(BenchmarkId::new("color", scheme.label()), &scheme, |b, &s| {
            b.iter(|| black_box(run_one(&w, s, Scale::Test, &cfg()).stats.cycles));
        });
    }
    g.finish();
}

fn bench_fig16_granularity(c: &mut Criterion) {
    let w = by_name("sssp").unwrap();
    let mut g = c.benchmark_group("fig16_metadata_granularity");
    g.sample_size(10);
    for scheme in [Scheme::Pssm, Scheme::FineLeafCoarseTree, Scheme::All32] {
        g.bench_with_input(BenchmarkId::new("sssp", scheme.label()), &scheme, |b, &s| {
            b.iter(|| black_box(run_one(&w, s, Scale::Test, &cfg()).stats.cycles));
        });
    }
    g.finish();
}

fn bench_fig17_compact_counters(c: &mut Criterion) {
    let w = by_name("histo").unwrap();
    let mut g = c.benchmark_group("fig17_compact_counters");
    g.sample_size(10);
    for scheme in [Scheme::Compact2Bit, Scheme::Compact3Bit, Scheme::CompactAdaptive] {
        g.bench_with_input(BenchmarkId::new("histo", scheme.label()), &scheme, |b, &s| {
            b.iter(|| black_box(run_one(&w, s, Scale::Test, &cfg()).stats.cycles));
        });
    }
    g.finish();
}

fn bench_fig18_plutus_overall(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig18_plutus_overall");
    g.sample_size(10);
    for name in ["bfs", "stencil"] {
        let w = by_name(name).unwrap();
        for scheme in [Scheme::Pssm, Scheme::CommonCounters, Scheme::Plutus] {
            g.bench_with_input(BenchmarkId::new(name, scheme.label()), &scheme, |b, &s| {
                b.iter(|| black_box(run_one(&w, s, Scale::Test, &cfg()).stats.cycles));
            });
        }
    }
    g.finish();
}

fn bench_fig21_value_cache_size(c: &mut Criterion) {
    let w = by_name("pagerank").unwrap();
    let mut g = c.benchmark_group("fig21_value_cache_size");
    g.sample_size(10);
    for entries in [64usize, 256, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(entries), &entries, |b, &n| {
            b.iter(|| {
                black_box(
                    run_one(&w, Scheme::PlutusValueEntries(n), Scale::Test, &cfg()).stats.cycles,
                )
            });
        });
    }
    g.finish();
}

criterion_group!(
    figures,
    bench_fig6_overhead,
    bench_fig15_value_verification,
    bench_fig16_granularity,
    bench_fig17_compact_counters,
    bench_fig18_plutus_overall,
    bench_fig21_value_cache_size
);
criterion_main!(figures);
