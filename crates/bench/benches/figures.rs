//! Figure-regeneration benches: one timing target per paper experiment
//! family, each running a complete simulation (workload trace + engine)
//! at test scale. `cargo bench -p plutus-bench --bench figures`
//! therefore both exercises every experiment path and tracks simulator
//! performance; the full-size figures come from the `experiments`
//! binary (see EXPERIMENTS.md).
//!
//! Plain `harness = false` timing binaries (the build resolves no
//! external crates, so Criterion is unavailable); timings are collected
//! through `plutus-telemetry` span histograms and printed as its
//! summary table.

use gpu_sim::GpuConfig;
use plutus_bench::{run_one, Scheme};
use plutus_telemetry::{Span, Telemetry};
use std::hint::black_box;
use workloads::{by_name, Scale};

const SAMPLES: u32 = 5;

fn cfg() -> GpuConfig {
    GpuConfig::test_small()
}

fn bench_run(tel: &Telemetry, group: &str, workload: &str, scheme: Scheme) {
    let w = by_name(workload).unwrap();
    let hist = tel.histogram(&format!("span.{group}.{workload}.{}.ns", scheme.label()));
    for _ in 0..SAMPLES {
        let _guard = Span::enter(tel, &hist);
        black_box(run_one(&w, scheme, Scale::Test, &cfg()).stats.cycles);
    }
}

fn main() {
    let tel = Telemetry::new();

    for scheme in [Scheme::None, Scheme::Pssm] {
        bench_run(&tel, "fig6_secure_memory_overhead", "bfs", scheme);
    }
    for scheme in [Scheme::Pssm, Scheme::ValueVerifyOnly] {
        bench_run(&tel, "fig15_value_verification", "color", scheme);
    }
    for scheme in [Scheme::Pssm, Scheme::FineLeafCoarseTree, Scheme::All32] {
        bench_run(&tel, "fig16_metadata_granularity", "sssp", scheme);
    }
    for scheme in [
        Scheme::Compact2Bit,
        Scheme::Compact3Bit,
        Scheme::CompactAdaptive,
    ] {
        bench_run(&tel, "fig17_compact_counters", "histo", scheme);
    }
    for name in ["bfs", "stencil"] {
        for scheme in [Scheme::Pssm, Scheme::CommonCounters, Scheme::Plutus] {
            bench_run(&tel, "fig18_plutus_overall", name, scheme);
        }
    }
    for entries in [64usize, 256, 1024] {
        bench_run(
            &tel,
            "fig21_value_cache_size",
            "pagerank",
            Scheme::PlutusValueEntries(entries),
        );
    }

    print!("{}", tel.report().summary_table());
}
