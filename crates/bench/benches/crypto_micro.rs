//! Microbenchmarks of the crypto substrate: the functional cost of each
//! primitive the security engines invoke per memory access.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use plutus_crypto::{Aes128, Cmac, CounterMode, Tweak, Xts};
use std::hint::black_box;

fn bench_aes(c: &mut Criterion) {
    let aes = Aes128::new([7; 16]);
    let mut g = c.benchmark_group("aes128");
    g.throughput(Throughput::Bytes(16));
    g.bench_function("encrypt_block", |b| {
        let mut block = [0u8; 16];
        b.iter(|| {
            aes.encrypt_block(black_box(&mut block));
        });
    });
    g.bench_function("decrypt_block", |b| {
        let mut block = [0u8; 16];
        b.iter(|| {
            aes.decrypt_block(black_box(&mut block));
        });
    });
    g.finish();
}

fn bench_xts(c: &mut Criterion) {
    let xts = Xts::new([1; 16], [2; 16]);
    let mut g = c.benchmark_group("xts");
    g.throughput(Throughput::Bytes(32));
    g.bench_function("encrypt_sector_32B", |b| {
        let mut sector = [0u8; 32];
        b.iter(|| xts.encrypt_sector(black_box(&mut sector), Tweak::new(0x1000, 7)));
    });
    g.bench_function("decrypt_sector_32B", |b| {
        let mut sector = [0u8; 32];
        b.iter(|| xts.decrypt_sector(black_box(&mut sector), Tweak::new(0x1000, 7)));
    });
    g.finish();
}

fn bench_cme(c: &mut Criterion) {
    let cme = CounterMode::new([3; 16]);
    let mut g = c.benchmark_group("counter_mode");
    g.throughput(Throughput::Bytes(32));
    g.bench_function("apply_sector_32B", |b| {
        let mut sector = [0u8; 32];
        b.iter(|| cme.apply(black_box(&mut sector), Tweak::new(0x2000, 3)));
    });
    g.finish();
}

fn bench_cmac(c: &mut Criterion) {
    let cmac = Cmac::new([9; 16]);
    let sector = [0x5au8; 32];
    let mut g = c.benchmark_group("cmac");
    g.throughput(Throughput::Bytes(32));
    g.bench_function("stateful_tag64_32B", |b| {
        b.iter(|| cmac.stateful_tag64(black_box(&sector), Tweak::new(0x40, 5)));
    });
    g.finish();
}

criterion_group!(benches, bench_aes, bench_xts, bench_cme, bench_cmac);
criterion_main!(benches);
