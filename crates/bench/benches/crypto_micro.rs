//! Microbenchmarks of the crypto substrate: the functional cost of each
//! primitive the security engines invoke per memory access.
//!
//! Plain `harness = false` timing binaries (the build resolves no
//! external crates, so Criterion is unavailable); timings are collected
//! through `plutus-telemetry` span histograms and printed as its
//! summary table. Run with `cargo bench -p plutus-bench`.

use plutus_crypto::{Aes128, Cmac, CounterMode, Tweak, Xts};
use plutus_telemetry::{Span, Telemetry};
use std::hint::black_box;

fn bench(tel: &Telemetry, name: &str, iters: u32, mut f: impl FnMut()) {
    for _ in 0..iters / 10 + 1 {
        f(); // warmup
    }
    let hist = tel.histogram(&format!("span.{name}.ns"));
    for _ in 0..iters {
        let _guard = Span::enter(tel, &hist);
        f();
    }
}

fn main() {
    let tel = Telemetry::new();
    let iters = 20_000;

    let aes = Aes128::new([7; 16]);
    let mut block = [0u8; 16];
    bench(&tel, "aes128.encrypt_block", iters, || {
        aes.encrypt_block(black_box(&mut block))
    });
    bench(&tel, "aes128.decrypt_block", iters, || {
        aes.decrypt_block(black_box(&mut block))
    });

    let xts = Xts::new([1; 16], [2; 16]);
    let mut sector = [0u8; 32];
    bench(&tel, "xts.encrypt_sector_32B", iters, || {
        xts.encrypt_sector(black_box(&mut sector), Tweak::new(0x1000, 7));
    });
    bench(&tel, "xts.decrypt_sector_32B", iters, || {
        xts.decrypt_sector(black_box(&mut sector), Tweak::new(0x1000, 7));
    });

    let cme = CounterMode::new([3; 16]);
    let mut cme_sector = [0u8; 32];
    bench(&tel, "counter_mode.apply_sector_32B", iters, || {
        cme.apply(black_box(&mut cme_sector), Tweak::new(0x2000, 3));
    });

    let cmac = Cmac::new([9; 16]);
    let msg = [0x5au8; 32];
    bench(&tel, "cmac.stateful_tag64_32B", iters, || {
        black_box(cmac.stateful_tag64(black_box(&msg), Tweak::new(0x40, 5)));
    });

    print!("{}", tel.report().summary_table());
}
