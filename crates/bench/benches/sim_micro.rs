//! Microbenchmarks of simulator hot paths: cache lookups, DRAM booking,
//! value-cache probing, and full engine fill/writeback operations.
//!
//! Plain `harness = false` timing binaries (the build resolves no
//! external crates, so Criterion is unavailable); timings are collected
//! through `plutus-telemetry` span histograms and printed as its
//! summary table. Run with `cargo bench -p plutus-bench`.

use gpu_sim::cache::SectoredCache;
use gpu_sim::dram::DramChannel;
use gpu_sim::{BackingMemory, DramConfig, SectorAddr, SecurityEngine};
use plutus_core::{PlutusConfig, PlutusEngine, ValueCache, ValueCacheConfig};
use plutus_telemetry::{Span, Telemetry};
use secure_mem::{PssmEngine, SecureMemConfig};
use std::hint::black_box;

fn bench(tel: &Telemetry, name: &str, iters: u32, mut f: impl FnMut()) {
    for _ in 0..iters / 10 + 1 {
        f(); // warmup
    }
    let hist = tel.histogram(&format!("span.{name}.ns"));
    for _ in 0..iters {
        let _guard = Span::enter(tel, &hist);
        f();
    }
}

fn main() {
    let tel = Telemetry::new();

    let mut cache = SectoredCache::new(96 * 1024, 16, 128, false);
    let mut i = 0u64;
    bench(&tel, "sectored_cache.access", 20_000, || {
        i = i.wrapping_add(0x9e37_79b9);
        black_box(cache.access((i % 100_000) * 32, false, None).hit);
    });

    let mut dram = DramChannel::new(DramConfig::default());
    let mut j = 0u64;
    let mut now = 0u64;
    bench(&tel, "dram_channel.access", 20_000, || {
        j = j.wrapping_add(0x9e37_79b9);
        now += 2;
        black_box(dram.access(now, (j % 1_000_000) * 32, 32));
    });

    let mut vc = ValueCache::new(ValueCacheConfig::default());
    let mut k = 0u64;
    bench(&tel, "value_cache.probe_insert", 20_000, || {
        k = k.wrapping_add(61);
        let v = (k % 512) as u32;
        vc.probe(v);
        vc.insert(v);
    });

    let mut pssm = PssmEngine::new(SecureMemConfig::test_small());
    let mut pssm_mem = BackingMemory::new();
    for s in 0..512u64 {
        pssm.on_writeback(SectorAddr::new(s * 32), &[s as u8; 32], &mut pssm_mem);
    }
    let mut p = 0u64;
    bench(&tel, "pssm.fill", 5_000, || {
        p = (p + 17) % 512;
        black_box(
            pssm.on_fill(SectorAddr::new(p * 32), &mut pssm_mem)
                .crypto_latency,
        );
    });

    let mut plutus = PlutusEngine::new(PlutusConfig::test_small());
    let mut plutus_mem = BackingMemory::new();
    for s in 0..512u64 {
        plutus.on_writeback(SectorAddr::new(s * 32), &[s as u8; 32], &mut plutus_mem);
    }
    let mut q = 0u64;
    bench(&tel, "plutus.fill", 5_000, || {
        q = (q + 17) % 512;
        black_box(
            plutus
                .on_fill(SectorAddr::new(q * 32), &mut plutus_mem)
                .crypto_latency,
        );
    });

    let mut wb_engine = PlutusEngine::new(PlutusConfig::test_small());
    let mut wb_mem = BackingMemory::new();
    let mut w = 0u64;
    bench(&tel, "plutus.writeback", 5_000, || {
        w = (w + 29) % 2048;
        wb_engine.on_writeback(SectorAddr::new(w * 32), &[w as u8; 32], &mut wb_mem);
    });

    print!("{}", tel.report().summary_table());
}
