//! Microbenchmarks of simulator hot paths: cache lookups, DRAM booking,
//! value-cache probing, and full engine fill/writeback operations.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::cache::SectoredCache;
use gpu_sim::dram::DramChannel;
use gpu_sim::{BackingMemory, DramConfig, SectorAddr, SecurityEngine};
use plutus_core::{PlutusConfig, PlutusEngine, ValueCache, ValueCacheConfig};
use secure_mem::{PssmEngine, SecureMemConfig};
use std::hint::black_box;

fn bench_cache(c: &mut Criterion) {
    c.bench_function("sectored_cache_access", |b| {
        let mut cache = SectoredCache::new(96 * 1024, 16, 128, false);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9e37_79b9);
            black_box(cache.access((i % 100_000) * 32, false, None).hit)
        });
    });
}

fn bench_dram(c: &mut Criterion) {
    c.bench_function("dram_channel_access", |b| {
        let mut d = DramChannel::new(DramConfig::default());
        let mut i = 0u64;
        let mut now = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9e37_79b9);
            now += 2;
            black_box(d.access(now, (i % 1_000_000) * 32, 32))
        });
    });
}

fn bench_value_cache(c: &mut Criterion) {
    c.bench_function("value_cache_probe_insert", |b| {
        let mut vc = ValueCache::new(ValueCacheConfig::default());
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(61);
            let v = i % 512;
            vc.probe(v);
            vc.insert(v);
        });
    });
}

fn bench_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_ops");
    g.bench_function("pssm_fill", |b| {
        let mut engine = PssmEngine::new(SecureMemConfig::test_small());
        let mut mem = BackingMemory::new();
        for i in 0..512u64 {
            engine.on_writeback(SectorAddr::new(i * 32), &[i as u8; 32], &mut mem);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 17) % 512;
            black_box(engine.on_fill(SectorAddr::new(i * 32), &mut mem).crypto_latency)
        });
    });
    g.bench_function("plutus_fill", |b| {
        let mut engine = PlutusEngine::new(PlutusConfig::test_small());
        let mut mem = BackingMemory::new();
        for i in 0..512u64 {
            engine.on_writeback(SectorAddr::new(i * 32), &[i as u8; 32], &mut mem);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 17) % 512;
            black_box(engine.on_fill(SectorAddr::new(i * 32), &mut mem).crypto_latency)
        });
    });
    g.bench_function("plutus_writeback", |b| {
        let mut engine = PlutusEngine::new(PlutusConfig::test_small());
        let mut mem = BackingMemory::new();
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 29) % 2048;
            engine.on_writeback(SectorAddr::new(i * 32), &[i as u8; 32], &mut mem);
        });
    });
    g.finish();
}

criterion_group!(benches, bench_cache, bench_dram, bench_value_cache, bench_engines);
criterion_main!(benches);
