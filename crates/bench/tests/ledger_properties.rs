//! Cycle-ledger properties across the experiment surface: every
//! (workload, scheme) run must be conservation-exact — each partition's
//! stall buckets sum to exactly the run's cycle count — including runs
//! with injected faults and transient soft errors, and the ledger
//! export must be byte-identical for any worker count.

use gpu_sim::{
    FaultKind, FaultSchedule, FaultTrigger, GpuConfig, MetaFault, RetryPolicy, ScheduledFault,
    SimResult, StallBucket, TransientConfig,
};
use plutus_bench::{ledger_gate, ledger_json, run_one, try_run_matrix_on, Scheme};
use plutus_exec::Executor;
use secure_mem::{PssmEngine, SecureMemConfig};
use workloads::{by_name, suite, Scale};

fn cfg() -> GpuConfig {
    GpuConfig::test_small()
}

/// Asserts the conservation invariant on a raw simulation result.
fn assert_conserved(context: &str, r: &SimResult) {
    assert!(
        !r.stats.ledgers.is_empty(),
        "{context}: run recorded no ledger"
    );
    for (p, ledger) in r.stats.ledgers.iter().enumerate() {
        assert_eq!(
            ledger.total(),
            r.stats.cycles,
            "{context}: partition {p} ledger sums to {} but the run took {} cycles",
            ledger.total(),
            r.stats.cycles
        );
    }
}

#[test]
fn every_workload_conserves_under_core_schemes() {
    for w in suite() {
        for scheme in [Scheme::None, Scheme::Pssm, Scheme::Plutus] {
            let r = run_one(&w, scheme, Scale::Test, &cfg());
            assert_conserved(&format!("{}/{}", w.name, scheme.label()), &r);
        }
    }
}

#[test]
fn every_scheme_conserves_on_one_workload() {
    let w = by_name("bfs").unwrap();
    let schemes = [
        Scheme::None,
        Scheme::Pssm,
        Scheme::PssmMac4,
        Scheme::CommonCounters,
        Scheme::FineLeafCoarseTree,
        Scheme::All32,
        Scheme::ValueVerifyOnly,
        Scheme::Compact2Bit,
        Scheme::Compact3Bit,
        Scheme::CompactAdaptive,
        Scheme::Plutus,
        Scheme::PlutusNoTree,
        Scheme::PssmNoTree,
        Scheme::PlutusValueEntries(256),
    ];
    for scheme in schemes {
        let r = run_one(&w, scheme, Scale::Test, &cfg());
        assert_conserved(&scheme.label(), &r);
    }
}

#[test]
fn fault_injection_runs_conserve() {
    let w = by_name("bfs").unwrap();
    let trace = w.trace(Scale::Test);
    let mut schedule = FaultSchedule::new();
    // Tamper a MAC and corrupt ciphertext mid-run; whatever the
    // detection outcome, every cycle must still land in a bucket.
    schedule.push(ScheduledFault {
        trigger: FaultTrigger::AtAccess(20),
        addr: trace.accesses[10].addr,
        kind: FaultKind::Metadata(MetaFault::TamperMac),
    });
    let mut mask = [0u8; 32];
    mask[0] = 0xFF;
    schedule.push(ScheduledFault {
        trigger: FaultTrigger::AtAccess(40),
        addr: trace.accesses[30].addr,
        kind: FaultKind::CorruptData { mask },
    });
    let factory = PssmEngine::factory(SecureMemConfig::pssm());
    let mut sim = gpu_sim::Simulator::new(cfg(), trace, &factory);
    sim.set_fault_schedule(schedule);
    let r = sim.run();
    assert_conserved("bfs/pssm+faults", &r);
}

#[test]
fn transient_retry_runs_conserve_and_book_retry_cycles() {
    let w = by_name("bfs").unwrap();
    let factory = PssmEngine::factory(SecureMemConfig::pssm());
    let mut sim = gpu_sim::Simulator::new(cfg(), w.trace(Scale::Test), &factory);
    sim.set_transient_faults(TransientConfig::new(0.2, 7));
    sim.set_retry_policy(RetryPolicy::with_limit(3));
    let r = sim.run();
    assert!(
        r.stats.transients_injected > 0,
        "a 20% soft-error rate must inject at least one transient"
    );
    assert_conserved("bfs/pssm+transients", &r);
    let retry_cycles: u64 = r
        .stats
        .ledgers
        .iter()
        .map(|l| l.get(StallBucket::TransientRetry) + l.get(StallBucket::Recovery))
        .sum();
    assert!(
        retry_cycles > 0,
        "retried fills must book transient-retry/recovery cycles"
    );
}

#[test]
fn ledger_export_is_identical_across_worker_counts() {
    let workloads = [by_name("bfs").unwrap(), by_name("histo").unwrap()];
    let schemes = [Scheme::None, Scheme::Pssm, Scheme::Plutus];
    let rows1 = try_run_matrix_on(
        &Executor::new(Some(1)),
        &workloads,
        &schemes,
        Scale::Test,
        &cfg(),
    )
    .unwrap();
    let rows4 = try_run_matrix_on(
        &Executor::new(Some(4)),
        &workloads,
        &schemes,
        Scale::Test,
        &cfg(),
    )
    .unwrap();
    ledger_gate(&rows1).expect("matrix ledgers must conserve");
    let json1 = ledger_json(&rows1).to_string_pretty();
    let json4 = ledger_json(&rows4).to_string_pretty();
    assert_eq!(
        json1, json4,
        "ledger JSON must be byte-identical for --jobs 1 vs --jobs 4"
    );
}
