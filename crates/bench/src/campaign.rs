//! Seeded Monte Carlo fault-injection campaigns.
//!
//! A campaign hammers every security engine with randomized mid-run
//! faults — data corruption, replay, counter/MAC/BMT metadata rollback —
//! scheduled through [`gpu_sim::FaultSchedule`] while real workload
//! traces run, and aggregates how each fault resolved: which
//! verification layer caught it, how many cycles detection took, and
//! whether anything escaped. The campaign also validates the paper's
//! Eq. 1 claim empirically: the measured forgery-acceptance rate of the
//! value-verification fast path must stay at or below the analytic
//! binomial-tail bound.
//!
//! Engines continue-and-count: a run does not stop at its first
//! violation, so one run adjudicates every fault it was given.

use crate::runner::Scheme;
use gpu_sim::{
    FaultKind, FaultOutcome, FaultRecord, FaultSchedule, FaultTrigger, GpuConfig, MetaFault,
    ScheduledFault, SectorAddr, Simulator, Trace,
};
use plutus_core::binomial::{
    binomial_tail, plutus_min_hits, tamper_hit_probability, VALUES_PER_UNIT,
};
use plutus_core::ValueCacheConfig;
use plutus_exec::{expect_all, Executor, Job};
use plutus_telemetry::Json;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use workloads::{Scale, WorkloadSpec};

/// Which fault family a campaign injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignKind {
    /// Ciphertext corruption plus MAC and BMT-node tampering.
    Tamper,
    /// Snapshot/restore replay of stale ciphertext.
    Replay,
    /// Encryption-counter and compact-counter rollback.
    Rollback,
    /// All of the above, mixed uniformly.
    Sweep,
}

impl CampaignKind {
    /// Parses a CLI spelling.
    pub fn parse(s: &str) -> Option<CampaignKind> {
        match s {
            "tamper" => Some(CampaignKind::Tamper),
            "replay" => Some(CampaignKind::Replay),
            "rollback" => Some(CampaignKind::Rollback),
            "sweep" => Some(CampaignKind::Sweep),
            _ => None,
        }
    }

    /// Stable label used in report file names.
    pub fn label(self) -> &'static str {
        match self {
            CampaignKind::Tamper => "tamper",
            CampaignKind::Replay => "replay",
            CampaignKind::Rollback => "rollback",
            CampaignKind::Sweep => "sweep",
        }
    }
}

/// Campaign parameters. `runs × faults_per_run` faults are injected per
/// engine per workload, all derived deterministically from `seed`.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Fault family to inject.
    pub kind: CampaignKind,
    /// Randomized runs per engine per workload.
    pub runs: usize,
    /// Faults scheduled in each run.
    pub faults_per_run: usize,
    /// Master seed; every run's schedule derives from it.
    pub seed: u64,
    /// Trace scale the victim workloads run at.
    pub scale: Scale,
}

impl CampaignConfig {
    /// The default campaign: 150 runs × 8 faults ≈ 1200 randomized
    /// faults per engine per workload.
    pub fn new(kind: CampaignKind, seed: u64, scale: Scale) -> Self {
        Self {
            kind,
            runs: 150,
            faults_per_run: 8,
            seed,
            scale,
        }
    }
}

/// The engines every campaign attacks.
pub fn campaign_schemes() -> [Scheme; 3] {
    [Scheme::Pssm, Scheme::CommonCounters, Scheme::Plutus]
}

/// Aggregated campaign outcome for one (workload, engine) pair.
#[derive(Debug, Clone)]
pub struct CampaignRow {
    /// Workload name.
    pub workload: String,
    /// Scheme label.
    pub scheme: String,
    /// Faults scheduled (snapshot bookkeeping excluded).
    pub injected: u64,
    /// Faults that changed simulator state.
    pub applied: u64,
    /// Applied faults caught by a verification layer.
    pub detected: u64,
    /// Applied faults served to the core with no violation.
    pub escaped: u64,
    /// Escapes of plaintext-changing faults accepted by the
    /// value-verification fast path alone — forgery acceptances in
    /// Eq. 1's terms (see [`randomizes_plaintext`]).
    pub value_forgeries: u64,
    /// Applied faults overwritten by a writeback before verification.
    pub clobbered: u64,
    /// Applied faults never verified again before the run ended.
    pub unobserved: u64,
    /// Faults that could not change state (target absent, metadata the
    /// scheme does not keep, or a rollback to the current value).
    pub not_applied: u64,
    /// Detections per verification layer, stable label → count.
    pub layer_hist: Vec<(String, u64)>,
    /// Injection-to-detection latency of every detected fault, cycles.
    pub latencies: Vec<u64>,
}

impl CampaignRow {
    fn new(workload: &str, scheme: &Scheme) -> Self {
        Self {
            workload: workload.to_string(),
            scheme: scheme.label(),
            injected: 0,
            applied: 0,
            detected: 0,
            escaped: 0,
            value_forgeries: 0,
            clobbered: 0,
            unobserved: 0,
            not_applied: 0,
            layer_hist: Vec::new(),
            latencies: Vec::new(),
        }
    }

    /// Faults a verification layer actually ruled on.
    pub fn adjudicated(&self) -> u64 {
        self.detected + self.escaped
    }

    /// Detected fraction of adjudicated faults.
    pub fn detection_rate(&self) -> f64 {
        ratio(self.detected, self.adjudicated())
    }

    /// Escaped fraction of adjudicated faults.
    pub fn escape_rate(&self) -> f64 {
        ratio(self.escaped, self.adjudicated())
    }

    /// Measured forgery-acceptance rate of the value-verification fast
    /// path: value-verified escapes over adjudicated faults.
    pub fn forgery_rate(&self) -> f64 {
        ratio(self.value_forgeries, self.adjudicated())
    }

    /// `(min, mean, p50, max)` of the detection-latency distribution,
    /// all zero when nothing was detected.
    pub fn latency_summary(&self) -> (u64, f64, u64, u64) {
        if self.latencies.is_empty() {
            return (0, 0.0, 0, 0);
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        let sum: u64 = sorted.iter().sum();
        (
            sorted[0],
            sum as f64 / sorted.len() as f64,
            sorted[sorted.len() / 2],
            sorted[sorted.len() - 1],
        )
    }

    fn absorb(
        &mut self,
        records: &[gpu_sim::FaultRecord],
        layer_counts: &mut HashMap<String, u64>,
    ) {
        for r in records {
            self.injected += 1;
            match r.outcome {
                FaultOutcome::Detected { layer, latency } => {
                    self.applied += 1;
                    self.detected += 1;
                    self.latencies.push(latency);
                    *layer_counts.entry(layer.label().to_string()).or_insert(0) += 1;
                }
                FaultOutcome::Escaped { value_verified } => {
                    self.applied += 1;
                    self.escaped += 1;
                    if value_verified && randomizes_plaintext(r.kind) {
                        self.value_forgeries += 1;
                    }
                }
                FaultOutcome::Clobbered => {
                    self.applied += 1;
                    self.clobbered += 1;
                }
                FaultOutcome::Unobserved => {
                    self.applied += 1;
                    self.unobserved += 1;
                }
                FaultOutcome::NotApplied => self.not_applied += 1,
            }
        }
    }
}

/// Fault kinds whose applied effect changes the plaintext served to the
/// core — the only kinds whose value-verified escapes count as forgery
/// acceptances under Eq. 1. A tampered MAC or BMT node leaves the data
/// path honest (the tampered structure simply goes unconsulted on a
/// value-verified read), so such escapes are expected behaviour, not
/// forgeries: Eq. 1 bounds the chance that *non-authentic* plaintext
/// clears the 3-of-4 value screen.
fn randomizes_plaintext(kind: &str) -> bool {
    matches!(
        kind,
        "corrupt_data" | "replay_data" | "rollback_counter" | "rollback_compact"
    )
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Address pools a schedule draws targets from, extracted once per
/// workload trace.
struct TargetPools {
    /// Sectors resident in DRAM before the first access (initial image).
    resident: Vec<SectorAddr>,
    /// Every distinct sector the trace touches, first-seen order.
    touched: Vec<SectorAddr>,
    /// Distinct sectors the trace writes, first-seen order.
    written: Vec<SectorAddr>,
    /// Total accesses in the trace.
    accesses: u64,
}

impl TargetPools {
    fn of(trace: &Trace) -> Self {
        let resident: Vec<SectorAddr> = trace.initial_image.iter().map(|(a, _)| *a).collect();
        let mut touched = Vec::new();
        let mut written = Vec::new();
        let mut seen_touched = std::collections::HashSet::new();
        let mut seen_written = std::collections::HashSet::new();
        for a in &trace.accesses {
            if seen_touched.insert(a.addr.raw()) {
                touched.push(a.addr);
            }
            if a.kind == gpu_sim::AccessKind::Write && seen_written.insert(a.addr.raw()) {
                written.push(a.addr);
            }
        }
        Self {
            resident,
            touched,
            written,
            accesses: trace.accesses.len() as u64,
        }
    }

    fn pick(pool: &[SectorAddr], fallback: &[SectorAddr], rng: &mut StdRng) -> Option<SectorAddr> {
        let pool = if pool.is_empty() { fallback } else { pool };
        if pool.is_empty() {
            None
        } else {
            Some(pool[rng.gen_range(0..pool.len())])
        }
    }
}

/// Builds one randomized schedule. Returns the schedule and the number
/// of scheduled faults (snapshot bookkeeping excluded).
fn build_schedule(
    kind: CampaignKind,
    pools: &TargetPools,
    faults_per_run: usize,
    rng: &mut StdRng,
) -> (FaultSchedule, u64) {
    let mut schedule = FaultSchedule::new();
    let mut injected = 0u64;
    if pools.accesses < 2 {
        return (schedule, injected);
    }
    for _ in 0..faults_per_run {
        let sub = match kind {
            CampaignKind::Sweep => match rng.gen_range(0..3u32) {
                0 => CampaignKind::Tamper,
                1 => CampaignKind::Replay,
                _ => CampaignKind::Rollback,
            },
            k => k,
        };
        match sub {
            CampaignKind::Tamper => {
                let (addr, fk) = match rng.gen_range(0..3u32) {
                    0 => {
                        // Corrupt ciphertext of a sector known to be in
                        // DRAM (initial image), with a nonzero mask.
                        let Some(addr) = TargetPools::pick(&pools.resident, &pools.touched, rng)
                        else {
                            continue;
                        };
                        let mut mask = [0u8; 32];
                        mask[rng.gen_range(0..32usize)] = rng.gen_range(1..=255u32) as u8;
                        (addr, FaultKind::CorruptData { mask })
                    }
                    1 => {
                        let Some(addr) = TargetPools::pick(&pools.touched, &pools.resident, rng)
                        else {
                            continue;
                        };
                        (addr, FaultKind::Metadata(MetaFault::TamperMac))
                    }
                    _ => {
                        let Some(addr) = TargetPools::pick(&pools.touched, &pools.resident, rng)
                        else {
                            continue;
                        };
                        (addr, FaultKind::Metadata(MetaFault::TamperBmtNode))
                    }
                };
                schedule.push(ScheduledFault {
                    trigger: FaultTrigger::AtAccess(rng.gen_range(1..pools.accesses)),
                    addr,
                    kind: fk,
                });
                injected += 1;
            }
            CampaignKind::Replay => {
                // Snapshot early, restore later: only pairs where the
                // sector was rewritten in between actually change state.
                let Some(addr) = TargetPools::pick(&pools.written, &pools.touched, rng) else {
                    continue;
                };
                let snap_at = rng.gen_range(1..pools.accesses);
                let replay_at = rng.gen_range(snap_at..=pools.accesses);
                schedule.push(ScheduledFault {
                    trigger: FaultTrigger::AtAccess(snap_at),
                    addr,
                    kind: FaultKind::SnapshotData,
                });
                schedule.push(ScheduledFault {
                    trigger: FaultTrigger::AtAccess(replay_at),
                    addr,
                    kind: FaultKind::ReplayData,
                });
                injected += 1;
            }
            CampaignKind::Rollback => {
                let Some(addr) = TargetPools::pick(&pools.written, &pools.touched, rng) else {
                    continue;
                };
                let fk = if rng.gen_range(0..2u32) == 0 {
                    FaultKind::Metadata(MetaFault::RollbackCounter {
                        value: rng.gen_range(0..=255u32) as u8,
                    })
                } else {
                    FaultKind::Metadata(MetaFault::RollbackCompact {
                        value: rng.gen_range(0..8u32) as u8,
                    })
                };
                schedule.push(ScheduledFault {
                    trigger: FaultTrigger::AtAccess(rng.gen_range(1..pools.accesses)),
                    addr,
                    kind: fk,
                });
                injected += 1;
            }
            CampaignKind::Sweep => unreachable!("sweep resolved above"),
        }
    }
    (schedule, injected)
}

/// Runs the campaign on a default-sized pool: every workload × every
/// security engine × `runs` seeded runs. See [`run_campaign_on`].
///
/// # Panics
///
/// Panics if a campaign job panics.
pub fn run_campaign(
    workloads: &[WorkloadSpec],
    campaign: &CampaignConfig,
    cfg: &GpuConfig,
) -> Vec<CampaignRow> {
    run_campaign_on(&Executor::new(None), workloads, campaign, cfg)
}

/// The campaign fan-out on a caller-supplied pool. Traces are prepared
/// once per workload (phase 1), then every (workload, engine, run)
/// triple becomes one independent job (phase 2) whose randomized
/// schedule derives from [`plutus_exec::derive_seed`] — so rows
/// aggregate identically for any worker count.
///
/// # Panics
///
/// Panics if a campaign job panics.
pub fn run_campaign_on(
    exec: &Executor,
    workloads: &[WorkloadSpec],
    campaign: &CampaignConfig,
    cfg: &GpuConfig,
) -> Vec<CampaignRow> {
    let schemes = campaign_schemes();

    // Phase 1: trace + target-pool extraction, once per workload.
    let prep_jobs: Vec<Job<'_, (Trace, TargetPools)>> = workloads
        .iter()
        .map(|w| {
            Job::new(w.name, move || {
                let trace = w.trace(campaign.scale);
                let pools = TargetPools::of(&trace);
                (trace, pools)
            })
        })
        .collect();
    let prepped = expect_all(exec.run(prep_jobs), "campaign trace preparation");

    // Phase 2: one job per (workload, engine, run); each returns the
    // run's fault records for submission-order aggregation below.
    let mut run_jobs: Vec<Job<'_, Vec<FaultRecord>>> = Vec::new();
    for (wi, w) in workloads.iter().enumerate() {
        let (trace, pools) = &prepped[wi];
        for (si, scheme) in schemes.iter().enumerate() {
            for run in 0..campaign.runs {
                run_jobs.push(Job::new(
                    format!("{}/{}/run{run}", w.name, scheme.label()),
                    move || {
                        let mut rng = StdRng::seed_from_u64(plutus_exec::derive_seed(
                            campaign.seed,
                            wi,
                            si,
                            run,
                        ));
                        let (schedule, _) =
                            build_schedule(campaign.kind, pools, campaign.faults_per_run, &mut rng);
                        if schedule.is_empty() {
                            return Vec::new();
                        }
                        let factory = scheme.factory();
                        let mut sim = Simulator::new(cfg.clone(), trace.clone(), factory.as_ref());
                        sim.set_fault_schedule(schedule);
                        sim.run().stats.fault_records
                    },
                ));
            }
        }
    }
    let mut records = expect_all(exec.run(run_jobs), "campaign run").into_iter();

    // Deterministic submission-order assembly: the same loop nest the
    // jobs were pushed in.
    let mut out = Vec::new();
    for w in workloads {
        for scheme in &schemes {
            let mut row = CampaignRow::new(w.name, scheme);
            let mut layer_counts: HashMap<String, u64> = HashMap::new();
            for _ in 0..campaign.runs {
                let recs = records
                    .next()
                    .expect("one record set per submitted run job");
                row.absorb(&recs, &mut layer_counts);
            }
            let mut hist: Vec<(String, u64)> = layer_counts.into_iter().collect();
            hist.sort();
            row.layer_hist = hist;
            out.push(row);
        }
    }
    out
}

/// One empirical-vs-analytic Eq. 1 comparison (paper Section IV-C).
#[derive(Debug, Clone)]
pub struct Eq1Check {
    /// Workload name.
    pub workload: String,
    /// Scheme label.
    pub scheme: String,
    /// Faults a verification layer ruled on.
    pub adjudicated: u64,
    /// Value-verification forgery acceptances among them.
    pub forgeries: u64,
    /// Measured acceptance rate.
    pub empirical: f64,
    /// Analytic Eq. 1 bound the measurement must not exceed.
    pub bound: f64,
}

impl Eq1Check {
    /// True when the measurement respects the analytic bound.
    pub fn holds(&self) -> bool {
        self.empirical <= self.bound
    }
}

/// The analytic Eq. 1 forgery bound at the default value-cache design
/// point: `P(X ≥ x)` for one 128-bit unit under a tampered decrypt.
pub fn eq1_bound() -> f64 {
    let vc = ValueCacheConfig::default();
    let p = tamper_hit_probability(vc.entries, vc.effective_bits());
    binomial_tail(
        VALUES_PER_UNIT,
        plutus_min_hits(vc.entries, vc.effective_bits()),
        p,
    )
}

/// Extracts an [`Eq1Check`] per row of a value-verifying engine.
pub fn eq1_checks(rows: &[CampaignRow]) -> Vec<Eq1Check> {
    let bound = eq1_bound();
    rows.iter()
        .filter(|r| {
            r.scheme == Scheme::Plutus.label() || r.scheme == Scheme::ValueVerifyOnly.label()
        })
        .map(|r| Eq1Check {
            workload: r.workload.clone(),
            scheme: r.scheme.clone(),
            adjudicated: r.adjudicated(),
            forgeries: r.value_forgeries,
            empirical: r.forgery_rate(),
            bound,
        })
        .collect()
}

/// Renders campaign rows as a JSON document.
pub fn campaign_json(rows: &[CampaignRow]) -> Json {
    Json::Array(
        rows.iter()
            .map(|r| {
                let (lat_min, lat_mean, lat_p50, lat_max) = r.latency_summary();
                let hist = r
                    .layer_hist
                    .iter()
                    .fold(Json::object(), |o, (k, v)| o.set(k, *v));
                Json::object()
                    .set("workload", r.workload.as_str())
                    .set("scheme", r.scheme.as_str())
                    .set("injected", r.injected)
                    .set("applied", r.applied)
                    .set("detected", r.detected)
                    .set("escaped", r.escaped)
                    .set("value_forgeries", r.value_forgeries)
                    .set("clobbered", r.clobbered)
                    .set("unobserved", r.unobserved)
                    .set("not_applied", r.not_applied)
                    .set("detection_rate", r.detection_rate())
                    .set("escape_rate", r.escape_rate())
                    .set("forgery_rate", r.forgery_rate())
                    .set("layer_histogram", hist)
                    .set("latency_min", lat_min)
                    .set("latency_mean", lat_mean)
                    .set("latency_p50", lat_p50)
                    .set("latency_max", lat_max)
            })
            .collect(),
    )
}

/// Renders campaign rows as CSV (one row per workload × engine).
pub fn campaign_csv(rows: &[CampaignRow]) -> String {
    let mut out = String::from(
        "workload,scheme,injected,applied,detected,escaped,value_forgeries,clobbered,\
         unobserved,not_applied,detection_rate,escape_rate,latency_mean,latency_p50,latency_max\n",
    );
    for r in rows {
        let (_, lat_mean, lat_p50, lat_max) = r.latency_summary();
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{:.6},{:.6},{:.1},{},{}\n",
            r.workload,
            r.scheme,
            r.injected,
            r.applied,
            r.detected,
            r.escaped,
            r.value_forgeries,
            r.clobbered,
            r.unobserved,
            r.not_applied,
            r.detection_rate(),
            r.escape_rate(),
            lat_mean,
            lat_p50,
            lat_max
        ));
    }
    out
}

/// Writes campaign results as JSON and CSV under `target/experiments/`,
/// returning the JSON path.
///
/// # Errors
///
/// Returns any I/O error.
pub fn save_campaign(name: &str, rows: &[CampaignRow]) -> std::io::Result<PathBuf> {
    let dir = Path::new("target/experiments");
    std::fs::create_dir_all(dir)?;
    let json_path = dir.join(format!("{name}.json"));
    plutus_telemetry::atomic_write(&json_path, campaign_json(rows).to_string_pretty())?;
    plutus_telemetry::atomic_write(dir.join(format!("{name}.csv")), campaign_csv(rows))?;
    Ok(json_path)
}

/// Renders the per-(workload, engine) campaign table.
pub fn campaign_table(rows: &[CampaignRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14}{:<18}{:>9}{:>9}{:>9}{:>9}{:>7}{:>9}{:>11}{:>10}",
        "workload",
        "scheme",
        "injected",
        "applied",
        "detected",
        "escaped",
        "other",
        "det-rate",
        "lat-p50",
        "layers"
    );
    for r in rows {
        let (_, _, lat_p50, _) = r.latency_summary();
        let layers = r
            .layer_hist
            .iter()
            .map(|(k, v)| format!("{k}:{v}"))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(
            out,
            "{:<14}{:<18}{:>9}{:>9}{:>9}{:>9}{:>7}{:>8.1}%{:>11}  {}",
            r.workload,
            r.scheme,
            r.injected,
            r.applied,
            r.detected,
            r.escaped,
            r.clobbered + r.unobserved + r.not_applied,
            r.detection_rate() * 100.0,
            lat_p50,
            layers
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::by_name;

    fn tiny_campaign(kind: CampaignKind) -> CampaignConfig {
        CampaignConfig {
            kind,
            runs: 3,
            faults_per_run: 4,
            seed: 7,
            scale: Scale::Test,
        }
    }

    #[test]
    fn campaign_is_deterministic_per_seed() {
        let w = [by_name("bfs").unwrap()];
        let cfg = GpuConfig::test_small();
        let a = run_campaign(&w, &tiny_campaign(CampaignKind::Tamper), &cfg);
        let b = run_campaign(&w, &tiny_campaign(CampaignKind::Tamper), &cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (x.injected, x.detected, x.escaped, x.not_applied),
                (y.injected, y.detected, y.escaped, y.not_applied),
                "{}/{} not reproducible",
                x.workload,
                x.scheme
            );
        }
    }

    #[test]
    fn tamper_campaign_detects_and_never_forges() {
        let w = [by_name("bfs").unwrap()];
        let cfg = GpuConfig::test_small();
        let rows = run_campaign(&w, &tiny_campaign(CampaignKind::Sweep), &cfg);
        assert_eq!(rows.len(), campaign_schemes().len());
        let total_detected: u64 = rows.iter().map(|r| r.detected).sum();
        assert!(total_detected > 0, "campaign must catch something");
        for check in eq1_checks(&rows) {
            assert!(
                check.holds(),
                "{}/{}: empirical {} > bound {}",
                check.workload,
                check.scheme,
                check.empirical,
                check.bound
            );
        }
        // Detected faults carry the detecting layer and a latency sample.
        for r in &rows {
            let hist_total: u64 = r.layer_hist.iter().map(|(_, v)| v).sum();
            assert_eq!(hist_total, r.detected, "{}: histogram mismatch", r.scheme);
            assert_eq!(r.latencies.len() as u64, r.detected);
        }
    }

    #[test]
    fn reports_serialize() {
        let rows = vec![CampaignRow {
            layer_hist: vec![("mac".into(), 2)],
            latencies: vec![10, 30],
            injected: 4,
            applied: 3,
            detected: 2,
            escaped: 0,
            ..CampaignRow::new("bfs", &Scheme::Plutus)
        }];
        let json = campaign_json(&rows).to_string_pretty();
        assert!(json.contains("\"detection_rate\""));
        assert!(json.contains("\"mac\": 2"));
        let csv = campaign_csv(&rows);
        assert!(csv.starts_with("workload,scheme"));
        assert!(csv.contains("bfs,plutus"));
    }

    #[test]
    fn eq1_bound_matches_design_point() {
        // 256 entries × 28 bits, 3-of-4: the bound is strictly positive
        // and far below 1.
        let b = eq1_bound();
        assert!(b > 0.0 && b < 1e-10, "bound {b}");
    }
}
