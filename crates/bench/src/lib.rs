//! Experiment harness for the Plutus (HPCA 2023) reproduction: shared
//! runner, energy model, and report formatting used by the `experiments`
//! binary and the timing benches.
//!
//! Run `cargo run --release -p plutus-bench --bin experiments -- all` to
//! regenerate every paper table and figure; see `EXPERIMENTS.md` at the
//! repository root for the measured-vs-paper record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod baseline;
pub mod campaign;
pub mod cipher_bench;
pub mod energy;
pub mod obsdiff;
pub mod report;
pub mod runner;
pub mod trace_export;

pub use baseline::{
    bench_snapshot, bench_snapshot_with, compare_bench, BenchProvenance, BENCH_SCHEMA,
};
pub use campaign::{
    campaign_csv, campaign_json, campaign_schemes, campaign_table, eq1_bound, eq1_checks,
    run_campaign, run_campaign_on, save_campaign, CampaignConfig, CampaignKind, CampaignRow,
    Eq1Check,
};
pub use cipher_bench::{
    cipher_bench_gate, cipher_bench_json, cipher_bench_table, run_cipher_bench, CipherBenchRow,
};
pub use energy::EnergyModel;
pub use obsdiff::{diff_run_dirs, manifest_compat, obs_diff_table, DiffRow, ObsDiff};
pub use report::{
    cpi_stack_table, degenerate_warning, degenerate_workloads, figure_report, ledger_csv,
    ledger_folded, ledger_gate, ledger_json, matrix_table, pct_change, save_json, LEDGER_SCHEMA,
};
pub use runner::{
    geomean, recovery_schemes, run_matrix, run_matrix_with_telemetry, run_one, run_one_traced,
    run_one_with_telemetry, run_trace, run_with_factory, try_run_matrix, try_run_matrix_on,
    try_run_matrix_traced_on, Measurement, RunnerError, Scheme, TracedRun,
};
pub use trace_export::{attribution_table, chrome_trace, collapsed_stack};
