//! The perf-regression baseline harness: canonical benchmark snapshots
//! (`--bench-out`) and the tolerance-gated comparison (`--compare`) that
//! CI runs against the committed `BENCH_<pr>.json`.
//!
//! Only regressions in the *bad* direction fail a comparison: an IPC
//! drop, a traffic or overhead rise, a latency rise. Improvements pass
//! silently — the snapshot is a floor, not a pin.

use crate::report::degenerate_workloads;
use crate::runner::Measurement;
use plutus_telemetry::Json;

/// Schema tag stamped into every snapshot so future readers can detect
/// incompatible layouts instead of mis-parsing them.
pub const BENCH_SCHEMA: &str = "plutus-bench/v1";

/// Provenance embedded in a snapshot by [`bench_snapshot_with`]: the
/// knobs that make two snapshots comparable at all. [`compare_bench`]
/// refuses to diff snapshots whose provenance disagrees — a scalar-vs-
/// AES-NI comparison or a cross-seed comparison is not a regression
/// signal, it is two different experiments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchProvenance {
    /// The `--seed` the run used.
    pub seed: u64,
    /// Active crypto backend label (e.g. `"scalar"`, `"aes-ni"`).
    pub crypto_backend: String,
    /// Workspace version that produced the snapshot.
    pub version: String,
}

impl BenchProvenance {
    fn to_json(&self) -> Json {
        Json::object()
            .set("seed", self.seed)
            .set("crypto_backend", self.crypto_backend.as_str())
            .set("version", self.version.as_str())
    }
}

/// Builds the canonical perf snapshot for a matrix of measurements:
/// per (workload, scheme) entry the IPC, normalized IPC, cycle count,
/// per-class DRAM bytes, metadata overhead, and latency figures the
/// regression gate compares. A top-level `degenerate_norm_ipc` array
/// names every workload whose schemes all finished in an identical
/// cycle count — the state where normalized IPC reads 1.0 everywhere
/// and the snapshot carries no real signal. ([`compare_bench`] only
/// reads known fields, so older baselines without it still compare.)
pub fn bench_snapshot(measurements: &[Measurement]) -> Json {
    snapshot_impl(measurements, None)
}

/// [`bench_snapshot`] with embedded [`BenchProvenance`]. Snapshots
/// without provenance (older baselines) still compare against anything;
/// once both sides carry it, mismatched seeds or crypto backends make
/// [`compare_bench`] fail loudly instead of reporting nonsense deltas.
pub fn bench_snapshot_with(measurements: &[Measurement], provenance: &BenchProvenance) -> Json {
    snapshot_impl(measurements, Some(provenance))
}

fn snapshot_impl(measurements: &[Measurement], provenance: Option<&BenchProvenance>) -> Json {
    let mut entries = Vec::new();
    for m in measurements {
        let mut classes = Json::object();
        for (label, bytes) in &m.class_bytes {
            classes = classes.set(label, *bytes);
        }
        entries.push(
            Json::object()
                .set("workload", m.workload.as_str())
                .set("scheme", m.scheme.as_str())
                .set("ipc", m.ipc)
                .set("norm_ipc", m.norm_ipc)
                .set("cycles", m.cycles)
                .set("total_bytes", m.total_bytes)
                .set("metadata_bytes", m.metadata_bytes)
                .set("metadata_overhead_pct", overhead_pct(m))
                .set("class_bytes", classes)
                .set("avg_fill_latency", m.avg_fill_latency)
                .set("detection_latency_mean", m.detection_latency_mean),
        );
    }
    let mut doc = Json::object()
        .set("schema", BENCH_SCHEMA)
        .set(
            "degenerate_norm_ipc",
            Json::Array(
                degenerate_workloads(measurements)
                    .into_iter()
                    .map(Json::from)
                    .collect(),
            ),
        )
        .set("entries", Json::Array(entries));
    if let Some(p) = provenance {
        doc = doc.set("provenance", p.to_json());
    }
    doc
}

fn overhead_pct(m: &Measurement) -> f64 {
    if m.total_bytes == 0 {
        0.0
    } else {
        m.metadata_bytes as f64 / m.total_bytes as f64 * 100.0
    }
}

/// Compares a current snapshot against a baseline snapshot. Returns one
/// human-readable line per regression beyond `tolerance` (a fraction:
/// 0.02 = 2%); an empty vector means the gate passes. Baseline entries
/// missing from the current snapshot are regressions (coverage loss);
/// new entries in the current snapshot are not (the next snapshot
/// refresh picks them up).
///
/// # Errors
///
/// Returns `Err` when either document fails to parse or does not carry
/// the [`BENCH_SCHEMA`] layout.
pub fn compare_bench(current: &str, baseline: &str, tolerance: f64) -> Result<Vec<String>, String> {
    check_provenance(current, baseline)?;
    let cur = parse_snapshot(current, "current")?;
    let base = parse_snapshot(baseline, "baseline")?;
    let mut regressions = Vec::new();
    for (key, base_entry) in &base {
        let Some(cur_entry) = cur.iter().find(|(k, _)| k == key).map(|(_, e)| e) else {
            regressions.push(format!("{key}: missing from current snapshot"));
            continue;
        };
        // Higher is better.
        for metric in ["ipc", "norm_ipc"] {
            check(
                &mut regressions,
                key,
                metric,
                num(cur_entry, metric),
                num(base_entry, metric),
                tolerance,
                Direction::HigherIsBetter,
            );
        }
        // Lower is better.
        for metric in [
            "cycles",
            "total_bytes",
            "metadata_bytes",
            "metadata_overhead_pct",
            "avg_fill_latency",
            "detection_latency_mean",
        ] {
            check(
                &mut regressions,
                key,
                metric,
                num(cur_entry, metric),
                num(base_entry, metric),
                tolerance,
                Direction::LowerIsBetter,
            );
        }
        if let (Some(Json::Object(base_classes)), cur_classes) =
            (base_entry.get("class_bytes"), cur_entry.get("class_bytes"))
        {
            for (label, base_bytes) in base_classes {
                let cur_bytes = cur_classes
                    .and_then(|c| c.get(label))
                    .and_then(Json::as_f64);
                check(
                    &mut regressions,
                    key,
                    &format!("class_bytes.{label}"),
                    cur_bytes,
                    base_bytes.as_f64(),
                    tolerance,
                    Direction::LowerIsBetter,
                );
            }
        }
    }
    Ok(regressions)
}

#[derive(Clone, Copy)]
enum Direction {
    HigherIsBetter,
    LowerIsBetter,
}

/// Appends a regression line when `cur` is worse than `base` by more
/// than `tolerance` (relative to the baseline; a zero baseline only
/// flags a lower-is-better metric that became nonzero).
fn check(
    out: &mut Vec<String>,
    key: &str,
    metric: &str,
    cur: Option<f64>,
    base: Option<f64>,
    tolerance: f64,
    dir: Direction,
) {
    let (Some(cur), Some(base)) = (cur, base) else {
        if base.is_some() {
            out.push(format!(
                "{key}: metric '{metric}' missing from current snapshot"
            ));
        }
        return;
    };
    // A NaN (or infinite) value compares false against every threshold,
    // which would silently disarm the gate — treat it as a failure
    // instead of a pass.
    if !cur.is_finite() || !base.is_finite() {
        out.push(format!(
            "{key}: {metric} is not finite ({base} -> {cur}); \
             refusing to gate on a NaN/infinite metric"
        ));
        return;
    }
    let regressed = match dir {
        Direction::HigherIsBetter => cur < base * (1.0 - tolerance),
        Direction::LowerIsBetter => {
            if base == 0.0 {
                cur > 0.0 && tolerance < 1.0
            } else {
                cur > base * (1.0 + tolerance)
            }
        }
    };
    if regressed {
        let arrow = match dir {
            Direction::HigherIsBetter => "dropped",
            Direction::LowerIsBetter => "rose",
        };
        out.push(format!(
            "{key}: {metric} {arrow} beyond {:.1}% tolerance ({base:.4} -> {cur:.4})",
            tolerance * 100.0
        ));
    }
}

fn num(entry: &Json, metric: &str) -> Option<f64> {
    entry.get(metric).and_then(Json::as_f64)
}

/// Refuses to compare snapshots whose embedded provenance disagrees on
/// seed or crypto backend. A snapshot without provenance (pre-v1.1
/// baselines) compares against anything — the check only arms once
/// both documents carry it.
fn check_provenance(current: &str, baseline: &str) -> Result<(), String> {
    let (Ok(cur), Ok(base)) = (Json::parse(current), Json::parse(baseline)) else {
        return Ok(()); // parse_snapshot reports the real error
    };
    let (Some(cur_p), Some(base_p)) = (cur.get("provenance"), base.get("provenance")) else {
        return Ok(());
    };
    for field in ["seed", "crypto_backend"] {
        let c = cur_p.get(field).cloned().unwrap_or(Json::Null);
        let b = base_p.get(field).cloned().unwrap_or(Json::Null);
        if c != b {
            return Err(format!(
                "provenance mismatch: {field} differs between snapshots \
                 ({} vs {}); these runs are not comparable",
                c.to_string_compact(),
                b.to_string_compact()
            ));
        }
    }
    Ok(())
}

/// Parses a snapshot document into `(workload/scheme, entry)` pairs.
fn parse_snapshot(text: &str, what: &str) -> Result<Vec<(String, Json)>, String> {
    let doc = Json::parse(text).map_err(|e| format!("{what} snapshot: {e}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(BENCH_SCHEMA) => {}
        other => {
            return Err(format!(
                "{what} snapshot: expected schema '{BENCH_SCHEMA}', found {other:?}"
            ))
        }
    }
    let entries = doc
        .get("entries")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{what} snapshot: missing 'entries' array"))?;
    let mut out = Vec::new();
    for e in entries {
        let workload = e
            .get("workload")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{what} snapshot: entry missing 'workload'"))?;
        let scheme = e
            .get("scheme")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{what} snapshot: entry missing 'scheme'"))?;
        out.push((format!("{workload}/{scheme}"), e.clone()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_measurement(ipc: f64, total: u64, meta: u64) -> Measurement {
        Measurement {
            workload: "w".into(),
            scheme: "plutus".into(),
            ipc,
            norm_ipc: 0.9,
            cycles: 1000,
            total_bytes: total,
            metadata_bytes: meta,
            class_bytes: vec![("data".into(), total - meta), ("mac".into(), meta)],
            engine_stats: Vec::new(),
            avg_fill_latency: 120.0,
            detection_latency_mean: 0.0,
            cpi_stack: Vec::new(),
            ledger_partitions: Vec::new(),
        }
    }

    #[test]
    fn snapshot_carries_schema_and_entries() {
        let snap = bench_snapshot(&[sample_measurement(1.5, 1000, 200)]);
        assert_eq!(snap.get("schema").unwrap().as_str(), Some(BENCH_SCHEMA));
        let entries = snap.get("entries").unwrap().as_array().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(
            entries[0].get("metadata_overhead_pct").unwrap().as_f64(),
            Some(20.0)
        );
    }

    #[test]
    fn snapshot_flags_degenerate_workloads() {
        // Two schemes of workload "w" with the identical cycle count.
        let mut baseline = sample_measurement(1.5, 1000, 200);
        baseline.scheme = "no-security".into();
        let snap = bench_snapshot(&[baseline, sample_measurement(1.5, 1000, 200)]);
        let deg = snap.get("degenerate_norm_ipc").unwrap().as_array().unwrap();
        assert_eq!(deg.len(), 1);
        assert_eq!(deg[0].as_str(), Some("w"));
        // A lone entry can't be degenerate.
        let snap = bench_snapshot(&[sample_measurement(1.5, 1000, 200)]);
        let deg = snap.get("degenerate_norm_ipc").unwrap().as_array().unwrap();
        assert!(deg.is_empty());
    }

    #[test]
    fn identical_snapshots_pass() {
        let snap = bench_snapshot(&[sample_measurement(1.5, 1000, 200)]).to_string_pretty();
        assert!(compare_bench(&snap, &snap, 0.02).unwrap().is_empty());
    }

    #[test]
    fn ipc_drop_beyond_tolerance_fails() {
        let base = bench_snapshot(&[sample_measurement(1.5, 1000, 200)]).to_string_pretty();
        let cur = bench_snapshot(&[sample_measurement(1.4, 1000, 200)]).to_string_pretty();
        let regressions = compare_bench(&cur, &base, 0.02).unwrap();
        assert!(regressions.iter().any(|r| r.contains("ipc dropped")));
        // A 2% drop inside a 5% tolerance passes.
        assert!(compare_bench(&cur, &base, 0.10).unwrap().is_empty());
    }

    #[test]
    fn traffic_rise_fails_but_improvement_passes() {
        let base = bench_snapshot(&[sample_measurement(1.5, 1000, 200)]).to_string_pretty();
        let worse = bench_snapshot(&[sample_measurement(1.5, 1200, 300)]).to_string_pretty();
        let better = bench_snapshot(&[sample_measurement(1.6, 900, 150)]).to_string_pretty();
        let regressions = compare_bench(&worse, &base, 0.02).unwrap();
        assert!(regressions.iter().any(|r| r.contains("total_bytes rose")));
        assert!(regressions
            .iter()
            .any(|r| r.contains("class_bytes.mac rose")));
        assert!(compare_bench(&better, &base, 0.02).unwrap().is_empty());
    }

    #[test]
    fn missing_entry_is_a_regression() {
        let base = bench_snapshot(&[
            sample_measurement(1.5, 1000, 200),
            Measurement {
                workload: "other".into(),
                ..sample_measurement(1.0, 500, 100)
            },
        ])
        .to_string_pretty();
        let cur = bench_snapshot(&[sample_measurement(1.5, 1000, 200)]).to_string_pretty();
        let regressions = compare_bench(&cur, &base, 0.02).unwrap();
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].contains("other/plutus: missing"));
    }

    #[test]
    fn non_finite_metric_fails_the_gate() {
        // NaN compares false against every threshold; before the guard,
        // a NaN metric sailed through `--compare --tolerance` silently.
        let mut out = Vec::new();
        check(
            &mut out,
            "w/plutus",
            "ipc",
            Some(f64::NAN),
            Some(1.5),
            0.02,
            Direction::HigherIsBetter,
        );
        assert_eq!(out.len(), 1, "NaN current value must fail the gate");
        assert!(out[0].contains("not finite"));
        let mut out = Vec::new();
        check(
            &mut out,
            "w/plutus",
            "cycles",
            Some(1000.0),
            Some(f64::INFINITY),
            0.02,
            Direction::LowerIsBetter,
        );
        assert_eq!(out.len(), 1, "non-finite baseline must fail the gate");
        let mut out = Vec::new();
        check(
            &mut out,
            "w/plutus",
            "ipc",
            Some(1.5),
            Some(1.5),
            0.02,
            Direction::HigherIsBetter,
        );
        assert!(out.is_empty(), "finite equal values still pass");
    }

    #[test]
    fn provenance_mismatch_is_an_error() {
        let rows = [sample_measurement(1.5, 1000, 200)];
        let scalar = BenchProvenance {
            seed: 42,
            crypto_backend: "scalar".into(),
            version: "0.1.0".into(),
        };
        let simd = BenchProvenance {
            crypto_backend: "aes-ni".into(),
            ..scalar.clone()
        };
        let reseeded = BenchProvenance {
            seed: 7,
            ..scalar.clone()
        };
        let a = bench_snapshot_with(&rows, &scalar).to_string_pretty();
        let b = bench_snapshot_with(&rows, &simd).to_string_pretty();
        let c = bench_snapshot_with(&rows, &reseeded).to_string_pretty();
        let bare = bench_snapshot(&rows).to_string_pretty();
        // Same provenance: compares normally.
        assert!(compare_bench(&a, &a, 0.02).unwrap().is_empty());
        // Backend or seed mismatch: loud error, not a silent diff.
        let err = compare_bench(&a, &b, 0.02).unwrap_err();
        assert!(err.contains("crypto_backend"), "got: {err}");
        let err = compare_bench(&a, &c, 0.02).unwrap_err();
        assert!(err.contains("seed"), "got: {err}");
        // Provenance on one side only (older committed baselines):
        // the check stays disarmed so existing gates keep passing.
        assert!(compare_bench(&a, &bare, 0.02).unwrap().is_empty());
        assert!(compare_bench(&bare, &b, 0.02).unwrap().is_empty());
        // Version differences alone do not block comparison.
        let d = bench_snapshot_with(
            &rows,
            &BenchProvenance {
                version: "9.9.9".into(),
                ..scalar
            },
        )
        .to_string_pretty();
        assert!(compare_bench(&a, &d, 0.02).unwrap().is_empty());
    }

    #[test]
    fn schema_mismatch_is_an_error() {
        let snap = bench_snapshot(&[sample_measurement(1.5, 1000, 200)]).to_string_pretty();
        assert!(compare_bench(&snap, "{\"schema\":\"v0\",\"entries\":[]}", 0.02).is_err());
        assert!(compare_bench("not json", &snap, 0.02).is_err());
    }
}
