//! Table formatting and JSON result persistence for the experiments.

use crate::runner::{geomean, Measurement};
use plutus_telemetry::Json;
use std::fmt::Write as _;
use std::path::Path;

/// Renders a per-workload × per-scheme table of one metric.
///
/// `metric` extracts the plotted value from each measurement; `fmt` renders
/// a cell.
pub fn matrix_table(
    rows: &[Measurement],
    schemes: &[String],
    metric: impl Fn(&Measurement) -> f64,
    unit: &str,
) -> String {
    let mut workloads: Vec<String> = rows.iter().map(|r| r.workload.clone()).collect();
    workloads.sort();
    workloads.dedup();

    let mut out = String::new();
    let _ = write!(out, "{:<14}", "workload");
    for s in schemes {
        let _ = write!(out, "{s:>18}");
    }
    out.push('\n');

    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for w in &workloads {
        let _ = write!(out, "{w:<14}");
        for (i, s) in schemes.iter().enumerate() {
            match rows.iter().find(|r| &r.workload == w && &r.scheme == s) {
                Some(r) => {
                    let v = metric(r);
                    columns[i].push(v);
                    let _ = write!(out, "{v:>18.4}");
                }
                None => {
                    let _ = write!(out, "{:>18}", "-");
                }
            }
        }
        out.push('\n');
    }
    let _ = write!(out, "{:<14}", "geomean");
    for col in &columns {
        let _ = write!(out, "{:>18.4}", geomean(col.iter().copied()));
    }
    out.push('\n');
    if !unit.is_empty() {
        let _ = writeln!(out, "(values in {unit})");
    }
    out
}

/// Renders one measurement as a JSON object.
pub fn measurement_json(m: &Measurement) -> Json {
    let pairs = |kv: &[(String, u64)]| kv.iter().fold(Json::object(), |o, (k, v)| o.set(k, *v));
    Json::object()
        .set("workload", m.workload.as_str())
        .set("scheme", m.scheme.as_str())
        .set("ipc", m.ipc)
        .set("norm_ipc", m.norm_ipc)
        .set("cycles", m.cycles)
        .set("total_bytes", m.total_bytes)
        .set("metadata_bytes", m.metadata_bytes)
        .set("class_bytes", pairs(&m.class_bytes))
        .set("engine_stats", pairs(&m.engine_stats))
}

/// Writes measurements as JSON under `target/experiments/<name>.json`.
///
/// # Errors
///
/// Returns any I/O error.
pub fn save_json(name: &str, rows: &[Measurement]) -> std::io::Result<std::path::PathBuf> {
    let dir = Path::new("target/experiments");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let doc = Json::Array(rows.iter().map(measurement_json).collect());
    std::fs::write(&path, doc.to_string_pretty())?;
    Ok(path)
}

/// Percentage-change helper: `(new / old - 1) × 100`.
pub fn pct_change(new: f64, old: f64) -> f64 {
    if old == 0.0 {
        0.0
    } else {
        (new / old - 1.0) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meas(w: &str, s: &str, ipc: f64) -> Measurement {
        Measurement {
            workload: w.into(),
            scheme: s.into(),
            ipc,
            norm_ipc: ipc,
            cycles: 100,
            total_bytes: 0,
            metadata_bytes: 0,
            class_bytes: Vec::new(),
            engine_stats: Vec::new(),
            avg_fill_latency: 0.0,
            detection_latency_mean: 0.0,
        }
    }

    #[test]
    fn table_contains_workloads_schemes_and_geomean() {
        let rows = vec![meas("bfs", "pssm", 0.8), meas("bfs", "plutus", 0.95)];
        let t = matrix_table(
            &rows,
            &["pssm".into(), "plutus".into()],
            |m| m.norm_ipc,
            "normalized IPC",
        );
        assert!(t.contains("bfs"));
        assert!(t.contains("pssm"));
        assert!(t.contains("geomean"));
        assert!(t.contains("0.9500"));
    }

    #[test]
    fn missing_cells_render_dash() {
        let rows = vec![meas("bfs", "pssm", 0.8)];
        let t = matrix_table(&rows, &["pssm".into(), "plutus".into()], |m| m.norm_ipc, "");
        assert!(t.contains('-'));
    }

    #[test]
    fn pct_change_math() {
        assert!((pct_change(1.1, 1.0) - 10.0).abs() < 1e-9);
        assert_eq!(pct_change(1.0, 0.0), 0.0);
    }
}
