//! Table formatting and JSON result persistence for the experiments,
//! including the cycle-ledger consumers: CPI-stack tables, ledger
//! export documents (JSON / CSV / flamegraph collapsed stacks), the
//! conservation gate, and the normalized-IPC figure-repro report with
//! its degenerate-case detector.

use crate::runner::{geomean, Measurement};
use gpu_sim::StallBucket;
use plutus_telemetry::Json;
use std::fmt::Write as _;

/// Schema tag stamped into every ledger export document.
pub const LEDGER_SCHEMA: &str = "plutus-ledger/v1";

/// Renders a per-workload × per-scheme table of one metric.
///
/// `metric` extracts the plotted value from each measurement; `fmt` renders
/// a cell.
pub fn matrix_table(
    rows: &[Measurement],
    schemes: &[String],
    metric: impl Fn(&Measurement) -> f64,
    unit: &str,
) -> String {
    let mut workloads: Vec<String> = rows.iter().map(|r| r.workload.clone()).collect();
    workloads.sort();
    workloads.dedup();

    let mut out = String::new();
    let _ = write!(out, "{:<14}", "workload");
    for s in schemes {
        let _ = write!(out, "{s:>18}");
    }
    out.push('\n');

    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for w in &workloads {
        let _ = write!(out, "{w:<14}");
        for (i, s) in schemes.iter().enumerate() {
            match rows.iter().find(|r| &r.workload == w && &r.scheme == s) {
                Some(r) => {
                    let v = metric(r);
                    columns[i].push(v);
                    let _ = write!(out, "{v:>18.4}");
                }
                None => {
                    let _ = write!(out, "{:>18}", "-");
                }
            }
        }
        out.push('\n');
    }
    let _ = write!(out, "{:<14}", "geomean");
    for col in &columns {
        let _ = write!(out, "{:>18.4}", geomean(col.iter().copied()));
    }
    out.push('\n');
    if !unit.is_empty() {
        let _ = writeln!(out, "(values in {unit})");
    }
    out
}

/// Renders one measurement as a JSON object.
pub fn measurement_json(m: &Measurement) -> Json {
    let pairs = |kv: &[(String, u64)]| kv.iter().fold(Json::object(), |o, (k, v)| o.set(k, *v));
    Json::object()
        .set("workload", m.workload.as_str())
        .set("scheme", m.scheme.as_str())
        .set("ipc", m.ipc)
        .set("norm_ipc", m.norm_ipc)
        .set("cycles", m.cycles)
        .set("total_bytes", m.total_bytes)
        .set("metadata_bytes", m.metadata_bytes)
        .set("class_bytes", pairs(&m.class_bytes))
        .set("engine_stats", pairs(&m.engine_stats))
}

/// Writes measurements as JSON under `<report dir>/<name>.json` (the
/// `--run-dir` when one is set, `target/experiments/` otherwise).
///
/// # Errors
///
/// Returns any I/O error.
pub fn save_json(name: &str, rows: &[Measurement]) -> std::io::Result<std::path::PathBuf> {
    let dir = plutus_telemetry::report_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let doc = Json::Array(rows.iter().map(measurement_json).collect());
    plutus_telemetry::atomic_write(&path, doc.to_string_pretty())?;
    Ok(path)
}

/// Sorted, deduplicated workload names of a measurement set.
fn workload_names(rows: &[Measurement]) -> Vec<String> {
    let mut names: Vec<String> = rows.iter().map(|r| r.workload.clone()).collect();
    names.sort();
    names.dedup();
    names
}

/// Renders the CPI stack of every (workload, scheme) row: one column
/// per stall bucket, each cell the fraction of total cycles attributed
/// to that bucket (buckets sum to 1.0 under the conservation
/// invariant). Rows without a recorded ledger are skipped.
pub fn cpi_stack_table(rows: &[Measurement]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:<30}", "workload/scheme");
    for b in StallBucket::ALL {
        let _ = write!(out, "{:>16}", b.label());
    }
    out.push('\n');
    for r in rows {
        if r.cpi_stack.is_empty() {
            continue;
        }
        let total: u64 = r.cpi_stack.iter().map(|(_, c)| *c).sum();
        let denom = total.max(1) as f64;
        let _ = write!(out, "{:<30}", format!("{}/{}", r.workload, r.scheme));
        for (_, cycles) in &r.cpi_stack {
            let _ = write!(out, "{:>16.4}", *cycles as f64 / denom);
        }
        out.push('\n');
    }
    out.push_str("(fractions of total cycles x partitions; rows sum to 1.0)\n");
    out
}

/// Workloads whose schemes all finished in an identical cycle count —
/// the degenerate state where every normalized IPC reads exactly 1.0
/// and the figure reproduction is meaningless. Requires at least two
/// schemes per workload to flag anything.
pub fn degenerate_workloads(rows: &[Measurement]) -> Vec<String> {
    workload_names(rows)
        .into_iter()
        .filter(|w| {
            let cycles: Vec<u64> = rows
                .iter()
                .filter(|r| &r.workload == w)
                .map(|r| r.cycles)
                .collect();
            cycles.len() >= 2 && cycles.iter().all(|&c| c == cycles[0])
        })
        .collect()
}

/// The prominent warning block for a degenerate measurement set, or
/// `None` when at least one scheme pair differs per workload.
pub fn degenerate_warning(rows: &[Measurement]) -> Option<String> {
    let degenerate = degenerate_workloads(rows);
    if degenerate.is_empty() {
        return None;
    }
    let mut out = String::new();
    out.push_str("!!! DEGENERATE RESULT: every scheme finished in the identical cycle count on: ");
    out.push_str(&degenerate.join(", "));
    out.push('\n');
    out.push_str(
        "!!! All normalized IPCs read 1.0 — the configuration is not \
         bandwidth-bound, so security traffic is free and the figure \
         reproduction is vacuous. Increase --scale or shrink the DRAM \
         bus before trusting these numbers.\n",
    );
    Some(out)
}

/// The figure-reproduction report (paper Figs. 11-14 style): the
/// normalized-IPC table over `schemes`, per-scheme geomean slowdowns,
/// the CPI stacks behind them, and — when every scheme of a workload
/// ran in the identical cycle count — a prominent degenerate-case
/// warning.
pub fn figure_report(rows: &[Measurement], schemes: &[String]) -> String {
    let mut out = String::new();
    out.push_str("Normalized IPC (paper Figs. 11-14 style):\n");
    out.push_str(&matrix_table(
        rows,
        schemes,
        |m| m.norm_ipc,
        "IPC normalized to no security",
    ));
    for s in schemes {
        let g = geomean(rows.iter().filter(|r| &r.scheme == s).map(|r| r.norm_ipc));
        let _ = writeln!(out, "{s}: {:.1}% of insecure IPC on geomean", g * 100.0);
    }
    out.push('\n');
    out.push_str(&cpi_stack_table(rows));
    match degenerate_warning(rows) {
        Some(w) => out.push_str(&w),
        None => out.push_str("degenerate-case check OK: scheme cycle counts differ per workload\n"),
    }
    out
}

/// One ledger entry as JSON: identity, cycles, the partition-summed
/// CPI stack, and the raw per-partition bucket matrix.
fn ledger_entry_json(m: &Measurement) -> Json {
    let stack = m
        .cpi_stack
        .iter()
        .fold(Json::object(), |o, (k, v)| o.set(k, *v));
    let partitions = Json::Array(
        m.ledger_partitions
            .iter()
            .map(|p| Json::Array(p.iter().map(|&c| Json::from(c)).collect()))
            .collect(),
    );
    Json::object()
        .set("workload", m.workload.as_str())
        .set("scheme", m.scheme.as_str())
        .set("cycles", m.cycles)
        .set("cpi_stack", stack)
        .set("partitions", partitions)
}

/// The `--ledger-out` JSON document: bucket taxonomy plus one entry
/// per (workload, scheme) with the summed CPI stack and the raw
/// per-partition matrix.
pub fn ledger_json(rows: &[Measurement]) -> Json {
    Json::object()
        .set("schema", LEDGER_SCHEMA)
        .set(
            "buckets",
            Json::Array(
                StallBucket::ALL
                    .iter()
                    .map(|b| Json::from(b.label()))
                    .collect(),
            ),
        )
        .set(
            "entries",
            Json::Array(rows.iter().map(ledger_entry_json).collect()),
        )
}

/// The `--ledger-out` CSV sibling: one line per
/// (workload, scheme, partition, bucket) with the attributed cycles.
pub fn ledger_csv(rows: &[Measurement]) -> String {
    let mut out = String::from("workload,scheme,partition,bucket,cycles\n");
    for m in rows {
        for (p, buckets) in m.ledger_partitions.iter().enumerate() {
            for (b, cycles) in StallBucket::ALL.iter().zip(buckets) {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{}",
                    m.workload,
                    m.scheme,
                    p,
                    b.label(),
                    cycles
                );
            }
        }
    }
    out
}

/// Flamegraph collapsed stacks for the cycle ledger —
/// `workload;scheme;bucket cycles` lines, same format the causal-trace
/// `--trace-out` `.folded` sibling uses, so the existing flamegraph
/// tooling renders CPI stacks unchanged. Zero-cycle buckets are
/// omitted.
pub fn ledger_folded(rows: &[Measurement]) -> String {
    let mut out = String::new();
    for m in rows {
        for (label, cycles) in &m.cpi_stack {
            if *cycles > 0 {
                let _ = writeln!(out, "{};{};{label} {cycles}", m.workload, m.scheme);
            }
        }
    }
    out
}

/// The conservation gate: every partition's bucket cycles must sum to
/// exactly the run's cycle count, for every measurement. Returns one
/// line per violation; measurements without a recorded ledger are
/// violations too (the ledger must never silently disappear).
///
/// # Errors
///
/// Returns every conservation violation, one line each.
pub fn ledger_gate(rows: &[Measurement]) -> Result<(), String> {
    let mut violations = Vec::new();
    for m in rows {
        if m.ledger_partitions.is_empty() {
            violations.push(format!("{}/{}: no ledger recorded", m.workload, m.scheme));
            continue;
        }
        for (p, buckets) in m.ledger_partitions.iter().enumerate() {
            let total: u64 = buckets.iter().sum();
            if total != m.cycles {
                violations.push(format!(
                    "{}/{} partition {p}: ledger sums to {total} cycles, run took {}",
                    m.workload, m.scheme, m.cycles
                ));
            }
        }
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations.join("\n"))
    }
}

/// Percentage-change helper: `(new / old - 1) × 100`.
///
/// The division is guarded so the regression gate cannot be silently
/// disarmed: a zero or non-finite baseline against a differing current
/// value returns the appropriately-signed infinity (every `>` tolerance
/// comparison then fires), `0 → 0` reports no change, and a non-finite
/// `new` propagates as NaN for [`crate::baseline::compare_bench`] to
/// treat as a failure.
pub fn pct_change(new: f64, old: f64) -> f64 {
    if !new.is_finite() || !old.is_finite() {
        return f64::NAN;
    }
    if old == 0.0 {
        return if new == 0.0 {
            0.0
        } else if new > 0.0 {
            f64::INFINITY
        } else {
            f64::NEG_INFINITY
        };
    }
    (new / old - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meas(w: &str, s: &str, ipc: f64) -> Measurement {
        meas_cycles(w, s, ipc, 100)
    }

    fn meas_cycles(w: &str, s: &str, ipc: f64, cycles: u64) -> Measurement {
        // A two-partition ledger that conserves: issue + data_fill per
        // partition sums to `cycles`.
        let mut part = vec![0u64; gpu_sim::NUM_STALL_BUCKETS];
        part[StallBucket::Issue.idx()] = cycles / 2;
        part[StallBucket::DataFill.idx()] = cycles - cycles / 2;
        let ledger = vec![part.clone(), part];
        let mut stack = vec![0u64; gpu_sim::NUM_STALL_BUCKETS];
        for p in &ledger {
            for (acc, v) in stack.iter_mut().zip(p) {
                *acc += v;
            }
        }
        Measurement {
            workload: w.into(),
            scheme: s.into(),
            ipc,
            norm_ipc: ipc,
            cycles,
            total_bytes: 0,
            metadata_bytes: 0,
            class_bytes: Vec::new(),
            engine_stats: Vec::new(),
            avg_fill_latency: 0.0,
            detection_latency_mean: 0.0,
            cpi_stack: StallBucket::ALL
                .iter()
                .zip(stack)
                .map(|(b, c)| (b.label().to_string(), c))
                .collect(),
            ledger_partitions: ledger,
        }
    }

    #[test]
    fn table_contains_workloads_schemes_and_geomean() {
        let rows = vec![meas("bfs", "pssm", 0.8), meas("bfs", "plutus", 0.95)];
        let t = matrix_table(
            &rows,
            &["pssm".into(), "plutus".into()],
            |m| m.norm_ipc,
            "normalized IPC",
        );
        assert!(t.contains("bfs"));
        assert!(t.contains("pssm"));
        assert!(t.contains("geomean"));
        assert!(t.contains("0.9500"));
    }

    #[test]
    fn missing_cells_render_dash() {
        let rows = vec![meas("bfs", "pssm", 0.8)];
        let t = matrix_table(&rows, &["pssm".into(), "plutus".into()], |m| m.norm_ipc, "");
        assert!(t.contains('-'));
    }

    #[test]
    fn pct_change_math() {
        assert!((pct_change(1.1, 1.0) - 10.0).abs() < 1e-9);
        assert!((pct_change(0.9, 1.0) + 10.0).abs() < 1e-9);
    }

    #[test]
    fn pct_change_guards_zero_and_non_finite_inputs() {
        // A metric that appears from a zero baseline (or vanishes into
        // one) must register as an infinite change, not 0%: the old
        // `old == 0.0 → 0.0` fold let such regressions slip the gate.
        assert_eq!(pct_change(0.0, 0.0), 0.0);
        assert_eq!(pct_change(1.0, 0.0), f64::INFINITY);
        assert_eq!(pct_change(-1.0, 0.0), f64::NEG_INFINITY);
        // Non-finite inputs propagate as NaN so comparators can refuse
        // them instead of comparing false against every tolerance.
        assert!(pct_change(f64::NAN, 1.0).is_nan());
        assert!(pct_change(1.0, f64::NAN).is_nan());
        assert!(pct_change(f64::INFINITY, 1.0).is_nan());
    }

    #[test]
    fn cpi_stack_rows_render_as_fractions() {
        let rows = vec![meas("bfs", "pssm", 0.8)];
        let t = cpi_stack_table(&rows);
        assert!(t.contains("bfs/pssm"));
        assert!(t.contains("issue"));
        assert!(t.contains("data_fill"));
        assert!(t.contains("0.5000"));
    }

    #[test]
    fn degenerate_detection_needs_identical_cycles_across_schemes() {
        let degenerate = vec![
            meas_cycles("bfs", "no-security", 1.0, 100),
            meas_cycles("bfs", "pssm", 1.0, 100),
        ];
        assert_eq!(degenerate_workloads(&degenerate), vec!["bfs".to_string()]);
        assert!(degenerate_warning(&degenerate)
            .unwrap()
            .contains("DEGENERATE"));

        let healthy = vec![
            meas_cycles("bfs", "no-security", 1.0, 100),
            meas_cycles("bfs", "pssm", 0.8, 130),
        ];
        assert!(degenerate_workloads(&healthy).is_empty());
        assert!(degenerate_warning(&healthy).is_none());

        // A lone scheme can't be judged degenerate.
        let single = vec![meas_cycles("bfs", "pssm", 1.0, 100)];
        assert!(degenerate_workloads(&single).is_empty());
    }

    #[test]
    fn figure_report_flags_degenerate_and_healthy_states() {
        let schemes = vec!["pssm".to_string()];
        let degenerate = vec![
            meas_cycles("bfs", "no-security", 1.0, 100),
            meas_cycles("bfs", "pssm", 1.0, 100),
        ];
        let r = figure_report(&degenerate, &schemes);
        assert!(r.contains("Normalized IPC"));
        assert!(r.contains("DEGENERATE"));

        let healthy = vec![
            meas_cycles("bfs", "no-security", 1.0, 100),
            meas_cycles("bfs", "pssm", 0.8, 130),
        ];
        assert!(figure_report(&healthy, &schemes).contains("degenerate-case check OK"));
    }

    #[test]
    fn ledger_exports_carry_every_bucket() {
        let rows = vec![meas("bfs", "pssm", 0.8)];
        let doc = ledger_json(&rows);
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(LEDGER_SCHEMA));
        let buckets = doc.get("buckets").unwrap().as_array().unwrap();
        assert_eq!(buckets.len(), gpu_sim::NUM_STALL_BUCKETS);
        let entries = doc.get("entries").unwrap().as_array().unwrap();
        assert_eq!(entries.len(), 1);
        let parts = entries[0].get("partitions").unwrap().as_array().unwrap();
        assert_eq!(parts.len(), 2);

        let csv = ledger_csv(&rows);
        assert!(csv.starts_with("workload,scheme,partition,bucket,cycles"));
        assert!(csv.contains("bfs,pssm,1,issue,50"));

        let folded = ledger_folded(&rows);
        assert!(folded.contains("bfs;pssm;issue 100"));
        // Zero-cycle buckets stay out of the flamegraph.
        assert!(!folded.contains("mshr_full"));
    }

    #[test]
    fn ledger_gate_rejects_leaks_and_missing_ledgers() {
        let good = vec![meas("bfs", "pssm", 0.8)];
        assert!(ledger_gate(&good).is_ok());

        let mut leaking = meas("bfs", "pssm", 0.8);
        leaking.ledger_partitions[0][0] += 1;
        let err = ledger_gate(&[leaking]).unwrap_err();
        assert!(err.contains("partition 0"));
        assert!(err.contains("sums to 101"));

        let mut missing = meas("bfs", "pssm", 0.8);
        missing.ledger_partitions.clear();
        assert!(ledger_gate(&[missing])
            .unwrap_err()
            .contains("no ledger recorded"));
    }
}
