//! Regenerates every table and figure of the Plutus paper's evaluation.
//!
//! ```text
//! cargo run --release -p plutus-bench --bin experiments -- <id> [--scale test|small|paper] [--workloads a,b,c]
//! ```
//!
//! `<id>` ∈ {table1, table2, fig6, fig7, fig9, fig10, fig15, fig16, fig17,
//! fig18, fig19, fig20, fig21, fig22, figrepro, cipher_bench, all}.
//! Results print as tables and are saved as JSON under
//! `target/experiments/`. `figrepro`
//! is the normalized-IPC figure-reproduction report (Figs. 11-14 style):
//! the no-security/PSSM/common-counters/Plutus matrix with per-scheme
//! geomeans, the CPI stacks behind the numbers, and a prominent warning
//! when the result is degenerate (every scheme at norm_ipc = 1.0).
//! `cipher_bench` times the functional crypto primitives scalar vs the
//! native SIMD backend (`--assert-speedup X` gates the batched rows).
//!
//! Crypto backend: every invocation logs `crypto backend: <name>` and
//! sets the `crypto.backend_simd` gauge; `--crypto-backend
//! auto|scalar|simd` overrides the CPUID-based runtime selection
//! (`scalar` forces the portable tables, e.g. to reproduce golden files
//! on any host; `simd` fails fast when the CPU lacks AES-NI).
//!
//! Scheduling: simulator runs execute as independent jobs on a bounded
//! work-stealing pool. `--jobs N` caps the worker count (default: one
//! per available core); results are byte-identical for any `N`.
//! `--sched-stats` prints the cumulative scheduler dump (queue latency,
//! execution time, steals, per-worker utilization) on exit.
//! `--heartbeat S` prints a progress line to stderr every S seconds
//! while the pool runs (jobs done/total, the workload/scheme labels
//! currently executing, elapsed wall time). Heartbeat runs arm a soft
//! per-job watchdog: once three jobs have finished, any job still
//! executing past `--watchdog M` (default 4) times the running median
//! duration is marked `[SLOW]` in the progress line and counted in the
//! `sched.watchdog` telemetry counter; jobs are never cancelled.
//!
//! Cycle ledger: `--ledger-out <path>` writes the per-cycle stall
//! attribution of every matrix run — the JSON document (per-partition
//! bucket matrix + summed CPI stack per workload/scheme), a `.csv`
//! sibling, and a `.folded` flamegraph collapsed-stack sibling — and
//! prints the CPI-stack table. The built-in conservation gate exits
//! nonzero if any partition's buckets do not sum exactly to the run's
//! cycle count.
//!
//! Telemetry: `--metrics-out <path>` captures the full metrics registry
//! (per-class traffic counters, cache hit/miss counters, latency
//! histograms, per-run epoch snapshots, typed events) and writes it to
//! `<path>` on exit; `--metrics-format json|csv` picks the exporter
//! (default json) and `--epoch-cycles N` additionally closes an epoch
//! every N simulated cycles inside each run.
//!
//! Fault-injection campaigns: `--campaign tamper|replay|rollback|sweep`
//! replaces the experiment ids with a seeded Monte Carlo attack on every
//! security engine (`--trials R` runs × `--faults F` faults each,
//! `--seed S`), reporting detection rates, the detecting-layer
//! histogram, and detection latencies under
//! `target/experiments/campaign-<kind>.{json,csv}`. The campaign exits
//! nonzero if the measured value-verification forgery-acceptance rate
//! exceeds the analytic Eq. 1 binomial bound.
//!
//! Causal tracing: `--trace-out <path>` arms the per-access flight
//! recorder on every matrix run (sampling 1-in-N roots via
//! `--trace-sample N`, default 1 = lossless) and writes a
//! Perfetto-loadable Chrome trace to `<path>` plus flamegraph collapsed
//! stacks to `<path>.folded`, printing per-run bandwidth-attribution
//! tables on exit.
//!
//! Regression harness: `--bench-out <path>` writes the canonical perf
//! snapshot (IPC, per-class DRAM bytes, metadata overhead, latencies)
//! of every matrix experiment run; `--compare <baseline.json>` checks
//! the same snapshot against a committed baseline and exits 1 when any
//! metric regressed beyond `--tolerance <frac>` (default 0.02).
//!
//! Fail-operational campaigns: `--campaign transient` injects a seeded
//! soft-error process (`--soft-error-rate P` per fill) and retries
//! failed fills up to `--retry-limit N`, exiting nonzero if any benign
//! transient is misclassified as an attack; `--campaign crash` kills
//! runs at arbitrary cycles, restores the last metadata checkpoint
//! (`--checkpoint-cycles C` cadence), reconstructs counters against the
//! persistent MACs, and exits nonzero unless every post-recovery read
//! is bit-identical with no spurious violations. Reports land under
//! `target/experiments/campaign-{transient,crash}.{json,csv}`.
//!
//! Multi-tenant chaos: `--campaign storm` co-schedules an adversarial
//! tenant (counter-overflow write hammer + tamper/replay faults at its
//! own slab) with `--tenants N` victim tenants (default 3) under
//! per-tenant keys, rotates a victim's keys live, and crash-kills runs
//! mid-rotation. The gate exits nonzero unless victims record zero
//! violations and zero degradation-ladder freezes, victim IPC stays
//! within `--tolerance` (default 25%) of an honest baseline, the cycle
//! ledger conserves, Eq. 1 holds, and every mid-rotation crash recovers
//! bit-identical plaintext. `--campaign soak` adds seeded soft errors
//! (`--soft-error-rate`, `--retry-limit`) and more crash points;
//! `--inject-breach` deliberately faults a victim slab to prove the
//! monitors fail loudly. Reports land under
//! `target/experiments/campaign-{storm,soak}.{json,csv}`.
//!
//! Live observability: `--run-dir DIR` routes every report writer
//! (metrics, ledger, trace, bench, campaign JSON/CSV) into one
//! directory and stamps a `manifest.json` (cmdline, seed, scale,
//! workloads, crypto backend, workspace version) so runs are
//! self-describing and diffable. `--stream-out FILE|-` streams one
//! NDJSON line per closed telemetry epoch (metric deltas + typed
//! events) the moment the epoch closes; a slow consumer drops lines
//! instead of stalling the run. `--serve-metrics ADDR` exposes the
//! live registry at `http://ADDR/metrics` in Prometheus text format.
//! Storm/soak rows feed per-tenant SLO detectors (EWMA z-scores plus
//! hard IPC-floor/violation-ceiling checks); `--slo-gate` turns any
//! hard breach into a nonzero exit. `experiments obs-diff A B
//! [--tolerance F]` compares two run directories — manifests first,
//! then every shared JSON report leaf by leaf — and exits 1 on
//! regressions beyond the tolerance.

use gpu_sim::GpuConfig;
use plutus_bench::{
    attribution_table, bench_snapshot_with, campaign_table, chrome_trace, collapsed_stack,
    compare_bench, cpi_stack_table, degenerate_warning, diff_run_dirs, eq1_checks, figure_report,
    geomean, ledger_csv, ledger_folded, ledger_gate, ledger_json, matrix_table, obs_diff_table,
    recovery_schemes, run_campaign_on, run_matrix_with_telemetry, save_campaign, save_json,
    try_run_matrix_on, try_run_matrix_traced_on, BenchProvenance, CampaignConfig, CampaignKind,
    EnergyModel, Measurement, Scheme, TracedRun,
};
use plutus_core::value_analysis::analyze_trace;
use plutus_exec::Executor;
use plutus_recovery::{
    crash_gate, crash_table, run_crash_campaign_on, run_storm_campaign_observed,
    run_transient_campaign_on, save_crash_campaign, save_storm_campaign, save_transient_campaign,
    storm_gate, storm_table, transient_gate, transient_table, CrashCampaignConfig,
    StormCampaignConfig, TransientCampaignConfig,
};
use plutus_telemetry::{
    CycleClock, Event, Json, MetricsServer, SloPolicy, SloTracker, Telemetry,
    DEFAULT_TRACE_CAPACITY, MANIFEST_FILE, MANIFEST_SCHEMA,
};
use secure_mem::SecureMemConfig;
use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use workloads::{suite, Scale, WorkloadSpec};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricsFormat {
    Json,
    Csv,
}

/// Which campaign family `--campaign` selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CampaignSel {
    /// Adversarial fault injection (tamper/replay/rollback/sweep).
    Adversarial(CampaignKind),
    /// Benign soft errors with bounded retry.
    Transient,
    /// Crash injection with checkpoint restore and recovery.
    Crash,
    /// Multi-tenant overflow storm with live key rotation.
    Storm,
    /// The storm plus soft errors and more crash points.
    Soak,
}

struct Args {
    experiment: String,
    scale: Scale,
    workloads: Vec<WorkloadSpec>,
    metrics_out: Option<PathBuf>,
    metrics_format: MetricsFormat,
    epoch_cycles: Option<u64>,
    campaign: Option<CampaignSel>,
    trials: Option<usize>,
    faults_per_run: Option<usize>,
    soft_error_rate: Option<f64>,
    retry_limit: Option<u32>,
    checkpoint_cycles: Option<u64>,
    seed: u64,
    sched_stats: bool,
    trace_out: Option<PathBuf>,
    trace_sample: u64,
    bench_out: Option<PathBuf>,
    compare: Option<PathBuf>,
    tolerance: Option<f64>,
    tenants: Option<usize>,
    inject_breach: bool,
    ledger_out: Option<PathBuf>,
    assert_speedup: Option<f64>,
    /// `--serve-metrics` bind address (e.g. `127.0.0.1:9184`).
    serve_metrics: Option<String>,
    slo_gate: bool,
    /// Positional arguments after an `obs-diff` subcommand.
    obs_args: Vec<String>,
    tel: Telemetry,
    exec: Executor,
    /// Causal traces collected by `--trace-out` matrix runs.
    traces: RefCell<Vec<TracedRun>>,
    /// Measurements collected for `--bench-out` / `--compare`.
    measurements: RefCell<Vec<Measurement>>,
}

impl Args {
    /// Runs a workload×scheme matrix, instrumented when `--metrics-out`
    /// is active (sequential, so epochs stay attributable per run) and
    /// flight-recorded when `--trace-out` is active. Measurements feed
    /// the `--bench-out` / `--compare` regression harness.
    fn matrix(&self, cfg: &GpuConfig, schemes: &[Scheme]) -> Vec<Measurement> {
        let rows = if self.trace_out.is_some() {
            match try_run_matrix_traced_on(
                &self.exec,
                &self.workloads,
                schemes,
                self.scale,
                cfg,
                self.trace_sample,
                DEFAULT_TRACE_CAPACITY,
            ) {
                Ok((rows, traces)) => {
                    self.traces.borrow_mut().extend(traces);
                    rows
                }
                Err(e) => fail(&self.tel, e.to_string()),
            }
        } else if self.metrics_out.is_some() {
            run_matrix_with_telemetry(
                &self.workloads,
                schemes,
                self.scale,
                cfg,
                &self.tel,
                self.epoch_cycles,
            )
        } else {
            match try_run_matrix_on(&self.exec, &self.workloads, schemes, self.scale, cfg) {
                Ok(rows) => rows,
                Err(e) => fail(&self.tel, e.to_string()),
            }
        };
        if self.bench_out.is_some() || self.compare.is_some() || self.ledger_out.is_some() {
            self.measurements.borrow_mut().extend(rows.iter().cloned());
        }
        // The central degenerate-case gate: when every scheme of a
        // workload ran in the identical cycle count, the run is not
        // bandwidth-bound, security traffic was free, and every figure
        // built from this matrix is meaningless — print the diagnosis
        // and exit nonzero so CI cannot green-light a decoupled model.
        if let Some(warning) = degenerate_warning(&rows) {
            eprint!("{warning}");
            fail(
                &self.tel,
                "degenerate matrix: normalized IPC is 1.0 for every scheme; \
                 increase --scale (or the workload set) until the run is \
                 bandwidth-bound"
                    .into(),
            );
        }
        rows
    }

    /// Saves a measurement set, routing I/O failure through [`fail`]
    /// so the CLI exits nonzero instead of panicking.
    fn save(&self, name: &str, rows: &[Measurement]) -> PathBuf {
        match save_json(name, rows) {
            Ok(p) => p,
            Err(e) => fail(&self.tel, format!("cannot write {name} results: {e}")),
        }
    }
}

/// Logs the error to the telemetry event log, prints it, and exits
/// nonzero.
fn fail(tel: &Telemetry, message: String) -> ! {
    tel.event(Event::CliError {
        message: message.clone(),
    });
    eprintln!("error: {message}");
    std::process::exit(2);
}

fn parse_args(tel: &Telemetry) -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = String::from("all");
    let mut scale = Scale::Small;
    let mut selected: Option<Vec<String>> = None;
    let mut metrics_out = None;
    let mut metrics_format = MetricsFormat::Json;
    let mut epoch_cycles = None;
    let mut campaign = None;
    let mut trials = None;
    let mut faults_per_run = None;
    let mut soft_error_rate = None;
    let mut retry_limit = None;
    let mut checkpoint_cycles = None;
    let mut seed = 0xB00C_5EED;
    let mut jobs = None;
    let mut sched_stats = false;
    let mut trace_out = None;
    let mut trace_sample = 1u64;
    let mut bench_out = None;
    let mut compare = None;
    let mut tolerance = None;
    let mut tenants = None;
    let mut inject_breach = false;
    let mut ledger_out = None;
    let mut heartbeat = None;
    let mut watchdog = None;
    let mut assert_speedup = None;
    let mut crypto_backend = String::from("auto");
    let mut stream_out: Option<String> = None;
    let mut serve_metrics: Option<String> = None;
    let mut run_dir: Option<PathBuf> = None;
    let mut slo_gate = false;
    let mut obs_args: Vec<String> = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match argv.get(i).map(String::as_str) {
                    Some("test") => Scale::Test,
                    Some("small") => Scale::Small,
                    Some("paper") => Scale::Paper,
                    other => fail(
                        tel,
                        format!("unknown scale {other:?}; expected test|small|paper"),
                    ),
                };
            }
            "--workloads" => {
                i += 1;
                selected = Some(
                    argv.get(i)
                        .map(|s| s.split(',').map(str::to_string).collect())
                        .unwrap_or_default(),
                );
            }
            "--metrics-out" => {
                i += 1;
                match argv.get(i) {
                    Some(p) => metrics_out = Some(PathBuf::from(p)),
                    None => fail(tel, "--metrics-out requires a path".into()),
                }
            }
            "--metrics-format" => {
                i += 1;
                metrics_format = match argv.get(i).map(String::as_str) {
                    Some("json") => MetricsFormat::Json,
                    Some("csv") => MetricsFormat::Csv,
                    other => fail(
                        tel,
                        format!("unknown metrics format {other:?}; expected json|csv"),
                    ),
                };
            }
            "--epoch-cycles" => {
                i += 1;
                epoch_cycles = match argv.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(n) if n > 0 => Some(n),
                    _ => fail(tel, "--epoch-cycles requires a positive integer".into()),
                };
            }
            "--campaign" => {
                i += 1;
                campaign = match argv.get(i).map(String::as_str) {
                    Some("transient") => Some(CampaignSel::Transient),
                    Some("crash") => Some(CampaignSel::Crash),
                    Some("storm") => Some(CampaignSel::Storm),
                    Some("soak") => Some(CampaignSel::Soak),
                    Some(s) => match CampaignKind::parse(s) {
                        Some(k) => Some(CampaignSel::Adversarial(k)),
                        None => fail(
                            tel,
                            format!(
                                "unknown campaign {s:?}; expected \
                                 tamper|replay|rollback|sweep|transient|crash|storm|soak"
                            ),
                        ),
                    },
                    None => fail(tel, "--campaign requires a kind".into()),
                };
            }
            "--soft-error-rate" => {
                i += 1;
                soft_error_rate = match argv.get(i).and_then(|s| s.parse::<f64>().ok()) {
                    Some(r) if (0.0..=1.0).contains(&r) => Some(r),
                    _ => fail(
                        tel,
                        "--soft-error-rate requires a probability in [0, 1]".into(),
                    ),
                };
            }
            "--retry-limit" => {
                i += 1;
                retry_limit = match argv.get(i).and_then(|s| s.parse::<u32>().ok()) {
                    Some(n) => Some(n),
                    None => fail(tel, "--retry-limit requires an unsigned integer".into()),
                };
            }
            "--checkpoint-cycles" => {
                i += 1;
                checkpoint_cycles = match argv.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(n) if n > 0 => Some(n),
                    _ => fail(
                        tel,
                        "--checkpoint-cycles requires a positive integer".into(),
                    ),
                };
            }
            "--trials" => {
                i += 1;
                trials = match argv.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n > 0 => Some(n),
                    _ => fail(tel, "--trials requires a positive integer".into()),
                };
            }
            "--faults" => {
                i += 1;
                faults_per_run = match argv.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n > 0 => Some(n),
                    _ => fail(tel, "--faults requires a positive integer".into()),
                };
            }
            "--seed" => {
                i += 1;
                seed = match argv.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(n) => n,
                    None => fail(tel, "--seed requires an unsigned integer".into()),
                };
            }
            "--jobs" => {
                i += 1;
                jobs = match argv.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n > 0 => Some(n),
                    _ => fail(tel, "--jobs requires a positive integer".into()),
                };
            }
            "--trace-out" => {
                i += 1;
                match argv.get(i) {
                    Some(p) => trace_out = Some(PathBuf::from(p)),
                    None => fail(tel, "--trace-out requires a path".into()),
                }
            }
            "--trace-sample" => {
                i += 1;
                trace_sample = match argv.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(n) if n > 0 => n,
                    _ => fail(tel, "--trace-sample requires a positive integer".into()),
                };
            }
            "--bench-out" => {
                i += 1;
                match argv.get(i) {
                    Some(p) => bench_out = Some(PathBuf::from(p)),
                    None => fail(tel, "--bench-out requires a path".into()),
                }
            }
            "--compare" => {
                i += 1;
                match argv.get(i) {
                    Some(p) => compare = Some(PathBuf::from(p)),
                    None => fail(tel, "--compare requires a baseline snapshot path".into()),
                }
            }
            "--tolerance" => {
                i += 1;
                tolerance = match argv.get(i).and_then(|s| s.parse::<f64>().ok()) {
                    Some(t) if t >= 0.0 && t.is_finite() => Some(t),
                    _ => fail(tel, "--tolerance requires a non-negative fraction".into()),
                };
            }
            "--tenants" => {
                i += 1;
                tenants = match argv.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => Some(n),
                    _ => fail(tel, "--tenants requires a positive victim count".into()),
                };
            }
            "--inject-breach" => inject_breach = true,
            "--ledger-out" => {
                i += 1;
                match argv.get(i) {
                    Some(p) => ledger_out = Some(PathBuf::from(p)),
                    None => fail(tel, "--ledger-out requires a path".into()),
                }
            }
            "--heartbeat" => {
                i += 1;
                heartbeat = match argv.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(n) if n > 0 => Some(std::time::Duration::from_secs(n)),
                    _ => fail(
                        tel,
                        "--heartbeat requires a positive number of seconds".into(),
                    ),
                };
            }
            "--watchdog" => {
                i += 1;
                watchdog = match argv.get(i).and_then(|s| s.parse::<f64>().ok()) {
                    Some(m) if m > 0.0 && m.is_finite() => Some(m),
                    _ => fail(
                        tel,
                        "--watchdog requires a positive multiple of the median job time".into(),
                    ),
                };
            }
            "--sched-stats" => sched_stats = true,
            "--stream-out" => {
                i += 1;
                match argv.get(i) {
                    Some(p) => stream_out = Some(p.clone()),
                    None => fail(
                        tel,
                        "--stream-out requires a path (or '-' for stdout)".into(),
                    ),
                }
            }
            "--serve-metrics" => {
                i += 1;
                match argv.get(i) {
                    Some(a) => serve_metrics = Some(a.clone()),
                    None => fail(
                        tel,
                        "--serve-metrics requires a bind address (e.g. 127.0.0.1:9184)".into(),
                    ),
                }
            }
            "--run-dir" => {
                i += 1;
                match argv.get(i) {
                    Some(p) => run_dir = Some(PathBuf::from(p)),
                    None => fail(tel, "--run-dir requires a directory".into()),
                }
            }
            "--slo-gate" => slo_gate = true,
            "--crypto-backend" => {
                i += 1;
                crypto_backend = match argv.get(i).map(String::as_str) {
                    Some(s @ ("auto" | "scalar" | "simd" | "aes-ni" | "aesni")) => s.to_string(),
                    other => fail(
                        tel,
                        format!("unknown crypto backend {other:?}; expected auto|scalar|simd"),
                    ),
                };
            }
            "--assert-speedup" => {
                i += 1;
                assert_speedup = match argv.get(i).and_then(|s| s.parse::<f64>().ok()) {
                    Some(x) if x > 0.0 && x.is_finite() => Some(x),
                    _ => fail(tel, "--assert-speedup requires a positive multiple".into()),
                };
            }
            flag if flag.starts_with("--") => fail(tel, format!("unknown flag {flag}")),
            // Positionals after an `obs-diff` subcommand are its two
            // run directories; otherwise the last bare token picks the
            // experiment id (unchanged historical behavior).
            id if experiment == "obs-diff" => obs_args.push(id.to_string()),
            id => experiment = id.to_string(),
        }
        i += 1;
    }
    let all = suite();
    let workloads = match selected {
        None => all,
        Some(names) => {
            let known: Vec<&str> = all.iter().map(|w| w.name).collect();
            if let Some(bad) = names.iter().find(|n| !known.contains(&n.as_str())) {
                fail(
                    tel,
                    format!("unknown workload {bad:?}; known: {}", known.join(", ")),
                );
            }
            let picked: Vec<WorkloadSpec> = all
                .into_iter()
                .filter(|w| names.iter().any(|n| n == w.name))
                .collect();
            if picked.is_empty() {
                fail(tel, format!("no known workloads in {names:?}"));
            }
            picked
        }
    };
    // Pin the crypto backend before any cipher is constructed so every
    // run in this process is uniform, then surface the choice: one log
    // line plus the `crypto.backend_simd` gauge (1 = AES-NI active).
    match crypto_backend.as_str() {
        "auto" => {}
        "scalar" => plutus_crypto::backend::force_scalar(),
        _ => {
            if plutus_crypto::backend::detect() != plutus_crypto::CryptoBackend::AesNi {
                fail(
                    tel,
                    "--crypto-backend simd requested, but this host has no \
                     AES-NI/PCLMULQDQ support"
                        .into(),
                );
            }
            plutus_crypto::backend::force(plutus_crypto::CryptoBackend::AesNi);
        }
    }
    let active_backend = plutus_crypto::backend::active();
    eprintln!("crypto backend: {active_backend}");
    tel.gauge("crypto.backend_simd").set(u64::from(
        active_backend == plutus_crypto::CryptoBackend::AesNi,
    ));
    if slo_gate && !matches!(campaign, Some(CampaignSel::Storm | CampaignSel::Soak)) {
        fail(
            tel,
            "--slo-gate only applies to --campaign storm|soak (the SLO tracker is fed by \
             storm rows)"
                .into(),
        );
    }
    // Arm the run directory before any writer runs: every report
    // (campaign JSON/CSV, figures, metrics, ledger, trace, bench)
    // routes through `plutus_telemetry::report_dir()`/`in_run_dir`,
    // and the manifest makes the directory self-describing.
    if let Some(dir) = &run_dir {
        if let Err(e) = plutus_telemetry::set_run_dir(dir) {
            fail(tel, format!("cannot create run dir {}: {e}", dir.display()));
        }
        let manifest = build_manifest(
            &argv,
            &experiment,
            campaign,
            scale,
            &workloads,
            seed,
            jobs,
            &active_backend.to_string(),
        );
        if let Err(e) =
            plutus_telemetry::atomic_write(dir.join(MANIFEST_FILE), manifest.to_string_pretty())
        {
            fail(tel, format!("cannot write manifest: {e}"));
        }
        eprintln!("run dir: {}", dir.display());
    }
    // Start the epoch stream before any run closes an epoch, so the
    // first line of the campaign is the first line of the stream.
    if let Some(spec) = &stream_out {
        let sink: Box<dyn std::io::Write + Send> = if spec == "-" {
            Box::new(std::io::stdout())
        } else {
            let path = plutus_telemetry::in_run_dir(Path::new(spec));
            match std::fs::File::create(&path) {
                Ok(f) => Box::new(f),
                Err(e) => fail(tel, format!("cannot open stream {}: {e}", path.display())),
            }
        };
        if let Err(e) = tel.stream_to(sink) {
            fail(tel, format!("cannot start epoch stream: {e}"));
        }
    }
    let exec = Executor::with_telemetry(jobs, tel.clone());
    if let Some(interval) = heartbeat {
        exec.set_heartbeat(interval);
        // The watchdog observes from the heartbeat monitor thread, so
        // it defaults on (4x the running median) whenever progress
        // lines are requested; `--watchdog M` overrides the multiple.
        exec.set_watchdog(watchdog.unwrap_or(4.0));
    } else if let Some(multiple) = watchdog {
        fail(
            tel,
            format!("--watchdog {multiple} has no effect without --heartbeat"),
        );
    }
    Args {
        experiment,
        scale,
        workloads,
        metrics_out: metrics_out.map(plutus_telemetry::in_run_dir),
        metrics_format,
        epoch_cycles,
        campaign,
        trials,
        faults_per_run,
        soft_error_rate,
        retry_limit,
        checkpoint_cycles,
        seed,
        sched_stats,
        trace_out: trace_out.map(plutus_telemetry::in_run_dir),
        trace_sample,
        bench_out: bench_out.map(plutus_telemetry::in_run_dir),
        compare,
        tolerance,
        tenants,
        inject_breach,
        ledger_out: ledger_out.map(plutus_telemetry::in_run_dir),
        assert_speedup,
        serve_metrics,
        slo_gate,
        obs_args,
        tel: tel.clone(),
        exec,
        traces: RefCell::new(Vec::new()),
        measurements: RefCell::new(Vec::new()),
    }
}

/// The `manifest.json` document for a `--run-dir` run: everything that
/// identifies the experiment (and gates [`diff_run_dirs`]
/// comparability) plus the verbatim command line for humans.
#[allow(clippy::too_many_arguments)]
fn build_manifest(
    argv: &[String],
    experiment: &str,
    campaign: Option<CampaignSel>,
    scale: Scale,
    workloads: &[WorkloadSpec],
    seed: u64,
    jobs: Option<usize>,
    crypto_backend: &str,
) -> Json {
    let campaign_label = campaign.map(|c| match c {
        CampaignSel::Adversarial(k) => k.label().to_string(),
        CampaignSel::Transient => "transient".to_string(),
        CampaignSel::Crash => "crash".to_string(),
        CampaignSel::Storm => "storm".to_string(),
        CampaignSel::Soak => "soak".to_string(),
    });
    let mut doc = Json::object()
        .set("schema", MANIFEST_SCHEMA)
        .set(
            "cmdline",
            Json::Array(argv.iter().map(|s| Json::from(s.as_str())).collect()),
        )
        .set("experiment", experiment)
        .set(
            "campaign",
            campaign_label.map_or(Json::Null, |l| Json::from(l.as_str())),
        )
        .set("scale", format!("{scale:?}").to_lowercase())
        .set(
            "workloads",
            Json::Array(workloads.iter().map(|w| Json::from(w.name)).collect()),
        )
        .set("seed", seed)
        .set("crypto_backend", crypto_backend)
        .set("version", env!("CARGO_PKG_VERSION"));
    if let Some(j) = jobs {
        doc = doc.set("jobs", j as u64);
    }
    doc
}

/// Runs a fault-injection campaign and validates the Eq. 1 bound,
/// exiting nonzero when any measured forgery-acceptance rate exceeds it.
fn run_campaign_cli(args: &Args, cfg: &GpuConfig, kind: CampaignKind) {
    let mut campaign = CampaignConfig::new(kind, args.seed, args.scale);
    if let Some(t) = args.trials {
        campaign.runs = t;
    }
    if let Some(f) = args.faults_per_run {
        campaign.faults_per_run = f;
    }
    println!(
        "=== campaign {} ({} runs x {} faults, seed {}, {:?} scale) ===",
        kind.label(),
        campaign.runs,
        campaign.faults_per_run,
        campaign.seed,
        campaign.scale
    );
    let rows = run_campaign_on(&args.exec, &args.workloads, &campaign, cfg);
    println!("{}", campaign_table(&rows));
    let path = match save_campaign(&format!("campaign-{}", kind.label()), &rows) {
        Ok(p) => p,
        Err(e) => fail(&args.tel, format!("cannot write campaign results: {e}")),
    };
    println!("saved {} (and .csv)", path.display());
    let checks = eq1_checks(&rows);
    let mut failed = Vec::new();
    for c in &checks {
        println!(
            "eq1 {}/{}: {} forgeries / {} adjudicated = {:.3e} (bound {:.3e}) {}",
            c.workload,
            c.scheme,
            c.forgeries,
            c.adjudicated,
            c.empirical,
            c.bound,
            if c.holds() { "OK" } else { "VIOLATED" }
        );
        if !c.holds() {
            failed.push(format!("{}/{}", c.workload, c.scheme));
        }
    }
    if !failed.is_empty() {
        fail(
            &args.tel,
            format!(
                "Eq. 1 violated: measured value-verification forgery acceptance exceeds \
                 the analytic binomial bound on {}",
                failed.join(", ")
            ),
        );
    }
}

/// Runs the transient soft-error campaign, exiting nonzero when any
/// benign transient fault is misclassified as an attack.
fn run_transient_cli(args: &Args, cfg: &GpuConfig) {
    let mut campaign = TransientCampaignConfig::new(args.seed, args.scale);
    if let Some(r) = args.soft_error_rate {
        campaign.soft_error_rate = r;
    }
    if let Some(l) = args.retry_limit {
        campaign.retry_limit = l;
    }
    if let Some(t) = args.trials {
        campaign.runs = t;
    }
    println!(
        "=== campaign transient (rate {}, retry limit {}, {} runs, seed {}, {:?} scale) ===",
        campaign.soft_error_rate,
        campaign.retry_limit,
        campaign.runs,
        campaign.seed,
        campaign.scale
    );
    let rows = run_transient_campaign_on(
        &args.exec,
        &args.workloads,
        &recovery_schemes(),
        &campaign,
        cfg,
    );
    println!("{}", transient_table(&rows));
    let path = match save_transient_campaign("campaign-transient", &rows) {
        Ok(p) => p,
        Err(e) => fail(&args.tel, format!("cannot write transient results: {e}")),
    };
    println!("saved {} (and .csv)", path.display());
    match transient_gate(&rows) {
        Ok(()) => println!(
            "gate OK: every detected transient recovered within {} retries",
            campaign.retry_limit
        ),
        Err(e) => fail(
            &args.tel,
            format!("transient faults misclassified as attacks: {e}"),
        ),
    }
}

/// Runs the multi-tenant overflow-storm (or soak) chaos campaign,
/// exiting nonzero on any isolation, backpressure, conservation, Eq. 1,
/// or rotation-recovery breach.
fn run_storm_cli(args: &Args, soak: bool) {
    let mut campaign = if soak {
        StormCampaignConfig::soak(args.seed)
    } else {
        StormCampaignConfig::new(args.seed)
    };
    // The campaign composes its own multi-tenant traces sized against
    // the small simulator geometry: co-tenant thrash must actually evict
    // the adversary's probe sectors or injected tampering is never
    // re-verified. Scale stretches the run, not the machine.
    let cfg = GpuConfig::test_small();
    match args.scale {
        Scale::Test => {
            campaign.accesses_per_tenant = 900;
            campaign.faults = 12;
            campaign.crash_points = campaign.crash_points.min(1);
        }
        Scale::Small => {}
        Scale::Paper => {
            campaign.accesses_per_tenant = 8000;
            campaign.faults = 48;
            campaign.crash_points += 1;
        }
    }
    if let Some(n) = args.tenants {
        campaign.victims = n;
    }
    if let Some(t) = args.trials {
        campaign.crash_points = t;
    }
    if let Some(f) = args.faults_per_run {
        campaign.faults = f;
    }
    if let Some(c) = args.checkpoint_cycles {
        campaign.checkpoint_cycles = c;
    }
    if let Some(t) = args.tolerance {
        campaign.ipc_tolerance = t;
    }
    if let Some(r) = args.soft_error_rate {
        campaign.soft_error_rate = r;
    }
    if let Some(l) = args.retry_limit {
        campaign.retry_limit = l;
    }
    campaign.inject_breach = args.inject_breach;
    let name = if soak { "soak" } else { "storm" };
    println!(
        "=== campaign {name} ({} victims + adversary, {} accesses/tenant, {} faults, \
         {} crash points, ipc tolerance {:.0}%, seed {}{}) ===",
        campaign.victims,
        campaign.accesses_per_tenant,
        campaign.faults,
        campaign.crash_points,
        campaign.ipc_tolerance * 100.0,
        campaign.seed,
        if campaign.inject_breach {
            ", BREACH INJECTED"
        } else {
            ""
        }
    );
    // Every campaign row flows through the observer on this thread, in
    // a fixed phase order regardless of worker count: mirror it into
    // the live registry (one telemetry epoch per row, so `--stream-out`
    // and `--serve-metrics` show campaign progress), then feed the SLO
    // detectors — advisory EWMA z-scores over per-row series plus the
    // hard per-tenant floors/ceilings `--slo-gate` enforces.
    let tel = args.tel.clone();
    let mut slo = SloTracker::new(SloPolicy::default());
    let ipc_floor = 1.0 - campaign.ipc_tolerance;
    let rows = {
        let mut observe_row = |row: &plutus_recovery::StormRow| {
            for (t, ipc) in &row.victim_ipc {
                tel.gauge(&format!("tenant.t{t}.ipc_milli"))
                    .set((ipc * 1000.0).max(0.0) as u64);
            }
            tel.gauge("storm.min_ipc_ratio_milli")
                .set((row.min_ipc_ratio * 1000.0).max(0.0) as u64);
            tel.counter("storm.victim_violations")
                .add(row.victim_violations);
            tel.counter("storm.deferred").add(row.storm_deferred);
            tel.counter("storm.suppressed").add(row.storm_suppressed);
            tel.counter("storm.rotated_sectors")
                .add(row.rotated_sectors);
            tel.counter("storm.faults_adjudicated")
                .add(row.faults_adjudicated);
            tel.counter("storm.transients_escalated")
                .add(row.transients_escalated);
            let mut found = Vec::new();
            for (t, ipc) in &row.victim_ipc {
                found.extend(slo.observe(&format!("{}.tenant.t{t}.ipc", row.scheme), *ipc));
            }
            for (series, value) in [
                ("victim_violations", row.victim_violations as f64),
                ("rotated_sectors", row.rotated_sectors as f64),
                ("transients_escalated", row.transients_escalated as f64),
                ("storm_deferred", row.storm_deferred as f64),
            ] {
                found.extend(slo.observe(&format!("{}.{series}", row.scheme), value));
            }
            let key = format!("{}/{}", row.scheme, row.phase);
            found.extend(slo.check_ceiling(
                &format!("{key}.victim_violations"),
                row.victim_violations as f64,
                0.0,
            ));
            found.extend(slo.check_ceiling(
                &format!("{key}.victim_frozen"),
                row.victim_frozen as f64,
                0.0,
            ));
            found.extend(slo.check_floor(
                &format!("{key}.min_ipc_ratio"),
                row.min_ipc_ratio,
                ipc_floor,
            ));
            for a in found {
                tel.event(a.to_event());
            }
            tel.end_epoch(&key);
        };
        run_storm_campaign_observed(&args.exec, &campaign, &cfg, &mut observe_row)
    };
    println!("{}", storm_table(&rows, &campaign));
    let path = match save_storm_campaign(&format!("campaign-{name}"), &rows, &campaign) {
        Ok(p) => p,
        Err(e) => fail(&args.tel, format!("cannot write {name} results: {e}")),
    };
    println!("saved {} (and .csv)", path.display());
    let advisories = slo.anomalies().iter().filter(|a| !a.gating).count();
    if advisories > 0 {
        println!("slo: {advisories} advisory anomalies flagged (streamed as anomaly events)");
    }
    if slo.breached() {
        let detail = slo
            .breaches()
            .iter()
            .map(|a| a.describe())
            .collect::<Vec<_>>()
            .join("; ");
        if args.slo_gate {
            fail(&args.tel, format!("SLO gate breached: {detail}"));
        }
        eprintln!("warning: SLO breached (run without --slo-gate): {detail}");
    } else if args.slo_gate {
        println!("SLO gate OK: every victim held its IPC floor with zero violations");
    }
    match storm_gate(&rows, &campaign) {
        Ok(()) => println!(
            "gate OK: victims isolated, backpressure held, rotation recovered bit-identical"
        ),
        Err(e) => fail(&args.tel, format!("{name} campaign breached: {e}")),
    }
}

/// Runs the crash-injection campaign, exiting nonzero unless every
/// restore-and-recover audit reads back bit-identical.
fn run_crash_cli(args: &Args, cfg: &GpuConfig) {
    let mut campaign = CrashCampaignConfig::new(args.checkpoint_cycles.unwrap_or(5000), args.scale);
    if let Some(t) = args.trials {
        campaign.crash_points = t;
    }
    println!(
        "=== campaign crash (checkpoint every {} cycles, {} crash points, {:?} scale) ===",
        campaign.checkpoint_cycles, campaign.crash_points, campaign.scale
    );
    let rows = run_crash_campaign_on(
        &args.exec,
        &args.workloads,
        &recovery_schemes(),
        &campaign,
        cfg,
    );
    println!("{}", crash_table(&rows));
    let path = match save_crash_campaign("campaign-crash", &rows) {
        Ok(p) => p,
        Err(e) => fail(&args.tel, format!("cannot write crash results: {e}")),
    };
    println!("saved {} (and .csv)", path.display());
    match crash_gate(&rows) {
        Ok(()) => {
            let audited: u64 = rows.iter().map(|r| r.audited).sum();
            println!(
                "gate OK: {audited} post-recovery reads bit-identical, no spurious violations"
            );
        }
        Err(e) => fail(&args.tel, format!("crash recovery diverged: {e}")),
    }
}

fn main() {
    let tel = Telemetry::with_clock(Arc::new(CycleClock::new()));
    let args = parse_args(&tel);
    if args.experiment == "obs-diff" {
        run_obs_diff(&args);
        return;
    }
    // Held until main returns: dropping it shuts the scrape endpoint
    // down. `fail()` exits the process, which closes the socket too.
    let mut server = args.serve_metrics.as_deref().map(|addr| {
        match MetricsServer::serve(args.tel.clone(), addr) {
            Ok(s) => {
                eprintln!("serving metrics on http://{}/metrics", s.addr());
                s
            }
            Err(e) => fail(&args.tel, format!("cannot serve metrics on {addr}: {e}")),
        }
    });
    let mut cfg = GpuConfig::default();
    // Measure steady-state IPC past the warp-launch ramp: warps launch
    // staggered at one every other cycle, so the pool is fully populated
    // after warps/2 cycles. Excluding the ramp keeps short traces from
    // reading as latency-bound cold starts.
    cfg.warmup_cycles = cfg.warps as u64 / 2;
    if let Some(sel) = args.campaign {
        match sel {
            CampaignSel::Adversarial(kind) => run_campaign_cli(&args, &cfg, kind),
            CampaignSel::Transient => run_transient_cli(&args, &cfg),
            CampaignSel::Crash => run_crash_cli(&args, &cfg),
            CampaignSel::Storm => run_storm_cli(&args, false),
            CampaignSel::Soak => run_storm_cli(&args, true),
        }
        write_sched_stats(&args);
        write_metrics(&args);
        finish_observability(&args, &mut server);
        return;
    }
    let ids: Vec<&str> = if args.experiment == "all" {
        vec![
            "table1", "table2", "fig6", "fig7", "fig9", "fig10", "fig15", "fig16", "fig17",
            "fig18", "fig19", "fig20", "fig21", "fig22",
        ]
    } else {
        vec![args.experiment.as_str()]
    };
    for id in ids {
        println!("\n=== {id} ===");
        match id {
            "table1" => table1(&cfg),
            "table2" => table2(),
            "fig6" => fig6(&args, &cfg),
            "fig7" => fig7(&args, &cfg),
            "fig9" => fig9(&args, &cfg),
            "fig10" => fig10(&args),
            "fig15" => ipc_figure(
                "fig15",
                &args,
                &cfg,
                &[Scheme::Pssm, Scheme::ValueVerifyOnly],
            ),
            "fig16" => ipc_figure(
                "fig16",
                &args,
                &cfg,
                &[Scheme::Pssm, Scheme::FineLeafCoarseTree, Scheme::All32],
            ),
            "fig17" => ipc_figure(
                "fig17",
                &args,
                &cfg,
                &[
                    Scheme::Pssm,
                    Scheme::Compact2Bit,
                    Scheme::Compact3Bit,
                    Scheme::CompactAdaptive,
                ],
            ),
            "fig18" => fig18(&args, &cfg),
            "fig19" => fig19(&args, &cfg),
            "fig20" => ipc_figure(
                "fig20",
                &args,
                &cfg,
                &[Scheme::PssmNoTree, Scheme::PlutusNoTree],
            ),
            "fig21" => ipc_figure(
                "fig21",
                &args,
                &cfg,
                &[
                    Scheme::PlutusValueEntries(64),
                    Scheme::PlutusValueEntries(128),
                    Scheme::PlutusValueEntries(256),
                    Scheme::PlutusValueEntries(512),
                    Scheme::PlutusValueEntries(1024),
                ],
            ),
            "fig22" => fig22(&args, &cfg),
            "figrepro" => figrepro(&args, &cfg),
            "cipher_bench" => cipher_bench_cli(&args),
            "overheads" => overheads(),
            "workloads" => workload_report(&args),
            "ablations" => {
                plutus_bench::ablations::run_all(&args.workloads, args.scale, &cfg);
            }
            other => fail(&args.tel, format!("unknown experiment {other}")),
        }
    }
    write_sched_stats(&args);
    write_metrics(&args);
    write_trace(&args);
    write_ledger(&args);
    run_bench_gate(&args);
    finish_observability(&args, &mut server);
}

/// Closes the epoch stream (reporting line/drop counts) and shuts the
/// metrics endpoint down. Runs on every successful exit path; `fail()`
/// paths rely on process exit, which the line-buffered stream and the
/// socket both survive.
fn finish_observability(args: &Args, server: &mut Option<MetricsServer>) {
    if let Some(lines) = args.tel.close_stream() {
        eprintln!(
            "epoch stream closed: {lines} lines, {} dropped",
            args.tel.stream_dropped()
        );
    }
    if let Some(s) = server.as_mut() {
        s.shutdown();
    }
}

/// The `obs-diff A B` subcommand: manifest-gated cross-run comparison
/// of two `--run-dir` directories. Exit codes: 0 no regressions, 1
/// regressions beyond `--tolerance`, 2 unreadable or incompatible runs.
fn run_obs_diff(args: &Args) {
    let [a, b] = args.obs_args.as_slice() else {
        fail(
            &args.tel,
            format!(
                "obs-diff needs exactly two run directories, got {:?}",
                args.obs_args
            ),
        );
    };
    let diff = match diff_run_dirs(Path::new(a), Path::new(b)) {
        Ok(d) => d,
        Err(e) => fail(&args.tel, format!("obs-diff: {e}")),
    };
    let tolerance = args.tolerance.unwrap_or(0.0);
    println!(
        "obs-diff {a} vs {b}: {} shared reports compared",
        diff.compared.len()
    );
    for s in &diff.one_sided {
        eprintln!("coverage changed: {s}");
    }
    let regressions = diff.regressions(tolerance);
    if regressions.is_empty() && diff.one_sided.is_empty() {
        println!(
            "obs-diff OK: no regressions beyond {:.1}% tolerance ({} leaves changed within it)",
            tolerance * 100.0,
            diff.changed.len()
        );
    } else {
        eprintln!(
            "obs-diff: {} leaves regressed beyond {:.1}% tolerance:",
            regressions.len(),
            tolerance * 100.0
        );
        eprint!("{}", obs_diff_table(&regressions));
        std::process::exit(1);
    }
}

/// The `cipher_bench` microbenchmark: scalar vs native crypto-backend
/// throughput, saved under `target/experiments/cipher_bench.json`.
/// `--assert-speedup X` gates the batched primitives at X× native over
/// scalar (CI's proof that the SIMD backend actually engaged).
fn cipher_bench_cli(args: &Args) {
    let (native, rows) = plutus_bench::run_cipher_bench();
    print!("{}", plutus_bench::cipher_bench_table(native, &rows));
    let dir = PathBuf::from("target/experiments");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        fail(&args.tel, format!("cannot create {}: {e}", dir.display()));
    }
    let path = dir.join("cipher_bench.json");
    let doc = plutus_bench::cipher_bench_json(native, &rows).to_string_pretty();
    if let Err(e) = plutus_telemetry::atomic_write(&path, doc) {
        fail(&args.tel, format!("cannot write {}: {e}", path.display()));
    }
    println!("saved {}", path.display());
    if let Some(min) = args.assert_speedup {
        match plutus_bench::cipher_bench_gate(native, &rows, min) {
            Ok(()) => println!("gate OK: every batched primitive at >= {min:.2}x over scalar"),
            Err(e) => fail(&args.tel, format!("cipher_bench speedup gate failed: {e}")),
        }
    }
}

/// Deduplicates the collected matrix measurements: figures overlap in
/// (workload, scheme) coverage, so keep the first measurement of each
/// pair.
fn unique_measurements(args: &Args) -> Vec<Measurement> {
    let mut rows: Vec<Measurement> = Vec::new();
    for m in args.measurements.borrow().iter() {
        if !rows
            .iter()
            .any(|r| r.workload == m.workload && r.scheme == m.scheme)
        {
            rows.push(m.clone());
        }
    }
    rows
}

/// Writes the cycle-ledger exports (`--ledger-out`): the JSON document,
/// a `.csv` sibling, and a `.folded` flamegraph collapsed-stack
/// sibling; prints the CPI-stack table; and runs the conservation gate,
/// exiting nonzero if any partition's buckets do not sum exactly to the
/// run's cycle count.
fn write_ledger(args: &Args) {
    let Some(path) = &args.ledger_out else {
        return;
    };
    let rows = unique_measurements(args);
    if rows.is_empty() {
        fail(
            &args.tel,
            "--ledger-out needs at least one matrix experiment (e.g. fig6 or figrepro)".into(),
        );
    }
    if let Err(e) = ledger_gate(&rows) {
        fail(
            &args.tel,
            format!("cycle-ledger conservation violated:\n{e}"),
        );
    }
    if let Err(e) = plutus_telemetry::atomic_write(path, ledger_json(&rows).to_string_pretty()) {
        fail(
            &args.tel,
            format!("cannot write ledger to {}: {e}", path.display()),
        );
    }
    let csv = path.with_extension("csv");
    if let Err(e) = plutus_telemetry::atomic_write(&csv, ledger_csv(&rows)) {
        fail(
            &args.tel,
            format!("cannot write ledger CSV to {}: {e}", csv.display()),
        );
    }
    let folded = path.with_extension("folded");
    if let Err(e) = plutus_telemetry::atomic_write(&folded, ledger_folded(&rows)) {
        fail(
            &args.tel,
            format!("cannot write ledger stacks to {}: {e}", folded.display()),
        );
    }
    println!("\n{}", cpi_stack_table(&rows));
    println!(
        "ledger gate OK: {} runs conservation-exact; written to {} (+ {} and {})",
        rows.len(),
        path.display(),
        csv.display(),
        folded.display()
    );
}

/// Prints the cumulative scheduler dump when `--sched-stats` is active.
fn write_sched_stats(args: &Args) {
    if args.sched_stats {
        println!("\n{}", args.exec.stats().summary_table());
    }
}

fn write_metrics(args: &Args) {
    if let Some(path) = &args.metrics_out {
        let report = args.tel.report();
        let text = match args.metrics_format {
            MetricsFormat::Json => report.to_json().to_string_pretty(),
            MetricsFormat::Csv => report.to_csv(),
        };
        if let Err(e) = plutus_telemetry::atomic_write(path, text) {
            fail(
                &args.tel,
                format!("cannot write metrics to {}: {e}", path.display()),
            );
        }
        println!("\n{}", report.summary_table());
        println!("metrics written to {}", path.display());
    }
}

/// Writes the Perfetto-loadable Chrome trace (`--trace-out`), a sibling
/// `.folded` collapsed-stack file for flamegraphs, and prints the
/// per-run bandwidth-attribution tables.
fn write_trace(args: &Args) {
    let Some(path) = &args.trace_out else {
        return;
    };
    let traces = args.traces.borrow();
    let sched = args.exec.stats();
    let doc = chrome_trace(&traces, Some(&sched));
    if let Err(e) = plutus_telemetry::atomic_write(path, doc.to_string_compact()) {
        fail(
            &args.tel,
            format!("cannot write trace to {}: {e}", path.display()),
        );
    }
    let folded = path.with_extension("folded");
    if let Err(e) = plutus_telemetry::atomic_write(&folded, collapsed_stack(&traces)) {
        fail(
            &args.tel,
            format!("cannot write stacks to {}: {e}", folded.display()),
        );
    }
    println!("\n{}", attribution_table(&traces));
    let dropped: u64 = traces.iter().map(|t| t.dropped).sum();
    if dropped > 0 {
        eprintln!(
            "warning: {dropped} trace records dropped (ring buffer full); \
             attribution is not conservation-exact"
        );
    }
    println!(
        "trace written to {} (Perfetto/chrome://tracing) and {} (flamegraph stacks)",
        path.display(),
        folded.display()
    );
}

/// Emits the canonical perf snapshot (`--bench-out`) and runs the
/// tolerance-gated regression comparison (`--compare`), exiting with
/// status 1 when any metric regressed beyond `--tolerance`.
fn run_bench_gate(args: &Args) {
    if args.bench_out.is_none() && args.compare.is_none() {
        return;
    }
    let rows = unique_measurements(args);
    if rows.is_empty() {
        fail(
            &args.tel,
            "--bench-out/--compare need at least one matrix experiment (e.g. fig6)".into(),
        );
    }
    let provenance = BenchProvenance {
        seed: args.seed,
        crypto_backend: plutus_crypto::backend::active().to_string(),
        version: env!("CARGO_PKG_VERSION").to_string(),
    };
    let snapshot = bench_snapshot_with(&rows, &provenance).to_string_pretty();
    if let Some(path) = &args.bench_out {
        if let Err(e) = plutus_telemetry::atomic_write(path, &snapshot) {
            fail(
                &args.tel,
                format!("cannot write bench snapshot to {}: {e}", path.display()),
            );
        }
        println!("bench snapshot written to {}", path.display());
    }
    if let Some(base_path) = &args.compare {
        let baseline = match std::fs::read_to_string(base_path) {
            Ok(t) => t,
            Err(e) => fail(
                &args.tel,
                format!("cannot read baseline {}: {e}", base_path.display()),
            ),
        };
        let tolerance = args.tolerance.unwrap_or(0.02);
        match compare_bench(&snapshot, &baseline, tolerance) {
            Err(e) => fail(&args.tel, format!("regression comparison failed: {e}")),
            Ok(regressions) if !regressions.is_empty() => {
                eprintln!(
                    "regression gate FAILED against {} (tolerance {:.1}%):",
                    base_path.display(),
                    tolerance * 100.0
                );
                for r in &regressions {
                    eprintln!("  {r}");
                }
                std::process::exit(1);
            }
            Ok(_) => println!(
                "regression gate OK against {} ({} entries, tolerance {:.1}%)",
                base_path.display(),
                rows.len(),
                tolerance * 100.0
            ),
        }
    }
}

fn overheads() {
    println!("Hardware/storage overheads (paper Section IV-F):");
    println!(
        "{:<14}{:>14}{:>12}{:>14}{:>12}{:>12}{:>12}{:>14}",
        "config", "on-chip/part", "counters", "macs", "bmt", "cmpct-ctr", "cmpct-bmt", "off-chip %"
    );
    for r in plutus_core::overheads::section_4f_report() {
        let protected = plutus_core::PlutusConfig::full().mem.protected_bytes;
        println!(
            "{:<14}{:>12} B{:>10} K{:>12} K{:>10} K{:>10} K{:>10} K{:>13.2}%",
            r.label,
            r.on_chip.total(),
            r.off_chip.counters / 1024,
            r.off_chip.macs / 1024,
            r.off_chip.bmt / 1024,
            r.off_chip.compact_counters / 1024,
            r.off_chip.compact_bmt / 1024,
            r.off_chip.fraction_of(protected) * 100.0
        );
    }
}

fn workload_report(args: &Args) {
    println!(
        "Synthetic benchmark characterization at {:?} scale:",
        args.scale
    );
    println!(
        "{:<14}{:>10}{:>10}{:>12}{:>8}{:>8}{:>10}{:>12}{:>12}",
        "workload",
        "suite",
        "writes%",
        "footprint",
        "seq%",
        "hot10%",
        "reuse",
        "vals-exact",
        "vals-masked"
    );
    for w in &args.workloads {
        let t = w.trace(args.scale);
        let s = workloads::characterize(&t);
        let c = workloads::value_census(&t);
        println!(
            "{:<14}{:>10}{:>9.1}%{:>10}KB{:>7.0}%{:>7.0}%{:>10.1}{:>12}{:>12}",
            w.name,
            w.suite.to_string(),
            s.write_fraction * 100.0,
            s.footprint_bytes / 1024,
            s.sequential_fraction * 100.0,
            s.hot_tenth_fraction * 100.0,
            s.mean_reuse,
            c.distinct_exact,
            c.distinct_masked
        );
    }
}

fn table1(cfg: &GpuConfig) {
    println!("Baseline GPU configuration (paper Table I):");
    println!(
        "  SMs                  {} @ {} MHz",
        cfg.sm_count, cfg.core_clock_mhz
    );
    println!("  warp pool            {} warps in flight", cfg.warps);
    println!(
        "  L2 cache             {} partitions x {} banks x {} KiB = {} MiB",
        cfg.partitions,
        cfg.l2_banks_per_partition,
        cfg.l2_bank_bytes / 1024,
        cfg.total_l2_bytes() / (1024 * 1024)
    );
    println!(
        "  DRAM                 {} partitions, {:.0} GB/s aggregate, {} banks/channel",
        cfg.partitions,
        cfg.total_dram_gbps(),
        cfg.dram.banks
    );
    println!("  interleaving         pseudo-random 128B block hash");
}

fn table2() {
    let sec = SecureMemConfig::pssm();
    println!("Metadata caches and security configuration (paper Table II):");
    println!(
        "  metadata caches      {} B each (counter / MAC / BMT), {}-way, per partition",
        sec.meta_cache_bytes, sec.meta_cache_ways
    );
    println!(
        "  MAC                  {} B per 32 B sector, latency {} cycles",
        sec.mac_bytes, sec.latencies.mac_latency
    );
    println!(
        "  AES                  {} cycle pipelined engine per partition",
        sec.latencies.aes_latency
    );
    println!("  counters             sectored split counters, 32 sectors/group");
    println!(
        "  BMT                  {}-ary over counters, lazy update",
        sec.bmt_node_bytes / 8
    );
    let vc = plutus_core::ValueCacheConfig::default();
    println!(
        "  value cache          {} entries, 25% pinned, 28-bit match, {}-of-4 rule",
        vc.entries,
        plutus_core::binomial::plutus_min_hits(vc.entries, vc.effective_bits())
    );
}

fn labels(schemes: &[Scheme]) -> Vec<String> {
    schemes.iter().map(Scheme::label).collect()
}

fn summarize_vs(rows: &[Measurement], scheme: &str, baseline: &str) {
    let mut ratios = Vec::new();
    let mut best: (f64, String) = (0.0, String::new());
    for r in rows.iter().filter(|r| r.scheme == scheme) {
        if let Some(b) = rows
            .iter()
            .find(|x| x.workload == r.workload && x.scheme == baseline)
        {
            if b.norm_ipc > 0.0 {
                let ratio = r.norm_ipc / b.norm_ipc;
                if ratio > best.0 {
                    best = (ratio, r.workload.clone());
                }
                ratios.push(ratio);
            }
        }
    }
    if !ratios.is_empty() {
        let g = geomean(ratios.iter().copied());
        println!(
            "{scheme} vs {baseline}: {:+.2}% geomean IPC (best {:+.2}% on {})",
            (g - 1.0) * 100.0,
            (best.0 - 1.0) * 100.0,
            best.1
        );
    }
}

fn ipc_figure(name: &str, args: &Args, cfg: &GpuConfig, schemes: &[Scheme]) {
    let mut all = vec![Scheme::None];
    all.extend_from_slice(schemes);
    let rows = args.matrix(cfg, &all);
    let cols = labels(schemes);
    println!(
        "{}",
        matrix_table(
            &rows,
            &cols,
            |m| m.norm_ipc,
            "IPC normalized to no security"
        )
    );
    let base = schemes[0].label();
    for s in &schemes[1..] {
        summarize_vs(&rows, &s.label(), &base);
    }
    let path = args.save(name, &rows);
    println!("saved {}", path.display());
}

fn fig6(args: &Args, cfg: &GpuConfig) {
    let rows = args.matrix(cfg, &[Scheme::None, Scheme::Pssm]);
    println!(
        "{}",
        matrix_table(
            &rows,
            &["pssm".into()],
            |m| m.norm_ipc,
            "IPC normalized to no security"
        )
    );
    let slowdowns: Vec<f64> = rows
        .iter()
        .filter(|r| r.scheme == "pssm")
        .map(|r| r.norm_ipc)
        .collect();
    println!(
        "secure memory (PSSM) keeps {:.1}% of insecure IPC on geomean",
        geomean(slowdowns.iter().copied()) * 100.0
    );
    let path = args.save("fig6", &rows);
    println!("saved {}", path.display());
}

fn fig7(args: &Args, cfg: &GpuConfig) {
    let rows = args.matrix(cfg, &[Scheme::Pssm]);
    println!("DRAM traffic breakdown under PSSM (fraction of total bytes):");
    println!(
        "{:<14}{:>10}{:>10}{:>10}{:>10}{:>12}",
        "workload", "data", "counter", "mac", "bmt", "overhead%"
    );
    for r in rows.iter().filter(|r| r.scheme == "pssm") {
        let total = r.total_bytes.max(1) as f64;
        let get = |label: &str| {
            r.class_bytes
                .iter()
                .find(|(l, _)| l == label)
                .map(|(_, b)| *b)
                .unwrap_or(0) as f64
        };
        let data = get("data").max(1.0);
        println!(
            "{:<14}{:>10.3}{:>10.3}{:>10.3}{:>10.3}{:>11.1}%",
            r.workload,
            data / total,
            get("counter") / total,
            get("mac") / total,
            get("bmt") / total,
            (total - data) / data * 100.0
        );
    }
    let path = args.save("fig7", &rows);
    println!("saved {}", path.display());
}

fn fig9(args: &Args, _cfg: &GpuConfig) {
    println!("Value-reuse percentage of reads (paper Fig. 9; 512-entry caches/partition):");
    println!(
        "{:<14}{:>12}{:>14}{:>20}",
        "workload", "all-8/8", "halves-3of4", "halves-3of4-masked"
    );
    let mut json_rows = Vec::new();
    for w in &args.workloads {
        let trace = w.trace(args.scale);
        let r = analyze_trace(&trace, 32, 512);
        println!(
            "{:<14}{:>11.1}%{:>13.1}%{:>19.1}%",
            w.name,
            r.all_eight * 100.0,
            r.halves * 100.0,
            r.halves_masked * 100.0
        );
        json_rows.push(Measurement {
            workload: w.name.to_string(),
            scheme: "value-analysis".into(),
            ipc: r.halves_masked,
            norm_ipc: r.halves_masked,
            cycles: r.reads,
            total_bytes: 0,
            metadata_bytes: 0,
            class_bytes: vec![
                ("all_eight_permille".into(), (r.all_eight * 1000.0) as u64),
                ("halves_permille".into(), (r.halves * 1000.0) as u64),
                (
                    "halves_masked_permille".into(),
                    (r.halves_masked * 1000.0) as u64,
                ),
            ],
            engine_stats: Vec::new(),
            avg_fill_latency: 0.0,
            detection_latency_mean: 0.0,
            cpi_stack: Vec::new(),
            ledger_partitions: Vec::new(),
        });
    }
    let path = args.save("fig9", &json_rows);
    println!("saved {}", path.display());
}

fn fig10(args: &Args) {
    println!("Memory request mix (paper Fig. 10):");
    println!("{:<14}{:>10}{:>10}", "workload", "reads%", "writes%");
    for w in &args.workloads {
        let t = w.trace(args.scale);
        let wf = t.write_fraction();
        println!(
            "{:<14}{:>9.1}%{:>9.1}%",
            w.name,
            (1.0 - wf) * 100.0,
            wf * 100.0
        );
    }
}

fn fig18(args: &Args, cfg: &GpuConfig) {
    let schemes = [
        Scheme::None,
        Scheme::Pssm,
        Scheme::CommonCounters,
        Scheme::Plutus,
    ];
    let rows = args.matrix(cfg, &schemes);
    let cols = vec!["pssm".into(), "common-counters".into(), "plutus".into()];
    println!(
        "{}",
        matrix_table(
            &rows,
            &cols,
            |m| m.norm_ipc,
            "IPC normalized to no security"
        )
    );
    summarize_vs(&rows, "plutus", "pssm");
    summarize_vs(&rows, "plutus", "common-counters");
    let path = args.save("fig18", &rows);
    println!("saved {}", path.display());
}

fn fig19(args: &Args, cfg: &GpuConfig) {
    let rows = args.matrix(cfg, &[Scheme::Pssm, Scheme::Plutus]);
    println!("Security-metadata DRAM traffic (bytes):");
    println!(
        "{:<14}{:>16}{:>16}{:>12}",
        "workload", "pssm", "plutus", "reduction"
    );
    let mut ratios = Vec::new();
    let mut best: (f64, String) = (0.0, String::new());
    let mut workload_names: Vec<String> = rows.iter().map(|r| r.workload.clone()).collect();
    workload_names.sort();
    workload_names.dedup();
    for w in &workload_names {
        let p = rows
            .iter()
            .find(|r| &r.workload == w && r.scheme == "pssm")
            .unwrap();
        let q = rows
            .iter()
            .find(|r| &r.workload == w && r.scheme == "plutus")
            .unwrap();
        let reduction = 1.0 - q.metadata_bytes as f64 / p.metadata_bytes.max(1) as f64;
        if reduction > best.0 {
            best = (reduction, w.clone());
        }
        ratios.push(1.0 - reduction);
        println!(
            "{:<14}{:>16}{:>16}{:>11.1}%",
            w,
            p.metadata_bytes,
            q.metadata_bytes,
            reduction * 100.0
        );
    }
    println!(
        "metadata traffic reduced {:.2}% on geomean (best {:.2}% on {})",
        (1.0 - geomean(ratios.iter().copied())) * 100.0,
        best.0 * 100.0,
        best.1
    );
    let path = args.save("fig19", &rows);
    println!("saved {}", path.display());
}

/// The figure-reproduction report: the canonical
/// no-security/PSSM/common-counters/Plutus matrix rendered as a
/// normalized-IPC table (paper Figs. 11-14 style) with per-scheme
/// geomeans and the CPI stacks behind the numbers, flagging the
/// degenerate all-schemes-at-1.0 state prominently.
fn figrepro(args: &Args, cfg: &GpuConfig) {
    let schemes = [
        Scheme::None,
        Scheme::Pssm,
        Scheme::CommonCounters,
        Scheme::Plutus,
    ];
    let rows = args.matrix(cfg, &schemes);
    let cols = vec!["pssm".into(), "common-counters".into(), "plutus".into()];
    print!("{}", figure_report(&rows, &cols));
    let path = args.save("figrepro", &rows);
    println!("saved {}", path.display());
}

fn fig22(args: &Args, cfg: &GpuConfig) {
    let rows = args.matrix(cfg, &[Scheme::None, Scheme::Pssm, Scheme::Plutus]);
    let model = EnergyModel::default();
    println!("Average power normalized to no security (paper Fig. 22):");
    println!("{:<14}{:>12}{:>12}", "workload", "pssm", "plutus");
    let mut pssm_all = Vec::new();
    let mut plutus_all = Vec::new();
    let mut workload_names: Vec<String> = rows.iter().map(|r| r.workload.clone()).collect();
    workload_names.sort();
    workload_names.dedup();
    for w in &workload_names {
        let base = rows
            .iter()
            .find(|r| &r.workload == w && r.scheme == "no-security")
            .unwrap();
        let p = rows
            .iter()
            .find(|r| &r.workload == w && r.scheme == "pssm")
            .unwrap();
        let q = rows
            .iter()
            .find(|r| &r.workload == w && r.scheme == "plutus")
            .unwrap();
        let np = model.normalized_power(p, base);
        let nq = model.normalized_power(q, base);
        pssm_all.push(np);
        plutus_all.push(nq);
        println!("{:<14}{:>12.3}{:>12.3}", w, np, nq);
    }
    println!(
        "power overhead: PSSM {:+.1}%, Plutus {:+.1}% (geomean)",
        (geomean(pssm_all.iter().copied()) - 1.0) * 100.0,
        (geomean(plutus_all.iter().copied()) - 1.0) * 100.0
    );
    let path = args.save("fig22", &rows);
    println!("saved {}", path.display());
}
