//! Consumers of the causal flight recorder: the bandwidth-attribution
//! tree (collapsed-stack / flamegraph text), per-run attribution tables,
//! and the Chrome-trace / Perfetto JSON export.
//!
//! All outputs are deterministic for a fixed trace: stacks are sorted,
//! records are emitted in recorder order, and scheduler lanes are the
//! only part that varies with worker count (they live under their own
//! process id so tests can slice them off).

use crate::runner::TracedRun;
use plutus_exec::SchedStats;
use plutus_telemetry::Json;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Folds every traced DRAM transfer into collapsed-stack lines
/// (`workload;scheme;access_kind;class;levelN bytes`), the input format
/// of `flamegraph.pl` and speedscope. Stacks are weight-aggregated and
/// emitted in sorted order, so equal traces produce identical text.
pub fn collapsed_stack(runs: &[TracedRun]) -> String {
    let mut weights: BTreeMap<String, u64> = BTreeMap::new();
    for run in runs {
        let root_kinds: BTreeMap<u64, &'static str> = run
            .records
            .iter()
            .filter(|r| r.id != 0)
            .map(|r| (r.id, r.kind))
            .collect();
        for rec in run.records.iter().filter(|r| r.kind == "traffic") {
            let access = root_kinds.get(&rec.cause).copied().unwrap_or("unknown");
            let stack = format!(
                "{};{};{};{};level{}",
                run.workload, run.scheme, access, rec.class, rec.level
            );
            *weights.entry(stack).or_insert(0) += rec.bytes;
        }
    }
    let mut out = String::new();
    for (stack, bytes) in weights {
        let _ = writeln!(out, "{stack} {bytes}");
    }
    out
}

/// Per-run attribution tables: for every (access kind, traffic class)
/// pair the traced bytes and their share of the run's traced total,
/// followed by the conservation line comparing traced bytes against the
/// simulator's aggregate counters.
pub fn attribution_table(runs: &[TracedRun]) -> String {
    let mut out = String::new();
    for run in runs {
        let root_kinds: BTreeMap<u64, &'static str> = run
            .records
            .iter()
            .filter(|r| r.id != 0)
            .map(|r| (r.id, r.kind))
            .collect();
        let mut cells: BTreeMap<(&'static str, &'static str), u64> = BTreeMap::new();
        let mut traced_total = 0u64;
        for rec in run.records.iter().filter(|r| r.kind == "traffic") {
            let access = root_kinds.get(&rec.cause).copied().unwrap_or("unknown");
            *cells.entry((access, rec.class)).or_insert(0) += rec.bytes;
            traced_total += rec.bytes;
        }
        let sim_total: u64 = run.class_bytes.iter().map(|(_, b)| b).sum();
        let _ = writeln!(
            out,
            "attribution: {}/{} ({} records, {} dropped)",
            run.workload,
            run.scheme,
            run.records.len(),
            run.dropped
        );
        let _ = writeln!(
            out,
            "  {:<12} {:<12} {:>14} {:>7}",
            "access", "class", "bytes", "share"
        );
        for ((access, class), bytes) in &cells {
            let share = if traced_total > 0 {
                *bytes as f64 / traced_total as f64 * 100.0
            } else {
                0.0
            };
            let _ = writeln!(out, "  {access:<12} {class:<12} {bytes:>14} {share:>6.1}%");
        }
        let conserved = traced_total == sim_total && run.dropped == 0;
        let _ = writeln!(
            out,
            "  traced {traced_total} B vs simulator {sim_total} B — {}",
            if conserved {
                "conserved"
            } else {
                "NOT conserved (sampling or drops)"
            }
        );
    }
    out
}

/// Builds the Chrome-trace ("trace event format") JSON document that
/// Perfetto and `chrome://tracing` load directly.
///
/// Layout: each traced run is a process (`pid` = run index + 1) on the
/// simulated-cycle timebase (1 cycle rendered as 1 µs); every sampled
/// demand access is a complete (`"X"`) slice spanning from its root to
/// its last child record, and every causal marker (retry, violation,
/// degradation, vouch, spill) is an instant (`"i"`) event. Scheduler
/// worker lanes from [`SchedStats`] job spans live under `pid` 0 on the
/// wall-clock timebase — the only process whose content depends on the
/// worker count.
pub fn chrome_trace(runs: &[TracedRun], sched: Option<&SchedStats>) -> Json {
    let mut events: Vec<Json> = Vec::new();
    if let Some(s) = sched {
        events.push(
            Json::object()
                .set("ph", "M")
                .set("name", "process_name")
                .set("pid", 0u64)
                .set("tid", 0u64)
                .set("args", Json::object().set("name", "scheduler (wall clock)")),
        );
        for span in &s.job_spans {
            events.push(
                Json::object()
                    .set("ph", "X")
                    .set("name", span.label.as_str())
                    .set("cat", "sched")
                    .set("pid", 0u64)
                    .set("tid", span.worker as u64)
                    .set("ts", span.start_ns as f64 / 1000.0)
                    .set(
                        "dur",
                        span.end_ns.saturating_sub(span.start_ns) as f64 / 1000.0,
                    ),
            );
        }
    }
    for (ri, run) in runs.iter().enumerate() {
        let pid = (ri + 1) as u64;
        events.push(
            Json::object()
                .set("ph", "M")
                .set("name", "process_name")
                .set("pid", pid)
                .set("tid", 0u64)
                .set(
                    "args",
                    Json::object().set("name", format!("{}/{}", run.workload, run.scheme)),
                ),
        );
        // One slice per sampled root, spanning to its last child record.
        let mut last_child_cycle: BTreeMap<u64, u64> = BTreeMap::new();
        let mut child_bytes: BTreeMap<u64, u64> = BTreeMap::new();
        for rec in &run.records {
            if rec.cause != 0 {
                let end = last_child_cycle.entry(rec.cause).or_insert(0);
                *end = (*end).max(rec.cycle);
                *child_bytes.entry(rec.cause).or_insert(0) += rec.bytes;
            }
        }
        for rec in &run.records {
            if rec.id != 0 {
                let end = last_child_cycle.get(&rec.id).copied().unwrap_or(rec.cycle);
                events.push(
                    Json::object()
                        .set("ph", "X")
                        .set("name", rec.kind)
                        .set("cat", "access")
                        .set("pid", pid)
                        .set("tid", if rec.kind == "writeback" { 1u64 } else { 0u64 })
                        .set("ts", rec.cycle as f64)
                        .set("dur", (end.saturating_sub(rec.cycle)).max(1) as f64)
                        .set(
                            "args",
                            Json::object()
                                .set("trace_id", rec.id)
                                .set("addr", rec.addr)
                                .set("bytes", child_bytes.get(&rec.id).copied().unwrap_or(0)),
                        ),
                );
            } else if rec.kind != "traffic" {
                events.push(
                    Json::object()
                        .set("ph", "i")
                        .set("name", rec.kind)
                        .set("cat", "marker")
                        .set("pid", pid)
                        .set("tid", 0u64)
                        .set("ts", rec.cycle as f64)
                        .set("s", "t")
                        .set(
                            "args",
                            Json::object()
                                .set("cause", rec.cause)
                                .set("addr", rec.addr)
                                .set("info", rec.info),
                        ),
                );
            }
        }
    }
    Json::object()
        .set("displayTimeUnit", "ms")
        .set("traceEvents", Json::Array(events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use plutus_telemetry::TraceRecord;

    fn rec(
        id: u64,
        cause: u64,
        kind: &'static str,
        class: &'static str,
        bytes: u64,
        level: u32,
        cycle: u64,
    ) -> TraceRecord {
        TraceRecord {
            id,
            cause,
            kind,
            class,
            bytes,
            write: false,
            level,
            cycle,
            addr: 0x40,
            info: 0,
        }
    }

    fn tiny_run() -> TracedRun {
        TracedRun {
            workload: "w".into(),
            scheme: "plutus".into(),
            cycles: 100,
            class_bytes: vec![("data".into(), 64), ("counter".into(), 32)],
            records: vec![
                rec(1, 0, "fill", "", 0, 0, 10),
                rec(0, 1, "traffic", "data", 32, 0, 12),
                rec(0, 1, "traffic", "counter", 32, 0, 14),
                rec(0, 1, "value_vouch", "", 0, 0, 15),
                rec(2, 0, "writeback", "", 0, 0, 40),
                rec(0, 2, "traffic", "data", 32, 0, 41),
            ],
            dropped: 0,
        }
    }

    #[test]
    fn collapsed_stack_folds_and_sorts() {
        let text = collapsed_stack(&[tiny_run()]);
        assert_eq!(
            text,
            "w;plutus;fill;counter;level0 32\n\
             w;plutus;fill;data;level0 32\n\
             w;plutus;writeback;data;level0 32\n"
        );
    }

    #[test]
    fn attribution_table_reports_conservation() {
        let text = attribution_table(&[tiny_run()]);
        assert!(text.contains("w/plutus"));
        assert!(text.contains("traced 96 B vs simulator 96 B — conserved"));
    }

    #[test]
    fn attribution_table_flags_drops() {
        let mut run = tiny_run();
        run.dropped = 3;
        let text = attribution_table(&[run]);
        assert!(text.contains("NOT conserved"));
    }

    #[test]
    fn chrome_trace_shapes_events() {
        let doc = chrome_trace(&[tiny_run()], None);
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // 1 metadata + 2 root slices + 1 instant marker.
        assert_eq!(events.len(), 4);
        let fill = &events[1];
        assert_eq!(fill.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(fill.get("name").unwrap().as_str(), Some("fill"));
        assert_eq!(fill.get("ts").unwrap().as_f64(), Some(10.0));
        // Slice spans root cycle 10 to last child cycle 15.
        assert_eq!(fill.get("dur").unwrap().as_f64(), Some(5.0));
        let args = fill.get("args").unwrap();
        assert_eq!(args.get("bytes").unwrap().as_u64(), Some(64));
        // Events keep recorder order: the vouch marker lands between the
        // fill and writeback slices.
        let marker = &events[2];
        assert_eq!(marker.get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(marker.get("name").unwrap().as_str(), Some("value_vouch"));
        assert_eq!(events[3].get("name").unwrap().as_str(), Some("writeback"));
    }

    #[test]
    fn chrome_trace_round_trips_through_parser() {
        let doc = chrome_trace(&[tiny_run()], None);
        let parsed = Json::parse(&doc.to_string_compact()).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 4);
        assert_eq!(events[1].get("ts").unwrap().as_f64(), Some(10.0));
    }
}
