//! Ablation studies for the design choices DESIGN.md calls out: the knobs
//! the paper fixes, swept so the fixed points can be justified.

use crate::runner::{geomean, run_one, run_with_factory, Scheme};
use gpu_sim::{EngineFactory, GpuConfig};
use plutus_core::{CompactConfig, PlutusConfig, PlutusEngine};
use secure_mem::{CipherKind, PssmEngine, SecureMemConfig};
use workloads::{Scale, WorkloadSpec};

/// One ablation row: a labeled configuration's geomean normalized IPC over
/// the chosen workloads.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Configuration label.
    pub label: String,
    /// Geomean IPC normalized to no security.
    pub norm_ipc: f64,
    /// Geomean metadata bytes relative to the first row.
    pub metadata_bytes: u64,
}

fn measure(
    label: &str,
    factory: &dyn EngineFactory,
    workloads: &[WorkloadSpec],
    scale: Scale,
    cfg: &GpuConfig,
) -> AblationRow {
    let mut ratios = Vec::new();
    let mut meta = 0u64;
    for w in workloads {
        let base = run_one(w, Scheme::None, scale, cfg);
        let r = run_with_factory(w, factory, scale, cfg);
        if base.ipc() > 0.0 {
            ratios.push(r.ipc() / base.ipc());
        }
        meta += r.stats.metadata_bytes();
    }
    AblationRow {
        label: label.into(),
        norm_ipc: geomean(ratios),
        metadata_bytes: meta,
    }
}

fn print_rows(title: &str, rows: &[AblationRow]) {
    println!("\n--- {title} ---");
    println!(
        "{:<28}{:>12}{:>18}",
        "config", "norm. IPC", "metadata bytes"
    );
    for r in rows {
        println!(
            "{:<28}{:>12.4}{:>18}",
            r.label, r.norm_ipc, r.metadata_bytes
        );
    }
}

/// MAC size: the PSSM paper's 4 B tag vs the 8 B tag Plutus adopts.
pub fn mac_size(workloads: &[WorkloadSpec], scale: Scale, cfg: &GpuConfig) -> Vec<AblationRow> {
    let rows = vec![
        measure(
            "pssm-mac4",
            &PssmEngine::factory(SecureMemConfig::pssm_mac4()),
            workloads,
            scale,
            cfg,
        ),
        measure(
            "pssm-mac8",
            &PssmEngine::factory(SecureMemConfig::pssm()),
            workloads,
            scale,
            cfg,
        ),
    ];
    print_rows("MAC size (4B halves storage, 8B halves collisions)", &rows);
    rows
}

/// Counter organization: state-of-the-art split counters vs SGX-style
/// monolithic counters (one 64-bit counter per sector, 8× the counter
/// footprint — the paper's Section II contrast).
pub fn counter_organization(
    workloads: &[WorkloadSpec],
    scale: Scale,
    cfg: &GpuConfig,
) -> Vec<AblationRow> {
    let rows = vec![
        measure(
            "pssm-split",
            &PssmEngine::factory(SecureMemConfig::pssm()),
            workloads,
            scale,
            cfg,
        ),
        measure(
            "pssm-monolithic",
            &PssmEngine::factory(SecureMemConfig::pssm_monolithic()),
            workloads,
            scale,
            cfg,
        ),
    ];
    print_rows("counter organization: split vs SGX-style monolithic", &rows);
    rows
}

/// Data-path cipher under PSSM: CME (overlapped pads) vs XTS (serialized
/// decrypt, diffusing) — the latency cost Plutus pays for soundness.
pub fn cipher_choice(
    workloads: &[WorkloadSpec],
    scale: Scale,
    cfg: &GpuConfig,
) -> Vec<AblationRow> {
    let xts = SecureMemConfig {
        cipher: CipherKind::Xts,
        ..SecureMemConfig::pssm()
    };
    let rows = vec![
        measure(
            "pssm-cme",
            &PssmEngine::factory(SecureMemConfig::pssm()),
            workloads,
            scale,
            cfg,
        ),
        measure("pssm-xts", &PssmEngine::factory(xts), workloads, scale, cfg),
    ];
    print_rows("cipher: CME vs AES-XTS on the PSSM baseline", &rows);
    rows
}

/// Value-cache pinned fraction (paper fixes 25%).
pub fn pinned_fraction(
    workloads: &[WorkloadSpec],
    scale: Scale,
    cfg: &GpuConfig,
) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for frac in [0.0, 0.125, 0.25, 0.5] {
        let mut pc = PlutusConfig::full();
        pc.value_cache.pinned_fraction = frac;
        rows.push(measure(
            &format!("pinned-{:.0}%", frac * 100.0),
            &PlutusEngine::factory(pc),
            workloads,
            scale,
            cfg,
        ));
    }
    print_rows("value-cache pinned fraction", &rows);
    rows
}

/// Promotion threshold for pinning (use-counter value).
pub fn promote_threshold(
    workloads: &[WorkloadSpec],
    scale: Scale,
    cfg: &GpuConfig,
) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for thr in [2u8, 8, 15] {
        let mut pc = PlutusConfig::full();
        pc.value_cache.promote_threshold = thr;
        rows.push(measure(
            &format!("promote-at-{thr}"),
            &PlutusEngine::factory(pc),
            workloads,
            scale,
            cfg,
        ));
    }
    print_rows("value-cache promotion threshold", &rows);
    rows
}

/// Adaptive compact-counter disable threshold (paper fixes 8 saturated
/// counters per 64-counter block).
pub fn disable_threshold(
    workloads: &[WorkloadSpec],
    scale: Scale,
    cfg: &GpuConfig,
) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for thr in [4u8, 8, 16, 32] {
        let mut pc = PlutusConfig::full();
        pc.compact = Some(CompactConfig {
            disable_threshold: thr,
            ..CompactConfig::default()
        });
        rows.push(measure(
            &format!("disable-at-{thr}"),
            &PlutusEngine::factory(pc),
            workloads,
            scale,
            cfg,
        ));
    }
    print_rows("adaptive compact-counter disable threshold", &rows);
    rows
}

/// Serialized vs parallel integrity-tree fetches (the modeling switch).
pub fn chain_serialization(
    workloads: &[WorkloadSpec],
    scale: Scale,
    cfg: &GpuConfig,
) -> Vec<AblationRow> {
    let mut serial_cfg = cfg.clone();
    serial_cfg.serial_metadata_chains = true;
    let rows = vec![
        measure(
            "plutus-parallel-walk",
            &PlutusEngine::factory(PlutusConfig::full()),
            workloads,
            scale,
            cfg,
        ),
        measure(
            "plutus-serial-walk",
            &PlutusEngine::factory(PlutusConfig::full()),
            workloads,
            scale,
            &serial_cfg,
        ),
        measure(
            "pssm-parallel-walk",
            &PssmEngine::factory(SecureMemConfig::pssm()),
            workloads,
            scale,
            cfg,
        ),
        measure(
            "pssm-serial-walk",
            &PssmEngine::factory(SecureMemConfig::pssm()),
            workloads,
            scale,
            &serial_cfg,
        ),
    ];
    print_rows("tree-walk fetch serialization", &rows);
    rows
}

/// Warp-pool size (latency-hiding capacity).
pub fn warp_sensitivity(
    workloads: &[WorkloadSpec],
    scale: Scale,
    cfg: &GpuConfig,
) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for warps in [512usize, 2048, 4096] {
        let mut c = cfg.clone();
        c.warps = warps;
        rows.push(measure(
            &format!("plutus-{warps}-warps"),
            &PlutusEngine::factory(PlutusConfig::full()),
            workloads,
            scale,
            &c,
        ));
    }
    print_rows("warp-pool size (Plutus tolerates latency via TLP)", &rows);
    rows
}

/// Runs every ablation and returns all rows.
pub fn run_all(workloads: &[WorkloadSpec], scale: Scale, cfg: &GpuConfig) -> Vec<AblationRow> {
    let mut all = Vec::new();
    all.extend(mac_size(workloads, scale, cfg));
    all.extend(counter_organization(workloads, scale, cfg));
    all.extend(cipher_choice(workloads, scale, cfg));
    all.extend(pinned_fraction(workloads, scale, cfg));
    all.extend(promote_threshold(workloads, scale, cfg));
    all.extend(disable_threshold(workloads, scale, cfg));
    all.extend(chain_serialization(workloads, scale, cfg));
    all.extend(warp_sensitivity(workloads, scale, cfg));
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::by_name;

    fn setup() -> (Vec<WorkloadSpec>, GpuConfig) {
        (vec![by_name("histo").unwrap()], GpuConfig::test_small())
    }

    #[test]
    fn mac4_matches_mac8_traffic_within_tolerance() {
        // 4 B tags halve MAC *storage*, but the fetch unit (32 B) is
        // unchanged, so DRAM metadata traffic must stay within a few
        // percent — the schemes trade collision rate, not bandwidth.
        let (w, cfg) = setup();
        let rows = mac_size(&w, Scale::Test, &cfg);
        let (mac4, mac8) = (rows[0].metadata_bytes as f64, rows[1].metadata_bytes as f64);
        assert!(mac4 <= mac8 * 1.05, "mac4 metadata {mac4} vs mac8 {mac8}");
        assert!(mac8 <= mac4 * 1.05, "mac8 metadata {mac8} vs mac4 {mac4}");
    }

    #[test]
    fn serial_walks_never_beat_parallel() {
        let (w, cfg) = setup();
        let rows = chain_serialization(&w, Scale::Test, &cfg);
        let get = |l: &str| rows.iter().find(|r| r.label == l).unwrap().norm_ipc;
        assert!(get("plutus-serial-walk") <= get("plutus-parallel-walk") + 1e-9);
        assert!(get("pssm-serial-walk") <= get("pssm-parallel-walk") + 1e-9);
    }

    #[test]
    fn pinned_fraction_rows_complete() {
        let (w, cfg) = setup();
        let rows = pinned_fraction(&w, Scale::Test, &cfg);
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.norm_ipc > 0.0));
    }
}
