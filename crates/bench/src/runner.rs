//! Shared experiment runner: schemes × workloads → results.

use gpu_sim::{EngineFactory, GpuConfig, NoSecurityEngine, SimResult, Simulator};
use plutus_core::{CompactKind, PlutusConfig, PlutusEngine};
use plutus_exec::{Executor, Job, JobPanic};
use plutus_telemetry::{CycleClock, Event, Telemetry, TraceRecord};
use secure_mem::{CommonCountersEngine, PssmEngine, SecureMemConfig};
use std::sync::Arc;
use workloads::{Scale, WorkloadSpec};

/// Every security scheme the experiments compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// No memory security (the normalization baseline).
    None,
    /// PSSM baseline (8 B MAC, 128 B metadata, CME).
    Pssm,
    /// PSSM with the original 4 B MAC.
    PssmMac4,
    /// Common Counters layered on PSSM.
    CommonCounters,
    /// Fig. 14 design ②: 32 B counter/MAC blocks, 128 B BMT nodes.
    FineLeafCoarseTree,
    /// Fig. 14 design ③: all metadata 32 B.
    All32,
    /// Plutus idea ① only: value-based verification.
    ValueVerifyOnly,
    /// Plutus idea ② only, 2-bit compact counters.
    Compact2Bit,
    /// Plutus idea ② only, 3-bit compact counters.
    Compact3Bit,
    /// Plutus idea ② only, adaptive 3-bit compact counters.
    CompactAdaptive,
    /// Full Plutus (all three ideas).
    Plutus,
    /// Full Plutus with integrity-tree traffic eliminated (Fig. 20).
    PlutusNoTree,
    /// PSSM with integrity-tree traffic eliminated (MGX-style reference).
    PssmNoTree,
    /// Full Plutus with a custom value-cache entry count (Fig. 21).
    PlutusValueEntries(usize),
}

impl Scheme {
    /// Display label used in experiment tables.
    pub fn label(&self) -> String {
        match self {
            Scheme::None => "no-security".into(),
            Scheme::Pssm => "pssm".into(),
            Scheme::PssmMac4 => "pssm-mac4".into(),
            Scheme::CommonCounters => "common-counters".into(),
            Scheme::FineLeafCoarseTree => "leaf32-tree128".into(),
            Scheme::All32 => "all-32".into(),
            Scheme::ValueVerifyOnly => "value-verify".into(),
            Scheme::Compact2Bit => "compact-2bit".into(),
            Scheme::Compact3Bit => "compact-3bit".into(),
            Scheme::CompactAdaptive => "compact-adaptive".into(),
            Scheme::Plutus => "plutus".into(),
            Scheme::PlutusNoTree => "plutus-no-tree".into(),
            Scheme::PssmNoTree => "pssm-no-tree".into(),
            Scheme::PlutusValueEntries(n) => format!("plutus-vc{n}"),
        }
    }

    pub(crate) fn factory(&self) -> Box<dyn EngineFactory> {
        match self {
            Scheme::None => Box::new(NoSecurityFactoryShim),
            Scheme::Pssm => Box::new(PssmEngine::factory(SecureMemConfig::pssm())),
            Scheme::PssmMac4 => Box::new(PssmEngine::factory(SecureMemConfig::pssm_mac4())),
            Scheme::CommonCounters => {
                Box::new(CommonCountersEngine::factory(SecureMemConfig::pssm()))
            }
            Scheme::FineLeafCoarseTree => {
                Box::new(PssmEngine::factory(SecureMemConfig::fine_leaf_coarse_tree()))
            }
            Scheme::All32 => Box::new(PssmEngine::factory(SecureMemConfig::all_32())),
            Scheme::ValueVerifyOnly => {
                Box::new(PlutusEngine::factory(PlutusConfig::value_verify_only()))
            }
            Scheme::Compact2Bit => Box::new(PlutusEngine::factory(PlutusConfig::compact_only(
                CompactKind::TwoBit,
            ))),
            Scheme::Compact3Bit => Box::new(PlutusEngine::factory(PlutusConfig::compact_only(
                CompactKind::ThreeBit,
            ))),
            Scheme::CompactAdaptive => Box::new(PlutusEngine::factory(PlutusConfig::compact_only(
                CompactKind::Adaptive3,
            ))),
            Scheme::Plutus => Box::new(PlutusEngine::factory(PlutusConfig::full())),
            Scheme::PlutusNoTree => Box::new(PlutusEngine::factory(PlutusConfig::full_no_tree())),
            Scheme::PssmNoTree => {
                let cfg = SecureMemConfig {
                    disable_tree: true,
                    ..SecureMemConfig::pssm()
                };
                Box::new(PssmEngine::factory(cfg))
            }
            Scheme::PlutusValueEntries(n) => Box::new(PlutusEngine::factory(
                PlutusConfig::full_with_value_entries(*n),
            )),
        }
    }
}

impl plutus_recovery::SchemeProvider for Scheme {
    fn scheme_label(&self) -> String {
        self.label()
    }

    fn make_factory(&self) -> Box<dyn EngineFactory> {
        self.factory()
    }
}

/// Schemes the fail-operational campaigns exercise: the three
/// checkpoint-capable engines.
pub fn recovery_schemes() -> Vec<Box<dyn plutus_recovery::SchemeProvider>> {
    vec![
        Box::new(Scheme::Pssm),
        Box::new(Scheme::CommonCounters),
        Box::new(Scheme::Plutus),
    ]
}

/// Error raised by the fallible experiment runner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunnerError {
    /// A workload's worker thread panicked; the message carries
    /// whatever payload the panic unwound with.
    WorkerPanicked {
        /// Job label of the thread that died (matrix jobs are labelled
        /// `workload/scheme`).
        workload: String,
        /// Stringified panic payload.
        message: String,
    },
}

impl std::fmt::Display for RunnerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunnerError::WorkerPanicked { workload, message } => {
                write!(f, "workload {workload:?} worker thread panicked: {message}")
            }
        }
    }
}

impl std::error::Error for RunnerError {}

impl From<JobPanic> for RunnerError {
    fn from(p: JobPanic) -> Self {
        RunnerError::WorkerPanicked {
            workload: p.label,
            message: p.message,
        }
    }
}

/// Converts a pool result batch into values, surfacing the first
/// panicked job (in submission order) as a [`RunnerError`]. Every job
/// has already run to completion by the time this is called — the pool
/// joins all workers before returning.
fn values_or_first_panic<T>(results: Vec<Result<T, JobPanic>>) -> Result<Vec<T>, RunnerError> {
    results
        .into_iter()
        .map(|r| r.map_err(RunnerError::from))
        .collect()
}

struct NoSecurityFactoryShim;

impl EngineFactory for NoSecurityFactoryShim {
    fn build(&self, _partition: usize) -> Box<dyn gpu_sim::SecurityEngine> {
        Box::new(NoSecurityEngine::new())
    }

    fn scheme_name(&self) -> &'static str {
        "none"
    }
}

/// Runs one workload under one scheme (telemetry disabled).
pub fn run_one(
    workload: &WorkloadSpec,
    scheme: Scheme,
    scale: Scale,
    cfg: &GpuConfig,
) -> SimResult {
    run_one_with_telemetry(workload, scheme, scale, cfg, &Telemetry::disabled(), None)
}

/// Runs one workload under one scheme with instrumentation: the
/// simulator feeds `tel`'s registry, `RunStart`/`RunEnd` events bracket
/// the run, and one epoch snapshot is closed per run (labelled
/// `workload/scheme`). `epoch_cycles` additionally closes an epoch
/// every N simulated cycles for in-run time series.
pub fn run_one_with_telemetry(
    workload: &WorkloadSpec,
    scheme: Scheme,
    scale: Scale,
    cfg: &GpuConfig,
    tel: &Telemetry,
    epoch_cycles: Option<u64>,
) -> SimResult {
    let trace = workload.trace(scale);
    let factory = scheme.factory();
    let mut sim = Simulator::with_telemetry(cfg.clone(), trace, factory.as_ref(), tel.clone());
    if let Some(cycles) = epoch_cycles {
        sim.set_epoch_interval(cycles);
    }
    tel.event(Event::RunStart {
        workload: workload.name.to_string(),
        scheme: scheme.label(),
    });
    let result = sim.run();
    tel.event(Event::RunEnd {
        workload: workload.name.to_string(),
        scheme: scheme.label(),
    });
    tel.end_epoch(&format!("{}/{}", workload.name, scheme.label()));
    result
}

/// Runs a prebuilt trace under one scheme (telemetry disabled) — the
/// escape hatch for callers that size traces themselves, e.g. with
/// [`workloads::ScaleKnobs`] multipliers instead of a stock [`Scale`].
pub fn run_trace(trace: gpu_sim::Trace, scheme: Scheme, cfg: &GpuConfig) -> SimResult {
    let factory = scheme.factory();
    let mut sim = Simulator::new(cfg.clone(), trace, factory.as_ref());
    sim.run()
}

/// Runs one workload under a custom engine factory (for ablations not
/// covered by [`Scheme`]).
pub fn run_with_factory(
    workload: &WorkloadSpec,
    factory: &dyn EngineFactory,
    scale: Scale,
    cfg: &GpuConfig,
) -> SimResult {
    let trace = workload.trace(scale);
    let mut sim = Simulator::new(cfg.clone(), trace, factory);
    sim.run()
}

/// One (workload × scheme) measurement with its baseline normalization.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Workload name.
    pub workload: String,
    /// Scheme label.
    pub scheme: String,
    /// Raw IPC.
    pub ipc: f64,
    /// IPC normalized to the no-security run of the same trace.
    pub norm_ipc: f64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Total DRAM bytes.
    pub total_bytes: u64,
    /// Security-metadata DRAM bytes.
    pub metadata_bytes: u64,
    /// Per-class byte totals `(label, bytes)`.
    pub class_bytes: Vec<(String, u64)>,
    /// Engine-specific counters.
    pub engine_stats: Vec<(String, u64)>,
    /// Average fill latency in cycles (0.0 when the run had no fills).
    pub avg_fill_latency: f64,
    /// Mean violation-detection latency in cycles (0.0 when the run
    /// raised no violations).
    pub detection_latency_mean: f64,
    /// CPI-stack totals `(bucket label, cycles)` summed across
    /// partitions, in [`gpu_sim::StallBucket::ALL`] order.
    pub cpi_stack: Vec<(String, u64)>,
    /// Per-partition cycle-ledger buckets, in
    /// [`gpu_sim::StallBucket::ALL`] order; each inner vector sums to
    /// the run's cycle count (the conservation invariant).
    pub ledger_partitions: Vec<Vec<u64>>,
}

fn measurement_of(w: &WorkloadSpec, scheme: Scheme, r: &SimResult, base_ipc: f64) -> Measurement {
    let detections = &r.stats.violation_records;
    // Steady-state IPC: identical to whole-run IPC unless the config set
    // a warm-up boundary (`GpuConfig::warmup_cycles`), in which case the
    // launch ramp is excluded from both the scheme run and its baseline.
    let ipc = r.stats.steady_ipc();
    Measurement {
        workload: w.name.to_string(),
        scheme: scheme.label(),
        ipc,
        norm_ipc: if base_ipc > 0.0 { ipc / base_ipc } else { 0.0 },
        cycles: r.stats.cycles,
        total_bytes: r.stats.total_bytes(),
        metadata_bytes: r.stats.metadata_bytes(),
        class_bytes: gpu_sim::TrafficClass::ALL
            .iter()
            .map(|c| (c.label().to_string(), r.stats.class_bytes(*c)))
            .collect(),
        engine_stats: r.stats.engine.clone(),
        avg_fill_latency: r.stats.avg_fill_latency(),
        detection_latency_mean: if detections.is_empty() {
            0.0
        } else {
            detections.iter().map(|v| v.latency as f64).sum::<f64>() / detections.len() as f64
        },
        cpi_stack: gpu_sim::StallBucket::ALL
            .iter()
            .zip(r.stats.cpi_stack())
            .map(|(b, cycles)| (b.label().to_string(), cycles))
            .collect(),
        ledger_partitions: r.stats.ledgers.iter().map(|l| l.buckets.to_vec()).collect(),
    }
}

/// Runs `workloads × schemes`, normalizing every scheme against the
/// no-security run of the same workload. Runs execute as individual
/// (workload, scheme) jobs on a core-bounded work-stealing pool with
/// telemetry disabled per run; use [`run_matrix_with_telemetry`] when
/// collecting metrics.
///
/// # Panics
///
/// Panics if a workload job panics; [`try_run_matrix`] reports the
/// same condition as a [`RunnerError`] instead.
pub fn run_matrix(
    workloads: &[WorkloadSpec],
    schemes: &[Scheme],
    scale: Scale,
    cfg: &GpuConfig,
) -> Vec<Measurement> {
    try_run_matrix(workloads, schemes, scale, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`run_matrix`] on a default-sized pool (one
/// worker per available core). See [`try_run_matrix_on`].
///
/// # Errors
///
/// Returns the first panicked job, in submission order.
pub fn try_run_matrix(
    workloads: &[WorkloadSpec],
    schemes: &[Scheme],
    scale: Scale,
    cfg: &GpuConfig,
) -> Result<Vec<Measurement>, RunnerError> {
    try_run_matrix_on(&Executor::new(None), workloads, schemes, scale, cfg)
}

/// The matrix fan-out on a caller-supplied pool: one job per
/// (workload, scheme) pair — every workload's no-security baseline
/// first, then every secured scheme — assembled into measurements in
/// submission order, so the result is byte-identical for any worker
/// count. A panicking job is returned as a [`RunnerError`] value
/// (after every job has finished) rather than propagated, so CLI
/// paths can log the failure and exit nonzero instead of aborting
/// mid-report.
///
/// # Errors
///
/// Returns the first panicked job, in submission order (baselines in
/// workload order, then scheme runs in workload-major order).
pub fn try_run_matrix_on(
    exec: &Executor,
    workloads: &[WorkloadSpec],
    schemes: &[Scheme],
    scale: Scale,
    cfg: &GpuConfig,
) -> Result<Vec<Measurement>, RunnerError> {
    // Phase 1: the no-security baseline of every workload — the
    // normalization denominator every other job of that workload needs.
    let baseline_jobs: Vec<Job<'_, SimResult>> = workloads
        .iter()
        .map(|w| {
            Job::new(format!("{}/{}", w.name, Scheme::None.label()), move || {
                run_one(w, Scheme::None, scale, cfg)
            })
        })
        .collect();
    let baselines = values_or_first_panic(exec.run(baseline_jobs))?;

    // Phase 2: one job per (workload, secured scheme); `Scheme::None`
    // rows reuse the phase-1 result.
    let mut scheme_jobs: Vec<Job<'_, SimResult>> = Vec::new();
    for w in workloads {
        for &scheme in schemes {
            if scheme != Scheme::None {
                scheme_jobs.push(Job::new(
                    format!("{}/{}", w.name, scheme.label()),
                    move || run_one(w, scheme, scale, cfg),
                ));
            }
        }
    }
    let mut runs = values_or_first_panic(exec.run(scheme_jobs))?.into_iter();

    // Deterministic submission-order assembly: walk the same loop nest
    // the jobs were submitted in.
    let mut out = Vec::new();
    for (wi, w) in workloads.iter().enumerate() {
        let baseline = &baselines[wi];
        let base_ipc = baseline.stats.steady_ipc();
        for &scheme in schemes {
            let r = if scheme == Scheme::None {
                baseline.clone()
            } else {
                runs.next().expect("one result per submitted scheme job")
            };
            out.push(measurement_of(w, scheme, &r, base_ipc));
        }
    }
    Ok(out)
}

/// One traced (workload, scheme) run: the raw flight-recorder records
/// plus the aggregate per-class totals the conservation check compares
/// against.
#[derive(Debug, Clone)]
pub struct TracedRun {
    /// Workload name.
    pub workload: String,
    /// Scheme label.
    pub scheme: String,
    /// Simulated cycles of the run.
    pub cycles: u64,
    /// Per-class byte totals `(label, bytes)` from [`gpu_sim::SimStats`].
    pub class_bytes: Vec<(String, u64)>,
    /// The flight-recorder records, oldest first.
    pub records: Vec<TraceRecord>,
    /// Records dropped because the ring buffer filled (nonzero voids the
    /// attribution conservation property).
    pub dropped: u64,
}

impl TracedRun {
    /// Sums this trace's per-class traffic bytes (reads + writes), in
    /// [`gpu_sim::TrafficClass::ALL`] order — with a sampling period of
    /// 1 and zero drops these equal `class_bytes` exactly.
    pub fn traced_class_bytes(&self) -> Vec<(String, u64)> {
        gpu_sim::TrafficClass::ALL
            .iter()
            .map(|c| {
                let total = self
                    .records
                    .iter()
                    .filter(|r| r.kind == "traffic" && r.class == c.label())
                    .map(|r| r.bytes)
                    .sum();
                (c.label().to_string(), total)
            })
            .collect()
    }
}

/// Runs one workload under one scheme with the causal flight recorder
/// armed (per-run telemetry instance, cycle-stamped records).
pub fn run_one_traced(
    workload: &WorkloadSpec,
    scheme: Scheme,
    scale: Scale,
    cfg: &GpuConfig,
    sample: u64,
    capacity: usize,
) -> (SimResult, TracedRun) {
    let tel = Telemetry::with_clock(Arc::new(CycleClock::new()));
    tel.enable_tracing(sample, capacity);
    let tracer = tel.tracer();
    let result = run_one_with_telemetry(workload, scheme, scale, cfg, &tel, None);
    let traced = TracedRun {
        workload: workload.name.to_string(),
        scheme: scheme.label(),
        cycles: result.stats.cycles,
        class_bytes: gpu_sim::TrafficClass::ALL
            .iter()
            .map(|c| (c.label().to_string(), result.stats.class_bytes(*c)))
            .collect(),
        records: tracer.drain(),
        dropped: tracer.dropped(),
    };
    (result, traced)
}

/// The traced matrix fan-out: like [`try_run_matrix_on`] but every
/// (workload, scheme) run — baselines included — carries its own armed
/// flight recorder. Returns the measurements plus one [`TracedRun`] per
/// matrix row, both in submission order (so output is identical for any
/// worker count; per-run telemetry instances keep traces disjoint).
///
/// # Errors
///
/// Returns the first panicked job, in submission order.
pub fn try_run_matrix_traced_on(
    exec: &Executor,
    workloads: &[WorkloadSpec],
    schemes: &[Scheme],
    scale: Scale,
    cfg: &GpuConfig,
    sample: u64,
    capacity: usize,
) -> Result<(Vec<Measurement>, Vec<TracedRun>), RunnerError> {
    // Phase 1: traced no-security baselines.
    let baseline_jobs: Vec<Job<'_, (SimResult, TracedRun)>> = workloads
        .iter()
        .map(|w| {
            Job::new(format!("{}/{}", w.name, Scheme::None.label()), move || {
                run_one_traced(w, Scheme::None, scale, cfg, sample, capacity)
            })
        })
        .collect();
    let baselines = values_or_first_panic(exec.run(baseline_jobs))?;

    // Phase 2: one traced job per (workload, secured scheme).
    let mut scheme_jobs: Vec<Job<'_, (SimResult, TracedRun)>> = Vec::new();
    for w in workloads {
        for &scheme in schemes {
            if scheme != Scheme::None {
                scheme_jobs.push(Job::new(
                    format!("{}/{}", w.name, scheme.label()),
                    move || run_one_traced(w, scheme, scale, cfg, sample, capacity),
                ));
            }
        }
    }
    let mut runs = values_or_first_panic(exec.run(scheme_jobs))?.into_iter();

    let mut measurements = Vec::new();
    let mut traces = Vec::new();
    for (wi, w) in workloads.iter().enumerate() {
        let (baseline, baseline_trace) = &baselines[wi];
        let base_ipc = baseline.stats.steady_ipc();
        for &scheme in schemes {
            let (r, t) = if scheme == Scheme::None {
                (baseline.clone(), baseline_trace.clone())
            } else {
                runs.next().expect("one result per submitted scheme job")
            };
            measurements.push(measurement_of(w, scheme, &r, base_ipc));
            traces.push(t);
        }
    }
    Ok((measurements, traces))
}

/// The instrumented variant of [`run_matrix`]: runs sequentially so the
/// per-run epoch snapshots in `tel` stay attributable to one
/// (workload, scheme) pair each, and brackets every run with
/// `RunStart`/`RunEnd` events.
pub fn run_matrix_with_telemetry(
    workloads: &[WorkloadSpec],
    schemes: &[Scheme],
    scale: Scale,
    cfg: &GpuConfig,
    tel: &Telemetry,
    epoch_cycles: Option<u64>,
) -> Vec<Measurement> {
    let mut out = Vec::new();
    for w in workloads {
        let baseline = run_one_with_telemetry(w, Scheme::None, scale, cfg, tel, epoch_cycles);
        let base_ipc = baseline.stats.steady_ipc();
        for &scheme in schemes {
            let r = if scheme == Scheme::None {
                baseline.clone()
            } else {
                run_one_with_telemetry(w, scheme, scale, cfg, tel, epoch_cycles)
            };
            out.push(measurement_of(w, scheme, &r, base_ipc));
        }
    }
    out
}

/// Geometric mean of a non-empty series.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::by_name;

    fn small_cfg() -> GpuConfig {
        GpuConfig::test_small()
    }

    #[test]
    fn geomean_of_constants() {
        assert!((geomean([2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 0.0);
    }

    #[test]
    fn security_costs_performance() {
        let w = by_name("bfs").unwrap();
        let none = run_one(&w, Scheme::None, Scale::Test, &small_cfg());
        let pssm = run_one(&w, Scheme::Pssm, Scale::Test, &small_cfg());
        assert!(none.stats.violations == 0 && pssm.stats.violations == 0);
        assert!(
            pssm.stats.cycles > none.stats.cycles,
            "secure memory must cost cycles: {} vs {}",
            pssm.stats.cycles,
            none.stats.cycles
        );
        assert!(pssm.stats.metadata_bytes() > 0);
        assert_eq!(none.stats.metadata_bytes(), 0);
    }

    #[test]
    fn plutus_moves_less_metadata_than_pssm() {
        let w = by_name("bfs").unwrap();
        let pssm = run_one(&w, Scheme::Pssm, Scale::Test, &small_cfg());
        let plutus = run_one(&w, Scheme::Plutus, Scale::Test, &small_cfg());
        assert!(
            plutus.stats.violations == 0,
            "honest run must not raise violations"
        );
        assert!(
            plutus.stats.metadata_bytes() < pssm.stats.metadata_bytes(),
            "plutus {} >= pssm {}",
            plutus.stats.metadata_bytes(),
            pssm.stats.metadata_bytes()
        );
    }

    #[test]
    fn try_run_matrix_reports_results_as_values() {
        let w = [by_name("histo").unwrap()];
        let rows = try_run_matrix(&w, &[Scheme::None, Scheme::Pssm], Scale::Test, &small_cfg())
            .expect("healthy matrix must succeed");
        assert_eq!(rows.len(), 2);
        let err = RunnerError::WorkerPanicked {
            workload: "histo".into(),
            message: "boom".into(),
        };
        assert!(err.to_string().contains("histo"));
        let _: &dyn std::error::Error = &err;
    }

    #[test]
    fn pool_panics_surface_as_runner_errors() {
        let exec = Executor::new(Some(2));
        let jobs = vec![
            Job::new("healthy", || 1u32),
            Job::new("histo", || panic!("boom")),
            Job::new("also-healthy", || 3u32),
        ];
        let err = values_or_first_panic(exec.run(jobs)).unwrap_err();
        assert_eq!(
            err,
            RunnerError::WorkerPanicked {
                workload: "histo".into(),
                message: "boom".into(),
            }
        );
    }

    #[test]
    fn measurements_carry_conserving_ledgers() {
        let w = [by_name("histo").unwrap()];
        let rows = run_matrix(&w, &[Scheme::None, Scheme::Pssm], Scale::Test, &small_cfg());
        for r in &rows {
            assert!(!r.ledger_partitions.is_empty());
            for (p, buckets) in r.ledger_partitions.iter().enumerate() {
                assert_eq!(
                    buckets.iter().sum::<u64>(),
                    r.cycles,
                    "{}/{} partition {p} must conserve",
                    r.workload,
                    r.scheme
                );
            }
            let stack_total: u64 = r.cpi_stack.iter().map(|(_, c)| *c).sum();
            assert_eq!(
                stack_total,
                r.cycles * r.ledger_partitions.len() as u64,
                "summed CPI stack must equal cycles x partitions"
            );
        }
    }

    #[test]
    fn run_matrix_normalizes_against_baseline() {
        let w = [by_name("histo").unwrap()];
        let rows = run_matrix(&w, &[Scheme::None, Scheme::Pssm], Scale::Test, &small_cfg());
        assert_eq!(rows.len(), 2);
        let none = rows.iter().find(|r| r.scheme == "no-security").unwrap();
        assert!((none.norm_ipc - 1.0).abs() < 1e-9);
        let pssm = rows.iter().find(|r| r.scheme == "pssm").unwrap();
        assert!(pssm.norm_ipc < 1.0);
    }
}
