//! The `cipher_bench` microbenchmark: scalar vs native crypto-backend
//! throughput for the primitives the security engines drive per memory
//! access (AES-XTS sectors, CME pad streams, CMAC tags), in both the
//! block-at-a-time and batched entry points.
//!
//! Each primitive is timed twice — once with the backend forced to the
//! portable scalar tables, once under the backend that was active at
//! entry (AES-NI where the CPU has it, otherwise scalar again) — and
//! reported as MiB/s plus the native/scalar speedup. `gate` turns the
//! batched-primitive speedups into a CI assertion.

use plutus_crypto::backend::{self, CryptoBackend};
use plutus_crypto::{Cmac, CounterMode, Tweak, Xts};
use plutus_telemetry::Json;
use std::hint::black_box;
use std::time::Instant;

/// Sectors per batched call: comfortably past the 8-lane kernel width so
/// the pipeline stays full, small enough to live in L1.
const BATCH: usize = 64;

/// One primitive's scalar-vs-native measurement.
#[derive(Debug, Clone)]
pub struct CipherBenchRow {
    /// Primitive label, e.g. `xts.process_sectors[64]`.
    pub primitive: &'static str,
    /// Plaintext bytes processed per timed call.
    pub bytes_per_call: usize,
    /// Scalar-tables throughput in MiB/s.
    pub scalar_mibps: f64,
    /// Native-backend throughput in MiB/s (equals the scalar run when no
    /// SIMD backend exists on this host).
    pub native_mibps: f64,
    /// Whether this row times a batched entry point (the speedup gate's
    /// population).
    pub batched: bool,
}

impl CipherBenchRow {
    /// Native over scalar throughput.
    pub fn speedup(&self) -> f64 {
        if self.scalar_mibps > 0.0 {
            self.native_mibps / self.scalar_mibps
        } else {
            f64::NAN
        }
    }
}

/// Times `f` (which processes `bytes_per_call` plaintext bytes per call)
/// and returns MiB/s. Iteration count is calibrated geometrically until
/// the timed region is long enough to dwarf timer noise.
fn throughput_mibps(bytes_per_call: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..16 {
        f(); // warmup: touch caches, settle the backend dispatch
    }
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed.as_millis() >= 60 || iters >= 1 << 28 {
            let bytes = bytes_per_call as f64 * iters as f64;
            return bytes / elapsed.as_secs_f64().max(1e-9) / (1024.0 * 1024.0);
        }
        iters = iters.saturating_mul(4);
    }
}

fn tweaks() -> Vec<Tweak> {
    (0..BATCH as u64).map(|i| Tweak::new(i * 32, i)).collect()
}

/// One primitive's closure under whatever backend is currently forced.
fn measure(primitive: &'static str) -> f64 {
    let xts = Xts::new([0x11; 16], [0x22; 16]);
    let cme = CounterMode::new([0x33; 16]);
    let cmac = Cmac::new([0x44; 16]);
    let tweaks = tweaks();
    let mut sectors = vec![[0u8; 32]; BATCH];
    let mut sector = [0u8; 32];
    let msg = [0x5au8; 32];
    match primitive {
        "xts.encrypt_sector" => throughput_mibps(32, || {
            xts.encrypt_sector(black_box(&mut sector), Tweak::new(0x1000, 7));
        }),
        "xts.process_sectors[64]" => throughput_mibps(32 * BATCH, || {
            xts.encrypt_sectors(black_box(&mut sectors), &tweaks);
        }),
        "cme.apply" => throughput_mibps(32, || {
            cme.apply(black_box(&mut sector), Tweak::new(0x2000, 3));
        }),
        "cme.apply_sectors[64]" => throughput_mibps(32 * BATCH, || {
            cme.apply_sectors(black_box(&mut sectors), &tweaks);
        }),
        "cmac.stateful_tag64" => throughput_mibps(32, || {
            black_box(cmac.stateful_tag64(black_box(&msg), Tweak::new(0x40, 5)));
        }),
        "cmac.stateful_tag64_many[64]" => throughput_mibps(32 * BATCH, || {
            black_box(cmac.stateful_tag64_many(black_box(&sectors), &tweaks));
        }),
        other => unreachable!("unknown cipher_bench primitive {other}"),
    }
}

const PRIMITIVES: [(&str, bool); 6] = [
    ("xts.encrypt_sector", false),
    ("xts.process_sectors[64]", true),
    ("cme.apply", false),
    ("cme.apply_sectors[64]", true),
    ("cmac.stateful_tag64", false),
    ("cmac.stateful_tag64_many[64]", true),
];

/// Runs the full scalar-vs-native sweep. The backend active at entry is
/// treated as "native" (so `--crypto-backend scalar` yields a 1.0x
/// control run) and is restored before returning.
pub fn run_cipher_bench() -> (CryptoBackend, Vec<CipherBenchRow>) {
    let native = backend::active();
    let rows = PRIMITIVES
        .iter()
        .map(|&(primitive, batched)| {
            backend::force_scalar();
            let scalar_mibps = measure(primitive);
            backend::force(native);
            let native_mibps = measure(primitive);
            CipherBenchRow {
                primitive,
                bytes_per_call: if batched { 32 * BATCH } else { 32 },
                scalar_mibps,
                native_mibps,
                batched,
            }
        })
        .collect();
    backend::force(native);
    (native, rows)
}

/// Renders the measurement table.
pub fn cipher_bench_table(native: CryptoBackend, rows: &[CipherBenchRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<30} {:>14} {:>14} {:>9}\n",
        "primitive",
        "scalar MiB/s",
        format!("{native} MiB/s"),
        "speedup"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<30} {:>14.1} {:>14.1} {:>8.2}x\n",
            r.primitive,
            r.scalar_mibps,
            r.native_mibps,
            r.speedup()
        ));
    }
    out
}

/// The JSON document committed under `target/experiments/`.
pub fn cipher_bench_json(native: CryptoBackend, rows: &[CipherBenchRow]) -> Json {
    Json::object()
        .set("native_backend", native.to_string())
        .set(
            "rows",
            Json::Array(
                rows.iter()
                    .map(|r| {
                        Json::object()
                            .set("primitive", r.primitive)
                            .set("bytes_per_call", r.bytes_per_call)
                            .set("scalar_mibps", r.scalar_mibps)
                            .set("native_mibps", r.native_mibps)
                            .set("speedup", r.speedup())
                            .set("batched", r.batched)
                    })
                    .collect(),
            ),
        )
}

/// The `--assert-speedup` CI gate: every *batched* primitive must reach
/// `min` native/scalar speedup. Refuses to pass trivially when the
/// native backend is the scalar one.
pub fn cipher_bench_gate(
    native: CryptoBackend,
    rows: &[CipherBenchRow],
    min: f64,
) -> Result<(), String> {
    if native == CryptoBackend::Scalar {
        return Err(format!(
            "--assert-speedup {min} needs a SIMD backend, but the native backend is scalar \
             (no AES-NI on this host, or --crypto-backend scalar was passed)"
        ));
    }
    for r in rows.iter().filter(|r| r.batched) {
        let s = r.speedup();
        if s.is_nan() || s < min {
            return Err(format!(
                "{}: native/scalar speedup {s:.2}x below the required {min:.2}x",
                r.primitive
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_rejects_scalar_native_and_slow_rows() {
        let rows = vec![CipherBenchRow {
            primitive: "xts.process_sectors[64]",
            bytes_per_call: 2048,
            scalar_mibps: 100.0,
            native_mibps: 150.0,
            batched: true,
        }];
        assert!(cipher_bench_gate(CryptoBackend::Scalar, &rows, 4.0).is_err());
        assert!(cipher_bench_gate(CryptoBackend::AesNi, &rows, 4.0).is_err());
        assert!(cipher_bench_gate(CryptoBackend::AesNi, &rows, 1.2).is_ok());
    }

    #[test]
    fn gate_treats_non_finite_speedup_as_failure() {
        let rows = vec![CipherBenchRow {
            primitive: "cmac.stateful_tag64_many[64]",
            bytes_per_call: 2048,
            scalar_mibps: 0.0,
            native_mibps: 100.0,
            batched: true,
        }];
        assert!(cipher_bench_gate(CryptoBackend::AesNi, &rows, 4.0).is_err());
    }

    #[test]
    fn json_and_table_render() {
        let rows = vec![CipherBenchRow {
            primitive: "cme.apply_sectors[64]",
            bytes_per_call: 2048,
            scalar_mibps: 100.0,
            native_mibps: 500.0,
            batched: true,
        }];
        let doc = cipher_bench_json(CryptoBackend::AesNi, &rows).to_string_pretty();
        assert!(doc.contains("\"native_backend\": \"aes-ni\""));
        assert!(doc.contains("\"speedup\": 5"));
        assert!(cipher_bench_table(CryptoBackend::AesNi, &rows).contains("5.00x"));
    }
}
