//! The power model behind the paper's Fig. 22.
//!
//! The paper reports *average power normalized to a no-security system*.
//! Security changes two things: more DRAM bytes move per unit time, and
//! crypto engines burn energy per operation. We model GPU power as a
//! constant core component plus a traffic-proportional DRAM component plus
//! crypto-engine energy:
//!
//! ```text
//! P(run) = P_core + e_dram × bytes/cycle + (e_aes × aes_ops + e_mac × mac_ops)/cycle
//! ```
//!
//! Constants are chosen so DRAM at full Table-I bandwidth accounts for
//! ~40% of baseline board power — the published V100 breakdown
//! neighborhood — and are exposed for sensitivity studies.

use crate::runner::Measurement;

/// Energy-model constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Constant core/SM power in arbitrary units.
    pub core_power: f64,
    /// DRAM energy per byte (same units × cycles).
    pub e_dram_per_byte: f64,
    /// AES engine energy per crypto operation.
    pub e_aes_op: f64,
    /// MAC engine energy per operation.
    pub e_mac_op: f64,
    /// Peak DRAM bytes per cycle (whole GPU) used to calibrate shares.
    pub peak_bytes_per_cycle: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        // Calibration: at peak bandwidth (768 B/cycle for Table I), the
        // DRAM component equals 2/3 of the core component → DRAM is 40% of
        // total baseline power.
        let peak = 768.0;
        let core_power = 60.0;
        let e_dram_per_byte = (core_power * 2.0 / 3.0) / peak;
        Self {
            core_power,
            e_dram_per_byte,
            e_aes_op: 0.02,
            e_mac_op: 0.02,
            peak_bytes_per_cycle: peak,
        }
    }
}

impl EnergyModel {
    /// Average power of one measured run.
    pub fn power(&self, m: &Measurement) -> f64 {
        if m.cycles == 0 {
            return self.core_power;
        }
        let bpc = m.total_bytes as f64 / m.cycles as f64;
        let crypto_ops: u64 = m
            .engine_stats
            .iter()
            .filter(|(n, _)| n == "fills" || n == "writebacks")
            .map(|(_, v)| *v)
            .sum();
        let crypto_power = (crypto_ops as f64 * (self.e_aes_op + self.e_mac_op)) / m.cycles as f64;
        self.core_power + self.e_dram_per_byte * bpc + crypto_power
    }

    /// Power of `scheme_run` normalized to `baseline_run` (Fig. 22's
    /// y-axis).
    pub fn normalized_power(&self, scheme_run: &Measurement, baseline_run: &Measurement) -> f64 {
        self.power(scheme_run) / self.power(baseline_run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meas(cycles: u64, bytes: u64, ops: u64) -> Measurement {
        Measurement {
            workload: "w".into(),
            scheme: "s".into(),
            ipc: 1.0,
            norm_ipc: 1.0,
            cycles,
            total_bytes: bytes,
            metadata_bytes: 0,
            class_bytes: Vec::new(),
            engine_stats: vec![("fills".into(), ops)],
            avg_fill_latency: 0.0,
            detection_latency_mean: 0.0,
            cpi_stack: Vec::new(),
            ledger_partitions: Vec::new(),
        }
    }

    #[test]
    fn more_traffic_means_more_power() {
        let m = EnergyModel::default();
        let lo = meas(1000, 10_000, 0);
        let hi = meas(1000, 50_000, 0);
        assert!(m.power(&hi) > m.power(&lo));
    }

    #[test]
    fn normalized_power_of_identical_runs_is_one() {
        let m = EnergyModel::default();
        let a = meas(1000, 10_000, 0);
        assert!((m.normalized_power(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn crypto_ops_add_power() {
        let m = EnergyModel::default();
        let without = meas(1000, 10_000, 0);
        let with = meas(1000, 10_000, 500);
        assert!(m.power(&with) > m.power(&without));
    }

    #[test]
    fn dram_share_calibration() {
        let m = EnergyModel::default();
        // At peak bandwidth, DRAM power = 40% of the total.
        let peak_run = meas(1000, (m.peak_bytes_per_cycle * 1000.0) as u64, 0);
        let total = m.power(&peak_run);
        let dram = total - m.core_power;
        assert!(
            (dram / total - 0.4).abs() < 0.01,
            "dram share {}",
            dram / total
        );
    }

    #[test]
    fn zero_cycles_is_safe() {
        let m = EnergyModel::default();
        assert_eq!(m.power(&meas(0, 0, 0)), m.core_power);
    }
}
