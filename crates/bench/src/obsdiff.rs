//! Cross-run diffing of observability run directories.
//!
//! `experiments obs-diff A B [--tolerance F]` compares two run
//! directories produced with `--run-dir`. Manifests gate the diff:
//! two runs that disagree on seed, crypto backend, scale, workload
//! set, or experiment selection are different experiments, and diffing
//! them produces noise, not regressions. Compatible runs are then
//! compared report by report — every `*.json` both directories carry,
//! walked down to its numeric (and boolean) leaves — and the changed
//! leaves are ranked by percent change, worst first.
//!
//! Leaves whose path contains a known scheduler-nondeterministic
//! metric ([`plutus_telemetry::STREAM_NONDETERMINISTIC`]) are skipped,
//! for the same reason the epoch stream excludes them: steal counts
//! vary run to run even at identical seeds. Wall-time series
//! (`sched.queue_ns`, `sched.exec_ns`, `span.*.ns` histograms) and the
//! worker-count gauge are skipped too — they describe the host and the
//! `--jobs` setting, not the simulated run, so two byte-identical
//! simulations legitimately disagree on them.

use crate::report::pct_change;
use plutus_telemetry::{Json, MANIFEST_FILE, MANIFEST_SCHEMA, STREAM_NONDETERMINISTIC};
use std::collections::BTreeMap;
use std::path::Path;

/// One numeric leaf that changed between run A and run B.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// Report file both directories carry (e.g. `campaign-storm.json`).
    pub file: String,
    /// Dotted path to the leaf inside the document.
    pub path: String,
    /// Value in run A (NaN when the leaf exists only in B).
    pub a: f64,
    /// Value in run B (NaN when the leaf exists only in A).
    pub b: f64,
    /// `pct_change(b, a)`, in percent; non-finite for appear/vanish.
    pub pct: f64,
}

/// The outcome of diffing two compatible run directories.
#[derive(Debug, Default)]
pub struct ObsDiff {
    /// Every changed leaf, ranked by |pct| descending (non-finite
    /// changes — leaves that appeared or vanished — rank first).
    pub changed: Vec<DiffRow>,
    /// Reports present in exactly one directory (coverage changes).
    pub one_sided: Vec<String>,
    /// Reports compared in both directories.
    pub compared: Vec<String>,
}

impl ObsDiff {
    /// The changed leaves beyond `tolerance` (a fraction; 0.02 = 2%).
    /// Non-finite changes always count. One-sided reports are gated
    /// separately via [`ObsDiff::one_sided`].
    pub fn regressions(&self, tolerance: f64) -> Vec<&DiffRow> {
        self.changed
            .iter()
            .filter(|r| !r.pct.is_finite() || r.pct.abs() > tolerance * 100.0)
            .collect()
    }
}

/// Checks that two manifests describe comparable runs: same manifest
/// schema and same values for every identity field (seed, crypto
/// backend, scale, workloads, experiment, campaign). The command line
/// is deliberately *not* compared — `--run-dir X` vs `--run-dir Y` is
/// exactly the difference a diff exists to bridge.
///
/// # Errors
///
/// Returns a human-readable description of the first mismatch.
pub fn manifest_compat(a: &Json, b: &Json) -> Result<(), String> {
    for (doc, name) in [(a, "A"), (b, "B")] {
        match doc.get("schema").and_then(Json::as_str) {
            Some(MANIFEST_SCHEMA) => {}
            other => {
                return Err(format!(
                    "run {name}: expected manifest schema '{MANIFEST_SCHEMA}', found {other:?}"
                ))
            }
        }
    }
    for field in [
        "seed",
        "crypto_backend",
        "scale",
        "workloads",
        "experiment",
        "campaign",
    ] {
        let av = a.get(field).cloned().unwrap_or(Json::Null);
        let bv = b.get(field).cloned().unwrap_or(Json::Null);
        if av != bv {
            return Err(format!(
                "manifests disagree on {field}: {} vs {}; these runs are not comparable",
                av.to_string_compact(),
                bv.to_string_compact()
            ));
        }
    }
    Ok(())
}

/// Diffs two run directories: manifest compatibility first, then every
/// shared JSON report leaf by leaf.
///
/// # Errors
///
/// Returns `Err` when a manifest is missing or unreadable, or when the
/// manifests are incompatible (the caller should treat this as a usage
/// error, not a regression).
pub fn diff_run_dirs(a: &Path, b: &Path) -> Result<ObsDiff, String> {
    let ma = read_manifest(a)?;
    let mb = read_manifest(b)?;
    manifest_compat(&ma, &mb)?;
    let fa = json_reports(a)?;
    let fb = json_reports(b)?;
    let mut out = ObsDiff::default();
    for name in fa.iter().filter(|n| !fb.contains(n)) {
        out.one_sided.push(format!("{name} (only in A)"));
    }
    for name in fb.iter().filter(|n| !fa.contains(n)) {
        out.one_sided.push(format!("{name} (only in B)"));
    }
    for name in fa.iter().filter(|n| fb.contains(n)) {
        let da = read_json(&a.join(name))?;
        let db = read_json(&b.join(name))?;
        out.compared.push(name.clone());
        let mut la = BTreeMap::new();
        walk("", &da, &mut la);
        let mut lb = BTreeMap::new();
        walk("", &db, &mut lb);
        let keys: Vec<&String> = la
            .keys()
            .chain(lb.keys().filter(|k| !la.contains_key(*k)))
            .collect();
        for key in keys {
            let (va, vb) = (la.get(key), lb.get(key));
            let (a_val, b_val) = (
                va.copied().unwrap_or(f64::NAN),
                vb.copied().unwrap_or(f64::NAN),
            );
            let pct = match (va, vb) {
                (Some(&x), Some(&y)) => {
                    if x == y {
                        continue;
                    }
                    pct_change(y, x)
                }
                _ => f64::INFINITY,
            };
            out.changed.push(DiffRow {
                file: name.clone(),
                path: key.clone(),
                a: a_val,
                b: b_val,
                pct,
            });
        }
    }
    out.changed.sort_by(|x, y| {
        let kx = if x.pct.is_finite() {
            x.pct.abs()
        } else {
            f64::INFINITY
        };
        let ky = if y.pct.is_finite() {
            y.pct.abs()
        } else {
            f64::INFINITY
        };
        ky.partial_cmp(&kx)
            .unwrap()
            .then_with(|| x.file.cmp(&y.file))
            .then_with(|| x.path.cmp(&y.path))
    });
    Ok(out)
}

/// Renders the ranked regression table for the rows
/// [`ObsDiff::regressions`] selected.
pub fn obs_diff_table(rows: &[&DiffRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24}{:<48}{:>14}{:>14}{:>10}\n",
        "report", "leaf", "A", "B", "change%"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<24}{:<48}{:>14.4}{:>14.4}{:>10}\n",
            r.file,
            r.path,
            r.a,
            r.b,
            if r.pct.is_finite() {
                format!("{:+.2}", r.pct)
            } else {
                "±inf".into()
            }
        ));
    }
    out
}

fn read_manifest(dir: &Path) -> Result<Json, String> {
    read_json(&dir.join(MANIFEST_FILE))
        .map_err(|e| format!("{e}; was this directory produced with --run-dir?"))
}

fn read_json(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))
}

/// Sorted `*.json` report names in `dir`, excluding the manifest.
fn json_reports(dir: &Path) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".json") && name != MANIFEST_FILE {
            names.push(name);
        }
    }
    names.sort();
    Ok(names)
}

/// Wall-time and environment-shaped series excluded from cross-run
/// diffs on top of [`STREAM_NONDETERMINISTIC`]: these measure the host
/// and the worker count, not the simulated run.
const WALL_TIME_NONDETERMINISTIC: &[&str] = &["sched.queue_ns", "sched.exec_ns", "sched.workers"];

/// True when a leaf path names a metric that legitimately differs
/// between byte-identical simulations.
fn nondeterministic(path: &str) -> bool {
    STREAM_NONDETERMINISTIC
        .iter()
        .chain(WALL_TIME_NONDETERMINISTIC)
        .any(|m| path.contains(m))
        || (path.contains("span.") && path.contains(".ns"))
}

/// Flattens every numeric and boolean leaf of `v` into dotted paths.
/// Booleans become 0/1 so a `clean: true -> false` flip is visible.
/// Scheduler-nondeterministic and wall-time metric names are skipped.
fn walk(prefix: &str, v: &Json, out: &mut BTreeMap<String, f64>) {
    if nondeterministic(prefix) {
        return;
    }
    match v {
        Json::Object(pairs) => {
            for (k, val) in pairs {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                walk(&path, val, out);
            }
        }
        Json::Array(items) => {
            for (i, val) in items.iter().enumerate() {
                walk(&format!("{prefix}[{i}]"), val, out);
            }
        }
        Json::Bool(b) => {
            out.insert(prefix.to_string(), f64::from(u8::from(*b)));
        }
        other => {
            if let Some(x) = other.as_f64() {
                out.insert(prefix.to_string(), x);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn manifest(seed: u64) -> Json {
        Json::object()
            .set("schema", MANIFEST_SCHEMA)
            .set("seed", seed)
            .set("crypto_backend", "scalar")
            .set("scale", "test")
            .set("experiment", "campaign")
            .set("campaign", "storm")
            .set("workloads", Json::Array(vec![Json::from("gemm")]))
    }

    fn write_run(dir: &Path, seed: u64, ipc: f64, clean: bool) {
        std::fs::create_dir_all(dir).unwrap();
        std::fs::write(dir.join(MANIFEST_FILE), manifest(seed).to_string_pretty()).unwrap();
        let report = Json::object().set(
            "rows",
            Json::Array(vec![Json::object()
                .set("ipc", ipc)
                .set("clean", clean)
                .set("sched.steals", 99u64)
                .set("sched.exec_ns", if clean { 100u64 } else { 999u64 })
                .set("span.engine.fill.ns", if clean { 7u64 } else { 8u64 })]),
        );
        std::fs::write(dir.join("campaign-storm.json"), report.to_string_pretty()).unwrap();
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("plutus-obsdiff-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn identical_runs_diff_empty() {
        let (a, b) = (scratch("id-a"), scratch("id-b"));
        write_run(&a, 42, 1.5, true);
        write_run(&b, 42, 1.5, true);
        let diff = diff_run_dirs(&a, &b).unwrap();
        assert!(diff.changed.is_empty());
        assert!(diff.one_sided.is_empty());
        assert_eq!(diff.compared, vec!["campaign-storm.json"]);
    }

    #[test]
    fn changed_leaves_rank_by_magnitude() {
        let (a, b) = (scratch("rk-a"), scratch("rk-b"));
        write_run(&a, 42, 1.5, true);
        write_run(&b, 42, 1.2, false);
        let diff = diff_run_dirs(&a, &b).unwrap();
        // The clean flip (1 -> 0, -100%) outranks the 20% IPC drop;
        // the nondeterministic steal counter and the wall-time series
        // (exec ns, span histogram) never show up even though they
        // changed too.
        let paths: Vec<&str> = diff.changed.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(paths, vec!["rows[0].clean", "rows[0].ipc"]);
        assert_eq!(
            diff.regressions(0.25).len(),
            1,
            "20% drop inside 25% tolerance"
        );
        assert_eq!(diff.regressions(0.0).len(), 2);
        let table = obs_diff_table(&diff.regressions(0.0));
        assert!(table.contains("rows[0].ipc"));
    }

    #[test]
    fn seed_mismatch_refuses_to_diff() {
        let (a, b) = (scratch("sd-a"), scratch("sd-b"));
        write_run(&a, 42, 1.5, true);
        write_run(&b, 7, 1.5, true);
        let err = diff_run_dirs(&a, &b).unwrap_err();
        assert!(err.contains("seed"), "got: {err}");
    }

    #[test]
    fn missing_manifest_is_a_usage_error() {
        let (a, b) = (scratch("mm-a"), scratch("mm-b"));
        write_run(&a, 42, 1.5, true);
        std::fs::create_dir_all(&b).unwrap();
        let err = diff_run_dirs(&a, &b).unwrap_err();
        assert!(err.contains("--run-dir"), "got: {err}");
    }

    #[test]
    fn one_sided_reports_are_flagged() {
        let (a, b) = (scratch("os-a"), scratch("os-b"));
        write_run(&a, 42, 1.5, true);
        write_run(&b, 42, 1.5, true);
        std::fs::write(a.join("extra.json"), "{\"x\": 1}").unwrap();
        let diff = diff_run_dirs(&a, &b).unwrap();
        assert_eq!(diff.one_sided, vec!["extra.json (only in A)"]);
        assert!(diff.changed.is_empty());
    }
}
