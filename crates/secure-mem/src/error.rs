//! Typed errors for the secure-memory crate.
//!
//! Engine constructors historically panicked on invalid configuration;
//! [`SecureMemError`] gives CLI and harness code a `Result` path instead,
//! so a bad flag combination exits with a diagnostic rather than a
//! backtrace.

use std::fmt;

/// Errors raised by secure-memory engine construction and recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SecureMemError {
    /// The [`crate::SecureMemConfig`] failed validation.
    InvalidConfig {
        /// Human-readable validation failure.
        reason: String,
    },
}

impl fmt::Display for SecureMemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig { reason } => write!(f, "invalid SecureMemConfig: {reason}"),
        }
    }
}

impl std::error::Error for SecureMemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_reason_and_is_std_error() {
        let e = SecureMemError::InvalidConfig {
            reason: "ctr_fetch_bytes must be a power of two".into(),
        };
        assert!(e.to_string().contains("ctr_fetch_bytes"));
        let _: &dyn std::error::Error = &e;
    }
}
