//! Bonsai Merkle Tree over the encryption counters.
//!
//! The tree's *functional* truth lives in an authoritative leaf-hash table
//! (the paper's root-anchored chain of custody collapses to "the processor
//! knows the correct leaf hashes"; upper levels carry no extra information
//! once leaves are trusted, so only leaves are materialized). What the
//! simulator needs from the upper levels is their *timing*: which node
//! fetches a counter miss triggers, and how lazy updates propagate through
//! the node cache — both are modeled exactly, with configurable node size
//! (16-ary 128 B or 4-ary 32 B, paper Fig. 14).
//!
//! Verification stops at the first cached node ("already verified"), and
//! updates propagate upward only when dirty nodes are evicted from the node
//! cache (the paper's lazy-update scheme).

use crate::config::SecureMemConfig;
use crate::counter_store::CounterStore;
use crate::layout::Layout;
use gpu_sim::cache::SectoredCache;
use gpu_sim::{DramReq, SectorAddr, TrafficClass, Violation, SECTOR_SIZE};
use plutus_crypto::Cmac;
use plutus_telemetry::{Event, Histogram, Telemetry};
use std::collections::HashMap;

/// Timing and verification products of a BMT operation.
#[derive(Debug, Clone, Default)]
pub struct Walk {
    /// Critical-path node fetches (sequential, appended to the counter
    /// chain).
    pub chain: Vec<DramReq>,
    /// Non-critical fetches (lazy-update read-modify-write of nodes).
    pub async_reads: Vec<DramReq>,
    /// Dirty node/counter writebacks.
    pub writes: Vec<DramReq>,
    /// Set when the leaf hash check failed (replayed/tampered counters).
    pub violation: Option<Violation>,
}

impl Walk {
    /// Merges `other` into `self`, keeping the first violation.
    pub fn merge(&mut self, other: Walk) {
        self.chain.extend(other.chain);
        self.async_reads.extend(other.async_reads);
        self.writes.extend(other.writes);
        if self.violation.is_none() {
            self.violation = other.violation;
        }
    }
}

/// The integrity tree with its node cache.
#[derive(Debug, Clone)]
pub struct Bmt {
    layout: Layout,
    cache: SectoredCache,
    cmac: Cmac,
    leaf_hashes: HashMap<u64, u64>,
    disabled: bool,
    node_fetches: u64,
    node_hits: u64,
    traffic_class: TrafficClass,
    tel: Telemetry,
    walk_depth: Histogram,
}

impl Bmt {
    /// Builds the tree and its node cache from the configuration.
    pub fn new(cfg: &SecureMemConfig, layout: Layout) -> Self {
        Self::with_class(cfg, layout, TrafficClass::BmtNode)
    }

    /// Like [`Bmt::new`] but tagging node traffic with `class` (used by the
    /// compact-counter tree, which reports as [`TrafficClass::CompactBmt`]).
    pub fn with_class(cfg: &SecureMemConfig, layout: Layout, class: TrafficClass) -> Self {
        let cache = SectoredCache::new(
            cfg.meta_cache_bytes,
            cfg.meta_cache_ways,
            cfg.bmt_cache_line(),
            false,
        );
        Self {
            layout,
            cache,
            cmac: Cmac::new(cfg.bmt_key),
            leaf_hashes: HashMap::new(),
            disabled: cfg.disable_tree,
            node_fetches: 0,
            node_hits: 0,
            traffic_class: class,
            tel: Telemetry::disabled(),
            walk_depth: Histogram::disabled(),
        }
    }

    /// Mirrors the node cache into `tel` (`<prefix>.cache.hits`/`.misses`),
    /// records every verification walk's depth into the
    /// `<prefix>.walk_depth` histogram, and emits [`Event::BmtWalk`].
    pub fn attach_telemetry(&mut self, tel: &Telemetry, prefix: &str) {
        self.cache.attach_telemetry(tel, &format!("{prefix}.cache"));
        self.walk_depth = tel.histogram(&format!("{prefix}.walk_depth"));
        self.tel = tel.clone();
    }

    /// Recomputes the hash of `leaf` from live counter state.
    pub fn recompute_leaf(&self, leaf: u64, store: &CounterStore) -> u64 {
        let (first, count) = self.layout.groups_of_leaf(leaf);
        let mut buf = Vec::with_capacity(8 + 36 * count as usize);
        buf.extend_from_slice(&leaf.to_le_bytes());
        for g in first..first + count {
            buf.extend_from_slice(&store.serialize_group(g));
        }
        u64::from_le_bytes(self.cmac.mac(&buf)[..8].try_into().unwrap())
    }

    fn zero_leaf_hash(&self, leaf: u64) -> u64 {
        self.recompute_leaf(leaf, &CounterStore::new())
    }

    /// Records `leaf`'s authoritative hash after a legitimate counter
    /// update.
    pub fn set_leaf(&mut self, leaf: u64, hash: u64) {
        self.leaf_hashes.insert(leaf, hash);
    }

    /// Attack hook: corrupts the stored hash of `leaf`, modeling tampering
    /// with the BMT node in DRAM. The next [`Bmt::verify`] covering the
    /// leaf recomputes an honest hash from live counters and must reject
    /// the corrupted record.
    pub fn tamper_leaf(&mut self, leaf: u64) {
        let current = match self.leaf_hashes.get(&leaf) {
            Some(h) => *h,
            None => self.zero_leaf_hash(leaf),
        };
        self.leaf_hashes
            .insert(leaf, current ^ 0xdead_beef_0bad_f00d);
    }

    /// Verifies the counters under `leaf` and walks the tree path until a
    /// cached (already-verified) node or the on-chip root.
    pub fn verify(&mut self, leaf: u64, store: &CounterStore, data_sector: SectorAddr) -> Walk {
        let mut walk = Walk::default();
        let recomputed = self.recompute_leaf(leaf, store);
        let expected = match self.leaf_hashes.get(&leaf) {
            Some(h) => *h,
            None => self.zero_leaf_hash(leaf),
        };
        if recomputed != expected {
            walk.violation = Some(Violation::TreeMismatch {
                addr: data_sector,
                level: 0,
            });
        }
        if self.disabled {
            return walk;
        }
        // Timing walks use the partition-local tree geometry; functional
        // hashes above are keyed by the global leaf id.
        let mut level = 1u32;
        let mut idx = self.layout.parent_index(self.layout.local_leaf(leaf));
        loop {
            if self.layout.is_root_level(level) {
                break; // verified against the on-chip root
            }
            let addr = self.layout.node_addr(level, idx);
            if self.cache.probe(addr) {
                self.node_hits += 1;
                self.cache.access(addr, false, None);
                break; // verified at a cached ancestor
            }
            self.node_fetches += 1;
            walk.chain.push(
                DramReq::new(addr, self.layout.node_bytes() as u32, self.traffic_class)
                    .at_level(level),
            );
            self.fill_node(addr, false, &mut walk);
            level += 1;
            idx = self.layout.parent_index(idx);
        }
        let depth = level - 1; // levels fetched before a cached node / root
        self.walk_depth.record(u64::from(depth));
        if self.tel.enabled() {
            self.tel.event(Event::BmtWalk { depth });
        }
        walk
    }

    /// Lazy-update entry point: the counter sector under `leaf` was evicted
    /// dirty, so its parent node must be dirtied in the node cache
    /// (fetching it first if absent).
    pub fn touch_leaf_parent(&mut self, leaf: u64) -> Walk {
        let mut walk = Walk::default();
        if self.disabled {
            return walk;
        }
        let local = self.layout.local_leaf(leaf);
        self.touch_dirty(1, self.layout.parent_index(local), &mut walk);
        walk
    }

    fn touch_dirty(&mut self, level: u32, idx: u64, walk: &mut Walk) {
        if self.layout.is_root_level(level) {
            return; // root lives on-chip; update absorbed
        }
        let addr = self.layout.node_addr(level, idx);
        if !self.cache.probe(addr) {
            // Read-modify-write fetch, off the critical path.
            self.node_fetches += 1;
            walk.async_reads.push(
                DramReq::new(addr, self.layout.node_bytes() as u32, self.traffic_class)
                    .at_level(level),
            );
        } else {
            self.node_hits += 1;
        }
        self.fill_node(addr, true, walk);
    }

    /// Touches every 32 B piece of the node at `addr` in the cache,
    /// processing any dirty evictions (write them back and propagate the
    /// update to their parents).
    fn fill_node(&mut self, addr: u64, write: bool, walk: &mut Walk) {
        let pieces = (self.layout.node_bytes() / SECTOR_SIZE).max(1);
        for p in 0..pieces {
            let outcome = self.cache.access(addr + p * SECTOR_SIZE, write, None);
            for ev in outcome.evicted {
                let node = self.layout.node_of_addr(ev.addr);
                walk.writes.push(
                    DramReq::new(ev.addr, SECTOR_SIZE as u32, self.traffic_class)
                        .at_level(node.map_or(0, |(l, _)| l)),
                );
                if let Some((ev_level, ev_idx)) = node {
                    self.touch_dirty(ev_level + 1, self.layout.parent_index(ev_idx), walk);
                }
            }
        }
    }

    /// (node fetches, node-cache hits) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.node_fetches, self.node_hits)
    }

    /// True when tree traffic is disabled (Fig. 20 mode).
    pub fn is_disabled(&self) -> bool {
        self.disabled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Bmt, CounterStore, Layout) {
        let cfg = SecureMemConfig::test_small();
        let layout = Layout::new(&cfg);
        (Bmt::new(&cfg, layout.clone()), CounterStore::new(), layout)
    }

    fn sector(i: u64) -> SectorAddr {
        SectorAddr::new(i * 32)
    }

    #[test]
    fn pristine_leaf_verifies_clean() {
        let (mut bmt, store, _) = setup();
        let w = bmt.verify(0, &store, sector(0));
        assert!(w.violation.is_none());
        // First walk fetches the level-1 node (level 2 is the root).
        assert_eq!(w.chain.len(), 1);
    }

    #[test]
    fn cached_node_short_circuits_walk() {
        let (mut bmt, store, _) = setup();
        bmt.verify(0, &store, sector(0));
        let w = bmt.verify(0, &store, sector(0));
        assert!(w.chain.is_empty(), "second walk should hit the node cache");
    }

    #[test]
    fn updated_leaf_verifies_after_set() {
        let (mut bmt, mut store, layout) = setup();
        store.increment(sector(0));
        let leaf = layout.leaf_of(layout.ctr_fetch_addr(sector(0)));
        let h = bmt.recompute_leaf(leaf, &store);
        bmt.set_leaf(leaf, h);
        assert!(bmt.verify(leaf, &store, sector(0)).violation.is_none());
    }

    #[test]
    fn counter_tamper_detected() {
        let (mut bmt, mut store, layout) = setup();
        let leaf = layout.leaf_of(layout.ctr_fetch_addr(sector(0)));
        // Legitimate write.
        store.increment(sector(0));
        bmt.set_leaf(leaf, bmt.recompute_leaf(leaf, &store));
        // Attack: roll the counter back (replay).
        store.tamper_minor(sector(0), 0);
        let w = bmt.verify(leaf, &store, sector(0));
        assert!(matches!(
            w.violation,
            Some(Violation::TreeMismatch { level: 0, .. })
        ));
    }

    #[test]
    fn counter_tamper_detected_even_before_first_write() {
        let (mut bmt, mut store, layout) = setup();
        store.tamper_minor(sector(3), 7);
        let leaf = layout.leaf_of(layout.ctr_fetch_addr(sector(3)));
        let w = bmt.verify(leaf, &store, sector(3));
        assert!(
            w.violation.is_some(),
            "zero-default leaves must still be protected"
        );
    }

    #[test]
    fn disabled_tree_produces_no_traffic_but_still_verifies() {
        let cfg = SecureMemConfig {
            disable_tree: true,
            ..SecureMemConfig::test_small()
        };
        let layout = Layout::new(&cfg);
        let mut bmt = Bmt::new(&cfg, layout.clone());
        let mut store = CounterStore::new();
        let w = bmt.verify(0, &store, sector(0));
        assert!(w.chain.is_empty() && w.violation.is_none());
        store.tamper_minor(sector(0), 3);
        assert!(bmt.verify(0, &store, sector(0)).violation.is_some());
        assert!(bmt.touch_leaf_parent(0).async_reads.is_empty());
    }

    #[test]
    fn touch_leaf_parent_fetches_missing_node() {
        let (mut bmt, _, _) = setup();
        let w = bmt.touch_leaf_parent(0);
        assert_eq!(w.async_reads.len(), 1);
        // Touch again: now cached, no fetch.
        let w2 = bmt.touch_leaf_parent(0);
        assert!(w2.async_reads.is_empty());
    }

    #[test]
    fn dirty_node_evictions_write_back() {
        // Tiny node cache to force evictions: 256 B, 2-way, 128 B lines →
        // 1 set × 2 ways.
        let cfg = SecureMemConfig {
            meta_cache_bytes: 256,
            meta_cache_ways: 2,
            protected_bytes: 64 << 20, // enough leaves for many L1 nodes
            ..SecureMemConfig::test_small()
        };
        let layout = Layout::new(&cfg);
        let mut bmt = Bmt::new(&cfg, layout.clone());
        let mut total_writes = 0;
        // Dirty many distinct level-1 nodes.
        let arity = layout.arity();
        for i in 0..64 {
            let w = bmt.touch_leaf_parent(i * arity);
            total_writes += w.writes.len();
        }
        assert!(
            total_writes > 0,
            "dirty node evictions must produce writebacks"
        );
    }

    #[test]
    fn recompute_differs_across_leaves() {
        let (bmt, store, _) = setup();
        assert_ne!(bmt.recompute_leaf(0, &store), bmt.recompute_leaf(1, &store));
    }
}
