//! Data-path cipher abstraction: counter mode (PSSM) or AES-XTS (Plutus).

use crate::config::{CipherKind, SecureMemConfig};
use gpu_sim::SectorAddr;
use plutus_crypto::{CounterMode, Tweak, Xts};

/// A sector cipher selected by [`CipherKind`].
#[derive(Debug, Clone)]
pub struct DataCipher {
    kind: CipherKind,
    cme: CounterMode,
    xts: Xts,
}

impl DataCipher {
    /// Builds the cipher from the configuration's keys.
    pub fn new(cfg: &SecureMemConfig) -> Self {
        Self::from_keys(cfg.cipher, cfg.data_key, cfg.tweak_key)
    }

    /// Builds the cipher from explicit keys (per-tenant key tables).
    pub fn from_keys(kind: CipherKind, data_key: [u8; 16], tweak_key: [u8; 16]) -> Self {
        Self {
            kind,
            cme: CounterMode::new(data_key),
            xts: Xts::new(data_key, tweak_key),
        }
    }

    /// The active mode.
    pub fn kind(&self) -> CipherKind {
        self.kind
    }

    /// True when decryption overlaps the data fetch (CME pad generation),
    /// so no extra latency lands on the critical path once the counter is
    /// on-chip.
    pub fn overlaps_fetch(&self) -> bool {
        self.kind == CipherKind::Cme
    }

    fn tweak(addr: SectorAddr, counter: u64) -> Tweak {
        Tweak::new(addr.raw(), counter)
    }

    /// Encrypts a 32 B sector in place under `(addr, counter)`.
    pub fn encrypt(&self, data: &mut [u8; 32], addr: SectorAddr, counter: u64) {
        match self.kind {
            CipherKind::Cme => self.cme.apply(data, Self::tweak(addr, counter)),
            CipherKind::Xts => self.xts.encrypt_sector(data, Self::tweak(addr, counter)),
        }
    }

    /// Decrypts a 32 B sector in place under `(addr, counter)`.
    pub fn decrypt(&self, data: &mut [u8; 32], addr: SectorAddr, counter: u64) {
        match self.kind {
            CipherKind::Cme => self.cme.apply(data, Self::tweak(addr, counter)),
            CipherKind::Xts => self.xts.decrypt_sector(data, Self::tweak(addr, counter)),
        }
    }

    fn tweaks(at: &[(SectorAddr, u64)]) -> Vec<Tweak> {
        at.iter().map(|&(a, c)| Self::tweak(a, c)).collect()
    }

    /// Encrypts many sectors in place, each under its own `(addr,
    /// counter)`, batching all cipher blocks into single backend calls —
    /// the group re-encryption / rotation-walk entry point.
    ///
    /// # Panics
    ///
    /// Panics if `sectors.len() != at.len()`.
    pub fn encrypt_many(&self, sectors: &mut [[u8; 32]], at: &[(SectorAddr, u64)]) {
        assert_eq!(sectors.len(), at.len(), "one (addr, counter) per sector");
        match self.kind {
            CipherKind::Cme => self.cme.apply_sectors(sectors, &Self::tweaks(at)),
            CipherKind::Xts => self.xts.encrypt_sectors(sectors, &Self::tweaks(at)),
        }
    }

    /// Decrypts many sectors in place (see [`DataCipher::encrypt_many`]).
    ///
    /// # Panics
    ///
    /// Panics if `sectors.len() != at.len()`.
    pub fn decrypt_many(&self, sectors: &mut [[u8; 32]], at: &[(SectorAddr, u64)]) {
        assert_eq!(sectors.len(), at.len(), "one (addr, counter) per sector");
        match self.kind {
            CipherKind::Cme => self.cme.apply_sectors(sectors, &Self::tweaks(at)),
            CipherKind::Xts => self.xts.decrypt_sectors(sectors, &Self::tweaks(at)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cipher(kind: CipherKind) -> DataCipher {
        DataCipher::new(&SecureMemConfig {
            cipher: kind,
            ..SecureMemConfig::test_small()
        })
    }

    #[test]
    fn both_modes_roundtrip() {
        for kind in [CipherKind::Cme, CipherKind::Xts] {
            let c = cipher(kind);
            let original = *b"fill GPU sectors with plaintext!";
            let mut data = original;
            c.encrypt(&mut data, SectorAddr::new(0x40), 3);
            assert_ne!(data, original);
            c.decrypt(&mut data, SectorAddr::new(0x40), 3);
            assert_eq!(data, original, "{kind:?} roundtrip failed");
        }
    }

    #[test]
    fn modes_produce_different_ciphertexts() {
        let cme = cipher(CipherKind::Cme);
        let xts = cipher(CipherKind::Xts);
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        cme.encrypt(&mut a, SectorAddr::new(0), 0);
        xts.encrypt(&mut b, SectorAddr::new(0), 0);
        assert_ne!(a, b);
    }

    #[test]
    fn only_cme_overlaps_fetch() {
        assert!(cipher(CipherKind::Cme).overlaps_fetch());
        assert!(!cipher(CipherKind::Xts).overlaps_fetch());
    }

    #[test]
    fn batch_matches_serial_for_both_modes() {
        for kind in [CipherKind::Cme, CipherKind::Xts] {
            let c = cipher(kind);
            let at: Vec<(SectorAddr, u64)> = (0..9u64)
                .map(|i| (SectorAddr::new(0x20 * i), i + 1))
                .collect();
            let mut batch: Vec<[u8; 32]> = (0..9u8).map(|i| [i; 32]).collect();
            let mut serial = batch.clone();
            c.encrypt_many(&mut batch, &at);
            for (sector, &(addr, ctr)) in serial.iter_mut().zip(at.iter()) {
                c.encrypt(sector, addr, ctr);
            }
            assert_eq!(batch, serial, "{kind:?} batch encrypt diverges");
            c.decrypt_many(&mut batch, &at);
            for (sector, &(addr, ctr)) in serial.iter_mut().zip(at.iter()) {
                c.decrypt(sector, addr, ctr);
            }
            assert_eq!(batch, serial, "{kind:?} batch decrypt diverges");
        }
    }

    #[test]
    fn counter_change_invalidates_ciphertext() {
        for kind in [CipherKind::Cme, CipherKind::Xts] {
            let c = cipher(kind);
            let original = [9u8; 32];
            let mut data = original;
            c.encrypt(&mut data, SectorAddr::new(0x80), 5);
            c.decrypt(&mut data, SectorAddr::new(0x80), 6);
            assert_ne!(data, original, "{kind:?}: stale counter must not decrypt");
        }
    }
}
