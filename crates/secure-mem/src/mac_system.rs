//! The MAC subsystem: per-sector tags + sectored MAC cache.
//!
//! Reads fetch the MAC's fetch unit on a miss (32 B under the PSSM sectored
//! design — the case the paper highlights as the sectored cache's win).
//! Writes allocate without fetching (the whole tag is overwritten), which is
//! the other half of that win.

use crate::config::SecureMemConfig;
use crate::layout::Layout;
use crate::mac_store::MacStore;
use gpu_sim::cache::SectoredCache;
use gpu_sim::{DramReq, SectorAddr, TrafficClass, SECTOR_SIZE};
use plutus_telemetry::{Event, Telemetry};

/// Timing products of one MAC-cache operation.
#[derive(Debug, Clone, Default)]
pub struct MacAccess {
    /// Whether the tag's cache sector was present.
    pub hit: bool,
    /// Critical-path fetch of the MAC unit (empty on hits).
    pub chain: Vec<DramReq>,
    /// Dirty MAC sectors written back on eviction.
    pub writes: Vec<DramReq>,
}

/// MAC store + cache + layout.
#[derive(Debug, Clone)]
pub struct MacSystem {
    layout: Layout,
    store: MacStore,
    cache: SectoredCache,
    hits: u64,
    misses: u64,
    tel: Telemetry,
}

impl MacSystem {
    /// Builds the subsystem from the configuration. Under tenancy, the
    /// store switches to per-tenant MAC keys (generation-stable, so tags
    /// survive key rotation).
    pub fn new(cfg: &SecureMemConfig) -> Self {
        let mut store = MacStore::new(cfg.mac_key, cfg.mac_bytes.min(8));
        if let Some(t) = &cfg.tenancy {
            store.set_tenant_keys(t.map.clone(), t.master_seed);
        }
        Self {
            layout: Layout::new(cfg),
            store,
            cache: SectoredCache::new(
                cfg.meta_cache_bytes,
                cfg.meta_cache_ways,
                cfg.mac_cache_line(),
                false,
            ),
            hits: 0,
            misses: 0,
            tel: Telemetry::disabled(),
        }
    }

    /// Mirrors the MAC cache into `tel` (`mac_cache.hits`/`.misses`) and
    /// emits [`Event::MacFetch`] on read misses.
    pub fn attach_telemetry(&mut self, tel: &Telemetry) {
        self.cache.attach_telemetry(tel, "mac_cache");
        self.tel = tel.clone();
    }

    fn mac_piece(&self, sector: SectorAddr) -> u64 {
        let a = self.layout.mac_addr(sector);
        a - a % SECTOR_SIZE
    }

    /// Brings `sector`'s MAC on-chip for verification.
    pub fn read(&mut self, sector: SectorAddr) -> MacAccess {
        let mut out = MacAccess::default();
        let piece = self.mac_piece(sector);
        if self.cache.probe(piece) {
            self.cache.access(piece, false, None);
            self.hits += 1;
            out.hit = true;
            return out;
        }
        self.misses += 1;
        let fetch_addr = self.layout.mac_fetch_addr(sector);
        let fetch_bytes = self.layout.mac_fetch_bytes();
        if self.tel.enabled() {
            self.tel.event(Event::MacFetch { addr: fetch_addr });
        }
        out.chain.push(DramReq::new(
            fetch_addr,
            fetch_bytes as u32,
            TrafficClass::Mac,
        ));
        for p in 0..fetch_bytes / SECTOR_SIZE {
            let outcome = self.cache.access(fetch_addr + p * SECTOR_SIZE, false, None);
            for ev in outcome.evicted {
                out.writes
                    .push(DramReq::new(ev.addr, SECTOR_SIZE as u32, TrafficClass::Mac));
            }
        }
        out
    }

    /// Records a fresh tag for a written sector (write-allocate, no fetch).
    pub fn write(&mut self, sector: SectorAddr, plaintext: &[u8; 32], counter: u64) -> MacAccess {
        self.store.update(sector, plaintext, counter);
        let mut out = MacAccess::default();
        let piece = self.mac_piece(sector);
        out.hit = self.cache.probe(piece);
        if out.hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        let outcome = self.cache.access(piece, true, None);
        for ev in outcome.evicted {
            out.writes
                .push(DramReq::new(ev.addr, SECTOR_SIZE as u32, TrafficClass::Mac));
        }
        out
    }

    /// Functionally verifies `plaintext` against the stored tag.
    pub fn verify(&self, sector: SectorAddr, plaintext: &[u8; 32], counter: u64) -> bool {
        self.store.verify(sector, plaintext, counter)
    }

    /// Functionally verifies many `(plaintext, counter)` candidates as one
    /// batched CMAC pass, preserving input order — the recovery-probe and
    /// group-verification entry point.
    pub fn verify_many(&self, plaintexts: &[[u8; 32]], at: &[(SectorAddr, u64)]) -> Vec<bool> {
        self.store.verify_many(plaintexts, at)
    }

    /// Updates the stored tag without touching the cache (used during
    /// install and overflow re-encryption bookkeeping by engines that also
    /// account the traffic separately).
    pub fn update_silently(&mut self, sector: SectorAddr, plaintext: &[u8; 32], counter: u64) {
        self.store.update(sector, plaintext, counter);
    }

    /// Batch form of [`MacSystem::update_silently`]: one CMAC pass over
    /// the whole group (group re-encryption, rotation walks).
    pub fn update_silently_many(&mut self, plaintexts: &[[u8; 32]], at: &[(SectorAddr, u64)]) {
        self.store.update_many(plaintexts, at);
    }

    /// Attack hook: tamper with the stored tag of `sector`.
    pub fn tamper(&mut self, sector: SectorAddr) {
        self.store.tamper(sector);
    }

    /// Tagged addresses inside `[start, end)`, ascending, at most
    /// `limit` — the key-rotation walk's work list.
    pub fn addrs_in_range(&self, start: u64, end: u64, limit: usize) -> Vec<SectorAddr> {
        self.store.addrs_in_range(start, end, limit)
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MacSystem {
        MacSystem::new(&SecureMemConfig::test_small())
    }

    fn sector(i: u64) -> SectorAddr {
        SectorAddr::new(i * 32)
    }

    #[test]
    fn read_miss_fetches_32_bytes() {
        let mut m = sys();
        let a = m.read(sector(0));
        assert!(!a.hit);
        assert_eq!(a.chain.len(), 1);
        assert_eq!(a.chain[0].bytes, 32);
        assert_eq!(a.chain[0].class, TrafficClass::Mac);
    }

    #[test]
    fn macs_for_adjacent_sectors_share_a_unit() {
        let mut m = sys();
        m.read(sector(0));
        // 8 B MACs: sectors 0..4 share one 32 B MAC unit.
        assert!(m.read(sector(3)).hit);
        assert!(!m.read(sector(4)).hit);
    }

    #[test]
    fn write_allocates_without_fetch() {
        let mut m = sys();
        let a = m.write(sector(0), &[1; 32], 1);
        assert!(a.chain.is_empty(), "MAC writes must not fetch");
        // Subsequent read of the same unit hits.
        assert!(m.read(sector(0)).hit);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        // 2 KiB cache, 128 B lines, 4-way → 4 sets; each MAC unit of 32 B,
        // 4 units per line; one line covers 16 data sectors.
        let mut m = sys();
        m.write(sector(0), &[1; 32], 1);
        let mut writes = 0;
        // Touch many distinct MAC lines: line covers 16 sectors → stride 16
        // sectors; 4 sets × 4 ways = 16 lines; 64 lines cycles the cache.
        for i in 1..64 {
            writes += m.read(sector(i * 16)).writes.len();
        }
        assert!(writes > 0, "dirty MAC sector must be written back");
    }

    #[test]
    fn verify_roundtrip_and_tamper() {
        let mut m = sys();
        m.write(sector(7), &[9; 32], 2);
        assert!(m.verify(sector(7), &[9; 32], 2));
        m.tamper(sector(7));
        assert!(!m.verify(sector(7), &[9; 32], 2));
    }

    #[test]
    fn coarse_fetch_configuration_fetches_128() {
        let cfg = SecureMemConfig {
            mac_fetch_bytes: 128,
            ..SecureMemConfig::test_small()
        };
        let mut m = MacSystem::new(&cfg);
        let a = m.read(sector(0));
        assert_eq!(a.chain[0].bytes, 128);
        // The whole 128 B unit (16 sectors' MACs) is now resident.
        assert!(m.read(sector(15)).hit);
    }
}
