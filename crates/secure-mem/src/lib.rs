//! Secure-memory machinery for GPUs: the metadata systems and baseline
//! engines on top of which Plutus (HPCA 2023) is built.
//!
//! # Components
//!
//! - [`config::SecureMemConfig`] — metadata sizes, fetch granularities
//!   (the paper's Fig. 14 design space), cipher selection, cache geometry.
//! - [`layout::Layout`] — where counters, MACs, and BMT levels live in
//!   device memory.
//! - [`counter_system::CounterSystem`] — sectored split counters
//!   (PSSM organization) + counter cache + Bonsai Merkle Tree with lazy
//!   updates.
//! - [`mac_system::MacSystem`] — per-sector stateful MACs + sectored MAC
//!   cache.
//! - [`pssm::PssmEngine`] — the paper's baseline engine (also realizes the
//!   Fig. 16 granularity design points and the Fig. 20 no-tree mode).
//! - [`common_counters::CommonCountersEngine`] — the Common Counters
//!   comparison point (clean-region counter elision).
//!
//! # Example
//!
//! ```
//! use gpu_sim::{BackingMemory, SectorAddr, SecurityEngine};
//! use secure_mem::{PssmEngine, SecureMemConfig};
//!
//! let mut engine = PssmEngine::new(SecureMemConfig::test_small());
//! let mut mem = BackingMemory::new();
//! let addr = SectorAddr::new(0x1000);
//! engine.on_writeback(addr, &[42; 32], &mut mem);
//! let fill = engine.on_fill(addr, &mut mem);
//! assert_eq!(fill.plaintext, [42; 32]);
//! assert!(fill.violation.is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bmt;
pub mod cipher;
pub mod common_counters;
pub mod config;
pub mod counter_store;
pub mod counter_system;
pub mod error;
pub mod layout;
pub mod mac_store;
pub mod mac_system;
pub mod pssm;
pub mod tenant;

pub use cipher::DataCipher;
pub use common_counters::{CommonCountersEngine, CommonCountersFactory};
pub use config::{CipherKind, CounterOrg, SecureMemConfig};
pub use counter_store::{CounterStore, IncrementOutcome};
pub use counter_system::{CounterAccess, CounterSystem};
pub use error::SecureMemError;
pub use layout::Layout;
pub use mac_store::MacStore;
pub use mac_system::{MacAccess, MacSystem};
pub use pssm::{PssmEngine, PssmFactory};
pub use tenant::{RotationWalk, TenancyConfig, TenantCrypto};
