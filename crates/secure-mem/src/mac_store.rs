//! Functional per-sector MAC storage.
//!
//! MACs are stateful (keyed over plaintext **and** the `(address, counter)`
//! tweak), so a replayed `(ciphertext, MAC)` pair fails verification against
//! the current counter. A sector with no stored tag is interpreted as
//! never-written zero-initialized memory: its expected tag is the MAC of an
//! all-zero sector under counter 0.

use crate::tenant::derive_mac_key;
use gpu_sim::{SectorAddr, TenantMap, SECTOR_SIZE};
use plutus_crypto::{Cmac, Tweak};
use std::collections::HashMap;

/// Functional MAC table with configurable truncation.
#[derive(Debug, Clone)]
pub struct MacStore {
    tags: HashMap<u64, u64>,
    cmac: Cmac,
    /// Per-tenant CMACs (multi-tenant operation). Keys are derived
    /// generation-free, so live key rotation never invalidates a tag.
    tenants: Option<(TenantMap, HashMap<u32, Cmac>)>,
    mask: u64,
}

impl MacStore {
    /// Creates a store truncating tags to `mac_bytes` (≤ 8 stored here).
    ///
    /// # Panics
    ///
    /// Panics if `mac_bytes` is 0 or greater than 8.
    pub fn new(key: [u8; 16], mac_bytes: u32) -> Self {
        assert!(
            (1..=8).contains(&mac_bytes),
            "mac_bytes must be 1..=8, got {mac_bytes}"
        );
        let mask = if mac_bytes == 8 {
            u64::MAX
        } else {
            (1u64 << (mac_bytes * 8)) - 1
        };
        Self {
            tags: HashMap::new(),
            cmac: Cmac::new(key),
            tenants: None,
            mask,
        }
    }

    /// Switches to per-tenant MAC keys derived from `seed` for every
    /// tenant in `map` (plus the default tenant for unmapped addresses).
    pub fn set_tenant_keys(&mut self, map: TenantMap, seed: u64) {
        let mut ids = map.tenants();
        if !ids.contains(&TenantMap::DEFAULT_TENANT) {
            ids.push(TenantMap::DEFAULT_TENANT);
        }
        let keys = ids
            .into_iter()
            .map(|t| (t, Cmac::new(derive_mac_key(seed, t))))
            .collect();
        self.tenants = Some((map, keys));
    }

    fn cmac_of(&self, addr: SectorAddr) -> &Cmac {
        match &self.tenants {
            Some((map, keys)) => keys.get(&map.tenant_of(addr)).unwrap_or(&self.cmac),
            None => &self.cmac,
        }
    }

    /// Computes the truncated tag of `plaintext` under `(addr, counter)`.
    pub fn compute(&self, plaintext: &[u8; 32], addr: SectorAddr, counter: u64) -> u64 {
        self.cmac_of(addr)
            .stateful_tag64(plaintext, Tweak::new(addr.raw(), counter))
            & self.mask
    }

    /// Addresses with stored tags inside `[start, end)`, ascending, at
    /// most `limit`. The tag table is the ownership source of truth for
    /// the key-rotation walk: exactly the sectors ever written (and hence
    /// carrying non-trivial ciphertext) are visited.
    pub fn addrs_in_range(&self, start: u64, end: u64, limit: usize) -> Vec<SectorAddr> {
        let mut raws: Vec<u64> = self
            .tags
            .keys()
            .map(|idx| idx * SECTOR_SIZE)
            .filter(|a| (start..end).contains(a))
            .collect();
        raws.sort_unstable();
        raws.truncate(limit);
        raws.into_iter().map(SectorAddr::new).collect()
    }

    /// Stores the tag for a freshly written sector.
    pub fn update(&mut self, addr: SectorAddr, plaintext: &[u8; 32], counter: u64) {
        let tag = self.compute(plaintext, addr, counter);
        self.tags.insert(addr.index(), tag);
    }

    /// Verifies `plaintext` against the stored tag under the current
    /// counter. Missing tags fall back to the zero-sector/zero-counter
    /// expectation.
    pub fn verify(&self, addr: SectorAddr, plaintext: &[u8; 32], counter: u64) -> bool {
        let expected = match self.tags.get(&addr.index()) {
            Some(t) => *t,
            None => self.compute(&[0; 32], addr, 0),
        };
        self.compute(plaintext, addr, counter) == expected
    }

    /// Attack hook: flips the low bit of the stored tag (tampering with the
    /// MAC block in DRAM).
    pub fn tamper(&mut self, addr: SectorAddr) {
        let current = match self.tags.get(&addr.index()) {
            Some(t) => *t,
            None => self.compute(&[0; 32], addr, 0),
        };
        self.tags.insert(addr.index(), current ^ 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> MacStore {
        MacStore::new([7; 16], 8)
    }

    #[test]
    fn update_then_verify() {
        let mut m = store();
        let a = SectorAddr::new(0x100);
        m.update(a, &[5; 32], 3);
        assert!(m.verify(a, &[5; 32], 3));
    }

    #[test]
    fn wrong_plaintext_fails() {
        let mut m = store();
        let a = SectorAddr::new(0x100);
        m.update(a, &[5; 32], 3);
        assert!(!m.verify(a, &[6; 32], 3));
    }

    #[test]
    fn stale_counter_fails_replay() {
        let mut m = store();
        let a = SectorAddr::new(0x100);
        m.update(a, &[5; 32], 4);
        // Attacker replays the old data under the old counter; the engine
        // verifies with the *current* counter.
        assert!(!m.verify(a, &[5; 32], 3));
    }

    #[test]
    fn unwritten_sector_verifies_as_zero() {
        let m = store();
        assert!(m.verify(SectorAddr::new(0x40), &[0; 32], 0));
        assert!(!m.verify(SectorAddr::new(0x40), &[1; 32], 0));
    }

    #[test]
    fn tamper_breaks_verification() {
        let mut m = store();
        let a = SectorAddr::new(0x40);
        m.update(a, &[9; 32], 1);
        m.tamper(a);
        assert!(!m.verify(a, &[9; 32], 1));
    }

    #[test]
    fn truncation_masks_tag() {
        let m4 = MacStore::new([7; 16], 4);
        let t = m4.compute(&[1; 32], SectorAddr::new(0), 0);
        assert!(t <= u32::MAX as u64);
    }

    #[test]
    #[should_panic(expected = "mac_bytes")]
    fn rejects_oversized_mac() {
        MacStore::new([0; 16], 9);
    }

    #[test]
    fn tenant_keys_separate_tags() {
        let mut map = TenantMap::new();
        map.add_range(0, 0x1000, 1);
        map.add_range(0x1000, 0x2000, 2);
        let mut m = store();
        let shared_key_tag = m.compute(&[5; 32], SectorAddr::new(0x40), 3);
        m.set_tenant_keys(map, 99);
        let t1 = m.compute(&[5; 32], SectorAddr::new(0x40), 3);
        // Same plaintext/counter, same slab offset, different tenant key.
        let t2 = m.compute(&[5; 32], SectorAddr::new(0x1040), 3);
        assert_ne!(t1, shared_key_tag);
        // Tweak already differs by address; the stronger check is that
        // tenant 1's tag under tenant 2's address-tweak differs too —
        // covered by key derivation tests; here assert tags are stable.
        assert_eq!(t1, m.compute(&[5; 32], SectorAddr::new(0x40), 3));
        assert_ne!(t1, t2);
    }

    #[test]
    fn addrs_in_range_sorted_and_bounded() {
        let mut m = store();
        for raw in [0x200u64, 0x40, 0x1000, 0x80] {
            m.update(SectorAddr::new(raw), &[1; 32], 1);
        }
        let got = m.addrs_in_range(0, 0x1000, 8);
        let raws: Vec<u64> = got.iter().map(|a| a.raw()).collect();
        assert_eq!(raws, vec![0x40, 0x80, 0x200]);
        let capped = m.addrs_in_range(0, 0x2000, 2);
        assert_eq!(capped.len(), 2);
        assert_eq!(capped[0].raw(), 0x40);
    }
}
