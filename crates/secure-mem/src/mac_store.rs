//! Functional per-sector MAC storage.
//!
//! MACs are stateful (keyed over plaintext **and** the `(address, counter)`
//! tweak), so a replayed `(ciphertext, MAC)` pair fails verification against
//! the current counter. A sector with no stored tag is interpreted as
//! never-written zero-initialized memory: its expected tag is the MAC of an
//! all-zero sector under counter 0.

use crate::tenant::derive_mac_key;
use gpu_sim::{SectorAddr, TenantMap, SECTOR_SIZE};
use plutus_crypto::{Cmac, Tweak};
use std::collections::HashMap;

/// Functional MAC table with configurable truncation.
#[derive(Debug, Clone)]
pub struct MacStore {
    tags: HashMap<u64, u64>,
    cmac: Cmac,
    /// Per-tenant CMACs (multi-tenant operation). Keys are derived
    /// generation-free, so live key rotation never invalidates a tag.
    tenants: Option<(TenantMap, HashMap<u32, Cmac>)>,
    mask: u64,
}

impl MacStore {
    /// Creates a store truncating tags to `mac_bytes` (≤ 8 stored here).
    ///
    /// # Panics
    ///
    /// Panics if `mac_bytes` is 0 or greater than 8.
    pub fn new(key: [u8; 16], mac_bytes: u32) -> Self {
        assert!(
            (1..=8).contains(&mac_bytes),
            "mac_bytes must be 1..=8, got {mac_bytes}"
        );
        let mask = if mac_bytes == 8 {
            u64::MAX
        } else {
            (1u64 << (mac_bytes * 8)) - 1
        };
        Self {
            tags: HashMap::new(),
            cmac: Cmac::new(key),
            tenants: None,
            mask,
        }
    }

    /// Switches to per-tenant MAC keys derived from `seed` for every
    /// tenant in `map` (plus the default tenant for unmapped addresses).
    pub fn set_tenant_keys(&mut self, map: TenantMap, seed: u64) {
        let mut ids = map.tenants();
        if !ids.contains(&TenantMap::DEFAULT_TENANT) {
            ids.push(TenantMap::DEFAULT_TENANT);
        }
        let keys = ids
            .into_iter()
            .map(|t| (t, Cmac::new(derive_mac_key(seed, t))))
            .collect();
        self.tenants = Some((map, keys));
    }

    fn cmac_of(&self, addr: SectorAddr) -> &Cmac {
        match &self.tenants {
            Some((map, keys)) => keys.get(&map.tenant_of(addr)).unwrap_or(&self.cmac),
            None => &self.cmac,
        }
    }

    /// Computes the truncated tag of `plaintext` under `(addr, counter)`.
    pub fn compute(&self, plaintext: &[u8; 32], addr: SectorAddr, counter: u64) -> u64 {
        self.cmac_of(addr)
            .stateful_tag64(plaintext, Tweak::new(addr.raw(), counter))
            & self.mask
    }

    /// Computes the truncated tags of many sectors in one batched CMAC
    /// pass, grouping multi-tenant inputs by key so every group's chains
    /// run in lockstep.
    ///
    /// # Panics
    ///
    /// Panics if `plaintexts.len() != at.len()`.
    pub fn compute_many(&self, plaintexts: &[[u8; 32]], at: &[(SectorAddr, u64)]) -> Vec<u64> {
        assert_eq!(
            plaintexts.len(),
            at.len(),
            "one (addr, counter) per plaintext"
        );
        let tweaks: Vec<Tweak> = at.iter().map(|&(a, c)| Tweak::new(a.raw(), c)).collect();
        match &self.tenants {
            None => self
                .cmac
                .stateful_tag64_many(plaintexts, &tweaks)
                .into_iter()
                .map(|t| t & self.mask)
                .collect(),
            Some((map, _)) => {
                // Partition by tenant key, batch each partition, scatter
                // the tags back in input order.
                let mut groups: HashMap<u32, Vec<usize>> = HashMap::new();
                for (i, (addr, _)) in at.iter().enumerate() {
                    groups.entry(map.tenant_of(*addr)).or_default().push(i);
                }
                let mut tags = vec![0u64; at.len()];
                for (tenant, indices) in groups {
                    let cmac = self.cmac_of_tenant(tenant);
                    let group_pts: Vec<[u8; 32]> = indices.iter().map(|&i| plaintexts[i]).collect();
                    let group_tweaks: Vec<Tweak> = indices.iter().map(|&i| tweaks[i]).collect();
                    for (&i, tag) in indices
                        .iter()
                        .zip(cmac.stateful_tag64_many(&group_pts, &group_tweaks))
                    {
                        tags[i] = tag & self.mask;
                    }
                }
                tags
            }
        }
    }

    fn cmac_of_tenant(&self, tenant: u32) -> &Cmac {
        match &self.tenants {
            Some((_, keys)) => keys.get(&tenant).unwrap_or(&self.cmac),
            None => &self.cmac,
        }
    }

    /// Verifies many `(plaintext, counter)` candidates in one batched
    /// pass, preserving input order (see [`MacStore::verify`] for the
    /// missing-tag fallback).
    ///
    /// # Panics
    ///
    /// Panics if `plaintexts.len() != at.len()`.
    pub fn verify_many(&self, plaintexts: &[[u8; 32]], at: &[(SectorAddr, u64)]) -> Vec<bool> {
        self.compute_many(plaintexts, at)
            .into_iter()
            .zip(at.iter())
            .map(|(tag, (addr, _))| tag == self.expected_tag(*addr))
            .collect()
    }

    /// The stored tag for `addr`, or the never-written zero-sector
    /// expectation.
    fn expected_tag(&self, addr: SectorAddr) -> u64 {
        match self.tags.get(&addr.index()) {
            Some(t) => *t,
            None => self.compute(&[0; 32], addr, 0),
        }
    }

    /// Addresses with stored tags inside `[start, end)`, ascending, at
    /// most `limit`. The tag table is the ownership source of truth for
    /// the key-rotation walk: exactly the sectors ever written (and hence
    /// carrying non-trivial ciphertext) are visited.
    pub fn addrs_in_range(&self, start: u64, end: u64, limit: usize) -> Vec<SectorAddr> {
        let mut raws: Vec<u64> = self
            .tags
            .keys()
            .map(|idx| idx * SECTOR_SIZE)
            .filter(|a| (start..end).contains(a))
            .collect();
        raws.sort_unstable();
        raws.truncate(limit);
        raws.into_iter().map(SectorAddr::new).collect()
    }

    /// Stores the tag for a freshly written sector.
    pub fn update(&mut self, addr: SectorAddr, plaintext: &[u8; 32], counter: u64) {
        let tag = self.compute(plaintext, addr, counter);
        self.tags.insert(addr.index(), tag);
    }

    /// Stores the tags of many freshly written sectors, computing them as
    /// one batch.
    ///
    /// # Panics
    ///
    /// Panics if `plaintexts.len() != at.len()`.
    pub fn update_many(&mut self, plaintexts: &[[u8; 32]], at: &[(SectorAddr, u64)]) {
        let tags = self.compute_many(plaintexts, at);
        for ((addr, _), tag) in at.iter().zip(tags) {
            self.tags.insert(addr.index(), tag);
        }
    }

    /// Verifies `plaintext` against the stored tag under the current
    /// counter. Missing tags fall back to the zero-sector/zero-counter
    /// expectation.
    pub fn verify(&self, addr: SectorAddr, plaintext: &[u8; 32], counter: u64) -> bool {
        self.compute(plaintext, addr, counter) == self.expected_tag(addr)
    }

    /// Attack hook: flips the low bit of the stored tag (tampering with the
    /// MAC block in DRAM).
    pub fn tamper(&mut self, addr: SectorAddr) {
        let current = match self.tags.get(&addr.index()) {
            Some(t) => *t,
            None => self.compute(&[0; 32], addr, 0),
        };
        self.tags.insert(addr.index(), current ^ 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> MacStore {
        MacStore::new([7; 16], 8)
    }

    #[test]
    fn update_then_verify() {
        let mut m = store();
        let a = SectorAddr::new(0x100);
        m.update(a, &[5; 32], 3);
        assert!(m.verify(a, &[5; 32], 3));
    }

    #[test]
    fn wrong_plaintext_fails() {
        let mut m = store();
        let a = SectorAddr::new(0x100);
        m.update(a, &[5; 32], 3);
        assert!(!m.verify(a, &[6; 32], 3));
    }

    #[test]
    fn stale_counter_fails_replay() {
        let mut m = store();
        let a = SectorAddr::new(0x100);
        m.update(a, &[5; 32], 4);
        // Attacker replays the old data under the old counter; the engine
        // verifies with the *current* counter.
        assert!(!m.verify(a, &[5; 32], 3));
    }

    #[test]
    fn unwritten_sector_verifies_as_zero() {
        let m = store();
        assert!(m.verify(SectorAddr::new(0x40), &[0; 32], 0));
        assert!(!m.verify(SectorAddr::new(0x40), &[1; 32], 0));
    }

    #[test]
    fn tamper_breaks_verification() {
        let mut m = store();
        let a = SectorAddr::new(0x40);
        m.update(a, &[9; 32], 1);
        m.tamper(a);
        assert!(!m.verify(a, &[9; 32], 1));
    }

    #[test]
    fn truncation_masks_tag() {
        let m4 = MacStore::new([7; 16], 4);
        let t = m4.compute(&[1; 32], SectorAddr::new(0), 0);
        assert!(t <= u32::MAX as u64);
    }

    #[test]
    #[should_panic(expected = "mac_bytes")]
    fn rejects_oversized_mac() {
        MacStore::new([0; 16], 9);
    }

    #[test]
    fn tenant_keys_separate_tags() {
        let mut map = TenantMap::new();
        map.add_range(0, 0x1000, 1);
        map.add_range(0x1000, 0x2000, 2);
        let mut m = store();
        let shared_key_tag = m.compute(&[5; 32], SectorAddr::new(0x40), 3);
        m.set_tenant_keys(map, 99);
        let t1 = m.compute(&[5; 32], SectorAddr::new(0x40), 3);
        // Same plaintext/counter, same slab offset, different tenant key.
        let t2 = m.compute(&[5; 32], SectorAddr::new(0x1040), 3);
        assert_ne!(t1, shared_key_tag);
        // Tweak already differs by address; the stronger check is that
        // tenant 1's tag under tenant 2's address-tweak differs too —
        // covered by key derivation tests; here assert tags are stable.
        assert_eq!(t1, m.compute(&[5; 32], SectorAddr::new(0x40), 3));
        assert_ne!(t1, t2);
    }

    #[test]
    fn batch_compute_update_verify_match_serial() {
        // Single-tenant and multi-tenant stores must both produce the
        // serial tags through the batched paths.
        let mut tenant_store = store();
        let mut map = TenantMap::new();
        map.add_range(0, 0x1000, 1);
        map.add_range(0x1000, 0x2000, 2);
        tenant_store.set_tenant_keys(map, 99);
        for mut m in [store(), tenant_store] {
            let at: Vec<(SectorAddr, u64)> = (0..12u64)
                .map(|i| (SectorAddr::new(0x800 + 0x100 * i), i + 1))
                .collect();
            let plaintexts: Vec<[u8; 32]> = (0..12u8).map(|i| [i.wrapping_mul(41); 32]).collect();
            let batch = m.compute_many(&plaintexts, &at);
            for ((pt, &(addr, ctr)), tag) in plaintexts.iter().zip(at.iter()).zip(batch.iter()) {
                assert_eq!(*tag, m.compute(pt, addr, ctr));
            }
            m.update_many(&plaintexts, &at);
            let ok = m.verify_many(&plaintexts, &at);
            assert!(ok.iter().all(|&v| v), "freshly updated tags must verify");
            let mut wrong = plaintexts.clone();
            wrong[5][0] ^= 1;
            let mixed = m.verify_many(&wrong, &at);
            assert!(!mixed[5], "tampered sector must fail in the batch");
            assert!(mixed.iter().enumerate().all(|(i, &v)| v || i == 5));
        }
    }

    #[test]
    fn addrs_in_range_sorted_and_bounded() {
        let mut m = store();
        for raw in [0x200u64, 0x40, 0x1000, 0x80] {
            m.update(SectorAddr::new(raw), &[1; 32], 1);
        }
        let got = m.addrs_in_range(0, 0x1000, 8);
        let raws: Vec<u64> = got.iter().map(|a| a.raw()).collect();
        assert_eq!(raws, vec![0x40, 0x80, 0x200]);
        let capped = m.addrs_in_range(0, 0x2000, 2);
        assert_eq!(capped.len(), 2);
        assert_eq!(capped[0].raw(), 0x40);
    }
}
