//! Functional per-sector MAC storage.
//!
//! MACs are stateful (keyed over plaintext **and** the `(address, counter)`
//! tweak), so a replayed `(ciphertext, MAC)` pair fails verification against
//! the current counter. A sector with no stored tag is interpreted as
//! never-written zero-initialized memory: its expected tag is the MAC of an
//! all-zero sector under counter 0.

use gpu_sim::SectorAddr;
use plutus_crypto::{Cmac, Tweak};
use std::collections::HashMap;

/// Functional MAC table with configurable truncation.
#[derive(Debug, Clone)]
pub struct MacStore {
    tags: HashMap<u64, u64>,
    cmac: Cmac,
    mask: u64,
}

impl MacStore {
    /// Creates a store truncating tags to `mac_bytes` (≤ 8 stored here).
    ///
    /// # Panics
    ///
    /// Panics if `mac_bytes` is 0 or greater than 8.
    pub fn new(key: [u8; 16], mac_bytes: u32) -> Self {
        assert!(
            (1..=8).contains(&mac_bytes),
            "mac_bytes must be 1..=8, got {mac_bytes}"
        );
        let mask = if mac_bytes == 8 {
            u64::MAX
        } else {
            (1u64 << (mac_bytes * 8)) - 1
        };
        Self {
            tags: HashMap::new(),
            cmac: Cmac::new(key),
            mask,
        }
    }

    /// Computes the truncated tag of `plaintext` under `(addr, counter)`.
    pub fn compute(&self, plaintext: &[u8; 32], addr: SectorAddr, counter: u64) -> u64 {
        self.cmac
            .stateful_tag64(plaintext, Tweak::new(addr.raw(), counter))
            & self.mask
    }

    /// Stores the tag for a freshly written sector.
    pub fn update(&mut self, addr: SectorAddr, plaintext: &[u8; 32], counter: u64) {
        let tag = self.compute(plaintext, addr, counter);
        self.tags.insert(addr.index(), tag);
    }

    /// Verifies `plaintext` against the stored tag under the current
    /// counter. Missing tags fall back to the zero-sector/zero-counter
    /// expectation.
    pub fn verify(&self, addr: SectorAddr, plaintext: &[u8; 32], counter: u64) -> bool {
        let expected = match self.tags.get(&addr.index()) {
            Some(t) => *t,
            None => self.compute(&[0; 32], addr, 0),
        };
        self.compute(plaintext, addr, counter) == expected
    }

    /// Attack hook: flips the low bit of the stored tag (tampering with the
    /// MAC block in DRAM).
    pub fn tamper(&mut self, addr: SectorAddr) {
        let current = match self.tags.get(&addr.index()) {
            Some(t) => *t,
            None => self.compute(&[0; 32], addr, 0),
        };
        self.tags.insert(addr.index(), current ^ 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> MacStore {
        MacStore::new([7; 16], 8)
    }

    #[test]
    fn update_then_verify() {
        let mut m = store();
        let a = SectorAddr::new(0x100);
        m.update(a, &[5; 32], 3);
        assert!(m.verify(a, &[5; 32], 3));
    }

    #[test]
    fn wrong_plaintext_fails() {
        let mut m = store();
        let a = SectorAddr::new(0x100);
        m.update(a, &[5; 32], 3);
        assert!(!m.verify(a, &[6; 32], 3));
    }

    #[test]
    fn stale_counter_fails_replay() {
        let mut m = store();
        let a = SectorAddr::new(0x100);
        m.update(a, &[5; 32], 4);
        // Attacker replays the old data under the old counter; the engine
        // verifies with the *current* counter.
        assert!(!m.verify(a, &[5; 32], 3));
    }

    #[test]
    fn unwritten_sector_verifies_as_zero() {
        let m = store();
        assert!(m.verify(SectorAddr::new(0x40), &[0; 32], 0));
        assert!(!m.verify(SectorAddr::new(0x40), &[1; 32], 0));
    }

    #[test]
    fn tamper_breaks_verification() {
        let mut m = store();
        let a = SectorAddr::new(0x40);
        m.update(a, &[9; 32], 1);
        m.tamper(a);
        assert!(!m.verify(a, &[9; 32], 1));
    }

    #[test]
    fn truncation_masks_tag() {
        let m4 = MacStore::new([7; 16], 4);
        let t = m4.compute(&[1; 32], SectorAddr::new(0), 0);
        assert!(t <= u32::MAX as u64);
    }

    #[test]
    #[should_panic(expected = "mac_bytes")]
    fn rejects_oversized_mac() {
        MacStore::new([0; 16], 9);
    }
}
