//! Secure-memory configuration: metadata sizes, fetch granularities,
//! cipher selection, and cache geometry (paper Table II plus the Fig. 14
//! design space).

use crate::tenant::TenancyConfig;
use gpu_sim::SecurityLatencies;

/// Encryption-counter organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterOrg {
    /// Sectored split counters (paper Fig. 4 / Yan et al.): a 32 B counter
    /// sector holds one shared 32-bit major plus 32 seven-bit minors,
    /// covering 1 KiB of data. The state of the art; dense but pays group
    /// re-encryption on minor overflow.
    SplitSectored,
    /// SGX-style monolithic counters: one 64-bit counter per 32 B sector,
    /// so a counter sector covers only 128 B of data — 8× more counter
    /// traffic, no overflow handling. Kept as the Section II comparison
    /// point.
    Monolithic,
}

impl CounterOrg {
    /// Data sectors covered by one 32 B counter sector.
    pub fn sectors_per_group(self) -> u64 {
        match self {
            CounterOrg::SplitSectored => 32,
            CounterOrg::Monolithic => 4,
        }
    }
}

/// Data-path encryption mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CipherKind {
    /// Counter-mode encryption (PSSM baseline). Pad generation overlaps the
    /// data fetch, but tampering is bit-localized (malleable).
    Cme,
    /// AES-XTS (Plutus). Decryption serializes after the data fetch, but
    /// tampering diffuses across the whole 16-byte cipher block.
    Xts,
}

/// Configuration shared by every secure-memory engine.
#[derive(Debug, Clone, PartialEq)]
pub struct SecureMemConfig {
    /// Size of the protected data region in bytes (metadata regions are
    /// laid out above it).
    pub protected_bytes: u64,
    /// MAC size per 32 B data sector (PSSM: 4, Plutus baseline: 8).
    pub mac_bytes: u32,
    /// Counter fetch granularity — also the BMT leaf size (128 in the
    /// PSSM/B128 design, 32 in the fine-grain designs).
    pub ctr_fetch_bytes: u32,
    /// MAC fetch granularity (32 under sectored MAC caches).
    pub mac_fetch_bytes: u32,
    /// BMT node size: 128 → 16-ary tree, 32 → 4-ary tree.
    pub bmt_node_bytes: u32,
    /// Capacity of each metadata cache (counter / MAC / BMT), per
    /// partition. Paper Table II: 2 KiB each.
    pub meta_cache_bytes: u64,
    /// Metadata cache associativity.
    pub meta_cache_ways: usize,
    /// Crypto pipeline latencies.
    pub latencies: SecurityLatencies,
    /// Data-path cipher.
    pub cipher: CipherKind,
    /// Encryption-counter organization.
    pub counter_org: CounterOrg,
    /// Eliminate all integrity-tree traffic (models MGX/TNPU-style schemes
    /// for the paper's Fig. 20; counters are still fetched and MACs still
    /// verified).
    pub disable_tree: bool,
    /// Memory partitions sharing the protected region. Following PSSM,
    /// *each partition builds its own BMT over its local counter blocks*,
    /// so tree geometry (levels, node counts) is computed for a
    /// 1/`partitions` share of the leaves.
    pub partitions: usize,
    /// Multi-tenant operation: per-tenant key tables, live key rotation
    /// and overflow-storm backpressure. `None` (the default) keeps the
    /// single-key behaviour below.
    pub tenancy: Option<TenancyConfig>,
    /// AES data key.
    pub data_key: [u8; 16],
    /// AES tweak key (XTS) / pad key (CME).
    pub tweak_key: [u8; 16],
    /// MAC key.
    pub mac_key: [u8; 16],
    /// BMT hashing key.
    pub bmt_key: [u8; 16],
}

impl Default for SecureMemConfig {
    /// The paper's baseline: PSSM organization with an 8-byte MAC
    /// (Section II-B), 128 B metadata blocks, 16-ary BMT, CME.
    fn default() -> Self {
        Self {
            protected_bytes: 4 << 30,
            mac_bytes: 8,
            ctr_fetch_bytes: 128,
            mac_fetch_bytes: 32,
            bmt_node_bytes: 128,
            meta_cache_bytes: 2048,
            meta_cache_ways: 4,
            latencies: SecurityLatencies::default(),
            cipher: CipherKind::Cme,
            counter_org: CounterOrg::SplitSectored,
            disable_tree: false,
            partitions: 32,
            tenancy: None,
            data_key: [0x3c; 16],
            tweak_key: [0x5a; 16],
            mac_key: [0x96; 16],
            bmt_key: [0xc3; 16],
        }
    }
}

impl SecureMemConfig {
    /// The PSSM baseline configuration.
    pub fn pssm() -> Self {
        Self::default()
    }

    /// PSSM with the original 4-byte truncated MAC.
    pub fn pssm_mac4() -> Self {
        Self {
            mac_bytes: 4,
            ..Self::default()
        }
    }

    /// PSSM with SGX-style monolithic counters (Section II comparison:
    /// one 64-bit counter per sector, 8× the counter footprint).
    pub fn pssm_monolithic() -> Self {
        Self {
            counter_org: CounterOrg::Monolithic,
            ..Self::default()
        }
    }

    /// Fig. 14 design ②: 32 B counter/MAC blocks, 128 B BMT nodes.
    pub fn fine_leaf_coarse_tree() -> Self {
        Self {
            ctr_fetch_bytes: 32,
            mac_fetch_bytes: 32,
            bmt_node_bytes: 128,
            ..Self::default()
        }
    }

    /// Fig. 14 design ③ (Plutus's choice): all metadata in 32 B blocks.
    pub fn all_32() -> Self {
        Self {
            ctr_fetch_bytes: 32,
            mac_fetch_bytes: 32,
            bmt_node_bytes: 32,
            ..Self::default()
        }
    }

    /// Small protected region for fast unit tests (1 MiB, single
    /// partition so tree depths are deterministic in tests).
    pub fn test_small() -> Self {
        Self {
            protected_bytes: 1 << 20,
            partitions: 1,
            ..Self::default()
        }
    }

    /// Line size of the counter cache implied by the fetch granularity:
    /// 128 B sectored lines for coarse fetches, 32 B lines for fine.
    pub fn ctr_cache_line(&self) -> u64 {
        u64::from(self.ctr_fetch_bytes.max(32))
    }

    /// Line size of the MAC cache: sectored 128 B lines when MACs are
    /// fetched at 32 B within 128 B blocks (PSSM), 32 B lines in the
    /// all-32 design.
    pub fn mac_cache_line(&self) -> u64 {
        if self.bmt_node_bytes >= 128 && self.ctr_fetch_bytes >= 128 {
            128
        } else {
            u64::from(self.mac_fetch_bytes.max(32))
        }
    }

    /// Line size of the BMT node cache.
    pub fn bmt_cache_line(&self) -> u64 {
        u64::from(self.bmt_node_bytes.max(32))
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !matches!(self.mac_bytes, 4 | 8 | 16) {
            return Err(format!(
                "mac_bytes must be 4, 8 or 16, got {}",
                self.mac_bytes
            ));
        }
        if !matches!(self.ctr_fetch_bytes, 32 | 128) {
            return Err(format!(
                "ctr_fetch_bytes must be 32 or 128, got {}",
                self.ctr_fetch_bytes
            ));
        }
        if !matches!(self.mac_fetch_bytes, 32 | 128) {
            return Err(format!(
                "mac_fetch_bytes must be 32 or 128, got {}",
                self.mac_fetch_bytes
            ));
        }
        if !matches!(self.bmt_node_bytes, 32 | 128) {
            return Err(format!(
                "bmt_node_bytes must be 32 or 128, got {}",
                self.bmt_node_bytes
            ));
        }
        if self.protected_bytes < (1 << 16) || !self.protected_bytes.is_multiple_of(4096) {
            return Err("protected_bytes must be ≥ 64 KiB and 4 KiB-aligned".into());
        }
        if self.meta_cache_bytes < 256 {
            return Err("meta_cache_bytes must be ≥ 256".into());
        }
        if self.partitions == 0 {
            return Err("partitions must be > 0".into());
        }
        if let Some(t) = &self.tenancy {
            if t.rotation_sectors_per_step == 0 {
                return Err("tenancy.rotation_sectors_per_step must be > 0".into());
            }
            if t.storm_window == 0 || t.storm_drain == 0 {
                return Err("tenancy.storm_window and storm_drain must be > 0".into());
            }
            for &(start, end, tenant) in t.map.ranges() {
                // 4 KiB slab alignment keeps counter groups (1 KiB) and
                // 128 B metadata fetch units from spanning tenants.
                if !start.is_multiple_of(4096) || !end.is_multiple_of(4096) {
                    return Err(format!(
                        "tenant {tenant} slab [{start:#x}, {end:#x}) is not 4 KiB-aligned"
                    ));
                }
                if end > self.protected_bytes {
                    return Err(format!(
                        "tenant {tenant} slab end {end:#x} exceeds protected_bytes"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for cfg in [
            SecureMemConfig::pssm(),
            SecureMemConfig::pssm_mac4(),
            SecureMemConfig::fine_leaf_coarse_tree(),
            SecureMemConfig::all_32(),
            SecureMemConfig::test_small(),
        ] {
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn pssm_matches_paper_baseline() {
        let c = SecureMemConfig::pssm();
        assert_eq!(c.mac_bytes, 8);
        assert_eq!(c.ctr_fetch_bytes, 128);
        assert_eq!(c.meta_cache_bytes, 2048);
        assert_eq!(c.cipher, CipherKind::Cme);
    }

    #[test]
    fn cache_lines_follow_granularity() {
        assert_eq!(SecureMemConfig::pssm().ctr_cache_line(), 128);
        assert_eq!(SecureMemConfig::pssm().mac_cache_line(), 128);
        assert_eq!(SecureMemConfig::all_32().ctr_cache_line(), 32);
        assert_eq!(SecureMemConfig::all_32().mac_cache_line(), 32);
        assert_eq!(SecureMemConfig::all_32().bmt_cache_line(), 32);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let c = SecureMemConfig {
            mac_bytes: 3,
            ..SecureMemConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SecureMemConfig {
            ctr_fetch_bytes: 64,
            ..SecureMemConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SecureMemConfig {
            protected_bytes: 100,
            ..SecureMemConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
