//! Per-tenant key management: master-seed key derivation, live key
//! rotation, and overflow-storm backpressure.
//!
//! # Key table
//!
//! Each tenant's XTS/CME data and tweak keys are derived from the
//! configuration's master seed, the tenant id, and a *generation*
//! number; MAC keys are derived from the seed and tenant only
//! (generation-stable), so a key rotation — which re-encrypts data under
//! the next-generation data key while leaving plaintext and counters
//! unchanged — never invalidates a stored MAC. That is what keeps
//! Phoenix-style MAC-probe crash recovery working across a rotation.
//!
//! # Rotation walk
//!
//! [`TenantCrypto::start_rotation`] bumps the tenant's generation and
//! opens an address-ordered walk over the tenant's slab. The invariant:
//! sectors below the walk frontier are encrypted under the new
//! generation, sectors at or past it under the old one, and both the
//! encrypt and decrypt paths select the cipher through the same
//! frontier ([`TenantCrypto::cipher_for`]), so the walk can be
//! suspended, crash-reverted, and resumed at any point. Engines advance
//! the walk a bounded number of sectors per memory access
//! (`rotation_sectors_per_step`), charging the re-encryption traffic to
//! their own plans.
//!
//! # Storm gate
//!
//! Counter-group overflows trigger group re-encryption storms. The gate
//! allows each tenant `storm_burst` inline overflows per window of
//! `storm_window` of its own writebacks; past that, the overflow's DRAM
//! traffic is deferred into a per-tenant queue and drained
//! (`storm_drain` requests at a time) into the *offender's* later
//! plans. The functional re-encryption always happens immediately —
//! only the bandwidth bill is deferred — so correctness is untouched
//! while victim tenants keep their share of the bus.

use crate::cipher::DataCipher;
use crate::config::CipherKind;
use gpu_sim::{BackingMemory, DramReq, SectorAddr, TenantMap};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Tenancy configuration attached to
/// [`SecureMemConfig`](crate::SecureMemConfig).
#[derive(Debug, Clone, PartialEq)]
pub struct TenancyConfig {
    /// Address-range → tenant mapping (slabs must be 4 KiB-aligned so
    /// counter groups and fetch units never span tenants).
    pub map: TenantMap,
    /// Master seed every per-tenant key is derived from.
    pub master_seed: u64,
    /// Sectors re-encrypted per memory access while a rotation walk is
    /// live.
    pub rotation_sectors_per_step: u32,
    /// Inline counter-group overflow re-encryptions allowed per window.
    pub storm_burst: u32,
    /// Storm window length, counted in the tenant's own writebacks.
    pub storm_window: u32,
    /// Deferred storm requests drained per subsequent plan of the
    /// offending tenant.
    pub storm_drain: u32,
}

impl TenancyConfig {
    /// Tenancy over `map` with default rotation/storm pacing.
    pub fn new(map: TenantMap, master_seed: u64) -> Self {
        Self {
            map,
            master_seed,
            rotation_sectors_per_step: 8,
            storm_burst: 2,
            storm_window: 64,
            storm_drain: 4,
        }
    }
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn derive16(seed: u64, tenant: u32, generation: u32, purpose: u64) -> [u8; 16] {
    let mut x = splitmix64(seed ^ purpose);
    x = splitmix64(x ^ u64::from(tenant));
    x = splitmix64(x ^ u64::from(generation));
    let lo = splitmix64(x);
    let hi = splitmix64(lo ^ x);
    let mut key = [0u8; 16];
    key[..8].copy_from_slice(&lo.to_le_bytes());
    key[8..].copy_from_slice(&hi.to_le_bytes());
    key
}

/// Derives `tenant`'s data key for `generation`.
pub fn derive_data_key(seed: u64, tenant: u32, generation: u32) -> [u8; 16] {
    derive16(seed, tenant, generation, 0x11)
}

/// Derives `tenant`'s tweak key for `generation`.
pub fn derive_tweak_key(seed: u64, tenant: u32, generation: u32) -> [u8; 16] {
    derive16(seed, tenant, generation, 0x22)
}

/// Derives `tenant`'s MAC key. Deliberately generation-free: rotation
/// re-encrypts data without touching plaintext or counters, so stored
/// MACs stay valid across it.
pub fn derive_mac_key(seed: u64, tenant: u32) -> [u8; 16] {
    derive16(seed, tenant, 0, 0x33)
}

/// A live key-rotation walk over one tenant's slab.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RotationWalk {
    /// The tenant being rotated.
    pub tenant: u32,
    /// Next address to re-encrypt; everything below it is new-generation.
    pub frontier: u64,
    /// Exclusive end of the tenant's slab.
    pub end: u64,
}

#[derive(Debug, Clone)]
struct TenantCiphers {
    generation: u32,
    current: DataCipher,
    /// Previous-generation cipher, kept only while a rotation walk is
    /// mid-flight over this tenant's slab.
    old: Option<DataCipher>,
}

#[derive(Debug, Clone, Default)]
struct StormState {
    window_writebacks: u32,
    burst_used: u32,
    /// Deferred overflow traffic as `(request, is_write)`.
    deferred: VecDeque<(DramReq, bool)>,
}

/// Per-engine tenant key table, rotation walk, and storm gate.
#[derive(Debug, Clone)]
pub struct TenantCrypto {
    cfg: TenancyConfig,
    kind: CipherKind,
    ciphers: HashMap<u32, TenantCiphers>,
    walk: Option<RotationWalk>,
    /// Every sector this engine has encrypted — the rotation walk's work
    /// list. MAC tag tables under-count (Plutus legitimately skips MAC
    /// updates for pinned-value sectors), so ownership is tracked here.
    owned: BTreeSet<u64>,
    storm: HashMap<u32, StormState>,
    rotations_started: u64,
    rotations_completed: u64,
    rotated_sectors: u64,
    storm_suppressed: u64,
    storm_deferred_reqs: u64,
    storm_drained_reqs: u64,
}

impl TenantCrypto {
    /// Builds the key table for every tenant in the map (plus the
    /// default tenant 0 for unmapped addresses).
    pub fn new(kind: CipherKind, cfg: TenancyConfig) -> Self {
        let mut ids = cfg.map.tenants();
        if !ids.contains(&TenantMap::DEFAULT_TENANT) {
            ids.push(TenantMap::DEFAULT_TENANT);
        }
        let ciphers = ids
            .into_iter()
            .map(|t| {
                let c = Self::build_cipher(kind, cfg.master_seed, t, 0);
                (
                    t,
                    TenantCiphers {
                        generation: 0,
                        current: c,
                        old: None,
                    },
                )
            })
            .collect();
        Self {
            cfg,
            kind,
            ciphers,
            walk: None,
            owned: BTreeSet::new(),
            storm: HashMap::new(),
            rotations_started: 0,
            rotations_completed: 0,
            rotated_sectors: 0,
            storm_suppressed: 0,
            storm_deferred_reqs: 0,
            storm_drained_reqs: 0,
        }
    }

    fn build_cipher(kind: CipherKind, seed: u64, tenant: u32, generation: u32) -> DataCipher {
        DataCipher::from_keys(
            kind,
            derive_data_key(seed, tenant, generation),
            derive_tweak_key(seed, tenant, generation),
        )
    }

    /// The tenancy configuration.
    pub fn config(&self) -> &TenancyConfig {
        &self.cfg
    }

    /// The tenant owning `addr`.
    pub fn tenant_of(&self, addr: SectorAddr) -> u32 {
        self.cfg.map.tenant_of(addr)
    }

    /// `tenant`'s current key generation.
    pub fn generation_of(&self, tenant: u32) -> u32 {
        self.ciphers.get(&tenant).map_or(0, |c| c.generation)
    }

    /// The effective cipher for `addr`: the owning tenant's current
    /// generation, or — while a rotation walk is mid-flight and `addr`
    /// sits at or past the frontier — the previous generation.
    pub fn cipher_for(&self, addr: SectorAddr) -> &DataCipher {
        let t = self.tenant_of(addr);
        let st = &self.ciphers[&t];
        if let Some(w) = &self.walk {
            if w.tenant == t && addr.raw() >= w.frontier && addr.raw() < w.end {
                if let Some(old) = &st.old {
                    return old;
                }
            }
        }
        &st.current
    }

    /// Second cipher candidate for crash-recovery probes: the *new*
    /// generation, offered when a walk is mid-flight over `addr`. A
    /// crash reverts the frontier to the last checkpoint, so sectors the
    /// walk passed after it look old-generation to [`Self::cipher_for`]
    /// while memory actually holds new-generation ciphertext.
    pub fn pending_new_gen(&self, addr: SectorAddr) -> Option<&DataCipher> {
        let w = self.walk.as_ref()?;
        let t = self.tenant_of(addr);
        if w.tenant != t || addr.raw() < w.frontier || addr.raw() >= w.end {
            return None;
        }
        let st = &self.ciphers[&t];
        st.old.as_ref()?;
        Some(&st.current)
    }

    /// Begins a rotation walk for `tenant`. Refuses when a walk is
    /// already live, the tenant has no registered slab, or the tenant is
    /// unknown.
    pub fn start_rotation(&mut self, tenant: u32) -> bool {
        if self.walk.is_some() {
            return false;
        }
        let Some((start, end)) = self.cfg.map.range_of(tenant) else {
            return false;
        };
        let Some(st) = self.ciphers.get_mut(&tenant) else {
            return false;
        };
        let next = st.generation + 1;
        let fresh = Self::build_cipher(self.kind, self.cfg.master_seed, tenant, next);
        st.old = Some(std::mem::replace(&mut st.current, fresh));
        st.generation = next;
        self.walk = Some(RotationWalk {
            tenant,
            frontier: start,
            end,
        });
        self.rotations_started += 1;
        true
    }

    /// True while a rotation walk is live.
    pub fn rotation_active(&self) -> bool {
        self.walk.is_some()
    }

    /// The live walk, if any.
    pub fn walk(&self) -> Option<RotationWalk> {
        self.walk
    }

    /// `(frontier, end, sectors_per_step)` of the live walk.
    pub fn walk_window(&self) -> Option<(u64, u64, u32)> {
        self.walk
            .map(|w| (w.frontier, w.end, self.cfg.rotation_sectors_per_step))
    }

    /// Records `addr` as carrying ciphertext written by this engine.
    /// Engines call this on every data-sector encryption (install and
    /// writeback); crash recovery re-notes verified sectors, restoring
    /// entries a revert rolled back.
    pub fn note_owned(&mut self, addr: SectorAddr) {
        self.owned.insert(addr.raw());
    }

    /// Owned addresses inside `[start, end)`, ascending, at most
    /// `limit` — the rotation walk's next batch.
    pub fn owned_in_range(&self, start: u64, end: u64, limit: usize) -> Vec<SectorAddr> {
        self.owned
            .range(start..end)
            .take(limit)
            .map(|&a| SectorAddr::new(a))
            .collect()
    }

    /// Functionally re-encrypts one sector from the old to the new
    /// generation under its unchanged counter (the MAC needs no update:
    /// MAC keys are generation-stable and the tag covers plaintext).
    /// Returns whether memory changed.
    pub fn rotate_sector(&mut self, addr: SectorAddr, ctr: u64, mem: &mut BackingMemory) -> bool {
        let Some(w) = self.walk else {
            return false;
        };
        let st = &self.ciphers[&w.tenant];
        let Some(old) = &st.old else {
            return false;
        };
        let Some(mut data) = mem.read(addr) else {
            return false;
        };
        old.decrypt(&mut data, addr, ctr);
        st.current.encrypt(&mut data, addr, ctr);
        mem.write(addr, data);
        self.rotated_sectors += 1;
        true
    }

    /// Batch form of [`Self::rotate_sector`] for a whole walk step: one
    /// batched decrypt under the old generation and one batched encrypt
    /// under the new, instead of sector-at-a-time cipher calls. Returns
    /// per-sector "memory changed" flags in input order.
    pub fn rotate_sectors(
        &mut self,
        items: &[(SectorAddr, u64)],
        mem: &mut BackingMemory,
    ) -> Vec<bool> {
        let mut changed = vec![false; items.len()];
        let Some(w) = self.walk else {
            return changed;
        };
        let st = &self.ciphers[&w.tenant];
        let Some(old) = &st.old else {
            return changed;
        };
        // Gather the resident sectors, run both generations' cipher work
        // as two batches, then scatter the results back to memory.
        let mut data: Vec<[u8; 32]> = Vec::with_capacity(items.len());
        let mut at: Vec<(SectorAddr, u64)> = Vec::with_capacity(items.len());
        let mut input_idx: Vec<usize> = Vec::with_capacity(items.len());
        for (i, &(addr, ctr)) in items.iter().enumerate() {
            if let Some(ct) = mem.read(addr) {
                data.push(ct);
                at.push((addr, ctr));
                input_idx.push(i);
            }
        }
        old.decrypt_many(&mut data, &at);
        st.current.encrypt_many(&mut data, &at);
        for ((&i, sector), &(addr, _)) in input_idx.iter().zip(data.iter()).zip(at.iter()) {
            mem.write(addr, *sector);
            changed[i] = true;
        }
        self.rotated_sectors += at.len() as u64;
        changed
    }

    /// Advances the walk frontier to `to` (never backwards).
    pub fn advance_frontier(&mut self, to: u64) {
        if let Some(w) = &mut self.walk {
            w.frontier = w.frontier.max(to);
        }
    }

    /// Completes the walk: the old-generation cipher is destroyed.
    pub fn finish_walk(&mut self) {
        if let Some(w) = self.walk.take() {
            if let Some(st) = self.ciphers.get_mut(&w.tenant) {
                st.old = None;
            }
            self.rotations_completed += 1;
        }
    }

    /// Post-crash-recovery frontier reconciliation: recovery proved
    /// every sector up to `max_new_gen` already carries the new
    /// generation (the walk is address-ordered), so the walk resumes
    /// just past it instead of re-encrypting twice.
    pub fn reconcile_frontier(&mut self, max_new_gen: Option<u64>) {
        if let (Some(w), Some(m)) = (&mut self.walk, max_new_gen) {
            w.frontier = w.frontier.max(m + gpu_sim::SECTOR_SIZE);
        }
    }

    /// Counts one writeback by `tenant`, opening a fresh storm window
    /// (and burst budget) when the current one ends.
    pub fn storm_tick(&mut self, tenant: u32) {
        let window = self.cfg.storm_window;
        let st = self.storm.entry(tenant).or_default();
        st.window_writebacks += 1;
        if st.window_writebacks >= window {
            st.window_writebacks = 0;
            st.burst_used = 0;
        }
    }

    /// Whether `tenant` may issue one more inline overflow
    /// re-encryption this window; charges the burst budget when granted.
    pub fn storm_admit(&mut self, tenant: u32) -> bool {
        let burst = self.cfg.storm_burst;
        let st = self.storm.entry(tenant).or_default();
        if st.burst_used < burst {
            st.burst_used += 1;
            true
        } else {
            self.storm_suppressed += 1;
            false
        }
    }

    /// Queues an over-budget overflow's DRAM traffic for later draining
    /// by the offender's own accesses.
    pub fn storm_defer(&mut self, tenant: u32, reads: Vec<DramReq>, writes: Vec<DramReq>) {
        self.storm_deferred_reqs += (reads.len() + writes.len()) as u64;
        let st = self.storm.entry(tenant).or_default();
        for r in reads {
            st.deferred.push_back((r, false));
        }
        for w in writes {
            st.deferred.push_back((w, true));
        }
    }

    /// Drains up to `storm_drain` deferred requests into `tenant`'s own
    /// plan.
    pub fn storm_drain_into(
        &mut self,
        tenant: u32,
        reads: &mut Vec<DramReq>,
        writes: &mut Vec<DramReq>,
    ) {
        let budget = self.cfg.storm_drain;
        let Some(st) = self.storm.get_mut(&tenant) else {
            return;
        };
        let mut drained = 0u64;
        for _ in 0..budget {
            let Some((req, is_write)) = st.deferred.pop_front() else {
                break;
            };
            if is_write {
                writes.push(req);
            } else {
                reads.push(req);
            }
            drained += 1;
        }
        self.storm_drained_reqs += drained;
    }

    /// Rotation/storm counters for the engine's `extra_stats`.
    pub fn extra_stats(&self) -> Vec<(String, u64)> {
        let backlog: u64 = self.storm.values().map(|s| s.deferred.len() as u64).sum();
        vec![
            ("rotations_started".into(), self.rotations_started),
            ("rotations_completed".into(), self.rotations_completed),
            ("rotated_sectors".into(), self.rotated_sectors),
            ("storm_suppressed_overflows".into(), self.storm_suppressed),
            ("storm_deferred_reqs".into(), self.storm_deferred_reqs),
            ("storm_drained_reqs".into(), self.storm_drained_reqs),
            ("storm_backlog_reqs".into(), backlog),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tenant_map() -> TenantMap {
        let mut m = TenantMap::new();
        m.add_range(0, 0x1000, 1);
        m.add_range(0x1000, 0x2000, 2);
        m
    }

    fn crypto() -> TenantCrypto {
        TenantCrypto::new(CipherKind::Xts, TenancyConfig::new(two_tenant_map(), 42))
    }

    #[test]
    fn key_derivation_is_deterministic_and_tenant_separated() {
        assert_eq!(derive_data_key(1, 2, 0), derive_data_key(1, 2, 0));
        assert_ne!(derive_data_key(1, 2, 0), derive_data_key(1, 3, 0));
        assert_ne!(derive_data_key(1, 2, 0), derive_data_key(1, 2, 1));
        assert_ne!(derive_data_key(1, 2, 0), derive_data_key(2, 2, 0));
        assert_ne!(derive_data_key(1, 2, 0), derive_mac_key(1, 2));
        // MAC keys are generation-free by construction.
        assert_eq!(derive_mac_key(1, 2), derive_mac_key(1, 2));
    }

    #[test]
    fn tenants_get_distinct_ciphertexts() {
        let tc = crypto();
        let mut a = [7u8; 32];
        let mut b = [7u8; 32];
        // Same relative offset inside each slab, same counter.
        tc.cipher_for(SectorAddr::new(0x40))
            .encrypt(&mut a, SectorAddr::new(0x40), 1);
        tc.cipher_for(SectorAddr::new(0x1040))
            .encrypt(&mut b, SectorAddr::new(0x1040), 1);
        assert_ne!(a, b);
    }

    #[test]
    fn rotation_walk_switches_cipher_at_frontier() {
        let mut tc = crypto();
        let addr_lo = SectorAddr::new(0x40);
        let addr_hi = SectorAddr::new(0x800);
        let mut before = [3u8; 32];
        tc.cipher_for(addr_lo).encrypt(&mut before, addr_lo, 5);
        assert!(tc.start_rotation(1));
        assert!(tc.rotation_active());
        // Everything ≥ frontier (= slab start) still uses the old key.
        let mut still_old = [3u8; 32];
        tc.cipher_for(addr_lo).encrypt(&mut still_old, addr_lo, 5);
        assert_eq!(still_old, before);
        // Advance the frontier past addr_lo: it flips to the new key.
        tc.advance_frontier(0x80);
        let mut now_new = [3u8; 32];
        tc.cipher_for(addr_lo).encrypt(&mut now_new, addr_lo, 5);
        assert_ne!(now_new, before);
        // addr_hi is still old-generation.
        let mut hi = [3u8; 32];
        tc.cipher_for(addr_hi).encrypt(&mut hi, addr_hi, 5);
        let mut hi_old = [3u8; 32];
        TenantCrypto::build_cipher(CipherKind::Xts, 42, 1, 0).encrypt(&mut hi_old, addr_hi, 5);
        assert_eq!(hi, hi_old);
        tc.finish_walk();
        assert!(!tc.rotation_active());
        assert_eq!(tc.generation_of(1), 1);
    }

    #[test]
    fn rotate_sector_roundtrips_through_memory() {
        let mut tc = crypto();
        let addr = SectorAddr::new(0x40);
        let plaintext = [0x5a_u8; 32];
        let mut ct = plaintext;
        tc.cipher_for(addr).encrypt(&mut ct, addr, 9);
        let mut mem = BackingMemory::new();
        mem.write(addr, ct);
        assert!(tc.start_rotation(1));
        assert!(tc.rotate_sector(addr, 9, &mut mem));
        tc.advance_frontier(addr.raw() + 32);
        // Decrypt through the effective cipher (now new-gen): bit-identical.
        let mut got = mem.read(addr).unwrap();
        tc.cipher_for(addr).decrypt(&mut got, addr, 9);
        assert_eq!(got, plaintext);
    }

    #[test]
    fn one_walk_at_a_time_and_unknown_tenants_refused() {
        let mut tc = crypto();
        assert!(!tc.start_rotation(9), "no slab registered");
        assert!(tc.start_rotation(1));
        assert!(!tc.start_rotation(2), "one walk at a time");
    }

    #[test]
    fn storm_gate_defers_past_burst_and_drains() {
        let mut tc = crypto();
        assert!(tc.storm_admit(1));
        assert!(tc.storm_admit(1));
        assert!(!tc.storm_admit(1), "burst budget is 2");
        // Other tenants have their own budget.
        assert!(tc.storm_admit(2));
        let reads = vec![DramReq::new(0, 32, gpu_sim::TrafficClass::Data)];
        let writes = vec![DramReq::new(0, 32, gpu_sim::TrafficClass::Data)];
        tc.storm_defer(1, reads, writes);
        let mut r = Vec::new();
        let mut w = Vec::new();
        tc.storm_drain_into(1, &mut r, &mut w);
        assert_eq!(r.len() + w.len(), 2);
        // Window rollover restores the burst budget.
        for _ in 0..64 {
            tc.storm_tick(1);
        }
        assert!(tc.storm_admit(1));
    }
}
