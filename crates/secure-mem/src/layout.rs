//! Physical layout of security metadata in device memory.
//!
//! The protected data region occupies `[0, protected_bytes)`. Above it live,
//! in order: the encryption-counter region, the MAC region, and one region
//! per BMT level (leaves upward). In the default split-sectored
//! organization (paper Fig. 4), each 32-byte counter sector packs a 32-bit
//! major counter plus 32 seven-bit minor counters, covering a *group* of 32
//! data sectors (1 KiB of data); the SGX-style monolithic organization
//! packs four 64-bit counters instead (covering just 128 B).
//!
//! The BMT is built over the counter region: a leaf is one counter *fetch
//! unit* (128 B in the baseline, 32 B in the fine-grain designs), and an
//! internal node of `bmt_node_bytes` holds `bmt_node_bytes / 8` child
//! hashes, giving the 16-ary (128 B) or 4-ary (32 B) trees of Fig. 14.

use crate::config::SecureMemConfig;
use gpu_sim::{SectorAddr, SECTOR_SIZE};

/// Data sectors covered by one 32 B counter sector (the split-counter
/// group sharing a major counter).
pub const SECTORS_PER_COUNTER_GROUP: u64 = 32;

/// Bytes of hash per BMT child entry.
pub const HASH_BYTES: u64 = 8;

/// Computed metadata layout.
#[derive(Debug, Clone)]
pub struct Layout {
    protected_bytes: u64,
    mac_bytes: u64,
    ctr_fetch_bytes: u64,
    mac_fetch_bytes: u64,
    node_bytes: u64,
    arity: u64,
    ctr_base: u64,
    mac_base: u64,
    partitions: u64,
    sectors_per_group: u64,
    /// `(base_address, node_count)` per BMT level, level 1 first —
    /// geometry of ONE partition's local tree (PSSM builds a BMT per
    /// partition over its local counter blocks).
    levels: Vec<(u64, u64)>,
}

impl Layout {
    /// Derives the layout from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (call
    /// [`SecureMemConfig::validate`] first for a graceful error).
    pub fn new(cfg: &SecureMemConfig) -> Self {
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid SecureMemConfig: {e}"));
        let protected = cfg.protected_bytes;
        let sectors_per_group = cfg.counter_org.sectors_per_group();
        let ctr_region = protected / sectors_per_group; // 32B counter sector per group
        let mac_region = (protected / SECTOR_SIZE) * u64::from(cfg.mac_bytes);
        let ctr_base = protected;
        let mac_base = ctr_base + ctr_region;
        let node_bytes = u64::from(cfg.bmt_node_bytes);
        let arity = node_bytes / HASH_BYTES;

        let n_leaves = ctr_region
            .div_ceil(u64::from(cfg.ctr_fetch_bytes))
            .div_ceil(cfg.partitions as u64);
        let mut levels = Vec::new();
        let mut base = mac_base + mac_region;
        let mut count = n_leaves.div_ceil(arity);
        loop {
            levels.push((base, count));
            if count <= 1 {
                break;
            }
            base += count * node_bytes;
            count = count.div_ceil(arity);
        }

        Self {
            protected_bytes: protected,
            mac_bytes: u64::from(cfg.mac_bytes),
            ctr_fetch_bytes: u64::from(cfg.ctr_fetch_bytes),
            mac_fetch_bytes: u64::from(cfg.mac_fetch_bytes),
            node_bytes,
            arity,
            ctr_base,
            mac_base,
            partitions: cfg.partitions as u64,
            sectors_per_group,
            levels,
        }
    }

    /// Maps a *global* BMT leaf index to the partition-local index used
    /// for tree-walk geometry. Leaves interleave across partitions
    /// pseudo-randomly, so dividing by the partition count approximates
    /// each partition's dense local numbering.
    pub fn local_leaf(&self, global_leaf: u64) -> u64 {
        global_leaf / self.partitions
    }

    /// Size of the protected data region.
    pub fn protected_bytes(&self) -> u64 {
        self.protected_bytes
    }

    /// Counter-group index of a data sector (the set of sectors whose
    /// counters share one 32 B counter sector).
    pub fn group_of(&self, sector: SectorAddr) -> u64 {
        sector.index() / self.sectors_per_group
    }

    /// Address of the 32 B counter sector covering `sector`.
    pub fn ctr_sector_addr(&self, sector: SectorAddr) -> u64 {
        self.ctr_base + self.group_of(sector) * SECTOR_SIZE
    }

    /// Address of the counter *fetch unit* (BMT leaf) covering `sector`.
    pub fn ctr_fetch_addr(&self, sector: SectorAddr) -> u64 {
        let a = self.ctr_sector_addr(sector);
        a - a % self.ctr_fetch_bytes
    }

    /// Counter fetch granularity in bytes.
    pub fn ctr_fetch_bytes(&self) -> u64 {
        self.ctr_fetch_bytes
    }

    /// First data sector of group `group`.
    pub fn group_first_sector(&self, group: u64) -> SectorAddr {
        SectorAddr::new(group * self.sectors_per_group * SECTOR_SIZE)
    }

    /// Address of the MAC of `sector`.
    pub fn mac_addr(&self, sector: SectorAddr) -> u64 {
        self.mac_base + sector.index() * self.mac_bytes
    }

    /// Address of the MAC fetch unit covering `sector`.
    pub fn mac_fetch_addr(&self, sector: SectorAddr) -> u64 {
        let a = self.mac_addr(sector);
        a - a % self.mac_fetch_bytes
    }

    /// MAC fetch granularity in bytes.
    pub fn mac_fetch_bytes(&self) -> u64 {
        self.mac_fetch_bytes
    }

    /// BMT leaf index containing the counter fetch unit at `ctr_fetch_addr`.
    pub fn leaf_of(&self, ctr_fetch_addr: u64) -> u64 {
        debug_assert!(ctr_fetch_addr >= self.ctr_base);
        (ctr_fetch_addr - self.ctr_base) / self.ctr_fetch_bytes
    }

    /// Counter-region address of BMT leaf `leaf`.
    pub fn leaf_addr(&self, leaf: u64) -> u64 {
        self.ctr_base + leaf * self.ctr_fetch_bytes
    }

    /// Tree arity (children per internal node).
    pub fn arity(&self) -> u64 {
        self.arity
    }

    /// BMT node size in bytes.
    pub fn node_bytes(&self) -> u64 {
        self.node_bytes
    }

    /// Number of internal levels (level 1 = parents of leaves, …).
    pub fn num_levels(&self) -> u32 {
        self.levels.len() as u32
    }

    /// True if `level` is the root level (kept on-chip, never fetched).
    pub fn is_root_level(&self, level: u32) -> bool {
        level as usize >= self.levels.len() || self.levels[level as usize - 1].1 <= 1
    }

    /// Address of internal node `idx` at `level` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn node_addr(&self, level: u32, idx: u64) -> u64 {
        let (base, count) = self.levels[level as usize - 1];
        assert!(
            idx < count,
            "node index {idx} out of range at level {level}"
        );
        base + idx * self.node_bytes
    }

    /// Parent node index of a child index one level below.
    pub fn parent_index(&self, child_idx: u64) -> u64 {
        child_idx / self.arity
    }

    /// Total BMT storage in bytes (the Fig. 14 storage trade-off).
    pub fn bmt_storage_bytes(&self) -> u64 {
        self.levels.iter().map(|(_, c)| c * self.node_bytes).sum()
    }

    /// Counter groups covered by BMT leaf `leaf`: `(first_group, count)`.
    pub fn groups_of_leaf(&self, leaf: u64) -> (u64, u64) {
        let per_leaf = self.ctr_fetch_bytes / gpu_sim::SECTOR_SIZE;
        (leaf * per_leaf, per_leaf)
    }

    /// Maps a metadata address back to its BMT `(level, node_index)`, if it
    /// lies in a BMT level region.
    pub fn node_of_addr(&self, addr: u64) -> Option<(u32, u64)> {
        for (i, (base, count)) in self.levels.iter().enumerate() {
            if addr >= *base && addr < base + count * self.node_bytes {
                return Some((i as u32 + 1, (addr - base) / self.node_bytes));
            }
        }
        None
    }

    /// True if `addr` lies in the protected data region.
    pub fn is_data_addr(&self, addr: u64) -> bool {
        addr < self.protected_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(cfg: SecureMemConfig) -> Layout {
        Layout::new(&cfg)
    }

    #[test]
    fn regions_do_not_overlap() {
        let l = layout(SecureMemConfig::test_small());
        assert!(l.ctr_base >= l.protected_bytes);
        assert!(l.mac_base >= l.ctr_base + l.protected_bytes / 32);
        let (first_level_base, _) = l.levels[0];
        assert!(first_level_base >= l.mac_base);
    }

    #[test]
    fn counter_sector_covers_32_data_sectors() {
        let l = layout(SecureMemConfig::test_small());
        let s0 = SectorAddr::new(0);
        let s31 = SectorAddr::new(31 * 32);
        let s32 = SectorAddr::new(32 * 32);
        assert_eq!(l.ctr_sector_addr(s0), l.ctr_sector_addr(s31));
        assert_ne!(l.ctr_sector_addr(s0), l.ctr_sector_addr(s32));
        assert_eq!(l.ctr_sector_addr(s32) - l.ctr_sector_addr(s0), 32);
    }

    #[test]
    fn fetch_unit_aligns_to_granularity() {
        let l = layout(SecureMemConfig::test_small()); // 128B fetch
        for i in 0..512u64 {
            let s = SectorAddr::new(i * 32);
            let f = l.ctr_fetch_addr(s);
            assert_eq!(f % 128, l.ctr_base % 128);
            assert!(l.ctr_sector_addr(s) >= f);
            assert!(l.ctr_sector_addr(s) < f + 128);
        }
    }

    #[test]
    fn bmt_arity_follows_node_size() {
        let coarse = layout(SecureMemConfig::test_small());
        assert_eq!(coarse.arity(), 16);
        let fine = layout(SecureMemConfig {
            bmt_node_bytes: 32,
            ..SecureMemConfig::test_small()
        });
        assert_eq!(fine.arity(), 4);
    }

    #[test]
    fn fine_leaves_make_taller_or_equal_trees() {
        let base = layout(SecureMemConfig::test_small());
        let fine = layout(SecureMemConfig {
            ctr_fetch_bytes: 32,
            bmt_node_bytes: 32,
            ..SecureMemConfig::test_small()
        });
        assert!(fine.num_levels() >= base.num_levels());
        assert!(fine.bmt_storage_bytes() >= base.bmt_storage_bytes());
    }

    #[test]
    fn leaf_indexing_roundtrip() {
        let l = layout(SecureMemConfig::test_small());
        for leaf in 0..16 {
            assert_eq!(l.leaf_of(l.leaf_addr(leaf)), leaf);
        }
    }

    #[test]
    fn root_level_detection() {
        let l = layout(SecureMemConfig::test_small());
        // 1 MiB protected → 32 KiB counters → 256 leaves (128B) → L1 = 16
        // nodes, L2 = 1 node (root).
        assert_eq!(l.levels.len(), 2);
        assert!(!l.is_root_level(1));
        assert!(l.is_root_level(2));
        assert!(l.is_root_level(3));
    }

    #[test]
    fn paper_scale_bmt_storage() {
        // 4 GiB protected region, baseline geometry: the BMT should land in
        // the paper's "145.125 kB → 1.33 MB" neighborhood (Section IV-F
        // quotes storage for its partition-level tree; ours is the global
        // figure, so only sanity-check the coarse/fine ratio here).
        let coarse = layout(SecureMemConfig::pssm());
        let fine = layout(SecureMemConfig::all_32());
        let ratio = fine.bmt_storage_bytes() as f64 / coarse.bmt_storage_bytes() as f64;
        assert!(
            ratio > 3.0 && ratio < 20.0,
            "fine/coarse storage ratio {ratio}"
        );
    }

    #[test]
    fn parent_indexing() {
        let l = layout(SecureMemConfig::test_small());
        assert_eq!(l.parent_index(0), 0);
        assert_eq!(l.parent_index(15), 0);
        assert_eq!(l.parent_index(16), 1);
    }

    #[test]
    fn node_addresses_within_level_are_disjoint() {
        let l = layout(SecureMemConfig::test_small());
        let a0 = l.node_addr(1, 0);
        let a1 = l.node_addr(1, 1);
        assert_eq!(a1 - a0, l.node_bytes());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_addr_bounds_checked() {
        let l = layout(SecureMemConfig::test_small());
        l.node_addr(1, 1 << 40);
    }
}
