//! The Common Counters baseline (Na et al., as characterized in the
//! paper's Sections I/III-C): a coarse-grain on-chip read-only tracker.
//!
//! Device memory is divided into 16 KiB regions. While a region has never
//! been written, every sector in it provably has counter value zero, so
//! reads need **no counter fetch and no BMT traversal** — the counter is
//! known on-chip. The first write to a region permanently demotes it to the
//! normal PSSM path. This captures the scheme's first-order behavior (and
//! its weakness the paper exploits: one write poisons a whole 16 KiB
//! region, and MAC traffic is never optimized).

use crate::config::SecureMemConfig;
use crate::pssm::PssmEngine;
use gpu_sim::{
    BackingMemory, EngineFactory, FillPlan, MetaFault, RecoveryError, RecoveryReport, SectorAddr,
    SecurityEngine, WritePlan,
};
use std::collections::HashSet;
use std::sync::{Arc, Mutex};

/// Region granularity tracked on-chip.
pub const REGION_BYTES: u64 = 16 * 1024;

/// Common-Counters engine: PSSM plus the clean-region shortcut.
///
/// The dirty-region table is a single *GPU-level* on-chip structure: a
/// write arriving at any memory partition demotes the region for every
/// partition, so the table is shared between the per-partition engine
/// instances built by one [`CommonCountersFactory`].
#[derive(Debug, Clone)]
pub struct CommonCountersEngine {
    inner: PssmEngine,
    dirty_regions: Arc<Mutex<HashSet<u64>>>,
    clean_hits: u64,
}

impl CommonCountersEngine {
    /// Builds a standalone engine from `cfg` (its region table is private;
    /// use [`CommonCountersEngine::factory`] for a multi-partition
    /// simulator so the table is shared).
    pub fn new(cfg: SecureMemConfig) -> Self {
        Self::with_shared_table(cfg, Arc::new(Mutex::new(HashSet::new())))
    }

    fn with_shared_table(cfg: SecureMemConfig, table: Arc<Mutex<HashSet<u64>>>) -> Self {
        Self {
            inner: PssmEngine::new(cfg),
            dirty_regions: table,
            clean_hits: 0,
        }
    }

    /// An [`EngineFactory`] producing one engine per partition, all sharing
    /// one dirty-region table.
    pub fn factory(cfg: SecureMemConfig) -> CommonCountersFactory {
        CommonCountersFactory {
            cfg,
            table: Arc::new(Mutex::new(HashSet::new())),
        }
    }

    fn region_of(addr: SectorAddr) -> u64 {
        addr.raw() / REGION_BYTES
    }

    /// True if `addr`'s region has never been written.
    pub fn is_clean(&self, addr: SectorAddr) -> bool {
        !self
            .dirty_regions
            .lock()
            .unwrap()
            .contains(&Self::region_of(addr))
    }

    /// The wrapped PSSM engine.
    pub fn inner_mut(&mut self) -> &mut PssmEngine {
        &mut self.inner
    }
}

impl SecurityEngine for CommonCountersEngine {
    fn name(&self) -> &'static str {
        "common_counters"
    }

    fn install(&mut self, addr: SectorAddr, plaintext: &[u8; 32], mem: &mut BackingMemory) {
        // Install is the pre-kernel image, not a kernel write: the region
        // stays clean (counters stay zero).
        self.inner.install(addr, plaintext, mem);
    }

    fn on_fill(&mut self, addr: SectorAddr, mem: &mut BackingMemory) -> FillPlan {
        if self.is_clean(addr) {
            // Counter is zero by construction: skip the counter/BMT path
            // entirely; only the MAC is fetched and checked.
            self.clean_hits += 1;
            let mut plan = self.inner.fill_with_known_counter(addr, 0, mem);
            debug_assert!(plan
                .pre_chains
                .iter()
                .flatten()
                .all(|r| r.class == gpu_sim::TrafficClass::Mac));
            plan.crypto_latency = self.inner.latencies().mac_latency;
            return plan;
        }
        self.inner.on_fill(addr, mem)
    }

    fn on_writeback(
        &mut self,
        addr: SectorAddr,
        plaintext: &[u8; 32],
        mem: &mut BackingMemory,
    ) -> WritePlan {
        self.dirty_regions
            .lock()
            .unwrap()
            .insert(Self::region_of(addr));
        self.inner.on_writeback(addr, plaintext, mem)
    }

    fn extra_stats(&self) -> Vec<(String, u64)> {
        let mut stats = self.inner.extra_stats();
        stats.push(("clean_region_fills".into(), self.clean_hits));
        stats.push((
            "dirty_regions".into(),
            self.dirty_regions.lock().unwrap().len() as u64,
        ));
        stats
    }

    fn attach_telemetry(&mut self, tel: &plutus_telemetry::Telemetry) {
        self.inner.attach_telemetry(tel);
    }

    fn start_key_rotation(&mut self, tenant: u32) -> bool {
        self.inner.start_key_rotation(tenant)
    }

    fn rotation_active(&self) -> bool {
        self.inner.rotation_active()
    }

    fn inject_fault(&mut self, addr: SectorAddr, fault: MetaFault) -> bool {
        match fault {
            // Clean regions never consult per-sector counters or the BMT
            // (the counter is known to be zero on-chip), so counter/BMT
            // faults there have no observable target.
            MetaFault::RollbackCounter { .. } | MetaFault::TamperBmtNode if self.is_clean(addr) => {
                false
            }
            _ => self.inner.inject_fault(addr, fault),
        }
    }

    fn checkpoint(&self) -> Option<Box<dyn SecurityEngine>> {
        // The dirty-region table is shared between partitions through one
        // Arc; a checkpoint must deep-copy its contents so later writes
        // don't bleed into the saved state.
        let snapshot = self.dirty_regions.lock().unwrap().clone();
        let mut ck = self.clone();
        ck.dirty_regions = Arc::new(Mutex::new(snapshot));
        Some(Box::new(ck))
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn crash_revert(&mut self, checkpoint: &dyn SecurityEngine) -> bool {
        let Some(ck) = checkpoint
            .as_any()
            .and_then(|a| a.downcast_ref::<CommonCountersEngine>())
        else {
            return false;
        };
        self.inner.revert_keeping_macs(&ck.inner);
        self.clean_hits = ck.clean_hits;
        // Replace the shared table's *contents* in place so every partition
        // keeps pointing at the one GPU-level table.
        let snapshot = ck.dirty_regions.lock().unwrap().clone();
        *self.dirty_regions.lock().unwrap() = snapshot;
        true
    }

    fn recover(
        &mut self,
        mem: &BackingMemory,
        sectors: &[SectorAddr],
    ) -> Result<RecoveryReport, RecoveryError> {
        let report = self.inner.recover(mem, sectors)?;
        // A region is clean only while every counter in it is provably
        // zero: re-dirty any region whose recovered counter says otherwise,
        // so post-recovery fills take the full verified path.
        for &s in sectors {
            if self.inner.counters().peek_value(s) > 0 {
                self.dirty_regions
                    .lock()
                    .unwrap()
                    .insert(Self::region_of(s));
            }
        }
        Ok(report)
    }

    fn peek_plaintext(&self, addr: SectorAddr, mem: &BackingMemory) -> Option<[u8; 32]> {
        self.inner.peek_plaintext(addr, mem)
    }
}

/// Factory building [`CommonCountersEngine`] instances per partition, all
/// sharing one GPU-level dirty-region table.
#[derive(Debug, Clone)]
pub struct CommonCountersFactory {
    cfg: SecureMemConfig,
    table: Arc<Mutex<HashSet<u64>>>,
}

impl EngineFactory for CommonCountersFactory {
    fn build(&self, _partition: usize) -> Box<dyn SecurityEngine> {
        Box::new(CommonCountersEngine::with_shared_table(
            self.cfg.clone(),
            self.table.clone(),
        ))
    }

    fn scheme_name(&self) -> &'static str {
        "common_counters"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::TrafficClass;

    fn engine() -> (CommonCountersEngine, BackingMemory) {
        (
            CommonCountersEngine::new(SecureMemConfig::test_small()),
            BackingMemory::new(),
        )
    }

    fn sector(i: u64) -> SectorAddr {
        SectorAddr::new(i * 32)
    }

    #[test]
    fn clean_region_reads_skip_counter_traffic() {
        let (mut e, mut mem) = engine();
        e.install(sector(0), &[5; 32], &mut mem);
        let fill = e.on_fill(sector(0), &mut mem);
        assert_eq!(fill.plaintext, [5; 32]);
        assert!(fill.violation.is_none());
        let classes: Vec<_> = fill
            .pre_chains
            .iter()
            .flat_map(|c| c.iter().map(|r| r.class))
            .collect();
        assert!(!classes.contains(&TrafficClass::Counter));
        assert!(!classes.contains(&TrafficClass::BmtNode));
        assert!(classes.contains(&TrafficClass::Mac), "MAC is still fetched");
    }

    #[test]
    fn first_write_dirties_the_whole_region() {
        let (mut e, mut mem) = engine();
        assert!(e.is_clean(sector(0)));
        e.on_writeback(sector(0), &[1; 32], &mut mem);
        assert!(!e.is_clean(sector(0)));
        // A *different* sector in the same 16 KiB region is also dirty now.
        assert!(!e.is_clean(sector(511)));
        // But the next region is clean.
        assert!(e.is_clean(sector(512)));
    }

    #[test]
    fn dirty_region_reads_take_the_full_path() {
        let (mut e, mut mem) = engine();
        e.on_writeback(sector(0), &[1; 32], &mut mem);
        let fill = e.on_fill(sector(4 * 32), &mut mem); // same region, different group
        let classes: Vec<_> = fill
            .pre_chains
            .iter()
            .flat_map(|c| c.iter().map(|r| r.class))
            .collect();
        assert!(classes.contains(&TrafficClass::Counter));
    }

    #[test]
    fn write_then_read_roundtrips() {
        let (mut e, mut mem) = engine();
        e.on_writeback(sector(9), &[0x77; 32], &mut mem);
        let fill = e.on_fill(sector(9), &mut mem);
        assert_eq!(fill.plaintext, [0x77; 32]);
        assert!(fill.violation.is_none());
    }

    #[test]
    fn tamper_in_clean_region_still_detected() {
        let (mut e, mut mem) = engine();
        e.install(sector(0), &[5; 32], &mut mem);
        let mut mask = [0u8; 32];
        mask[10] = 4;
        mem.corrupt(sector(0), &mask);
        let fill = e.on_fill(sector(0), &mut mem);
        assert!(fill.violation.is_some(), "MAC still protects clean regions");
    }

    #[test]
    fn checkpoint_deep_copies_dirty_table() {
        let (mut e, mut mem) = engine();
        let ck = e.checkpoint().expect("common counters checkpoints");
        // Dirtying a region after the checkpoint must not leak into it.
        e.on_writeback(sector(0), &[1; 32], &mut mem);
        assert!(!e.is_clean(sector(0)));
        assert!(e.crash_revert(ck.as_ref()));
        assert!(e.is_clean(sector(0)), "reverted table is clean again");
    }

    #[test]
    fn crash_recovery_redirties_written_regions() {
        let (mut e, mut mem) = engine();
        e.on_writeback(sector(0), &[1; 32], &mut mem);
        let ck = e.checkpoint().unwrap();
        e.on_writeback(sector(0), &[2; 32], &mut mem);
        e.on_writeback(sector(512), &[3; 32], &mut mem); // new region
        assert!(e.crash_revert(ck.as_ref()));
        // The post-checkpoint region went clean with the reverted table…
        assert!(e.is_clean(sector(512)));
        let report = e.recover(&mem, &mem.resident_addrs()).unwrap();
        assert!(report.failed.is_empty());
        // …and recovery re-dirties it from the recovered counters.
        assert!(!e.is_clean(sector(512)));
        let f0 = e.on_fill(sector(0), &mut mem);
        assert_eq!(f0.plaintext, [2; 32]);
        assert!(f0.violation.is_none());
        let f512 = e.on_fill(sector(512), &mut mem);
        assert_eq!(f512.plaintext, [3; 32]);
        assert!(f512.violation.is_none());
    }

    #[test]
    fn stats_count_clean_fills() {
        let (mut e, mut mem) = engine();
        e.on_fill(sector(0), &mut mem);
        e.on_writeback(sector(0), &[1; 32], &mut mem);
        e.on_fill(sector(1), &mut mem);
        let stats = e.extra_stats();
        let clean = stats
            .iter()
            .find(|(n, _)| n == "clean_region_fills")
            .unwrap()
            .1;
        assert_eq!(clean, 1);
        let dirty = stats.iter().find(|(n, _)| n == "dirty_regions").unwrap().1;
        assert_eq!(dirty, 1);
    }
}
